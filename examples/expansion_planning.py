#!/usr/bin/env python3
"""Expansion planning: grow a deployed data center without touching it.

The scenario the paper's introduction motivates: you operated
ABCCC(n=4, k=1, s=2) — 32 dual-port servers — and demand doubled.  This
script plans the upgrade to k=2 and k=3, prints the exact bill of work,
and contrasts it with what the same growth would cost on BCube and on a
fat-tree.

Run:  python examples/expansion_planning.py
"""

from repro import plan_abccc_growth, plan_bcube_growth, plan_fattree_growth
from repro.metrics.cost import expansion_capex


def describe(title: str, plan) -> None:
    summary = plan.summary()
    print(f"--- {title}")
    print(f"    {plan.old_label}  ->  {plan.new_label}")
    print(
        f"    buy: {summary['new_servers']} servers, "
        f"{summary['new_switches']} switches, {summary['new_cables']} cables "
        f"(~{expansion_capex(plan):,.0f})"
    )
    touched = (
        f"    touch existing: {summary['upgraded_servers']} server NIC upgrades, "
        f"{summary['replaced_switches']} switch replacements, "
        f"{summary['removed_cables']} cables pulled"
    )
    print(touched)
    verdict = "PURE ADDITION — zero downtime risk" if plan.is_pure_addition else (
        "existing equipment must be opened/replaced"
    )
    print(f"    => {verdict}\n")


def main() -> None:
    print("=" * 72)
    print("Scenario: double the data center, three designs compared")
    print("=" * 72, "\n")

    print("ABCCC growth path (the paper's design):\n")
    describe("step 1: k = 1 -> 2", plan_abccc_growth(4, 1, 2))
    describe("step 2: k = 2 -> 3", plan_abccc_growth(4, 2, 2))

    print("The same appetite for growth on the baselines:\n")
    describe("BCube k = 1 -> 2", plan_bcube_growth(4, 1))
    describe("BCube k = 2 -> 3", plan_bcube_growth(4, 2))
    describe("fat-tree p = 4 -> 6", plan_fattree_growth(4))
    describe("fat-tree p = 6 -> 8", plan_fattree_growth(6))

    print("The boundary of ABCCC's free lunch (crossbars outgrow the radix):\n")
    describe("ABCCC n=4, k = 3 -> 4 at s=2", plan_abccc_growth(4, 3, 2))
    print(
        "Take-away: provision n >= k_max + 1 (or use s >= 3) and every\n"
        "expansion step is plug-in-only — BCube opens every server chassis\n"
        "and the fat-tree replaces its entire switching fabric."
    )


if __name__ == "__main__":
    main()
