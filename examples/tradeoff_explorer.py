#!/usr/bin/env python3
"""Trade-off explorer: pick the right (n, k, s) for a target deployment.

The paper's claim is that ABCCC "achieves the best trade-off … by fine
tuning its parameters".  This script makes that actionable: give it a
target server count and a NIC budget, and it enumerates every ABCCC
configuration in range, scores the candidates, and prints the frontier
alongside the BCCC/BCube endpoints.

Run:  python examples/tradeoff_explorer.py [target_servers] [max_nics]
"""

import sys

from repro import AbcccSpec
from repro.core import properties
from repro.metrics.cost import capex


def candidates(target: int, max_nics: int, tolerance: float = 0.5):
    """All configs within +/-tolerance of the target server count."""
    for n in (4, 6, 8, 16, 24, 48):
        for k in range(0, 6):
            for s in range(2, min(k + 3, max_nics + 1)):
                spec = AbcccSpec(n, k, s)
                if properties.crossbar_switch_ports(spec.abccc) > n:
                    continue  # keep crossbars on commodity n-port switches
                size = spec.num_servers
                if abs(size - target) <= tolerance * target:
                    yield spec


def main() -> None:
    target = int(sys.argv[1]) if len(sys.argv) > 1 else 1000
    max_nics = int(sys.argv[2]) if len(sys.argv) > 2 else 4
    print(f"target: ~{target} servers, <= {max_nics} NIC ports per server\n")

    rows = []
    for spec in candidates(target, max_nics):
        params = spec.abccc
        rows.append(
            {
                "spec": spec,
                "servers": spec.num_servers,
                "diameter": spec.diameter_server_hops,
                "bisection": properties.bisection_per_server(params),
                "cost": capex(spec).per_server,
            }
        )
    if not rows:
        print("no configuration in range — widen the tolerance or NIC budget")
        return

    rows.sort(key=lambda r: (r["diameter"], r["cost"]))
    header = (
        f"{'configuration':<24} {'servers':>8} {'diam(sh)':>9} "
        f"{'bisect/srv':>11} {'$/server':>9}  notes"
    )
    print(header)
    print("-" * len(header))
    for row in rows:
        spec = row["spec"]
        note = ""
        if spec.s == 2:
            note = "= BCCC"
        elif spec.abccc.crossbar_size == 1:
            note = "= BCube"
        bisect = f"{row['bisection']:.3f}" if row["bisection"] is not None else "-"
        print(
            f"{spec.label:<24} {row['servers']:>8} {row['diameter']:>9} "
            f"{bisect:>11} {row['cost']:>9,.0f}  {note}"
        )

    # A simple dominance analysis: who is on the Pareto frontier of
    # (diameter low, bisection high, cost low)?
    frontier = []
    for row in rows:
        dominated = any(
            other["diameter"] <= row["diameter"]
            and (other["bisection"] or 0) >= (row["bisection"] or 0)
            and other["cost"] <= row["cost"]
            and other is not row
            and (
                other["diameter"] < row["diameter"]
                or (other["bisection"] or 0) > (row["bisection"] or 0)
                or other["cost"] < row["cost"]
            )
            for other in rows
        )
        if not dominated:
            frontier.append(row["spec"].label)
    print(f"\nPareto frontier (diameter / bisection / cost): {', '.join(frontier)}")


if __name__ == "__main__":
    main()
