#!/usr/bin/env python3
"""Capacity planning: requirements in, ranked designs out.

An architect's session with the library: state what the deployment needs
(scale, NIC budget, bandwidth floor, latency ceiling, future growth),
let the planner enumerate the feasible ABCCC space, inspect the Pareto
frontier, check the winner's theoretical throughput ceiling, and print
its full report.

Run:  python examples/capacity_planning.py
"""

from repro.core.planner import Requirements, best, plan
from repro.metrics.bounds import all_to_all_bounds, per_server_ceiling
from repro.report import topology_report


def main() -> None:
    req = Requirements(
        min_servers=800,
        max_servers=6000,
        max_nic_ports=3,  # the servers on this year's contract
        switch_radix=16,  # the switches already in the parts channel
        min_bisection_per_server=0.2,
        max_diameter=6,
        expansion_headroom=1,  # must survive one growth step untouched
    )
    print("requirements:")
    for field in (
        "min_servers",
        "max_servers",
        "max_nic_ports",
        "switch_radix",
        "min_bisection_per_server",
        "max_diameter",
        "expansion_headroom",
    ):
        print(f"  {field:<26}: {getattr(req, field)}")

    candidates = plan(req)
    if not candidates:
        print("\nnothing feasible — relax a constraint")
        return
    print(f"\n{len(candidates)} feasible configuration(s):")
    header = (
        f"  {'configuration':<26} {'servers':>8} {'diam':>5} "
        f"{'bisect/srv':>11} {'$/server':>9}  pareto"
    )
    print(header)
    for candidate in candidates:
        print(
            f"  {candidate.label:<26} {candidate.servers:>8} "
            f"{candidate.diameter:>5} {candidate.bisection_per_server:>11.3f} "
            f"{candidate.capex_per_server:>9,.0f}  "
            f"{'*' if candidate.pareto else ''}"
        )

    winner = best(req, objective="cost")
    print(f"\ncheapest feasible design: {winner.label}")
    bounds = all_to_all_bounds(winner.spec)
    print(
        f"  all-to-all ceiling: {bounds.binding:,.0f} capacity units "
        f"({per_server_ceiling(winner.spec):.3f}/server), "
        f"binding constraint: {bounds.bottleneck}"
    )

    print("\nfull report for the winner:\n")
    print(topology_report(winner.spec, max_measure_nodes=1500))


if __name__ == "__main__":
    main()
