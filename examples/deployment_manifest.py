#!/usr/bin/env python3
"""Deployment walk-through: from parameter choice to acceptance test.

The full operator lifecycle on one screen:

1. pick an ABCCC configuration and print its deployment manifest
   (rack BOMs and the cable schedule under a real machine-room layout);
2. plan the next expansion step as phased work orders (nothing
   disruptive — that's the point of the design);
3. *accept* the expanded build: verify the wired network against the
   ABCCC construction rules with the conformance checker (and show that
   the checker actually catches a miswired cable);
4. run a day of jobs (shuffles, incasts, disseminations) on the expanded
   fabric and report job completion statistics.

Run:  python examples/deployment_manifest.py
"""

from repro import AbcccSpec
from repro.core.conformance import check_abccc, conformance_problems, infer_params
from repro.core.expansion import plan_abccc_growth
from repro.deploy import build_manifest, expansion_work_orders, render_work_orders
from repro.metrics.layout import LayoutConfig
from repro.sim.jobs import disseminate_job, incast_job, shuffle_job, simulate_jobs


def main() -> None:
    layout = LayoutConfig(rack_capacity=24)

    # 1. today's fabric and its paperwork -----------------------------
    today = AbcccSpec(n=4, k=1, s=2)
    net = today.build()
    print(build_manifest(net, layout).render(max_racks=4, max_cables=4))

    # 2. the expansion, phased ----------------------------------------
    print("\n=== expansion to k = 2 ===")
    plan = plan_abccc_growth(4, 1, 2)
    grown_spec = AbcccSpec(4, 2, 2)
    grown = grown_spec.build()
    orders = expansion_work_orders(plan, grown, layout)
    print(render_work_orders(orders, max_items=3))
    assert plan.is_pure_addition
    print("no disruptive phase: every step is plug-in work.\n")

    # 3. acceptance test ----------------------------------------------
    print("=== acceptance ===")
    check_abccc(grown, grown_spec.abccc)
    inferred = infer_params(grown)
    print(f"conformance: PASS — network verified as {inferred}")

    # Prove the checker has teeth: re-plug one cable wrongly.
    sabotaged = grown.copy()
    switch = sabotaged.switches_by_role("level")[0]
    victim = next(iter(sabotaged.neighbors(switch)))
    sabotaged.remove_link(switch, victim)
    problems = conformance_problems(sabotaged, grown_spec.abccc)
    print(f"sabotage drill: checker reports {len(problems)} problem(s), e.g.")
    print(f"  - {problems[0]}")

    # 4. a day of jobs --------------------------------------------------
    print("\n=== production traffic on the expanded fabric ===")
    servers = grown.servers
    jobs = []
    for hour in range(6):
        jobs.append(shuffle_job(f"etl-{hour}", hour * 10.0, servers, 8, 6, seed=hour))
        jobs.append(incast_job(f"agg-{hour}", hour * 10.0 + 3.0, servers, 10, seed=hour))
        jobs.append(
            disseminate_job(f"push-{hour}", hour * 10.0 + 6.0, servers, 12, seed=hour)
        )
    result = simulate_jobs(grown, jobs, grown_spec.route)
    print(f"{len(jobs)} jobs, makespan {result.makespan:.1f} time units")
    print(
        f"job duration: mean {result.mean_duration:.2f}, p99 {result.p99_duration:.2f}"
    )
    worst = max(result.jobs, key=lambda j: j.duration)
    print(f"slowest job: {worst.job_id} ({worst.duration:.2f})")


if __name__ == "__main__":
    main()
