#!/usr/bin/env python3
"""Failure drill: how an ABCCC fabric behaves as components die.

Simulates an escalating outage on ABCCC(4, 2, 2) — from a single switch
to 20% of all switches and servers — and reports, at each stage, what an
operator cares about: how many server pairs still talk, how often the
*local* fault-tolerant routing fixes things without global repair, and
what detour cost it pays.

Run:  python examples/failure_resilience.py
"""

import random
import statistics

from repro import AbcccSpec, fault_tolerant_route
from repro.metrics.connectivity import (
    connection_ratio,
    draw_failures,
    largest_component_fraction,
)
from repro.routing.base import RoutingError
from repro.routing.shortest import bfs_distances

STAGES = [
    ("healthy", 0.00, 0.00),
    ("one rack switch down", 0.00, 0.01),
    ("bad firmware day", 0.02, 0.05),
    ("cooling failure in a row", 0.10, 0.10),
    ("severe outage", 0.20, 0.20),
]


def main() -> None:
    spec = AbcccSpec(4, 2, 2)
    net = spec.build()
    print(f"fabric: {spec.label} — {net.num_servers} servers, {net.num_switches} switches\n")
    header = (
        f"{'stage':<26} {'alive pairs':>11} {'largest comp':>13} "
        f"{'local fix':>10} {'fallback':>9} {'stretch':>8}"
    )
    print(header)
    print("-" * len(header))

    for label, server_frac, switch_frac in STAGES:
        scenario = draw_failures(
            net, server_fraction=server_frac, switch_fraction=switch_frac, seed=42
        )
        alive = net.subgraph_without(
            dead_nodes=list(scenario.dead_servers) + list(scenario.dead_switches)
        )
        ratio = connection_ratio(net, scenario, sample_pairs=300, seed=1)
        component = largest_component_fraction(net, scenario)

        rng = random.Random(7)
        local = fallback = attempts = 0
        stretches = []
        for _ in range(150):
            src, dst = rng.sample(alive.servers, 2)
            shortest = bfs_distances(alive, src, targets={dst}).get(dst)
            if shortest is None:
                continue
            attempts += 1
            try:
                result = fault_tolerant_route(spec.abccc, alive, src, dst, seed=3)
            except RoutingError:
                continue
            if result.fallback_used:
                fallback += 1
            else:
                local += 1
            stretches.append(result.route.link_hops / max(shortest, 1))
        mean_stretch = statistics.fmean(stretches) if stretches else float("nan")
        print(
            f"{label:<26} {ratio:>10.1%} {component:>12.1%} "
            f"{local:>7}/{attempts:<3} {fallback:>9} {mean_stretch:>8.3f}"
        )

    print(
        "\nReading: 'local fix' = greedy digit-correction with detours found a\n"
        "route using only neighbour-liveness information; 'fallback' = global\n"
        "BFS repair was required; 'stretch' = route length vs alive-graph optimum."
    )


if __name__ == "__main__":
    main()
