#!/usr/bin/env python3
"""MapReduce shuffle on ABCCC vs BCube vs fat-tree.

The all-to-all shuffle between mappers and reducers is the workload the
server-centric DCN literature optimises for.  This script places a job on
each topology (same seeded mapper/reducer draw over each server list),
routes the m x r flow matrix natively, solves max-min fair rates, and
then replays the shuffle in the packet simulator to estimate completion
behaviour.

Run:  python examples/mapreduce_shuffle.py
"""

from repro import AbcccSpec, BcubeSpec, FatTreeSpec
from repro.metrics.bottleneck import load_stats
from repro.routing.ecmp import EcmpRouter
from repro.sim.flow import max_min_allocation, route_all
from repro.sim.packet import PacketSimConfig, PacketSimulator
from repro.sim.traffic import shuffle_traffic

MAPPERS, REDUCERS = 12, 8


def run_on(spec) -> dict:
    net = spec.build()
    router = EcmpRouter(net).route if spec.kind == "fattree" else spec.route
    flows = shuffle_traffic(net.servers, MAPPERS, REDUCERS, seed=99)
    routes = route_all(net, flows, router)

    allocation = max_min_allocation(net, flows, routes)
    loads = load_stats(net, routes.values())

    sim = PacketSimulator(net, PacketSimConfig(queue_capacity=32))
    result = sim.run(flows, routes, packets_per_flow=25, mean_interarrival=1.0, seed=5)

    # Fluid-model shuffle completion: every mapper->reducer pair moves one
    # unit of data at its max-min rate; the job ends with the slowest flow.
    completion = 1.0 / allocation.min_rate if allocation.min_rate else float("inf")
    return {
        "label": spec.label,
        "servers": net.num_servers,
        "min_rate": allocation.min_rate,
        "agg": allocation.aggregate_throughput,
        "max_load": loads.max_load,
        "completion": completion,
        "p99_latency": result.p99_latency,
        "delivery": result.delivery_ratio,
    }


def main() -> None:
    print(f"shuffle: {MAPPERS} mappers x {REDUCERS} reducers = {MAPPERS * REDUCERS} flows\n")
    specs = [AbcccSpec(4, 2, 2), AbcccSpec(4, 2, 3), BcubeSpec(4, 2), FatTreeSpec(8)]
    rows = [run_on(spec) for spec in specs]

    header = (
        f"{'topology':<22} {'servers':>8} {'min rate':>9} {'aggregate':>10} "
        f"{'hot link':>9} {'completion':>11} {'p99 lat':>8} {'delivered':>10}"
    )
    print(header)
    print("-" * len(header))
    for row in rows:
        print(
            f"{row['label']:<22} {row['servers']:>8} {row['min_rate']:>9.3f} "
            f"{row['agg']:>10.1f} {row['max_load']:>9.1f} "
            f"{row['completion']:>11.1f} {row['p99_latency']:>8.2f} "
            f"{row['delivery']:>10.1%}"
        )
    print(
        "\nReading: 'completion' is the fluid-model shuffle time (1 unit per\n"
        "flow at max-min rates) — richer per-server wiring (BCube, larger s)\n"
        "buys shorter shuffles; ABCCC dials between cost and that speed."
    )


if __name__ == "__main__":
    main()
