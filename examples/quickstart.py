#!/usr/bin/env python3
"""Quickstart: build an ABCCC network, inspect it, route, and simulate.

Run:  python examples/quickstart.py
"""

from repro import AbcccSpec, validate_network
from repro.metrics.cost import capex
from repro.metrics.distance import link_hop_stats
from repro.sim.flow import max_min_allocation, route_all
from repro.sim.traffic import permutation_traffic


def main() -> None:
    # 1. Pick a configuration: 4-port switches, order 2, 3-NIC servers.
    spec = AbcccSpec(n=4, k=2, s=3)
    print(f"topology : {spec.label}")
    print(f"servers  : {spec.num_servers} (x{spec.server_ports} NIC ports)")
    print(f"switches : {spec.num_switches} (x{spec.switch_ports} ports)")
    print(f"diameter : {spec.diameter_server_hops} server hops (analytic)")

    # 2. Build the concrete network and validate its invariants.
    net = spec.build()
    validate_network(net, spec.link_policy())
    print(f"built    : {net}")

    # 3. Route between two servers with the paper's algorithm.
    src, dst = net.servers[0], net.servers[-1]
    route = spec.route(net, src, dst)
    print(f"route {src} -> {dst}:")
    print("  " + " -> ".join(route.nodes))
    print(f"  {route.link_hops} link hops, {route.server_hops(net)} server hops")

    # 4. Measure real path-length statistics (exhaustive BFS).
    stats = link_hop_stats(net, sample_sources=32)
    print(f"mean/median server-pair distance: {stats.mean:.2f} links, p99 {stats.p99}")

    # 5. Throughput under permutation traffic (max-min fair rates).
    flows = permutation_traffic(net.servers, seed=7)
    routes = route_all(net, flows, spec.route)
    allocation = max_min_allocation(net, flows, routes)
    print(
        f"permutation traffic: {allocation.num_flows} flows, "
        f"min rate {allocation.min_rate:.3f}, "
        f"aggregate {allocation.aggregate_throughput:.1f} link-capacities, "
        f"Jain fairness {allocation.jain_fairness:.3f}"
    )

    # 6. What would this cost?
    breakdown = capex(spec)
    print(f"CAPEX    : {breakdown.total:,.0f} ({breakdown.per_server:,.0f} per server)")


if __name__ == "__main__":
    main()
