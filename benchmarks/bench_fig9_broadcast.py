"""Benchmark F9 — broadcast/multicast tree construction and comparison."""

from repro.experiments import get_experiment


def test_bench_f9_broadcast(benchmark):
    tables = benchmark(lambda: get_experiment("F9").execute(quick=True))
    broadcast = tables[0]
    for row in broadcast.rows:
        assert row["tree_stress"] <= row["unicast_max_link_load"]
