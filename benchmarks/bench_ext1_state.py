"""Benchmark E1 — forwarding-state ablation (table construction heavy)."""

from repro.experiments import get_experiment


def test_bench_e1_state(benchmark):
    (table,) = benchmark(lambda: get_experiment("E1").execute(quick=True))
    assert all(row["ratio"] > 1.0 for row in table.rows)
