"""Benchmark F2 — network size vs order k series."""

from repro.experiments import get_experiment


def test_bench_f2_size(benchmark):
    tables = benchmark(lambda: get_experiment("F2").execute(quick=True))
    sizes = tables[0]
    for row in sizes.rows:
        if row["k"] >= 1:
            assert row["abccc_s2"] > row["bcube"]
