"""Micro-benchmarks: routing primitives.

The digit-correction router computes routes from addresses alone in
O(k + c); this bench pins that constant factor and contrasts it with a
full BFS, which is the fallback path's cost.
"""

import random

import pytest

from repro.core import AbcccSpec, ServerAddress, abccc_route
from repro.routing.shortest import bfs_path


@pytest.fixture(scope="module")
def instance():
    spec = AbcccSpec(4, 3, 2)  # 1024 servers
    net = spec.build()
    rng = random.Random(0)
    pairs = [tuple(rng.sample(net.servers, 2)) for _ in range(200)]
    return spec, net, pairs


def test_bench_abccc_route_200_pairs(benchmark, instance):
    spec, _, pairs = instance
    params = spec.abccc
    parsed = [
        (ServerAddress.parse(s), ServerAddress.parse(d)) for s, d in pairs
    ]

    def run():
        return [abccc_route(params, s, d) for s, d in parsed]

    routes = benchmark(run)
    assert len(routes) == 200


def test_bench_bfs_route_20_pairs(benchmark, instance):
    _, net, pairs = instance

    def run():
        return [bfs_path(net, s, d) for s, d in pairs[:20]]

    routes = benchmark(run)
    assert len(routes) == 20


def test_bench_fault_tolerant_route(benchmark, instance):
    from repro.core import fault_tolerant_route

    spec, net, pairs = instance

    def run():
        return [
            fault_tolerant_route(spec.abccc, net, s, d, seed=1) for s, d in pairs[:50]
        ]

    results = benchmark(run)
    assert all(not r.fallback_used for r in results)
