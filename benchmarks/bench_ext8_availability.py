"""Benchmark E8 — churn/availability simulation."""

from repro.experiments import get_experiment


def test_bench_e8_availability(benchmark):
    (table,) = benchmark(lambda: get_experiment("E8").execute(quick=True))
    for row in table.rows:
        assert 0.0 <= row["pair_availability"] <= 1.0
        assert row["path_availability"] >= row["pair_availability"]
