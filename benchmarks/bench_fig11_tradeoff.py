"""Benchmark F11 — the s-sweep trade-off frontier (pure closed forms)."""

from repro.experiments import get_experiment


def test_bench_f11_tradeoff(benchmark):
    (table,) = benchmark(lambda: get_experiment("F11").execute(quick=True))
    assert table.rows[0]["equals"] == "BCCC"
    assert table.rows[-1]["equals"] == "BCube"
