"""Micro-benchmarks: graph hand-off and batched-BFS sweep kernels.

Two uses:

* under pytest-benchmark (``pytest benchmarks/bench_micro_sweep.py``)
  the individual timers guard the bit-packed kernel and the
  shared-memory hand-off against regressions;
* as a script (``python benchmarks/bench_micro_sweep.py [--quick]``) it
  measures, on a CI-scale fast-built ABCCC graph:

  - **hand-off**: serializing the graph once per worker through pickle
    (the old pool-initializer payload) vs one shared-memory export plus
    per-worker ``materialize()`` — the report's ``handoff_speedup`` is
    the pickle/shm ratio for ``--workers`` workers;
  - **kernels**: sampled-source sweep wall time for the bit-packed
    uint64 kernel vs the dense scipy block kernel vs the flat
    per-source BFS (skipped past 10^5 nodes — that is the point of the
    batched ones).

  Results land in ``results/BENCH_sweep.json`` and one row per case is
  upserted into ``results/runtimes.csv``.
"""

import argparse
import json
import os
import pickle
import sys
import time

try:
    import repro  # noqa: F401  (script runs need src/ on the path)
except ImportError:  # pragma: no cover - direct ``python benchmarks/...`` runs
    sys.path.insert(
        0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
    )

from repro.core import AbcccSpec
from repro.metrics.engine import sweep_graph_distance_stats
from repro.obs import peak_rss_mb
from repro.topology.compiled import CSRGraphView
from repro.topology.fastbuild import csr_nbytes, fast_compiled
from repro.topology.shm import export_graph

RESULTS_PATH = os.path.join("results", "BENCH_sweep.json")

#: hand-off + kernel comparison instances (quick keeps the first).
SWEEP = [
    AbcccSpec(4, 3, 2),  # 1,024 servers
    AbcccSpec(8, 4, 2),  # 163,840 servers — CI scale-smoke size
]

KERNEL_SOURCES = 64


def _view(spec) -> CSRGraphView:
    return CSRGraphView.of(fast_compiled(spec))


def test_bench_bitpack_sweep_1k(benchmark):
    view = _view(AbcccSpec(4, 3, 2))
    stats = benchmark(
        sweep_graph_distance_stats,
        view,
        sample_sources=KERNEL_SOURCES,
        kernel="bitpack",
    )
    assert stats.pairs > 0


def test_bench_dense_sweep_1k(benchmark):
    view = _view(AbcccSpec(4, 3, 2))
    stats = benchmark(
        sweep_graph_distance_stats,
        view,
        sample_sources=KERNEL_SOURCES,
        kernel="dense",
    )
    assert stats.pairs > 0


def test_bench_shm_export_160k(benchmark):
    view = _view(AbcccSpec(8, 4, 2))

    def export_and_release():
        handle = export_graph(view)
        try:
            return len(pickle.dumps(handle))
        finally:
            handle.release()

    assert benchmark(export_and_release) < 2_000


def _time(fn) -> tuple:
    started = time.perf_counter()
    result = fn()
    return time.perf_counter() - started, result


def _measure_handoff(graph, view, workers: int, repeats: int = 3) -> dict:
    """Old initializer payload vs shm handle, for ``workers`` workers.

    The old path serialized the *full* graph (edge arrays and all) once
    per worker — each pool initializer call unpickled its own copy; the
    new path exports the kernel view's arrays once and each worker
    attaches zero-copy, so only the tiny handle pickle and the
    ``materialize()`` call repeat.  Best of ``repeats`` per side.
    """
    def pickle_per_worker():
        for _ in range(workers):
            pickle.loads(pickle.dumps(graph))

    def shm_once():
        handle = export_graph(view)
        try:
            blob = pickle.dumps(handle)
            for _ in range(workers):
                pickle.loads(blob).materialize()
        finally:
            handle.release()

    pickle_s = min(_time(pickle_per_worker)[0] for _ in range(repeats))
    shm_s = min(_time(shm_once)[0] for _ in range(repeats))
    return {
        "workers": workers,
        "pickle_s": round(pickle_s, 4),
        "shm_s": round(shm_s, 4),
        "handoff_speedup": round(pickle_s / shm_s, 1) if shm_s else None,
    }


def run_sweep(quick: bool = False, out_dir: str = "results", workers: int = 8) -> dict:
    """Measure hand-off + kernels, write JSON, upsert runtimes.csv."""
    from repro.experiments.harness import _append_runtime

    rows = []
    for spec in SWEEP:
        if quick and spec.num_servers > 10_000:
            continue
        graph = fast_compiled(spec)
        view = CSRGraphView.of(graph)
        row = {
            "spec": spec.label,
            "servers": spec.num_servers,
            "nodes": view.num_nodes,
            "csr_mb": round(csr_nbytes(view) / 1e6, 2),
            "sources": KERNEL_SOURCES,
        }
        row.update(_measure_handoff(graph, view, workers))
        kernels = {}
        for kernel in ("bitpack", "dense", "flat"):
            if kernel == "flat" and view.num_nodes > 100_000:
                kernels[kernel] = None  # one BFS per source: not at this size
                continue
            seconds, stats = _time(
                lambda kernel=kernel: sweep_graph_distance_stats(
                    view, sample_sources=KERNEL_SOURCES, kernel=kernel
                )
            )
            kernels[kernel] = round(seconds, 4)
            assert stats.pairs > 0
        row["kernel_s"] = kernels
        if kernels.get("dense") and kernels.get("bitpack"):
            row["bitpack_speedup"] = round(kernels["dense"] / kernels["bitpack"], 2)
        rows.append(row)
        _append_runtime(
            out_dir,
            f"BENCH_sweep:{spec.label}",
            quick,
            workers,
            kernels.get("bitpack") or 0.0,
            phases={
                "engine.sweep": kernels.get("bitpack") or 0.0,
                "engine.handoff": row["shm_s"],
            },
            peak_rss_mb=peak_rss_mb(),
        )
    report = {
        "benchmark": "sweep",
        "quick": quick,
        "workers": workers,
        "rows": rows,
    }
    os.makedirs(out_dir, exist_ok=True)
    with open(os.path.join(out_dir, os.path.basename(RESULTS_PATH)), "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="small instances only")
    parser.add_argument("--out", default="results", help="output directory")
    parser.add_argument("--workers", type=int, default=8, help="hand-off fan-out")
    args = parser.parse_args(argv)
    report = run_sweep(quick=args.quick, out_dir=args.out, workers=args.workers)
    for row in report["rows"]:
        kernels = " ".join(
            f"{name}={seconds if seconds is not None else '-'}s"
            for name, seconds in row["kernel_s"].items()
        )
        print(
            f"{row['spec']:<24} servers={row['servers']:<8} "
            f"handoff: pickle={row['pickle_s']}s shm={row['shm_s']}s "
            f"({row['handoff_speedup']}x)  sweep[{row['sources']} src]: {kernels}"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
