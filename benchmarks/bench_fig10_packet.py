"""Benchmark F10 — packet-level simulation sweep (the DES hot path)."""

from repro.experiments import get_experiment


def test_bench_f10_packet(benchmark):
    (table,) = benchmark(lambda: get_experiment("F10").execute(quick=True))
    assert all(row["delivered"] > 0 for row in table.rows)
