"""Benchmark F4 — per-server CAPEX vs size sweep."""

from repro.experiments import get_experiment


def test_bench_f4_capex(benchmark):
    (table,) = benchmark(lambda: get_experiment("F4").execute(quick=True))
    assert {row["family"] for row in table.rows} >= {"abccc_s2", "bcube", "fattree"}
