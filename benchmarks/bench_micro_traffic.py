"""Micro-benchmarks: the vectorized traffic engine vs the legacy path.

Two uses:

* under pytest-benchmark (``pytest benchmarks/bench_micro_traffic.py``)
  the individual timers guard matrix generation, batch route extraction
  and the max-min filler against regressions;
* as a script (``python benchmarks/bench_micro_traffic.py [--quick]``)
  it measures, per instance:

  - **legacy vs engine**: the full permutation pipeline (workload ->
    routes -> max-min rates) through the name-dict ``repro.sim.flow``
    oracle and through ``repro.traffic`` on the same fast-built graph —
    ``engine_speedup`` is the legacy/engine ratio at the largest scale
    the legacy path can still finish (the acceptance bar is >= 10x);
  - **engine at scale**: the 163k-server permutation and incast that
    the ``traffic-smoke`` CI job budgets (legacy is not attempted
    there — that is the point of the engine).

  Results land in ``results/BENCH_traffic.json`` and one row per case
  is upserted into ``results/runtimes.csv``.
"""

import argparse
import json
import os
import sys
import time

try:
    import repro  # noqa: F401  (script runs need src/ on the path)
except ImportError:  # pragma: no cover - direct ``python benchmarks/...`` runs
    sys.path.insert(
        0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
    )

from repro.core import AbcccSpec
from repro.obs import peak_rss_mb
from repro.routing.batch import batch_routes
from repro.topology.fastbuild import fast_compiled
from repro.traffic import generate_matrix, max_min_rates

RESULTS_PATH = os.path.join("results", "BENCH_traffic.json")

#: legacy-vs-engine comparison instances (quick keeps the first); the
#: largest is about where the legacy dict path stops being reasonable
#: to wait on in a benchmark run.
PARITY = [
    AbcccSpec(3, 2, 2),  # 81 servers
    AbcccSpec(4, 3, 2),  # 1,024 servers
    AbcccSpec(6, 3, 2),  # 5,184 servers — legacy's largest feasible scale
]

#: engine-only scale instances (skipped under --quick).
SCALE = [
    AbcccSpec(8, 4, 2),  # 163,840 servers — CI traffic-smoke size
]


def test_bench_matrix_permutation_160k(benchmark):
    matrix = benchmark(generate_matrix, "permutation", 163_840, seed=7)
    assert matrix.num_flows == 163_840


def test_bench_routes_permutation_1k(benchmark):
    graph = fast_compiled(AbcccSpec(4, 3, 2))
    matrix = generate_matrix("permutation", graph.num_servers, seed=7)
    routes = benchmark(batch_routes, graph, matrix)
    assert routes.num_unreachable == 0


def test_bench_allocate_permutation_1k(benchmark):
    graph = fast_compiled(AbcccSpec(4, 3, 2))
    matrix = generate_matrix("permutation", graph.num_servers, seed=7)
    routes = batch_routes(graph, matrix)
    allocation = benchmark(max_min_rates, routes)
    assert allocation.min_rate > 0


def _time(fn) -> tuple:
    started = time.perf_counter()
    result = fn()
    return time.perf_counter() - started, result


def _legacy_permutation(spec, seed: int) -> float:
    """The full name-dict pipeline the engine replaces, timed."""
    from repro.sim.flow import max_min_allocation, route_all

    net = spec.build()
    servers = net.servers
    matrix = generate_matrix("permutation", len(servers), seed=seed)
    flows = matrix.flows(servers)

    def pipeline():
        routes = route_all(net, flows, spec.route)
        return max_min_allocation(net, flows, routes)

    seconds, allocation = _time(pipeline)
    assert allocation.min_rate > 0
    return seconds


def _engine_permutation(graph, seed: int) -> dict:
    """Matrix -> routes -> rates on the compiled graph, phase-timed."""
    matrix_s, matrix = _time(
        lambda: generate_matrix("permutation", graph.num_servers, seed=seed)
    )
    routes_s, routes = _time(lambda: batch_routes(graph, matrix))
    allocate_s, allocation = _time(lambda: max_min_rates(routes))
    assert allocation.min_rate > 0
    return {
        "matrix_s": round(matrix_s, 4),
        "routes_s": round(routes_s, 4),
        "allocate_s": round(allocate_s, 4),
        "engine_s": round(matrix_s + routes_s + allocate_s, 4),
    }


def run_traffic_bench(quick: bool = False, out_dir: str = "results") -> dict:
    """Measure legacy-vs-engine + engine-at-scale, write JSON + runtimes."""
    from repro.experiments.harness import _append_runtime

    rows = []
    for spec in PARITY:
        if quick and spec.num_servers > 2000:
            continue
        graph = fast_compiled(spec)
        row = {
            "spec": spec.label,
            "servers": spec.num_servers,
            "flows": spec.num_servers,
            "pattern": "permutation",
        }
        row.update(_engine_permutation(graph, seed=7))
        row["legacy_s"] = round(_legacy_permutation(spec, seed=7), 4)
        row["engine_speedup"] = (
            round(row["legacy_s"] / row["engine_s"], 1) if row["engine_s"] else None
        )
        rows.append(row)
    if not quick:
        for spec in SCALE:
            graph = fast_compiled(spec)
            row = {
                "spec": spec.label,
                "servers": spec.num_servers,
                "flows": spec.num_servers,
                "pattern": "permutation",
            }
            row.update(_engine_permutation(graph, seed=7))
            row["legacy_s"] = None  # hours — the engine is the only option
            row["engine_speedup"] = None
            rows.append(row)
            # incast at the same scale: sparse matrix, sub-second solve
            incast_s, _ = _time(
                lambda graph=graph: max_min_rates(
                    batch_routes(
                        graph,
                        generate_matrix("incast", graph.num_servers, seed=7),
                    )
                )
            )
            row["incast_s"] = round(incast_s, 4)
    for row in rows:
        _append_runtime(
            out_dir,
            f"BENCH_traffic:{row['spec']}",
            quick,
            1,
            row["engine_s"],
            phases={
                "traffic.matrix": row["matrix_s"],
                "traffic.routes": row["routes_s"],
                "traffic.allocate": row["allocate_s"],
            },
            peak_rss_mb=peak_rss_mb(),
        )
    report = {
        "benchmark": "traffic",
        "quick": quick,
        "rows": rows,
    }
    os.makedirs(out_dir, exist_ok=True)
    with open(os.path.join(out_dir, os.path.basename(RESULTS_PATH)), "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="small instances only")
    parser.add_argument("--out", default="results", help="output directory")
    args = parser.parse_args(argv)
    report = run_traffic_bench(quick=args.quick, out_dir=args.out)
    for row in report["rows"]:
        legacy = f"{row['legacy_s']}s" if row["legacy_s"] is not None else "-"
        speedup = (
            f"({row['engine_speedup']}x)" if row["engine_speedup"] is not None else ""
        )
        print(
            f"{row['spec']:<24} flows={row['flows']:<8} "
            f"engine={row['engine_s']}s "
            f"(matrix={row['matrix_s']} routes={row['routes_s']} "
            f"alloc={row['allocate_s']})  legacy={legacy} {speedup}"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
