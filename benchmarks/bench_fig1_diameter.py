"""Benchmark F1 — diameter vs order k series."""

from repro.experiments import get_experiment


def test_bench_f1_diameter(benchmark):
    (table,) = benchmark(lambda: get_experiment("F1").execute(quick=True))
    # The trade-off ordering must hold in every row.
    for row in table.rows:
        assert row["bcube"] <= row["abccc_s5"] <= row["abccc_s2"]
