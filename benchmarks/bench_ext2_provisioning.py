"""Benchmark E2 — provisioning-headroom ablation (pure closed forms)."""

from repro.experiments import get_experiment


def test_bench_e2_provisioning(benchmark):
    (table,) = benchmark(lambda: get_experiment("E2").execute(quick=True))
    assert table.column("k_max") == sorted(table.column("k_max"))
