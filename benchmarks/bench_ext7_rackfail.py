"""Benchmark E7 — correlated rack-failure sweep."""

from repro.experiments import get_experiment


def test_bench_e7_rackfail(benchmark):
    (table,) = benchmark(lambda: get_experiment("E7").execute(quick=True))
    for row in table.rows:
        assert 0.0 <= row["connection_ratio"] <= 1.0
        assert row["alive_servers"] < row["servers"]
