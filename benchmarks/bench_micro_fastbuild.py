"""Micro-benchmarks: object-graph vs. direct-to-CSR topology compile.

Two uses:

* under pytest-benchmark (``pytest benchmarks/bench_micro_fastbuild.py``)
  the individual timers guard the fast path against regressions and keep
  the object oracle's cost on record;
* as a script (``python benchmarks/bench_micro_fastbuild.py [--quick]``)
  it sweeps ABCCC instances from the paper's running example up to
  datacenter scale, records object vs. fast build+compile wall times and
  the speedup into ``results/BENCH_fastbuild.json``, and upserts one
  timing row per instance into ``results/runtimes.csv`` (same appender
  the experiment harness uses).  Sizes past ~10^4 servers skip the
  object path — that is the point of the fast one.
"""

import argparse
import json
import os
import sys
import time

try:
    import repro  # noqa: F401  (script runs need src/ on the path)
except ImportError:  # pragma: no cover - direct ``python benchmarks/...`` runs
    sys.path.insert(
        0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
    )

from repro.core import AbcccSpec
from repro.obs import peak_rss_mb
from repro.topology.compiled import compile_graph
from repro.topology.fastbuild import csr_nbytes, fast_compiled

RESULTS_PATH = os.path.join("results", "BENCH_fastbuild.json")

#: (spec, object path feasible in a benchmark run?)
SWEEP = [
    (AbcccSpec(4, 3, 2), True),  # 1,024 servers — the paper's example
    (AbcccSpec(6, 3, 2), True),  # 5,184 servers
    (AbcccSpec(8, 4, 2), True),  # 163,840 servers — CI scale-smoke size
    (AbcccSpec(8, 5, 3), False),  # 786,432 servers — fast path only
]


def test_bench_fast_compile_abccc_1k(benchmark):
    spec = AbcccSpec(4, 3, 2)
    graph = benchmark(fast_compiled, spec)
    assert graph.num_servers == 1024


def test_bench_fast_compile_abccc_160k(benchmark):
    spec = AbcccSpec(8, 4, 2)
    graph = benchmark(fast_compiled, spec)
    assert graph.num_servers == 163_840


def test_bench_object_compile_abccc_1k(benchmark):
    spec = AbcccSpec(4, 3, 2)

    def build_and_compile():
        return compile_graph(spec.build())  # fresh network: cold cache

    graph = benchmark(build_and_compile)
    assert graph.num_servers == 1024


def _time(fn) -> tuple:
    started = time.perf_counter()
    result = fn()
    return time.perf_counter() - started, result


def run_sweep(quick: bool = False, out_dir: str = "results") -> dict:
    """Measure the sweep, write the JSON report, upsert runtimes.csv."""
    from repro.experiments.harness import _append_runtime

    rows = []
    for spec, object_feasible in SWEEP:
        if quick and spec.num_servers > 10_000:
            continue
        fast_s, graph = _time(lambda spec=spec: fast_compiled(spec))
        row = {
            "spec": spec.label,
            "servers": graph.num_servers,
            "nodes": graph.num_nodes,
            "links": graph.num_edges,
            "fast_s": round(fast_s, 4),
            "csr_mb": round(csr_nbytes(graph) / 1e6, 2),
            "object_s": None,
            "speedup": None,
        }
        if object_feasible and not quick:
            object_s, _ = _time(lambda spec=spec: compile_graph(spec.build()))
            row["object_s"] = round(object_s, 4)
            row["speedup"] = round(object_s / fast_s, 1)
        rows.append(row)
        _append_runtime(
            out_dir,
            f"BENCH_fastbuild:{spec.label}",
            quick,
            1,
            row["object_s"] if row["object_s"] is not None else fast_s,
            phases={"topology.compile": fast_s},
            peak_rss_mb=peak_rss_mb(),
        )
    report = {"benchmark": "fastbuild", "quick": quick, "rows": rows}
    os.makedirs(out_dir, exist_ok=True)
    with open(os.path.join(out_dir, os.path.basename(RESULTS_PATH)), "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="small instances only")
    parser.add_argument("--out", default="results", help="output directory")
    args = parser.parse_args(argv)
    report = run_sweep(quick=args.quick, out_dir=args.out)
    for row in report["rows"]:
        object_s = "-" if row["object_s"] is None else f"{row['object_s']:.3f}s"
        speedup = "-" if row["speedup"] is None else f"{row['speedup']:.0f}x"
        print(
            f"{row['spec']:<24} servers={row['servers']:<8} "
            f"fast={row['fast_s']:.3f}s object={object_s} speedup={speedup} "
            f"csr={row['csr_mb']}MB"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
