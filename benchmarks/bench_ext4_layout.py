"""Benchmark E4 — layout/cabling ablation (rack assignment + pricing)."""

from repro.experiments import get_experiment


def test_bench_e4_layout(benchmark):
    (table,) = benchmark(lambda: get_experiment("E4").execute(quick=True))
    assert all(row["total_length_m"] > 0 for row in table.rows)
