"""Micro-benchmarks: the flow solver and the packet simulator."""

import pytest

from repro.core import AbcccSpec
from repro.sim.flow import max_min_allocation, route_all
from repro.sim.packet import PacketSimulator
from repro.sim.traffic import permutation_traffic


@pytest.fixture(scope="module")
def workload():
    spec = AbcccSpec(4, 2, 2)  # 192 servers
    net = spec.build()
    flows = permutation_traffic(net.servers, seed=1)
    routes = route_all(net, flows, spec.route)
    return net, flows, routes


def test_bench_max_min_solver(benchmark, workload):
    net, flows, routes = workload
    allocation = benchmark(lambda: max_min_allocation(net, flows, routes))
    assert allocation.num_flows == len(flows)


def test_bench_packet_sim_2k_packets(benchmark, workload):
    net, flows, routes = workload

    def run():
        sim = PacketSimulator(net)
        return sim.run(flows, routes, packets_per_flow=10, mean_interarrival=2.0, seed=2)

    result = benchmark(run)
    assert result.offered == len(flows) * 10


def test_bench_broadcast_tree(benchmark):
    from repro.core import ServerAddress, broadcast_tree

    spec = AbcccSpec(4, 3, 2)  # 1024 servers
    net = spec.build()
    source = ServerAddress.parse(net.servers[0])
    tree = benchmark(lambda: broadcast_tree(spec.abccc, source))
    assert len(tree.servers) == net.num_servers
