"""Micro-benchmarks: topology construction throughput.

These time the builders themselves (not the experiments) at fixed sizes,
so regressions in the graph substrate or the wiring loops show up
directly.
"""

import pytest

from repro.baselines import BcubeSpec, DcellSpec, FatTreeSpec
from repro.core import AbcccSpec


def test_bench_build_abccc_1k_servers(benchmark):
    spec = AbcccSpec(4, 3, 2)  # 1024 servers
    net = benchmark(spec.build)
    assert net.num_servers == 1024


def test_bench_build_abccc_s3(benchmark):
    spec = AbcccSpec(4, 3, 3)  # 512 servers
    net = benchmark(spec.build)
    assert net.num_servers == spec.num_servers


def test_bench_build_bcube(benchmark):
    spec = BcubeSpec(4, 3)  # 256 servers
    net = benchmark(spec.build)
    assert net.num_servers == 256


def test_bench_build_fattree(benchmark):
    spec = FatTreeSpec(12)  # 432 servers
    net = benchmark(spec.build)
    assert net.num_servers == 432


def test_bench_build_dcell(benchmark):
    spec = DcellSpec(4, 2)  # 420 servers
    net = benchmark(spec.build)
    assert net.num_servers == 420
