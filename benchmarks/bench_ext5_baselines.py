"""Benchmark E5 — extended baseline field (torus + tree builds & flows)."""

from repro.experiments import get_experiment


def test_bench_e5_baselines(benchmark):
    tables = benchmark(lambda: get_experiment("E5").execute(quick=True))
    structural, throughput = tables
    assert structural.rows and throughput.rows
