"""Benchmark F6 — routing-quality measurement (routes + BFS baselines)."""

from repro.experiments import get_experiment


def test_bench_f6_routing(benchmark):
    (table,) = benchmark(lambda: get_experiment("F6").execute(quick=True))
    locality_rows = [r for r in table.rows if r["strategy"] == "locality"]
    assert all(abs(r["mean_stretch"] - 1.0) < 1e-9 for r in locality_rows)
