"""Benchmark F5 — expansion-cost accounting (graph-diff based).

The timing covers building both generations of every family and diffing
them; the assertion pins the paper's headline: ABCCC grows by pure
addition, BCube does not.
"""

from repro.experiments import get_experiment


def test_bench_f5_expansion(benchmark):
    (table,) = benchmark(lambda: get_experiment("F5").execute(quick=True))
    families = {row["family"]: row for row in table.rows}
    assert families["abccc_s2"]["pure_addition"]
    assert not families["bcube"]["pure_addition"]
