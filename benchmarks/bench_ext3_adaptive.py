"""Benchmark E3 — adaptive source-routing ablation (placement + FCT)."""

from repro.experiments import get_experiment


def test_bench_e3_adaptive(benchmark):
    (table,) = benchmark(lambda: get_experiment("E3").execute(quick=True))
    policies = {row["policy"] for row in table.rows}
    assert policies == {"adaptive", "fixed", "hashed", "vlb"}
