"""Micro-benchmarks: all-pairs distance sweeps, compiled engine vs legacy.

The compiled CSR engine must hold a >=5x single-core advantage over the
dict-BFS reference on the paper's 1024-server ABCCC(4, 3, 2) instance
(see ISSUE / docs/REPRODUCING.md).  The legacy benchmarks sample sources
so the suite stays runnable; the compiled ones do the full exact sweep.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_micro_distance.py \
        --benchmark-only --benchmark-json=results/bench_distance.json
"""

import pytest

from repro.core import AbcccSpec
from repro.metrics.distance import (
    legacy_link_hop_stats,
    legacy_server_hop_stats,
    link_hop_stats,
    server_hop_stats,
)
from repro.topology.compiled import compile_graph, compile_server_projection


@pytest.fixture(scope="module")
def abccc_1k():
    net = AbcccSpec(4, 3, 2).build()  # 1024 servers, 1536 nodes, 2048 links
    # Warm the compile caches so the compiled benchmarks time the sweep
    # kernels, not the one-off CSR flattening (timed separately below).
    compile_graph(net)
    compile_server_projection(net)
    return net


def test_bench_compile_graph(benchmark):
    net = AbcccSpec(4, 3, 2).build()

    def compile_cold():
        net.meta.pop("_compiled", None)
        return compile_graph(net)

    graph = benchmark(compile_cold)
    assert graph.num_servers == 1024


def test_bench_link_hops_compiled(benchmark, abccc_1k):
    stats = benchmark(link_hop_stats, abccc_1k)
    assert stats.exact
    assert stats.pairs == 1024 * 1023
    assert stats.diameter == 16


def test_bench_link_hops_compiled_workers2(benchmark, abccc_1k):
    stats = benchmark(link_hop_stats, abccc_1k, workers=2)
    assert stats.exact
    assert stats.diameter == 16


def test_bench_link_hops_legacy_sampled(benchmark, abccc_1k):
    # 64 of 1024 sources: multiply by 16 to compare against the exact
    # compiled sweep above.
    stats = benchmark(legacy_link_hop_stats, abccc_1k, 64)
    assert stats.pairs == 64 * 1023


def test_bench_server_hops_compiled(benchmark, abccc_1k):
    stats = benchmark(server_hop_stats, abccc_1k)
    assert stats.exact
    assert stats.pairs == 1024 * 1023


def test_bench_server_hops_legacy_sampled(benchmark, abccc_1k):
    stats = benchmark(legacy_server_hop_stats, abccc_1k, 64)
    assert stats.pairs == 64 * 1023
