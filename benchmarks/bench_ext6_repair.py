"""Benchmark E6 — local-repair sweep (failure draws + greedy rerouting)."""

from repro.experiments import get_experiment


def test_bench_e6_repair(benchmark):
    (table,) = benchmark(lambda: get_experiment("E6").execute(quick=True))
    for row in table.rows:
        assert row["greedy_ok"] + row["fallback"] <= row["reachable"]
