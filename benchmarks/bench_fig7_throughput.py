"""Benchmark F7 — flow-level max-min throughput across topologies."""

from repro.experiments import get_experiment


def test_bench_f7_throughput(benchmark):
    (table,) = benchmark(lambda: get_experiment("F7").execute(quick=True))
    assert all(row["agg_per_server"] > 0 for row in table.rows)
    assert all(0 < row["jain"] <= 1.0 for row in table.rows)
