"""Benchmark F12 — permutation-strategy comparison under load."""

from repro.experiments import get_experiment


def test_bench_f12_permutation(benchmark):
    (table,) = benchmark(lambda: get_experiment("F12").execute(quick=True))
    strategies = {row["strategy"] for row in table.rows}
    assert strategies == {"identity", "random", "locality", "balanced"}
