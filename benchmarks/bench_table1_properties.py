"""Benchmark T1 — structural comparison table.

Regenerates the paper's headline comparison (quick instances) under
pytest-benchmark timing; asserts every validation row holds so a timing
run can never silently report numbers from a broken build.
"""

from repro.experiments import get_experiment


def test_bench_t1_properties(benchmark):
    tables = benchmark(lambda: get_experiment("T1").execute(quick=True))
    scale, validation = tables
    assert scale.rows and validation.rows
    assert all(validation.column("valid"))
