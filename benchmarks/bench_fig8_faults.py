"""Benchmark F8 — fault-tolerance sweep (failure draws + rerouting)."""

from repro.experiments import get_experiment


def test_bench_f8_faults(benchmark):
    tables = benchmark(lambda: get_experiment("F8").execute(quick=True))
    connection, ft_routing = tables
    assert connection.rows and ft_routing.rows
    for row in ft_routing.rows:
        assert row["greedy_ok"] + row["fallback"] <= row["reachable"]
