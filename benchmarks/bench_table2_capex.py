"""Benchmark T2 — CAPEX comparison table (closed-form inventories)."""

from repro.experiments import get_experiment


def test_bench_t2_capex(benchmark):
    tables = benchmark(lambda: get_experiment("T2").execute(quick=True))
    itemised = tables[0]
    assert itemised.rows
    assert all(row["total"] > 0 for row in itemised.rows)
