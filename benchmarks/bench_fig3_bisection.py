"""Benchmark F3 — bisection trade-off + measured-cut validation.

Dominated by the exact max-flow cut evaluations; the assertion requires
the measured best cut to equal the closed form on every cube-family row.
"""

from repro.experiments import get_experiment


def test_bench_f3_bisection(benchmark):
    tables = benchmark(lambda: get_experiment("F3").execute(quick=True))
    measured = tables[1]
    assert all(measured.column("match"))
