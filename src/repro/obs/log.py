"""Stderr progress logging and the long-run heartbeat.

The experiment harness routes every progress line (start/finish,
resume notices, heartbeats, degradation warnings) through this logger,
keeping **stdout clean for result tables** — `repro run … > tables.txt`
captures only data, while a human watching the terminal still sees
liveness on stderr.

:class:`Heartbeat` is a daemon thread that invokes a callback at a
fixed cadence while a long experiment runs; the harness uses it to log
``experiment id / elapsed / trials completed`` during otherwise silent
sweeps.  The cadence comes from ``REPRO_HEARTBEAT_S`` (seconds,
default 30; 0 disables).
"""

from __future__ import annotations

import logging
import os
import sys
import threading
from typing import Callable, Optional

#: environment variables (documented in docs/OBSERVABILITY.md).
HEARTBEAT_ENV = "REPRO_HEARTBEAT_S"
LOG_LEVEL_ENV = "REPRO_LOG_LEVEL"

DEFAULT_HEARTBEAT_S = 30.0

_CONFIGURED = False


def get_logger(name: str = "repro") -> logging.Logger:
    """The package logger, configured once to write to stderr.

    Level comes from ``REPRO_LOG_LEVEL`` (default ``INFO``); the
    handler is attached to the ``repro`` root logger and does not
    propagate, so embedding applications keep their own logging config.
    """
    global _CONFIGURED
    root = logging.getLogger("repro")
    if not _CONFIGURED:
        handler = logging.StreamHandler(sys.stderr)
        handler.setFormatter(
            logging.Formatter("[%(asctime)s %(name)s %(levelname)s] %(message)s",
                              datefmt="%H:%M:%S")
        )
        root.addHandler(handler)
        root.propagate = False
        level = os.environ.get(LOG_LEVEL_ENV, "INFO").strip().upper() or "INFO"
        root.setLevel(getattr(logging, level, logging.INFO))
        _CONFIGURED = True
    return logging.getLogger(name)


def heartbeat_interval() -> float:
    """Resolved heartbeat cadence in seconds (0 = disabled)."""
    raw = os.environ.get(HEARTBEAT_ENV, "").strip()
    if not raw:
        return DEFAULT_HEARTBEAT_S
    try:
        value = float(raw)
    except ValueError:
        return DEFAULT_HEARTBEAT_S
    return max(0.0, value)


class Heartbeat:
    """Call ``callback()`` every ``interval_s`` seconds until stopped.

    ``interval_s <= 0`` constructs a dormant heartbeat (no thread);
    ``stop()`` is always safe to call.  The callback runs on a daemon
    thread and must therefore be cheap and exception-free — a raising
    callback stops the heartbeat, never the run it observes.
    """

    def __init__(self, interval_s: float, callback: Callable[[], None]) -> None:
        self.interval_s = interval_s
        self._callback = callback
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        if interval_s > 0:
            self._thread = threading.Thread(
                target=self._run, name="repro-obs-heartbeat", daemon=True
            )
            self._thread.start()

    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            try:
                self._callback()
            except Exception:
                return

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None

    def __enter__(self) -> "Heartbeat":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
