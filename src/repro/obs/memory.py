"""Process-memory sampling for traces and runtime logs.

Two sources, best available first:

* ``/proc/self/status`` (Linux): current ``VmRSS`` and lifetime
  ``VmHWM`` (high-water mark), both exact;
* ``resource.getrusage(RUSAGE_SELF).ru_maxrss`` (other POSIX): peak
  only — current RSS is reported as the peak, which is conservative.

Everything degrades to "no sample" rather than raising; observability
must never break the run it observes.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional

try:
    import resource as _resource
except ImportError:  # pragma: no cover - non-POSIX
    _resource = None

_PROC_STATUS = "/proc/self/status"


def _proc_status_mb() -> Optional[Dict[str, float]]:
    try:
        with open(_PROC_STATUS, "r", encoding="ascii") as handle:
            rss = peak = None
            for line in handle:
                if line.startswith("VmRSS:"):
                    rss = float(line.split()[1]) / 1024.0  # kB -> MB
                elif line.startswith("VmHWM:"):
                    peak = float(line.split()[1]) / 1024.0
            if rss is None:
                return None
            return {"rss_mb": round(rss, 2), "peak_mb": round(peak or rss, 2)}
    except OSError:
        return None


def peak_rss_mb() -> Optional[float]:
    """Lifetime peak RSS of this process in MB (None when unknown)."""
    sample = _proc_status_mb()
    if sample is not None:
        return sample["peak_mb"]
    if _resource is not None:
        peak_kb = _resource.getrusage(_resource.RUSAGE_SELF).ru_maxrss
        # Linux reports kB, macOS bytes; this branch only runs off-Linux.
        divisor = 1024.0 if peak_kb < 1 << 32 else 1024.0 * 1024.0
        return round(peak_kb / divisor, 2)
    return None


def memory_sample() -> Optional[Dict[str, float]]:
    """``{"rss_mb": ..., "peak_mb": ...}`` for the current process."""
    sample = _proc_status_mb()
    if sample is not None:
        return sample
    peak = peak_rss_mb()
    if peak is None:
        return None
    return {"rss_mb": peak, "peak_mb": peak}


class MemorySampler:
    """Daemon thread emitting periodic ``rss`` events on a tracer."""

    def __init__(self, tracer, interval_s: float = 0.5) -> None:
        self._tracer = tracer
        self._interval = max(0.05, float(interval_s))
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="repro-obs-memory", daemon=True
        )
        self._thread.start()

    def _run(self) -> None:
        while not self._stop.wait(self._interval):
            self._tracer.sample_memory()

    def stop(self) -> None:
        self._stop.set()
        self._thread.join(timeout=2.0)
