"""Opt-in cProfile hook for experiment runs.

Enabled with ``repro run … --profile`` or ``REPRO_PROFILE=1``; the
harness wraps each experiment's ``execute`` in :func:`maybe_profile`.
With an output directory the profile is dumped to
``<out_dir>/<exp_id>.prof`` (load with ``python -m pstats`` or
snakeviz); without one, the top entries are printed to stderr so the
data is never silently lost.
"""

from __future__ import annotations

import cProfile
import io
import os
import pstats
import sys
from contextlib import contextmanager
from typing import Iterator, Optional

from repro.obs.trace import PROFILE_ENV


def profile_enabled(explicit: Optional[bool] = None) -> bool:
    """``--profile`` flag if given, else the ``REPRO_PROFILE`` env var."""
    if explicit is not None:
        return explicit
    value = os.environ.get(PROFILE_ENV, "").strip().lower()
    return value not in ("", "0", "false", "no", "off")


@contextmanager
def maybe_profile(
    enabled: bool, out_dir: Optional[str], exp_id: str, top: int = 25
) -> Iterator[None]:
    """Profile the block when ``enabled``; otherwise do nothing."""
    if not enabled:
        yield
        return
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        yield
    finally:
        profiler.disable()
        if out_dir:
            os.makedirs(out_dir, exist_ok=True)
            path = os.path.join(out_dir, f"{exp_id.lower()}.prof")
            profiler.dump_stats(path)
            from repro.obs.log import get_logger

            get_logger().info("%s: cProfile dump written to %s", exp_id, path)
        else:
            buffer = io.StringIO()
            stats = pstats.Stats(profiler, stream=buffer)
            stats.sort_stats("cumulative").print_stats(top)
            print(buffer.getvalue(), file=sys.stderr)
