"""Noise-aware comparison of bench/metrics snapshots: the perf gate.

``repro obs diff OLD NEW`` compares two JSON snapshots — either the
micro-bench outputs (``results/BENCH_*.json``) or live metrics
snapshots (``/stats`` / :meth:`MetricsRegistry.snapshot`) — and flags
timing regressions.  This is what the CI ``perf-gate`` job runs against
the committed baselines, so the thresholds have to tolerate benchmark
noise without letting a real 2x slowdown through:

* **relative threshold** — a regression needs ``new > old * (1 + pct)``
  (default 25%), well above run-to-run jitter of the micro-benches;
* **absolute floor** — *and* ``new - old > min_abs_s`` (default 1 ms),
  so microsecond-scale timings can't trip the relative test on noise;
* **calibration** (``--calibrate``) — the median new/old ratio across
  all compared timings is treated as the machine-speed factor between
  the two snapshots and divided out before thresholding.  That is what
  makes "CI runner vs. the workstation that committed the baseline"
  comparisons meaningful: a uniformly 1.6x-slower runner calibrates
  away, a single kernel that regressed 2x while its siblings held
  still does not.

Only *timings* gate: keys ending in ``_s`` (and the per-kernel entries
of ``kernel_s`` maps) in bench rows, and histogram mean/quantiles in
metrics snapshots.  Counts, sizes and speedup ratios are informational.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

#: default regression threshold (fraction; 0.25 == fail on >25% slower).
DEFAULT_THRESHOLD = 0.25

#: default absolute floor in seconds — deltas below it never gate.
DEFAULT_MIN_ABS_S = 0.001


def _is_number(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def flatten_timings(snapshot: Mapping[str, Any]) -> Dict[str, float]:
    """Comparable timing leaves of one snapshot, keyed by a stable path.

    Bench snapshots (``{"rows": [...]}``): each row is keyed by its
    ``spec`` field; leaves are numeric values under keys ending ``_s``,
    with dict-valued ``*_s`` entries (``kernel_s``) flattened one level.
    Metrics snapshots (``{"histograms": [...]}``): each histogram
    contributes its mean and exact-bucket quantiles.
    """
    timings: Dict[str, float] = {}
    for row in snapshot.get("rows") or ():
        if not isinstance(row, Mapping):
            continue
        prefix = str(row.get("spec", row.get("name", "?")))
        for key, value in row.items():
            if not str(key).endswith("_s"):
                continue
            if _is_number(value):
                timings[f"{prefix}.{key}"] = float(value)
            elif isinstance(value, Mapping):
                for sub, sub_value in value.items():
                    if _is_number(sub_value):
                        timings[f"{prefix}.{key}.{sub}"] = float(sub_value)
    for hist in snapshot.get("histograms") or ():
        if not isinstance(hist, Mapping):
            continue
        labels = hist.get("labels") or {}
        label_text = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
        prefix = f"{hist.get('name', '?')}{{{label_text}}}"
        count = hist.get("count") or 0
        if count and _is_number(hist.get("sum")):
            timings[f"{prefix}.mean_s"] = float(hist["sum"]) / count
        for q_name, q_value in (hist.get("q") or {}).items():
            if _is_number(q_value):
                timings[f"{prefix}.{q_name}_s"] = float(q_value)
    return timings


@dataclass
class DiffEntry:
    key: str
    old: float
    new: float
    ratio: float            # raw new/old
    adjusted_ratio: float   # after calibration (== ratio when off)
    regressed: bool
    improved: bool


@dataclass
class DiffResult:
    entries: List[DiffEntry] = field(default_factory=list)
    only_old: List[str] = field(default_factory=list)
    only_new: List[str] = field(default_factory=list)
    calibration: Optional[float] = None  # median machine-speed ratio

    @property
    def regressions(self) -> List[DiffEntry]:
        return [e for e in self.entries if e.regressed]

    @property
    def ok(self) -> bool:
        return not self.regressions


def _median(values: List[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


def diff_timings(
    old: Mapping[str, float],
    new: Mapping[str, float],
    threshold: float = DEFAULT_THRESHOLD,
    min_abs_s: float = DEFAULT_MIN_ABS_S,
    calibrate: bool = False,
) -> DiffResult:
    """Compare flattened timing maps; shared keys gate, the rest is noted."""
    result = DiffResult()
    shared = sorted(set(old) & set(new))
    result.only_old = sorted(set(old) - set(new))
    result.only_new = sorted(set(new) - set(old))
    ratios = [new[k] / old[k] for k in shared if old[k] > 0]
    if calibrate and ratios:
        result.calibration = _median(ratios)
    scale = result.calibration or 1.0
    for key in shared:
        old_value, new_value = old[key], new[key]
        ratio = new_value / old_value if old_value > 0 else float("inf")
        adjusted = ratio / scale
        # the absolute floor also calibrates: on a 2x-slower runner a
        # 1 ms-at-baseline delta is expected to read as ~2 ms of noise
        regressed = (
            adjusted > 1.0 + threshold
            and new_value - old_value * scale > min_abs_s * scale
        )
        improved = adjusted < 1.0 / (1.0 + threshold)
        result.entries.append(
            DiffEntry(key, old_value, new_value, ratio, adjusted, regressed, improved)
        )
    return result


def load_snapshot(path: str) -> Dict[str, Any]:
    with open(path, "r", encoding="utf-8") as handle:
        snapshot = json.load(handle)
    if not isinstance(snapshot, dict):
        raise ValueError(f"{path}: expected a JSON object snapshot")
    return snapshot


def diff_files(
    old_path: str,
    new_path: str,
    threshold: float = DEFAULT_THRESHOLD,
    min_abs_s: float = DEFAULT_MIN_ABS_S,
    calibrate: bool = False,
) -> DiffResult:
    """Load two snapshot files and diff their timing leaves."""
    return diff_timings(
        flatten_timings(load_snapshot(old_path)),
        flatten_timings(load_snapshot(new_path)),
        threshold=threshold,
        min_abs_s=min_abs_s,
        calibrate=calibrate,
    )


def render_diff(
    old_path: str, new_path: str, result: DiffResult, threshold: float
) -> str:
    """Human-readable diff report (regressions first, loudest)."""
    lines = [f"perf diff: {old_path} -> {new_path}"]
    if result.calibration is not None:
        lines.append(
            f"calibration: median new/old ratio {result.calibration:.3f} "
            f"treated as machine-speed factor"
        )
    if not result.entries:
        lines.append("no comparable timings (disjoint snapshots?)")
    else:
        lines.append(
            f"compared {len(result.entries)} timing(s), "
            f"threshold +{100 * threshold:.0f}%"
        )
    lines.append(f"  {'key':<52} {'old':>12} {'new':>12} {'ratio':>7}  verdict")
    ordered = sorted(
        result.entries, key=lambda e: (-e.regressed, -e.adjusted_ratio)
    )
    for entry in ordered:
        verdict = (
            "REGRESSED"
            if entry.regressed
            else ("improved" if entry.improved else "ok")
        )
        shown_ratio = entry.adjusted_ratio
        lines.append(
            f"  {entry.key:<52} {entry.old:>12.6f} {entry.new:>12.6f} "
            f"{shown_ratio:>6.2f}x  {verdict}"
        )
    for key in result.only_old:
        lines.append(f"  {key:<52} only in OLD (skipped)")
    for key in result.only_new:
        lines.append(f"  {key:<52} only in NEW (skipped)")
    bad = result.regressions
    if bad:
        lines.append(
            f"FAIL: {len(bad)} regression(s) beyond +{100 * threshold:.0f}%"
        )
    else:
        lines.append("OK: no regressions beyond threshold")
    return "\n".join(lines)
