"""Observability: structured tracing, metrics, logging, run reports.

The package behind ``repro run --trace`` and ``repro obs report``:

* :mod:`repro.obs.trace` — span tracer emitting JSONL events, plus
  counters and worker-shard handling;
* :mod:`repro.obs.memory` — RSS/peak-memory sampling;
* :mod:`repro.obs.log` — the stderr progress logger and heartbeat;
* :mod:`repro.obs.profile` — opt-in cProfile hook;
* :mod:`repro.obs.report` — trace loading, validation and the
  per-phase/utilization/peak-RSS report.

Instrumented code imports the module-level proxies (:func:`span`,
:func:`counter`, :func:`event`): they forward to the active tracer and
are no-ops when tracing is disabled, so hot paths stay unconditional.
See docs/OBSERVABILITY.md for the trace schema and environment
variables.
"""

from repro.obs.log import Heartbeat, get_logger, heartbeat_interval
from repro.obs.memory import MemorySampler, memory_sample, peak_rss_mb
from repro.obs.profile import maybe_profile, profile_enabled
from repro.obs.report import (
    PhaseStats,
    PoolStats,
    TraceSummary,
    cache_hit_lines,
    load_trace,
    render_report,
    report_files,
    summarize,
    validate_trace,
)
from repro.obs.trace import (
    NULL_TRACER,
    PROFILE_ENV,
    SCHEMA_VERSION,
    SHARD_ENV,
    TRACE_ENV,
    NullTracer,
    Span,
    Tracer,
    counter,
    event,
    get_tracer,
    maybe_init_worker,
    merge_shards,
    set_tracer,
    span,
    trace_path_from_env,
)

__all__ = [
    "Heartbeat",
    "MemorySampler",
    "NULL_TRACER",
    "NullTracer",
    "PROFILE_ENV",
    "PhaseStats",
    "PoolStats",
    "SCHEMA_VERSION",
    "SHARD_ENV",
    "Span",
    "TRACE_ENV",
    "TraceSummary",
    "Tracer",
    "cache_hit_lines",
    "counter",
    "event",
    "get_logger",
    "get_tracer",
    "heartbeat_interval",
    "load_trace",
    "maybe_init_worker",
    "maybe_profile",
    "memory_sample",
    "merge_shards",
    "peak_rss_mb",
    "profile_enabled",
    "render_report",
    "report_files",
    "set_tracer",
    "span",
    "summarize",
    "trace_path_from_env",
    "validate_trace",
]
