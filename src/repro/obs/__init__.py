"""Observability: structured tracing, live metrics, logging, reports.

The package behind ``repro run --trace``, ``repro obs report`` and the
serve daemon's ``GET /metrics``:

* :mod:`repro.obs.trace` — span tracer emitting JSONL events, plus
  counters, trace-id context propagation and worker-shard handling;
* :mod:`repro.obs.metrics` — the live metrics registry: counters,
  gauges and log-linear latency histograms with mergeable snapshots
  and Prometheus text exposition;
* :mod:`repro.obs.memory` — RSS/peak-memory sampling;
* :mod:`repro.obs.log` — the stderr progress logger and heartbeat;
* :mod:`repro.obs.profile` — opt-in cProfile hook;
* :mod:`repro.obs.report` — trace loading, validation, the
  per-phase/utilization/peak-RSS report, per-trace-id stitching and
  the live tail follower;
* :mod:`repro.obs.diff` — noise-aware snapshot comparison (the CI
  perf-regression gate).

Instrumented code imports the module-level proxies (:func:`span`,
:func:`counter`, :func:`event`, :func:`record_span`): they forward to
the active tracer and are no-ops when tracing is disabled, so hot paths
stay unconditional.  See docs/OBSERVABILITY.md for the trace schema,
metric names and environment variables.
"""

from repro.obs.diff import (
    DiffEntry,
    DiffResult,
    diff_files,
    diff_timings,
    flatten_timings,
    render_diff,
)
from repro.obs.log import Heartbeat, get_logger, heartbeat_interval
from repro.obs.memory import MemorySampler, memory_sample, peak_rss_mb
from repro.obs.metrics import (
    BUCKET_BOUNDS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    exposition_problems,
    get_registry,
    merge_snapshots,
    render_prometheus,
    set_registry,
)
from repro.obs.profile import maybe_profile, profile_enabled
from repro.obs.report import (
    PhaseStats,
    PoolStats,
    TraceSummary,
    cache_hit_lines,
    follow_trace,
    load_trace,
    render_report,
    render_tail_event,
    render_trace,
    report_files,
    report_trace_id,
    summarize,
    trace_spans,
    validate_trace,
)
from repro.obs.trace import (
    NULL_TRACER,
    PROFILE_ENV,
    SCHEMA_VERSION,
    SHARD_ENV,
    TRACE_ENV,
    NullTracer,
    Span,
    Tracer,
    counter,
    current_trace_id,
    event,
    get_tracer,
    maybe_init_worker,
    merge_shards,
    mint_trace_id,
    record_span,
    set_tracer,
    span,
    trace_context,
    trace_path_from_env,
)

__all__ = [
    "BUCKET_BOUNDS",
    "Counter",
    "DiffEntry",
    "DiffResult",
    "Gauge",
    "Heartbeat",
    "Histogram",
    "MemorySampler",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "PROFILE_ENV",
    "PhaseStats",
    "PoolStats",
    "SCHEMA_VERSION",
    "SHARD_ENV",
    "Span",
    "TRACE_ENV",
    "TraceSummary",
    "Tracer",
    "cache_hit_lines",
    "counter",
    "current_trace_id",
    "diff_files",
    "diff_timings",
    "event",
    "exposition_problems",
    "flatten_timings",
    "follow_trace",
    "get_logger",
    "get_registry",
    "get_tracer",
    "heartbeat_interval",
    "load_trace",
    "maybe_init_worker",
    "maybe_profile",
    "memory_sample",
    "merge_shards",
    "merge_snapshots",
    "mint_trace_id",
    "peak_rss_mb",
    "profile_enabled",
    "record_span",
    "render_diff",
    "render_prometheus",
    "render_report",
    "render_tail_event",
    "render_trace",
    "report_files",
    "report_trace_id",
    "set_registry",
    "set_tracer",
    "span",
    "summarize",
    "trace_context",
    "trace_path_from_env",
    "trace_spans",
    "validate_trace",
]
