"""Span-based tracing: JSONL events, counters, worker shards.

One :class:`Tracer` is active per process (installed with
:func:`set_tracer`); instrumented code talks to it through the
module-level proxies :func:`span`, :func:`counter` and :func:`event`,
which forward to the active tracer.  When nothing is installed the
active tracer is :data:`NULL_TRACER` — its ``span()`` returns a shared
no-op context manager and every other call is a single attribute lookup
plus a ``pass``, so instrumentation sites cost effectively nothing in
untraced runs.

A real :class:`Tracer` always aggregates per-span-name totals and
counters in memory (the experiment harness reads those aggregates into
``runtimes.csv`` phase columns).  When constructed with a ``path`` it
additionally streams one JSON object per line to that file:

* ``meta`` — trace header: schema version, pid, free-form run tags;
* ``span`` — emitted when a span closes: monotonic start ``t``,
  duration ``dur``, per-process span id ``sid``, ``parent`` sid (or
  ``None`` for top-level spans), ``name`` and ``tags``;
* ``counters`` — cumulative counter values: emitted on close, and by
  worker shards whenever their span stack drains (fork-started pool
  workers exit via ``os._exit``, which skips ``atexit`` — a shard's
  last stack-drain snapshot is the one that survives).  Per pid the
  latest event supersedes earlier ones;
* ``rss`` — periodic memory samples (see :mod:`repro.obs.memory`);
* ``warning`` — structured degradation/retry events.

Every event carries ``t`` (``time.perf_counter()``), ``pid`` and a
per-emitter ``seq``; the merged trace is sorted by ``(t, pid, seq)``,
which makes merging deterministic.  On Linux ``perf_counter`` is
``CLOCK_MONOTONIC`` and therefore comparable across the processes of
one boot; on platforms where it is per-process, cross-process ordering
is approximate but per-process durations stay exact.

Worker processes: a file-backed tracer exports its path via the
``REPRO_TRACE_SHARD_BASE`` environment variable.  Fork-started workers
inherit the tracer object itself — the first emit in a child notices
the pid change and reopens onto a private ``<path>.shard-<pid>`` file.
Spawn-started workers call :func:`maybe_init_worker` from the pool
initializer and get a fresh shard tracer from the environment variable.
Either way the parent's :meth:`Tracer.close` merges all shards into the
main file (sorted, then deleted), so a finished trace is always a
single self-contained JSONL file.
"""

from __future__ import annotations

import atexit
import contextlib
import contextvars
import glob
import json
import os
import re
import threading
import time
from typing import Any, Dict, Iterator, List, Optional, Tuple

#: bump when the event schema changes incompatibly (documented in
#: docs/OBSERVABILITY.md).
SCHEMA_VERSION = 1

#: environment variable carrying the main trace path to worker processes.
SHARD_ENV = "REPRO_TRACE_SHARD_BASE"

#: environment variable enabling tracing without the ``--trace`` flag
#: ("1"/"true" = default per-run path; anything else = explicit path).
TRACE_ENV = "REPRO_TRACE"

#: environment variable enabling the cProfile hook (see repro.obs.profile).
PROFILE_ENV = "REPRO_PROFILE"


# ----------------------------------------------------------------------
# trace context: one logical request = one trace id
# ----------------------------------------------------------------------
#: the trace id bound to the current task/thread (contextvar so it
#: follows async tasks and is inherited by threads started under it
#: only when explicitly rebound — which is what the serve stack does).
_TRACE_CTX: "contextvars.ContextVar[Optional[str]]" = contextvars.ContextVar(
    "repro_trace_id", default=None
)


def mint_trace_id() -> str:
    """A fresh 16-hex-char trace id (little entropy needed: ids only
    have to be unique within one trace file's lifetime)."""
    return os.urandom(8).hex()


def current_trace_id() -> Optional[str]:
    """The trace id bound to the calling context, or ``None``."""
    return _TRACE_CTX.get()


@contextlib.contextmanager
def trace_context(trace_id: Optional[str]):
    """Bind ``trace_id`` for the duration of the block.

    Spans opened inside the block on a *file-backed* tracer are tagged
    ``trace=<id>``, which is what ``repro obs report --trace-id`` uses
    to stitch the client → queue → worker critical path back together.
    ``None`` unbinds (useful to keep an inherited id out of unrelated
    background work).
    """
    token = _TRACE_CTX.set(trace_id)
    try:
        yield trace_id
    finally:
        _TRACE_CTX.reset(token)


class _NullSpan:
    """The shared do-nothing span (returned by the disabled tracer)."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        return None

    def tag(self, **tags: Any) -> "_NullSpan":
        return self


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Disabled tracer: every operation is a no-op.

    A singleton (:data:`NULL_TRACER`) is installed by default, so
    instrumented code never needs an ``if tracing:`` guard.
    """

    __slots__ = ()
    enabled = False
    path: Optional[str] = None

    def span(self, name: str, **tags: Any) -> _NullSpan:
        return _NULL_SPAN

    def counter(self, name: str, inc: float = 1) -> None:
        return None

    def event(self, kind: str, message: str = "", **data: Any) -> None:
        return None

    def record_span(self, name: str, t0: float, dur: float, **tags: Any) -> None:
        return None

    def phase_seconds(self) -> Dict[str, float]:
        return {}

    def counters(self) -> Dict[str, float]:
        return {}

    def close(self) -> None:
        return None


NULL_TRACER = NullTracer()


class Span:
    """One timed region; use via ``with tracer.span(name, **tags):``."""

    __slots__ = ("_tracer", "name", "tags", "sid", "parent", "t0")

    def __init__(self, tracer: "Tracer", name: str, tags: Dict[str, Any]) -> None:
        self._tracer = tracer
        self.name = name
        self.tags = tags

    def tag(self, **tags: Any) -> "Span":
        """Attach tags after entry (e.g. results known only at the end)."""
        self.tags.update(tags)
        return self

    def __enter__(self) -> "Span":
        tracer = self._tracer
        # sid/parent bookkeeping only matters for emitted events; the
        # metrics-only tracer (no handle) skips it so per-trial spans in
        # hot sweep loops stay cheap.
        if tracer._handle is not None:
            stack = tracer._stack()
            self.parent = stack[-1].sid if stack else None
            self.sid = tracer._next_sid()
            stack.append(self)
            if "trace" not in self.tags:
                trace_id = _TRACE_CTX.get()
                if trace_id is not None:
                    self.tags["trace"] = trace_id
        self.t0 = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        t1 = time.perf_counter()
        tracer = self._tracer
        if tracer._handle is not None:
            stack = tracer._stack()
            if stack and stack[-1] is self:
                stack.pop()
        tracer._finish_span(self, t1 - self.t0)


class Tracer:
    """Collecting tracer: in-memory aggregates, optional JSONL stream.

    ``path=None`` gives a metrics-only tracer (phase totals + counters,
    nothing on disk) — what the harness runs with when ``--trace`` is
    off.  ``run_tags`` lands in the ``meta`` header event.  ``shard``
    marks a worker-side tracer: it neither exports :data:`SHARD_ENV`
    nor merges shards on close.
    """

    def __init__(
        self,
        path: Optional[str] = None,
        run_tags: Optional[Dict[str, Any]] = None,
        shard: bool = False,
    ) -> None:
        self.enabled = True
        self.path = path
        self._shard = shard
        self._pid = os.getpid()
        self._sid = 0
        self._seq = 0
        self._agg: Dict[str, List[float]] = {}  # name -> [count, total_s]
        self._counters: Dict[str, float] = {}
        self._counters_emitted: Dict[str, float] = {}
        self._lock = threading.Lock()
        self._local = threading.local()
        self._handle = None
        self._sampler = None
        self._closed = False
        if path:
            directory = os.path.dirname(path)
            if directory:
                os.makedirs(directory, exist_ok=True)
            self._handle = open(path, "w", encoding="utf-8")
            self._emit(
                {
                    "ev": "meta",
                    "t": time.perf_counter(),
                    "schema": SCHEMA_VERSION,
                    "tags": dict(run_tags or {}),
                }
            )
            if not shard:
                os.environ[SHARD_ENV] = path
                interval = os.environ.get("REPRO_TRACE_MEM_INTERVAL", "0.5").strip()
                if interval and float(interval) > 0:
                    from repro.obs.memory import MemorySampler

                    self._sampler = MemorySampler(self, float(interval))

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _stack(self) -> List[Span]:
        # Keyed by pid: a fork-started worker inherits this tracer with
        # the parent's open spans on the stack — its own spans must not
        # parent onto sids emitted by another process.
        local = self._local
        pid = os.getpid()
        stack = getattr(local, "stack", None)
        if stack is None or getattr(local, "pid", None) != pid:
            stack = []
            local.stack = stack
            local.pid = pid
        return stack

    def _next_sid(self) -> int:
        with self._lock:
            self._sid += 1
            return self._sid

    def _emit(self, obj: Dict[str, Any]) -> None:
        if self._handle is None:
            return
        if os.getpid() != self._pid:
            self._become_shard()
        with self._lock:
            obj["pid"] = os.getpid()
            obj["seq"] = self._seq
            self._seq += 1
            self._handle.write(json.dumps(obj) + "\n")
            self._handle.flush()

    def _become_shard(self) -> None:
        """First emit after a fork: redirect this copy to a shard file.

        Fork-started pool workers inherit the parent tracer object (and
        its open handle); writing through it would interleave bytes with
        the parent.  Instead the child reopens onto its own
        ``<path>.shard-<pid>`` file, which the parent merges on close.
        """
        pid = os.getpid()
        self._pid = pid
        self._seq = 0
        self._sid = int(pid) * 1_000_000  # keep sids unique across shards
        self._agg = {}  # inherited parent aggregates are not this pid's work
        self._counters = {}
        self._counters_emitted = {}
        self._local = threading.local()
        self._shard = True
        self._sampler = None
        self.path = f"{self.path}.shard-{pid}"
        self._handle = open(self.path, "w", encoding="utf-8")
        atexit.register(self.close)

    def _finish_span(self, span: Span, dur: float) -> None:
        with self._lock:
            slot = self._agg.get(span.name)
            if slot is None:
                self._agg[span.name] = [1, dur]
            else:
                slot[0] += 1
                slot[1] += dur
        if self._handle is not None:
            self._emit(
                {
                    "ev": "span",
                    "t": span.t0,
                    "dur": dur,
                    "name": span.name,
                    "sid": span.sid,
                    "parent": span.parent,
                    "tags": span.tags,
                }
            )
            # Fork-started pool workers exit via os._exit, skipping
            # atexit — snapshot counters whenever a shard's stack
            # drains so the last snapshot survives the worker.
            if self._shard and not self._stack():
                self.flush_counters()

    # ------------------------------------------------------------------
    # public API (mirrors NullTracer)
    # ------------------------------------------------------------------
    def span(self, name: str, **tags: Any) -> Span:
        return Span(self, name, tags)

    def counter(self, name: str, inc: float = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + inc

    def event(self, kind: str, message: str = "", **data: Any) -> None:
        # Anything that is not a failure-ish warning travels as a
        # generic "note" so the trace schema stays closed: new kinds
        # (serve lifecycle, auto-sample decisions, gauges) never make a
        # trace invalid.
        self._emit(
            {
                "ev": "warning" if kind in ("degraded-mode", "pool-retry") else "note",
                "t": time.perf_counter(),
                "kind": kind,
                "message": message,
                "data": data,
            }
        )

    def record_span(self, name: str, t0: float, dur: float, **tags: Any) -> None:
        """Record a span retroactively from measured timestamps.

        For regions whose start and end are observed in *different*
        call frames (e.g. queue wait: enqueue in the service thread,
        pickup in the worker agent), where a ``with span():`` block
        cannot wrap the region.  ``t0`` must come from
        ``time.perf_counter()``.  The span is top-level (no parent —
        the recording thread's open spans are unrelated to the measured
        region) and aggregates into phase totals like any other span.
        """
        with self._lock:
            slot = self._agg.get(name)
            if slot is None:
                self._agg[name] = [1, dur]
            else:
                slot[0] += 1
                slot[1] += dur
        if self._handle is not None:
            if "trace" not in tags:
                trace_id = _TRACE_CTX.get()
                if trace_id is not None:
                    tags["trace"] = trace_id
            self._emit(
                {
                    "ev": "span",
                    "t": t0,
                    "dur": dur,
                    "name": name,
                    "sid": self._next_sid(),
                    "parent": None,
                    "tags": tags,
                }
            )

    def flush_counters(self) -> None:
        """Emit a counters snapshot if values changed since the last one."""
        if self._handle is None:
            return
        with self._lock:
            values = dict(self._counters)
        if values and values != self._counters_emitted:
            self._counters_emitted = values
            self._emit({"ev": "counters", "t": time.perf_counter(), "values": values})

    def sample_memory(self) -> None:
        """Emit one ``rss`` event (no-op for metrics-only tracers)."""
        if self._handle is None:
            return
        from repro.obs.memory import memory_sample

        sample = memory_sample()
        if sample:
            self._emit({"ev": "rss", "t": time.perf_counter(), **sample})

    def phase_seconds(self) -> Dict[str, float]:
        """Total seconds per span name, aggregated in this process."""
        with self._lock:
            return {name: slot[1] for name, slot in self._agg.items()}

    def phase_counts(self) -> Dict[str, int]:
        with self._lock:
            return {name: int(slot[0]) for name, slot in self._agg.items()}

    def counters(self) -> Dict[str, float]:
        with self._lock:
            return dict(self._counters)

    def close(self) -> None:
        """Flush counters, stop sampling, merge worker shards.

        Idempotent; shard tracers also run it from ``atexit`` so worker
        counters survive pool shutdown.
        """
        if self._closed:
            return
        self._closed = True
        if self._sampler is not None:
            self._sampler.stop()
            self._sampler = None
        if self._handle is not None:
            self.sample_memory()
            self.flush_counters()
            self._handle.close()
            self._handle = None
            if not self._shard:
                merge_shards(self.path)
                if os.environ.get(SHARD_ENV) == self.path:
                    del os.environ[SHARD_ENV]

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# ----------------------------------------------------------------------
# shard merging
# ----------------------------------------------------------------------
def _read_events(path: str) -> Tuple[List[Dict[str, Any]], int]:
    """Events of one JSONL file plus the number of skipped bad lines.

    A worker killed mid-write (SIGKILL, OOM) leaves a truncated final
    line; such lines parse as garbage and are counted, not raised.
    """
    events: List[Dict[str, Any]] = []
    skipped = 0
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            stripped = line.strip()
            if not stripped:
                continue
            try:
                event = json.loads(stripped)
            except ValueError:
                skipped += 1  # truncated tail from a killed writer
                continue
            if isinstance(event, dict):
                events.append(event)
            else:
                skipped += 1
    return events, skipped


def _iter_events(path: str) -> Iterator[Dict[str, Any]]:
    for event in _read_events(path)[0]:
        yield event


_SHARD_PID_RE = re.compile(r"\.shard-(\d+)$")


def merge_shards(path: str) -> int:
    """Fold ``<path>.shard-*`` files into ``path``, deterministically.

    Events are sorted by ``(t, pid, seq)`` — a total order, since
    ``seq`` is unique per pid — so merging the same shard set twice
    produces byte-identical output.  Returns the number of shard files
    merged (0 when there were none; the main file is then untouched).

    Truncated records (a worker SIGKILLed mid-write leaves a partial
    final line in its shard) are skipped, and one synthetic
    ``warning``/``truncated-shard`` event per affected file is merged
    in their place, so the loss is visible in ``repro obs report``
    instead of silently dropped or fatal.
    """
    shards = sorted(glob.glob(glob.escape(path) + ".shard-*"))
    if not shards:
        return 0
    events, _ = _read_events(path)
    for shard in shards:
        shard_events, skipped = _read_events(shard)
        events.extend(shard_events)
        if skipped:
            match = _SHARD_PID_RE.search(shard)
            pid = int(match.group(1)) if match else 0
            last_t = max((e.get("t", 0.0) for e in shard_events), default=0.0)
            events.append(
                {
                    "ev": "warning",
                    "t": last_t,
                    "pid": pid,
                    # far above any real seq so the warning sorts after
                    # the shard's surviving events at the same t
                    "seq": 1_000_000_000,
                    "kind": "truncated-shard",
                    "message": f"skipped {skipped} partial record(s) "
                    f"(writer likely killed mid-write)",
                    "data": {"path": os.path.basename(shard), "skipped": skipped},
                }
            )
    events.sort(key=lambda e: (e.get("t", 0.0), e.get("pid", 0), e.get("seq", 0)))
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        for event in events:
            handle.write(json.dumps(event) + "\n")
    os.replace(tmp, path)
    for shard in shards:
        try:
            os.unlink(shard)
        except FileNotFoundError:
            pass
    return len(shards)


# ----------------------------------------------------------------------
# the active tracer
# ----------------------------------------------------------------------
_ACTIVE: Any = NULL_TRACER


def get_tracer():
    """The process-wide active tracer (:data:`NULL_TRACER` by default)."""
    return _ACTIVE


def set_tracer(tracer) -> Any:
    """Install ``tracer`` as the active tracer; returns the previous one."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = tracer if tracer is not None else NULL_TRACER
    return previous


def span(name: str, **tags: Any):
    """Open a span on the active tracer (no-op when tracing is off)."""
    return _ACTIVE.span(name, **tags)


def counter(name: str, inc: float = 1) -> None:
    """Bump a cumulative counter on the active tracer."""
    _ACTIVE.counter(name, inc)


def event(kind: str, message: str = "", **data: Any) -> None:
    """Record a structured event (warnings, retries) on the active tracer."""
    _ACTIVE.event(kind, message, **data)


def record_span(name: str, t0: float, dur: float, **tags: Any) -> None:
    """Record a retroactively-measured span on the active tracer."""
    _ACTIVE.record_span(name, t0, dur, **tags)


def maybe_init_worker() -> None:
    """Adopt a shard tracer in a worker process, if the parent traces.

    Called from pool initializers.  Fork-started workers share the
    parent's tracer: sharding it here, before the first task, keeps
    counters bumped ahead of the first emit out of the parent's numbers
    (lazy self-sharding on first emit remains the fallback).  Spawn
    workers get a fresh shard tracer from :data:`SHARD_ENV`.
    """
    if _ACTIVE.enabled:
        if (
            isinstance(_ACTIVE, Tracer)
            and os.getpid() != _ACTIVE._pid
            and _ACTIVE._handle is not None
        ):
            _ACTIVE._become_shard()
        return
    base = os.environ.get(SHARD_ENV, "").strip()
    if not base:
        return
    shard = Tracer(path=f"{base}.shard-{os.getpid()}", shard=True)
    set_tracer(shard)
    atexit.register(shard.close)


def trace_path_from_env(default_path: str) -> Optional[str]:
    """Resolve :data:`TRACE_ENV` into a trace path (None = tracing off)."""
    value = os.environ.get(TRACE_ENV, "").strip()
    if not value or value == "0":
        return None
    if value.lower() in ("1", "true", "yes", "on"):
        return default_path
    return value
