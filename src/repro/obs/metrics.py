"""Process-local live metrics: counters, gauges, latency histograms.

The registry behind ``GET /metrics`` on the serve daemon.  Where
:mod:`repro.obs.trace` is a flight recorder (post-hoc spans on disk),
this module is the *live* half of observability: always-on in-memory
aggregates cheap enough to update on every request, snapshotted on
demand, and rendered in Prometheus text exposition format for scrapes.

Three metric kinds, all label-aware:

* :class:`Counter` — monotonically increasing float (requests served,
  cache hits);
* :class:`Gauge` — last-written value (queue depth, worker age);
* :class:`Histogram` — log-linear latency buckets: every power of two
  between :data:`HIST_MIN` and :data:`HIST_MAX` seconds is split into
  :data:`HIST_LINEAR` equal-width sub-buckets, so relative bucket error
  is bounded (~12% with the default 4) across six orders of magnitude
  while the whole histogram stays ~120 integers.  Quantiles
  (:meth:`Histogram.quantile`) are *exact-bucket*: the reported value
  is the upper bound of the bucket the quantile falls in — never an
  interpolated guess — and observations above the last bound report
  the exact observed maximum.

Snapshots (:meth:`MetricsRegistry.snapshot`) are plain JSON dicts and
**mergeable**: :func:`merge_snapshots` is associative and commutative
over counters and histograms (element-wise sums), which is what lets
worker processes ship their snapshots over the existing reply pipes and
the parent fold them into one service-wide view.

Overhead: one ``observe()`` is a ``bisect`` over ~120 floats plus two
dict updates under a per-metric lock (sub-microsecond); handle lookup
(``registry.counter(name, **labels)``) costs one dict probe and can be
hoisted out of hot loops.  Nothing here ever touches disk.
"""

from __future__ import annotations

import math
import re
import threading
from bisect import bisect_left
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

#: snapshot schema version (bump on incompatible changes).
SNAPSHOT_SCHEMA = 1

#: histogram range: first bucket upper bound and last finite bound (s).
HIST_MIN = 1e-6
HIST_MAX = 128.0

#: linear sub-buckets per power of two.
HIST_LINEAR = 4

#: quantiles surfaced by snapshots and ``/stats``.
QUANTILES = (0.5, 0.9, 0.99, 0.999)


def _log_linear_bounds(
    lo: float = HIST_MIN, hi: float = HIST_MAX, linear: int = HIST_LINEAR
) -> Tuple[float, ...]:
    """Upper bucket bounds: ``linear`` equal steps per power of two."""
    bounds: List[float] = []
    exp = math.floor(math.log2(lo))
    base = 2.0 ** exp
    while base < hi:
        step = base / linear
        for i in range(1, linear + 1):
            bound = base + i * step
            if bound >= lo:
                bounds.append(bound)
        base *= 2.0
    # dedupe (the seam between octaves repeats the octave top) and cap.
    out: List[float] = []
    for bound in bounds:
        if not out or bound > out[-1]:
            out.append(bound)
        if bound >= hi:
            break
    return tuple(out)


#: shared bucket bounds of every histogram (same scheme == mergeable).
BUCKET_BOUNDS: Tuple[float, ...] = _log_linear_bounds()

#: index of the overflow (+Inf) bucket.
OVERFLOW_BUCKET = len(BUCKET_BOUNDS)

LabelsKey = Tuple[Tuple[str, str], ...]


def _labels_key(labels: Mapping[str, Any]) -> LabelsKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """Monotonic labeled counter."""

    __slots__ = ("_lock", "value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount


class Gauge:
    """Last-write-wins labeled gauge."""

    __slots__ = ("_lock", "value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)


class Histogram:
    """Log-linear-bucket histogram with exact-bucket quantiles.

    Bucket ``i`` counts observations ``v`` with
    ``BUCKET_BOUNDS[i-1] < v <= BUCKET_BOUNDS[i]``; values at or below
    the first bound (including zero and negatives) land in bucket 0,
    values above the last bound in the overflow bucket.  Counts are
    kept sparse — an idle histogram is two numbers and an empty dict.
    """

    __slots__ = ("_lock", "buckets", "count", "sum", "max")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.buckets: Dict[int, int] = {}
        self.count = 0
        self.sum = 0.0
        self.max = 0.0

    def observe(self, value: float) -> None:
        value = float(value)
        index = bisect_left(BUCKET_BOUNDS, value)
        with self._lock:
            self.buckets[index] = self.buckets.get(index, 0) + 1
            self.count += 1
            self.sum += value
            if value > self.max:
                self.max = value

    def observe_many(self, values: Sequence[float]) -> None:
        """Bulk observe: one bucket pass for a whole array of values.

        The traffic engine records 10^5-flow rate distributions per
        trial; per-value ``observe`` calls would dominate the trial.
        With numpy this is a vectorized ``searchsorted`` + ``bincount``
        (identical bucketing to ``bisect_left``); otherwise it loops.
        """
        try:
            import numpy as np
        except ImportError:
            np = None
        if np is None or len(values) < 32:
            for value in values:
                self.observe(value)
            return
        arr = np.asarray(values, dtype=np.float64)
        indices = np.searchsorted(BUCKET_BOUNDS, arr, side="left")
        counts = np.bincount(indices, minlength=OVERFLOW_BUCKET + 1)
        total = float(arr.sum())
        peak = float(arr.max()) if arr.size else 0.0
        with self._lock:
            for index in np.flatnonzero(counts):
                self.buckets[int(index)] = self.buckets.get(int(index), 0) + int(
                    counts[index]
                )
            self.count += int(arr.size)
            self.sum += total
            if peak > self.max:
                self.max = peak

    def quantile(self, q: float) -> Optional[float]:
        """Upper bound of the bucket the ``q``-quantile falls in.

        ``None`` on an empty histogram.  For quantiles landing in the
        overflow bucket the observed maximum is returned (the bucket
        has no finite upper bound).
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            if self.count == 0:
                return None
            target = q * self.count
            cumulative = 0
            for index in sorted(self.buckets):
                cumulative += self.buckets[index]
                if cumulative >= target:
                    if index >= OVERFLOW_BUCKET:
                        return self.max
                    return BUCKET_BOUNDS[index]
            return self.max  # pragma: no cover - cumulative == count above


class MetricsRegistry:
    """Named, labeled metrics of one process (or one service).

    ``counter``/``gauge``/``histogram`` get-or-create the instance for
    ``(name, labels)``; handles are stable, so hot paths can hoist the
    lookup.  One registry is process-global (:func:`get_registry`) —
    worker processes each get their own and ship snapshots to the
    parent for merging.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[Tuple[str, LabelsKey], Counter] = {}
        self._gauges: Dict[Tuple[str, LabelsKey], Gauge] = {}
        self._histograms: Dict[Tuple[str, LabelsKey], Histogram] = {}

    def _get(self, table: Dict, factory, name: str, labels: Mapping[str, Any]):
        key = (name, _labels_key(labels))
        metric = table.get(key)
        if metric is None:
            with self._lock:
                metric = table.get(key)
                if metric is None:
                    metric = table[key] = factory()
        return metric

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get(self._counters, Counter, name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get(self._gauges, Gauge, name, labels)

    def histogram(self, name: str, **labels: Any) -> Histogram:
        return self._get(self._histograms, Histogram, name, labels)

    def snapshot(self) -> Dict[str, Any]:
        """The registry's state as a mergeable, JSON-serialisable dict."""
        with self._lock:
            counters = list(self._counters.items())
            gauges = list(self._gauges.items())
            histograms = list(self._histograms.items())
        snap: Dict[str, Any] = {
            "schema": SNAPSHOT_SCHEMA,
            "counters": [],
            "gauges": [],
            "histograms": [],
        }
        for (name, labels), counter in sorted(counters):
            snap["counters"].append(
                {"name": name, "labels": dict(labels), "value": counter.value}
            )
        for (name, labels), gauge in sorted(gauges):
            snap["gauges"].append(
                {"name": name, "labels": dict(labels), "value": gauge.value}
            )
        for (name, labels), hist in sorted(histograms):
            with hist._lock:
                entry = {
                    "name": name,
                    "labels": dict(labels),
                    "count": hist.count,
                    "sum": round(hist.sum, 9),
                    "max": round(hist.max, 9),
                    "buckets": {str(i): c for i, c in sorted(hist.buckets.items())},
                }
            entry["q"] = _bucket_quantiles(entry)
            snap["histograms"].append(entry)
        return snap

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


# ----------------------------------------------------------------------
# snapshot algebra
# ----------------------------------------------------------------------
def _bucket_quantiles(entry: Mapping[str, Any]) -> Dict[str, Optional[float]]:
    """Exact-bucket p50/p90/p99/p999 of one snapshot histogram entry."""
    count = int(entry.get("count", 0))
    out: Dict[str, Optional[float]] = {}
    buckets = sorted((int(i), int(c)) for i, c in (entry.get("buckets") or {}).items())
    for q in QUANTILES:
        label = "p" + format(q, "g").replace("0.", "").ljust(2, "0")
        if count == 0:
            out[label] = None
            continue
        target = q * count
        cumulative = 0
        value: Optional[float] = None
        for index, bucket_count in buckets:
            cumulative += bucket_count
            if cumulative >= target:
                value = (
                    float(entry.get("max", 0.0))
                    if index >= OVERFLOW_BUCKET
                    else BUCKET_BOUNDS[index]
                )
                break
        out[label] = value if value is not None else float(entry.get("max", 0.0))
    return out


def _entry_key(entry: Mapping[str, Any]) -> Tuple[str, LabelsKey]:
    return (str(entry.get("name")), _labels_key(entry.get("labels") or {}))


def merge_snapshots(*snapshots: Optional[Mapping[str, Any]]) -> Dict[str, Any]:
    """Fold snapshots into one: counters/histograms sum, gauges last-wins.

    Associative and commutative for counters and histograms (sums);
    gauges take the value of the *last* snapshot that carries the
    series, which is associative (last-wins composes).  ``None``
    arguments are skipped, so callers can pass optional worker
    snapshots unguarded.
    """
    counters: Dict[Tuple[str, LabelsKey], Dict[str, Any]] = {}
    gauges: Dict[Tuple[str, LabelsKey], Dict[str, Any]] = {}
    histograms: Dict[Tuple[str, LabelsKey], Dict[str, Any]] = {}
    for snap in snapshots:
        if not snap:
            continue
        for entry in snap.get("counters", ()):
            key = _entry_key(entry)
            slot = counters.get(key)
            if slot is None:
                counters[key] = dict(entry)
            else:
                slot["value"] = slot["value"] + entry.get("value", 0.0)
        for entry in snap.get("gauges", ()):
            gauges[_entry_key(entry)] = dict(entry)
        for entry in snap.get("histograms", ()):
            key = _entry_key(entry)
            slot = histograms.get(key)
            if slot is None:
                slot = histograms[key] = {
                    "name": entry.get("name"),
                    "labels": dict(entry.get("labels") or {}),
                    "count": 0,
                    "sum": 0.0,
                    "max": 0.0,
                    "buckets": {},
                }
            slot["count"] += int(entry.get("count", 0))
            slot["sum"] = round(slot["sum"] + float(entry.get("sum", 0.0)), 9)
            slot["max"] = max(slot["max"], float(entry.get("max", 0.0)))
            merged = slot["buckets"]
            for index, bucket_count in (entry.get("buckets") or {}).items():
                merged[index] = merged.get(index, 0) + int(bucket_count)
    out: Dict[str, Any] = {
        "schema": SNAPSHOT_SCHEMA,
        "counters": [counters[k] for k in sorted(counters)],
        "gauges": [gauges[k] for k in sorted(gauges)],
        "histograms": [],
    }
    for key in sorted(histograms):
        entry = histograms[key]
        entry["buckets"] = {
            str(i): entry["buckets"][i]
            for i in sorted(entry["buckets"], key=int)
        }
        entry["q"] = _bucket_quantiles(entry)
        out["histograms"].append(entry)
    return out


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------
#: metric-name sanitiser (dots and dashes become underscores).
_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")

#: one well-formed sample line (name, optional labels, numeric value);
#: label values may contain backslash-escaped quotes and backslashes.
_LABEL_VALUE = r"\"(?:[^\"\\\n]|\\.)*\""
_SAMPLE_RE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"
    r"(\{[a-zA-Z_][a-zA-Z0-9_]*=" + _LABEL_VALUE
    + r"(,[a-zA-Z_][a-zA-Z0-9_]*=" + _LABEL_VALUE + r")*\})?"
    r" (-?[0-9.eE+-]+|\+Inf|NaN)$"
)


def metric_name(name: str, prefix: str = "repro_") -> str:
    """Exposition-safe metric name for a dotted registry name."""
    return prefix + _NAME_RE.sub("_", name)


def _escape_label(value: Any) -> str:
    return str(value).replace("\\", "\\\\").replace('"', '\\"')


def _label_str(labels: Mapping[str, str], extra: str = "") -> str:
    parts = [
        _NAME_RE.sub("_", k) + '="' + _escape_label(v) + '"'
        for k, v in sorted(labels.items())
    ]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _fmt(value: float) -> str:
    value = float(value)
    if value == math.inf:
        return "+Inf"
    return format(value, ".10g")


def render_prometheus(snapshot: Mapping[str, Any], prefix: str = "repro_") -> str:
    """One snapshot in Prometheus text exposition format (version 0.0.4).

    Counters get the ``_total`` suffix; histograms expand into
    cumulative ``_bucket{le=...}`` series plus ``_sum`` and ``_count``.
    Output is deterministic (sorted by name then labels).
    """
    lines: List[str] = []
    seen_type: set = set()

    def _head(name: str, kind: str) -> None:
        if name not in seen_type:
            seen_type.add(name)
            lines.append(f"# TYPE {name} {kind}")

    for entry in snapshot.get("counters", ()):
        name = metric_name(entry["name"], prefix) + "_total"
        _head(name, "counter")
        lines.append(f"{name}{_label_str(entry.get('labels') or {})} {_fmt(entry['value'])}")
    for entry in snapshot.get("gauges", ()):
        name = metric_name(entry["name"], prefix)
        _head(name, "gauge")
        lines.append(f"{name}{_label_str(entry.get('labels') or {})} {_fmt(entry['value'])}")
    for entry in snapshot.get("histograms", ()):
        name = metric_name(entry["name"], prefix)
        _head(name, "histogram")
        labels = entry.get("labels") or {}
        cumulative = 0
        for index, bucket_count in sorted(
            ((int(i), int(c)) for i, c in (entry.get("buckets") or {}).items())
        ):
            if index >= OVERFLOW_BUCKET:
                continue  # covered by the unconditional +Inf line below
            cumulative += bucket_count
            le = 'le="' + _fmt(BUCKET_BOUNDS[index]) + '"'
            lines.append(f"{name}_bucket{_label_str(labels, le)} {cumulative}")
        inf_le = 'le="+Inf"'
        lines.append(
            f"{name}_bucket{_label_str(labels, inf_le)} {int(entry.get('count', 0))}"
        )
        lines.append(f"{name}_sum{_label_str(labels)} {_fmt(entry.get('sum', 0.0))}")
        lines.append(f"{name}_count{_label_str(labels)} {int(entry.get('count', 0))}")
    return "\n".join(lines) + "\n"


def exposition_problems(text: str) -> List[str]:
    """Well-formedness problems of an exposition document (empty = OK).

    Checks every non-comment line against the sample grammar and, per
    histogram, that bucket counts are cumulative (non-decreasing in
    ``le``) and that the ``+Inf`` bucket equals ``_count``.  Used by
    the CI serve-smoke scrape and the metrics tests.
    """
    problems: List[str] = []
    bucket_last: Dict[str, Tuple[float, int]] = {}
    inf_buckets: Dict[str, int] = {}
    counts: Dict[str, int] = {}
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            problems.append(f"line {lineno}: blank line inside exposition")
            continue
        if line.startswith("#"):
            if not re.match(r"^# (TYPE|HELP) [a-zA-Z_:][a-zA-Z0-9_:]* ", line):
                problems.append(f"line {lineno}: malformed comment {line!r}")
            continue
        if not _SAMPLE_RE.match(line):
            problems.append(f"line {lineno}: malformed sample {line!r}")
            continue
        name_and_labels, _, value = line.rpartition(" ")
        if "_bucket{" in name_and_labels:
            le_match = re.search(r'le="([^"]+)"', name_and_labels)
            series = re.sub(r',?le="[^"]+"', "", name_and_labels)
            if le_match is None:
                problems.append(f"line {lineno}: bucket sample without le label")
                continue
            bound = math.inf if le_match.group(1) == "+Inf" else float(le_match.group(1))
            count = int(value)
            if bound == math.inf:
                inf_buckets[series] = count
            previous = bucket_last.get(series)
            if previous is not None:
                last_bound, last_count = previous
                if bound <= last_bound:
                    problems.append(f"line {lineno}: bucket bounds not increasing")
                if count < last_count:
                    problems.append(f"line {lineno}: bucket counts not cumulative")
            bucket_last[series] = (bound, count)
        elif re.match(r"^[a-zA-Z_:][a-zA-Z0-9_:]*_count", name_and_labels):
            series = name_and_labels.replace("_count", "_bucket", 1)
            counts[series] = int(value)
    for series, total in counts.items():
        if series in inf_buckets and inf_buckets[series] != total:
            problems.append(
                f"{series}: +Inf bucket {inf_buckets[series]} != count {total}"
            )
    return problems


# ----------------------------------------------------------------------
# the process-global registry
# ----------------------------------------------------------------------
_ACTIVE = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide live registry (always on, never touches disk)."""
    return _ACTIVE


def set_registry(registry: Optional[MetricsRegistry]) -> MetricsRegistry:
    """Install ``registry`` as the process registry; returns the old one."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = registry if registry is not None else MetricsRegistry()
    return previous
