"""Trace analysis: load a run's JSONL trace, explain where time went.

``repro obs report TRACE…`` renders, per trace file:

* the run header (meta tags, event count, wall time, peak RSS);
* a per-phase wall-time breakdown — spans aggregated by name, with
  counts, totals and share of the run's wall clock;
* the N slowest individual spans;
* worker-pool utilization — per ``pool`` span, the busy time of worker
  top-level spans inside its window against ``workers x wall``;
* cumulative counters, with compile-cache hit rates derived from the
  ``compiled.*`` counters;
* structured warnings (pool retries, degraded-mode fallbacks).

The loader is forgiving (truncated tails and junk lines are skipped —
traces of killed runs must still report); :func:`validate_trace` is the
strict half, used by the schema tests and the CI smoke job.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

_NUMERIC = (int, float)

#: event types defined by schema version 1 (see docs/OBSERVABILITY.md).
KNOWN_EVENTS = ("meta", "span", "counters", "rss", "warning", "note")


def load_trace(path: str) -> List[Dict[str, Any]]:
    """All parseable events of one JSONL trace file, in file order."""
    events: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except ValueError:
                continue
            if isinstance(event, dict):
                events.append(event)
    return events


def validate_trace(events: Sequence[Dict[str, Any]]) -> List[str]:
    """Schema problems in ``events`` (empty list == valid trace).

    Checks the documented invariants: known event types, required
    fields with the right shapes, per-pid unique span ids, and span
    parents that reference an emitted span of the same process.
    """
    problems: List[str] = []
    sids: Dict[Tuple[int, int], int] = {}
    spans_by_pid: Dict[int, set] = {}
    parents: List[Tuple[int, int, int]] = []
    for i, event in enumerate(events):
        where = f"event {i}"
        kind = event.get("ev")
        if kind not in KNOWN_EVENTS:
            problems.append(f"{where}: unknown event type {kind!r}")
            continue
        for name, types in (("t", _NUMERIC), ("pid", (int,)), ("seq", (int,))):
            if not isinstance(event.get(name), types):
                problems.append(f"{where} ({kind}): bad or missing {name!r}")
        if kind == "meta":
            if not isinstance(event.get("schema"), int):
                problems.append(f"{where}: meta without integer 'schema'")
            if not isinstance(event.get("tags"), dict):
                problems.append(f"{where}: meta without 'tags' object")
        elif kind == "span":
            if not isinstance(event.get("name"), str) or not event.get("name"):
                problems.append(f"{where}: span without a name")
            if not isinstance(event.get("dur"), _NUMERIC) or event.get("dur", -1) < 0:
                problems.append(f"{where}: span without non-negative 'dur'")
            if not isinstance(event.get("tags"), dict):
                problems.append(f"{where}: span without 'tags' object")
            sid, pid = event.get("sid"), event.get("pid")
            if not isinstance(sid, int):
                problems.append(f"{where}: span without integer 'sid'")
            elif isinstance(pid, int):
                key = (pid, sid)
                if key in sids:
                    problems.append(f"{where}: duplicate sid {sid} in pid {pid}")
                sids[key] = i
                spans_by_pid.setdefault(pid, set()).add(sid)
                parent = event.get("parent")
                if parent is not None:
                    if not isinstance(parent, int):
                        problems.append(f"{where}: non-integer span parent")
                    else:
                        parents.append((i, pid, parent))
        elif kind == "counters":
            values = event.get("values")
            if not isinstance(values, dict) or not all(
                isinstance(v, _NUMERIC) for v in values.values()
            ):
                problems.append(f"{where}: counters without numeric 'values'")
        elif kind == "rss":
            for name in ("rss_mb", "peak_mb"):
                if not isinstance(event.get(name), _NUMERIC):
                    problems.append(f"{where}: rss without numeric {name!r}")
        elif kind in ("warning", "note"):
            if not isinstance(event.get("kind"), str):
                problems.append(f"{where}: {kind} without 'kind'")
    for i, pid, parent in parents:
        if parent not in spans_by_pid.get(pid, ()):
            problems.append(f"event {i}: span parent {parent} not emitted by pid {pid}")
    return problems


# ----------------------------------------------------------------------
# summarisation
# ----------------------------------------------------------------------
@dataclass
class PhaseStats:
    name: str
    count: int = 0
    total_s: float = 0.0
    max_s: float = 0.0

    @property
    def mean_ms(self) -> float:
        return 1000.0 * self.total_s / self.count if self.count else 0.0


@dataclass
class PoolStats:
    context: str
    workers: int
    tasks: int
    wall_s: float
    busy_s: float = 0.0

    @property
    def utilization(self) -> float:
        capacity = self.workers * self.wall_s
        return self.busy_s / capacity if capacity > 0 else 0.0


@dataclass
class TraceSummary:
    meta_tags: Dict[str, Any] = field(default_factory=dict)
    events: int = 0
    main_pid: Optional[int] = None
    worker_pids: List[int] = field(default_factory=list)
    wall_s: float = 0.0
    peak_rss_mb: Optional[float] = None
    rss_by_pid: Dict[int, float] = field(default_factory=dict)
    phases: Dict[str, PhaseStats] = field(default_factory=dict)
    spans: List[Dict[str, Any]] = field(default_factory=list)
    pools: List[PoolStats] = field(default_factory=list)
    counters: Dict[str, float] = field(default_factory=dict)
    warnings: List[Dict[str, Any]] = field(default_factory=list)
    notes: List[Dict[str, Any]] = field(default_factory=list)

    def slowest(self, n: int = 10) -> List[Dict[str, Any]]:
        return sorted(self.spans, key=lambda s: -s.get("dur", 0.0))[:n]


def summarize(events: Sequence[Dict[str, Any]]) -> TraceSummary:
    """Aggregate one trace's events into a :class:`TraceSummary`."""
    summary = TraceSummary(events=len(events))
    t_min = t_max = None
    # Counter values are cumulative per emitting process: the latest
    # event per pid supersedes earlier snapshots, pids sum.
    counters_by_pid: Dict[Any, Dict[str, float]] = {}
    for event in events:
        kind = event.get("ev")
        t = event.get("t")
        if isinstance(t, _NUMERIC):
            end = t + event.get("dur", 0.0) if kind == "span" else t
            t_min = t if t_min is None else min(t_min, t)
            t_max = end if t_max is None else max(t_max, end)
        if kind == "meta":
            if summary.main_pid is None:
                summary.main_pid = event.get("pid")
                summary.meta_tags = dict(event.get("tags") or {})
        elif kind == "span":
            summary.spans.append(event)
            stats = summary.phases.setdefault(
                event.get("name", "?"), PhaseStats(event.get("name", "?"))
            )
            dur = float(event.get("dur", 0.0))
            stats.count += 1
            stats.total_s += dur
            stats.max_s = max(stats.max_s, dur)
        elif kind == "counters":
            counters_by_pid[event.get("pid")] = event.get("values") or {}
        elif kind == "rss":
            peak = event.get("peak_mb")
            if isinstance(peak, _NUMERIC):
                if summary.peak_rss_mb is None or peak > summary.peak_rss_mb:
                    summary.peak_rss_mb = float(peak)
                pid = event.get("pid")
                if isinstance(pid, int):
                    if float(peak) > summary.rss_by_pid.get(pid, 0.0):
                        summary.rss_by_pid[pid] = float(peak)
        elif kind == "warning":
            summary.warnings.append(event)
        elif kind == "note":
            summary.notes.append(event)
    for values in counters_by_pid.values():
        for name, value in values.items():
            summary.counters[name] = summary.counters.get(name, 0) + value
    if summary.main_pid is None and summary.spans:
        summary.main_pid = summary.spans[0].get("pid")
    summary.worker_pids = sorted(
        {
            s.get("pid")
            for s in summary.spans
            if isinstance(s.get("pid"), int) and s.get("pid") != summary.main_pid
        }
    )
    summary.wall_s = (t_max - t_min) if (t_min is not None and t_max is not None) else 0.0

    # Pool utilization: worker top-level spans inside each pool window.
    worker_top = [
        s
        for s in summary.spans
        if s.get("pid") in summary.worker_pids and s.get("parent") is None
    ]
    for pool in (s for s in summary.spans if s.get("name") == "pool"):
        tags = pool.get("tags") or {}
        t0 = float(pool.get("t", 0.0))
        t1 = t0 + float(pool.get("dur", 0.0))
        busy = sum(
            float(s.get("dur", 0.0))
            for s in worker_top
            if t0 <= float(s.get("t", 0.0)) <= t1
        )
        summary.pools.append(
            PoolStats(
                context=str(tags.get("context", "?")),
                workers=int(tags.get("workers", 0) or 0),
                tasks=int(tags.get("tasks", 0) or 0),
                wall_s=float(pool.get("dur", 0.0)),
                busy_s=busy,
            )
        )
    return summary


# ----------------------------------------------------------------------
# rendering
# ----------------------------------------------------------------------
def _fmt_tags(tags: Dict[str, Any], limit: int = 48) -> str:
    text = " ".join(f"{k}={v}" for k, v in tags.items())
    return text if len(text) <= limit else text[: limit - 1] + "…"


def cache_hit_lines(counters: Dict[str, float]) -> List[str]:
    """Human lines for every ``<name>.cache_hit``/``.cache_miss`` pair."""
    lines = []
    bases = sorted(
        {
            name.rsplit(".", 1)[0]
            for name in counters
            if name.endswith((".cache_hit", ".cache_miss"))
        }
    )
    for base in bases:
        hits = counters.get(f"{base}.cache_hit", 0)
        misses = counters.get(f"{base}.cache_miss", 0)
        total = hits + misses
        rate = 100.0 * hits / total if total else 0.0
        lines.append(
            f"  {base:<28} {int(hits)} hit / {int(misses)} miss ({rate:.0f}% hit)"
        )
    return lines


def render_report(path: str, summary: TraceSummary, slowest: int = 10) -> str:
    """The human-readable report for one summarised trace."""
    lines: List[str] = [f"=== trace: {path} ==="]
    tags = " ".join(f"{k}={v}" for k, v in summary.meta_tags.items())
    peak = f"{summary.peak_rss_mb:.1f} MB" if summary.peak_rss_mb is not None else "n/a"
    lines.append(
        f"run: {tags or '(untagged)'} · {summary.events} events · "
        f"wall {summary.wall_s:.3f}s · peak RSS {peak}"
    )
    if summary.worker_pids:
        lines.append(
            f"processes: main pid {summary.main_pid} + "
            f"{len(summary.worker_pids)} workers"
        )
    if len(summary.rss_by_pid) > 1:
        # Per-process peaks only earn a section once workers sampled
        # memory too; a single-process run is covered by the header.
        lines.append("memory (peak RSS per process):")
        total = 0.0
        for pid in sorted(summary.rss_by_pid):
            role = "main" if pid == summary.main_pid else "worker"
            peak_mb = summary.rss_by_pid[pid]
            total += peak_mb
            lines.append(f"  pid {pid:<8} {role:<7} {peak_mb:>9.1f} MB")
        lines.append(f"  {'pool total':<16} {total:>9.1f} MB")

    lines.append("")
    lines.append("phase breakdown (spans aggregated by name):")
    lines.append(
        f"  {'name':<26} {'count':>7} {'total_s':>9} {'mean_ms':>9} "
        f"{'max_ms':>9} {'%wall':>6}"
    )
    wall = summary.wall_s or 1.0
    for stats in sorted(summary.phases.values(), key=lambda p: -p.total_s):
        lines.append(
            f"  {stats.name:<26} {stats.count:>7} {stats.total_s:>9.3f} "
            f"{stats.mean_ms:>9.2f} {1000 * stats.max_s:>9.2f} "
            f"{100 * stats.total_s / wall:>5.1f}%"
        )

    top = summary.slowest(slowest)
    if top:
        lines.append("")
        lines.append(f"slowest spans (top {len(top)}):")
        lines.append(f"  {'dur_ms':>9}  {'pid':>7}  {'name':<26} tags")
        for s in top:
            lines.append(
                f"  {1000 * float(s.get('dur', 0.0)):>9.2f}  {s.get('pid', '?'):>7}  "
                f"{s.get('name', '?'):<26} {_fmt_tags(s.get('tags') or {})}"
            )

    if summary.pools:
        lines.append("")
        lines.append("worker pools:")
        lines.append(
            f"  {'context':<36} {'workers':>7} {'tasks':>6} {'wall_s':>8} "
            f"{'busy_s':>8} {'util%':>6}"
        )
        for pool in summary.pools:
            lines.append(
                f"  {pool.context:<36} {pool.workers:>7} {pool.tasks:>6} "
                f"{pool.wall_s:>8.3f} {pool.busy_s:>8.3f} "
                f"{100 * pool.utilization:>5.1f}%"
            )

    if summary.counters:
        lines.append("")
        lines.append("counters:")
        for name in sorted(summary.counters):
            value = summary.counters[name]
            shown = int(value) if float(value).is_integer() else round(value, 4)
            lines.append(f"  {name:<28} {shown}")
        hits = cache_hit_lines(summary.counters)
        if hits:
            lines.append("cache hit rates:")
            lines.extend(hits)

    lines.append("")
    if summary.warnings:
        lines.append(f"warnings ({len(summary.warnings)}):")
        for warning in summary.warnings:
            lines.append(
                f"  [{warning.get('kind', '?')}] {warning.get('message', '')} "
                f"{_fmt_tags(warning.get('data') or {}, limit=80)}"
            )
    else:
        lines.append("warnings: none")
    if summary.notes:
        kinds: Dict[str, int] = {}
        for note in summary.notes:
            key = str(note.get("kind", "?"))
            kinds[key] = kinds.get(key, 0) + 1
        breakdown = ", ".join(
            f"{kind} x{count}" for kind, count in sorted(kinds.items())
        )
        lines.append(f"notes ({len(summary.notes)}): {breakdown}")
    return "\n".join(lines)


def report_files(paths: Sequence[str], slowest: int = 10) -> str:
    """Load, summarise and render one report section per trace file."""
    sections = []
    for path in paths:
        events = load_trace(path)
        problems = validate_trace(events)
        section = render_report(path, summarize(events), slowest=slowest)
        if problems:
            section += (
                f"\nschema problems ({len(problems)}):\n  "
                + "\n  ".join(problems[:10])
            )
        sections.append(section)
    return "\n\n".join(sections)


# ----------------------------------------------------------------------
# trace stitching: one request's client → queue → worker critical path
# ----------------------------------------------------------------------
def trace_spans(
    events: Sequence[Dict[str, Any]], trace_id: str
) -> List[Dict[str, Any]]:
    """All spans tagged ``trace=<trace_id>``, in start order.

    The serve stack tags every span it opens under a bound trace
    context (client request, server-side submit, retroactive queue
    wait, worker execute) with the request's trace id, so filtering on
    the tag reassembles the request across processes and trace files.
    """
    spans = [
        event
        for event in events
        if event.get("ev") == "span"
        and (event.get("tags") or {}).get("trace") == trace_id
    ]
    spans.sort(key=lambda s: (s.get("t", 0.0), s.get("pid", 0), s.get("seq", 0)))
    return spans


def render_trace(trace_id: str, spans: Sequence[Dict[str, Any]]) -> str:
    """An indented tree of one stitched trace, timed relative to its start.

    Parent/child nesting uses the emitted ``parent`` sids *within* a
    pid; across pids (client process → server process → worker) spans
    are separate roots ordered by start time, which reads as the
    request's hop sequence.  A retried request (worker died, client
    retried) shows each attempt's spans under the same id — that is the
    point: the whole story of one logical request in one place.
    """
    if not spans:
        return f"trace {trace_id}: no spans"
    t0 = min(float(s.get("t", 0.0)) for s in spans)
    by_key = {(s.get("pid"), s.get("sid")): s for s in spans}
    children: Dict[Tuple[Any, Any], List[Dict[str, Any]]] = {}
    roots: List[Dict[str, Any]] = []
    for s in spans:
        parent_key = (s.get("pid"), s.get("parent"))
        if s.get("parent") is not None and parent_key in by_key:
            children.setdefault(parent_key, []).append(s)
        else:
            roots.append(s)
    pids = sorted({s.get("pid") for s in spans if isinstance(s.get("pid"), int)})
    lines = [
        f"trace {trace_id}: {len(spans)} span(s) across "
        f"{len(pids)} process(es) {pids}"
    ]
    lines.append(f"  {'offset_ms':>10} {'dur_ms':>9}  {'pid':>7}  span")

    def _walk(span: Dict[str, Any], depth: int) -> None:
        offset_ms = 1000.0 * (float(span.get("t", 0.0)) - t0)
        dur_ms = 1000.0 * float(span.get("dur", 0.0))
        tags = {
            k: v for k, v in (span.get("tags") or {}).items() if k != "trace"
        }
        lines.append(
            f"  {offset_ms:>10.2f} {dur_ms:>9.2f}  {span.get('pid', '?'):>7}  "
            f"{'  ' * depth}{span.get('name', '?')} {_fmt_tags(tags, limit=60)}"
        )
        for child in sorted(
            children.get((span.get("pid"), span.get("sid")), ()),
            key=lambda s: s.get("t", 0.0),
        ):
            _walk(child, depth + 1)

    for root in sorted(roots, key=lambda s: s.get("t", 0.0)):
        _walk(root, 0)
    return "\n".join(lines)


def report_trace_id(paths: Sequence[str], trace_id: str) -> Tuple[str, int]:
    """Stitch ``trace_id`` across trace files; (rendered text, span count)."""
    spans: List[Dict[str, Any]] = []
    for path in paths:
        if os.path.exists(path):
            spans.extend(trace_spans(load_trace(path), trace_id))
    spans.sort(key=lambda s: (s.get("t", 0.0), s.get("pid", 0), s.get("seq", 0)))
    return render_trace(trace_id, spans), len(spans)


# ----------------------------------------------------------------------
# live following (repro obs tail)
# ----------------------------------------------------------------------
def follow_trace(
    path: str,
    poll_s: float = 0.25,
    timeout_s: Optional[float] = None,
    max_events: Optional[int] = None,
) -> Iterator[Dict[str, Any]]:
    """Yield events appended to a live trace file (and its worker shards).

    ``tail -f`` for JSONL traces: starts at the beginning, then polls
    for growth.  Partial trailing lines (a writer mid-``write``) are
    held back until their newline arrives.  Worker shard files
    (``<path>.shard-*``) are picked up as they appear, so spans emitted
    by pool workers stream too.  Stops after ``timeout_s`` without the
    file existing/growing, or once ``max_events`` events were yielded;
    runs forever when both are ``None`` (caller interrupts).
    """
    import glob as _glob

    yielded = 0
    offsets: Dict[str, int] = {}
    buffers: Dict[str, str] = {}
    last_progress = time.monotonic()

    def _drain(file_path: str) -> Iterator[Dict[str, Any]]:
        try:
            size = os.path.getsize(file_path)
        except OSError:
            return
        offset = offsets.get(file_path, 0)
        if size <= offset:
            if size < offset:  # merged/rewritten: start over
                offsets[file_path] = 0
                buffers[file_path] = ""
            return
        with open(file_path, "r", encoding="utf-8") as handle:
            handle.seek(offset)
            chunk = handle.read()
            offsets[file_path] = handle.tell()
        pending = buffers.get(file_path, "") + chunk
        lines = pending.split("\n")
        buffers[file_path] = lines.pop()  # tail without newline: hold back
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except ValueError:
                continue
            if isinstance(event, dict):
                yield event

    while True:
        progressed = False
        for file_path in [path] + sorted(_glob.glob(_glob.escape(path) + ".shard-*")):
            for event in _drain(file_path):
                progressed = True
                yielded += 1
                yield event
                if max_events is not None and yielded >= max_events:
                    return
        now = time.monotonic()
        if progressed:
            last_progress = now
        elif timeout_s is not None and now - last_progress >= timeout_s:
            return
        time.sleep(poll_s)


def render_tail_event(event: Dict[str, Any]) -> Optional[str]:
    """One-line rendering of a followed event (None = not shown)."""
    kind = event.get("ev")
    pid = event.get("pid", "?")
    if kind == "span":
        tags = _fmt_tags(event.get("tags") or {}, limit=60)
        return (
            f"[{pid}] span  {event.get('name', '?'):<26} "
            f"{1000.0 * float(event.get('dur', 0.0)):>9.2f} ms  {tags}"
        )
    if kind in ("warning", "note"):
        return (
            f"[{pid}] {kind:<5} {event.get('kind', '?')}: "
            f"{event.get('message', '')} "
            f"{_fmt_tags(event.get('data') or {}, limit=60)}"
        )
    if kind == "rss":
        return (
            f"[{pid}] rss   {event.get('rss_mb', 0.0):.1f} MB "
            f"(peak {event.get('peak_mb', 0.0):.1f} MB)"
        )
    if kind == "meta":
        tags = _fmt_tags(event.get("tags") or {}, limit=60)
        return f"[{pid}] meta  schema={event.get('schema')} {tags}"
    return None  # counters snapshots are too chatty for a live tail
