"""Baseline topologies the paper compares ABCCC against.

Importing this package registers every baseline with
:mod:`repro.topology.registry`.
"""

from repro.baselines.bccc import BcccSpec, build_bccc
from repro.baselines.bcube import BcubeSpec, bcube_route, build_bcube
from repro.baselines.dcell import DcellSpec, build_dcell, dcell_route
from repro.baselines.fattree import FatTreeSpec, build_fattree
from repro.baselines.ficonn import FiconnSpec, build_ficonn
from repro.baselines.hypercube import HypercubeSpec, build_hypercube, hypercube_route
from repro.baselines.jellyfish import JellyfishSpec
from repro.baselines.torus import Torus3dSpec, build_torus3d, torus_route
from repro.baselines.tree import TreeSpec
from repro.topology.registry import register as _register

for _spec in (
    BcccSpec,
    BcubeSpec,
    DcellSpec,
    FatTreeSpec,
    FiconnSpec,
    HypercubeSpec,
    JellyfishSpec,
    Torus3dSpec,
    TreeSpec,
):
    _register(_spec)

__all__ = [
    "BcccSpec",
    "BcubeSpec",
    "DcellSpec",
    "FatTreeSpec",
    "FiconnSpec",
    "HypercubeSpec",
    "JellyfishSpec",
    "Torus3dSpec",
    "TreeSpec",
    "bcube_route",
    "build_bccc",
    "build_bcube",
    "build_dcell",
    "build_fattree",
    "build_ficonn",
    "build_hypercube",
    "build_torus3d",
    "dcell_route",
    "hypercube_route",
    "torus_route",
]
