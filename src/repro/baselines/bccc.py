"""BCCC(n, k) — BCube Connected Crossbars (Li & Yang), built directly.

The dual-port-server predecessor ABCCC generalises: every BCube(n, k)
virtual server becomes a *crossbar* of ``k + 1`` dual-port servers behind a
local switch, server ``j`` handling BCube level ``j``.

This module deliberately re-implements the construction **independently**
of :mod:`repro.core.topology` — it does not call the ABCCC builder — and
uses the same canonical node names.  The test suite then asserts that
``BcccSpec(n, k).build()`` and ``AbcccSpec(n, k, 2).build()`` produce
*identical* node and link sets, which is the strongest possible check that
the ABCCC generalisation really contains BCCC as its ``s = 2`` case.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Optional

from repro.core.address import (
    AbcccParams,
    CrossbarSwitchAddress,
    LevelSwitchAddress,
    ServerAddress,
)
from repro.routing.base import Route
from repro.topology.graph import Network
from repro.topology.spec import TopologySpec
from repro.topology.validate import LinkPolicy


def build_bccc(n: int, k: int) -> Network:
    """Build BCCC(n, k) from first principles (no ABCCC code path)."""
    net = Network(name=f"BCCC(n={n}, k={k})")
    net.meta["kind"] = "bccc"
    net.meta["n"], net.meta["k"] = n, k
    levels = k + 1
    crossbar_ports = max(n, levels)

    if levels == 1:
        # Degenerate single-level case: crossbars of one server collapse to
        # plain n-port stars (BCube(n, 0)), matching the ABCCC convention.
        for digits in itertools.product(range(n), repeat=1):
            server = ServerAddress(tuple(digits), 0)
            net.add_server(server.name, ports=2, address=server)
        switch = LevelSwitchAddress(0, ())
        net.add_switch(switch.name, ports=n, address=switch, role="level")
        for value in range(n):
            net.add_link(switch.name, ServerAddress((value,), 0).name)
        return net

    for digits in itertools.product(range(n), repeat=levels):
        crossbar = CrossbarSwitchAddress(tuple(digits))
        crossbar_name = crossbar.name
        net.add_switch(crossbar_name, ports=crossbar_ports, address=crossbar, role="crossbar")
        for j in range(levels):
            server = ServerAddress(tuple(digits), j)
            server_name = server.name
            net.add_server(server_name, ports=2, address=server)
            net.add_link(server_name, crossbar_name)

    for level in range(levels):
        for rest in itertools.product(range(n), repeat=k):
            switch = LevelSwitchAddress(level, tuple(rest))
            switch_name = switch.name
            net.add_switch(switch_name, ports=n, address=switch, role="level")
            for value in range(n):
                member = ServerAddress(switch.member_digits(value), level)
                net.add_link(switch_name, member.name)

    return net


def bccc_embed(name: str) -> str:
    """Read a BCCC(n, k) node name inside BCCC(n, k+1) (top digit 0)."""
    from repro.core.expansion import abccc_embed

    return abccc_embed(name)


class BcccSpec(TopologySpec):
    """BCCC(n, k) as a registrable topology spec."""

    kind = "bccc"

    def __init__(self, n: int, k: int):
        self._params = AbcccParams(n, k, 2)
        self.n = n
        self.k = k

    def params(self) -> Dict[str, Any]:
        return {"n": self.n, "k": self.k}

    @property
    def num_servers(self) -> int:
        if self.k == 0:
            return self.n
        return (self.k + 1) * self.n ** (self.k + 1)

    @property
    def num_switches(self) -> int:
        crossbars = self.n ** (self.k + 1) if self.k > 0 else 0
        return crossbars + (self.k + 1) * self.n**self.k

    @property
    def num_links(self) -> int:
        crossbar_links = self.num_servers if self.k > 0 else 0
        return crossbar_links + (self.k + 1) * self.n ** (self.k + 1)

    @property
    def server_ports(self) -> int:
        return 2

    @property
    def switch_ports(self) -> int:
        return max(self.n, self.k + 1)

    def switch_inventory(self) -> Dict[int, int]:
        inventory = {self.n: (self.k + 1) * self.n**self.k}
        if self.k > 0:
            ports = max(self.n, self.k + 1)
            inventory[ports] = inventory.get(ports, 0) + self.n ** (self.k + 1)
        return inventory

    @property
    def diameter_server_hops(self) -> Optional[int]:
        if self.k == 0:
            return 1
        return 2 * self.k + 2  # k + c + 1 with c = k + 1

    @property
    def bisection_links(self) -> Optional[float]:
        if self.n % 2 != 0:
            return None
        return self.n ** (self.k + 1) / 2

    def link_policy(self) -> LinkPolicy:
        return LinkPolicy.server_centric()

    def build(self) -> Network:
        return build_bccc(self.n, self.k)

    def route(self, net: Network, src: str, dst: str) -> Route:
        """BCCC routing is ABCCC routing at s = 2 (shared algorithm)."""
        from repro.core.routing import abccc_route

        return abccc_route(
            self._params, ServerAddress.parse(src), ServerAddress.parse(dst)
        )
