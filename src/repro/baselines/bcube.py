"""BCube(n, k) — Guo et al., SIGCOMM 2009.

The structure ABCCC generalises away from: ``N = n^(k+1)`` servers with
``k + 1`` NIC ports each, addressed by digit vectors in ``[0, n)^(k+1)``;
for every level ``i`` and assignment of the other digits, an ``n``-port
switch connects the ``n`` servers differing only in digit ``i``.

Strengths the paper concedes to BCube: diameter ``k + 1`` server hops and
full ``N/2`` bisection.  Weakness it attacks: growing ``k`` requires a NIC
upgrade and a new cable on **every existing server** (see
:func:`repro.core.expansion.plan_bcube_growth`).

Node names: servers ``s2.0.1`` (digits MSB-first), level switches reuse
the ``l<level>:…`` scheme of :class:`repro.core.address.LevelSwitchAddress`.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.address import AddressError, LevelSwitchAddress
from repro.routing.base import Route, RoutingError
from repro.topology.graph import Network
from repro.topology.spec import TopologySpec
from repro.topology.validate import LinkPolicy


def server_name(digits: Sequence[int]) -> str:
    """Canonical BCube server name, digits printed MSB-first."""
    return "s" + ".".join(str(d) for d in reversed(tuple(digits)))


def parse_server(name: str) -> Tuple[int, ...]:
    """Inverse of :func:`server_name`."""
    if not name.startswith("s") or "/" in name:
        raise AddressError(f"not a BCube server name: {name!r}")
    try:
        return tuple(reversed([int(p) for p in name[1:].split(".")]))
    except ValueError:
        raise AddressError(f"bad digits in {name!r}") from None


def build_bcube(n: int, k: int) -> Network:
    """Build the full BCube(n, k) graph."""
    net = Network(name=f"BCube(n={n}, k={k})")
    net.meta["kind"] = "bcube"
    net.meta["n"], net.meta["k"] = n, k
    levels = k + 1
    for digits in itertools.product(range(n), repeat=levels):
        net.add_server(server_name(digits), ports=levels, address=tuple(digits))
    for level in range(levels):
        for rest in itertools.product(range(n), repeat=k):
            switch = LevelSwitchAddress(level, tuple(rest))
            switch_name = switch.name
            net.add_switch(switch_name, ports=n, address=switch, role="level")
            for value in range(n):
                net.add_link(switch_name, server_name(switch.member_digits(value)))
    return net


def bcube_route(
    n: int,
    k: int,
    src: Sequence[int],
    dst: Sequence[int],
    order: Optional[Sequence[int]] = None,
) -> Route:
    """BCube digit-correction (DCRouting) route.

    ``order`` defaults to ascending level order over the differing digits.
    """
    src = tuple(src)
    dst = tuple(dst)
    if len(src) != k + 1 or len(dst) != k + 1:
        raise RoutingError(f"addresses must have {k + 1} digits")
    differing = [i for i in range(k + 1) if src[i] != dst[i]]
    if order is None:
        order = differing
    nodes: List[str] = [server_name(src)]
    digits = src
    for level in order:
        if digits[level] == dst[level]:
            continue
        switch = LevelSwitchAddress.serving(level, digits)
        digits = digits[:level] + (dst[level],) + digits[level + 1 :]
        nodes.append(switch.name)
        nodes.append(server_name(digits))
    if digits != dst:
        raise RoutingError(f"order {list(order)} does not correct all digits")
    return Route.of(nodes)


def bcube_embed(name: str) -> str:
    """Read a BCube(n, k) node name inside BCube(n, k+1) (top digit 0)."""
    if name.startswith("s"):
        return server_name(parse_server(name) + (0,))
    if name.startswith("l"):
        switch = LevelSwitchAddress.parse(name)
        return LevelSwitchAddress(switch.level, switch.rest + (0,)).name
    raise AddressError(f"unrecognised BCube node name {name!r}")


class BcubeSpec(TopologySpec):
    """BCube(n, k) as a registrable topology spec."""

    kind = "bcube"

    def __init__(self, n: int, k: int):
        if n < 2:
            raise ValueError(f"n must be >= 2, got {n}")
        if k < 0:
            raise ValueError(f"k must be >= 0, got {k}")
        self.n = n
        self.k = k

    def params(self) -> Dict[str, Any]:
        return {"n": self.n, "k": self.k}

    @property
    def num_servers(self) -> int:
        return self.n ** (self.k + 1)

    @property
    def num_switches(self) -> int:
        return (self.k + 1) * self.n**self.k

    @property
    def num_links(self) -> int:
        return (self.k + 1) * self.n ** (self.k + 1)

    @property
    def server_ports(self) -> int:
        return self.k + 1

    @property
    def switch_ports(self) -> int:
        return self.n

    @property
    def diameter_server_hops(self) -> Optional[int]:
        return self.k + 1

    @property
    def bisection_links(self) -> Optional[float]:
        if self.n % 2 != 0:
            return None
        return self.num_servers / 2

    def link_policy(self) -> LinkPolicy:
        return LinkPolicy.server_centric()

    def build(self) -> Network:
        return build_bcube(self.n, self.k)

    def route(self, net: Network, src: str, dst: str) -> Route:
        return bcube_route(self.n, self.k, parse_server(src), parse_server(dst))
