"""Three-tier fat-tree (k-ary Clos) — Al-Fares et al., SIGCOMM 2008.

The switch-centric baseline: ``p`` pods of ``p/2`` edge and ``p/2``
aggregation switches plus ``(p/2)^2`` core switches, all of radix ``p``;
``p^3 / 4`` single-port servers.  Full bisection bandwidth, link-hop
diameter 6, but scaling beyond ``p`` pods means replacing every switch —
the expansion pain the ABCCC paper contrasts against.

Node names: servers ``h<pod>.<edge>.<i>``, edge ``e<pod>.<i>``,
aggregation ``a<pod>.<i>``, core ``x<i>.<j>``.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from repro.routing.base import Route
from repro.routing.shortest import bfs_path
from repro.topology.graph import Network
from repro.topology.spec import TopologySpec
from repro.topology.validate import LinkPolicy


def build_fattree(p: int) -> Network:
    """Build the p-ary fat-tree (``p`` even, ``p >= 2``)."""
    if p < 2 or p % 2 != 0:
        raise ValueError(f"fat-tree arity must be even and >= 2, got {p}")
    net = Network(name=f"FatTree(p={p})")
    net.meta["kind"] = "fattree"
    net.meta["p"] = p
    half = p // 2

    for i in range(half):
        for j in range(half):
            net.add_switch(f"x{i}.{j}", ports=p, role="core")
    for pod in range(p):
        edges = [f"e{pod}.{i}" for i in range(half)]
        aggs = [f"a{pod}.{j}" for j in range(half)]
        for edge, agg in zip(edges, aggs):
            net.add_switch(edge, ports=p, role="edge")
            net.add_switch(agg, ports=p, role="aggregation")
        for i, edge in enumerate(edges):
            for h in range(half):
                name = f"h{pod}.{i}.{h}"
                net.add_server(name, ports=1, address=(pod, i, h))
                net.add_link(name, edge)
            for agg in aggs:
                net.add_link(edge, agg)
        for j, agg in enumerate(aggs):
            for m in range(half):
                net.add_link(agg, f"x{j}.{m}")
    return net


def fattree_embed(name: str) -> str:
    """FatTree(p) names are valid FatTree(p+2) names unchanged.

    The old servers/switches keep their coordinates; the diff then shows
    that although no cable is *removed*, every switch's radix grows — i.e.
    the whole fabric is replaced.
    """
    return name


class FatTreeSpec(TopologySpec):
    """Fat-tree as a registrable topology spec."""

    kind = "fattree"

    def __init__(self, p: int):
        if p < 2 or p % 2 != 0:
            raise ValueError(f"fat-tree arity must be even and >= 2, got {p}")
        self.p = p

    def params(self) -> Dict[str, Any]:
        return {"p": self.p}

    @property
    def num_servers(self) -> int:
        return self.p**3 // 4

    @property
    def num_switches(self) -> int:
        return 5 * self.p**2 // 4

    @property
    def num_links(self) -> int:
        return 3 * self.p**3 // 4

    @property
    def server_ports(self) -> int:
        return 1

    @property
    def switch_ports(self) -> int:
        return self.p

    @property
    def diameter_server_hops(self) -> Optional[int]:
        return 1  # degenerate for switch-centric fabrics; see link hops

    @property
    def diameter_link_hops(self) -> Optional[int]:
        return 6

    @property
    def bisection_links(self) -> Optional[float]:
        return self.num_servers / 2  # rearrangeably non-blocking Clos

    def link_policy(self) -> LinkPolicy:
        return LinkPolicy.switch_centric()

    def build(self) -> Network:
        return build_fattree(self.p)

    def route(self, net: Network, src: str, dst: str) -> Route:
        return bfs_path(net, src, dst)
