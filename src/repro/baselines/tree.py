"""Oversubscribed multi-rooted tree — the conventional-DCN baseline.

Every server-centric paper of the era compares against "the tree": top-of
-rack switches uplinked to an aggregation tier, aggregation uplinked to a
core tier, with an oversubscription ratio at each tier because the uplink
count is smaller than the downlink count.  Cheap and familiar, with a
bisection that collapses as the network grows — the foil for ABCCC's
bandwidth story.

``TreeSpec(n, racks, oversub)`` uses ``n``-port ToR switches:
``n - n/oversub`` ports face servers and ``n/oversub`` ports face the
aggregation tier (``oversub`` is the per-ToR oversubscription ratio, an
integer >= 1).  Aggregation switches are paired to core switches in a
simple two-tier Clos above the ToRs, sized so each tier carries exactly
the uplink capacity below it.

Node names: servers ``r<rack>.<i>``, ToR ``tor<rack>``, aggregation
``agg<i>``, core ``core<i>``.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.routing.base import Route
from repro.routing.shortest import bfs_path
from repro.topology.graph import Network
from repro.topology.spec import TopologySpec
from repro.topology.validate import LinkPolicy


class TreeSpec(TopologySpec):
    """Oversubscribed 3-tier tree as a registrable topology spec."""

    kind = "tree"

    def __init__(self, n: int, racks: int, oversub: int = 4):
        if n < 4 or n % 2 != 0:
            raise ValueError(f"ToR radix must be even and >= 4, got {n}")
        if oversub < 1:
            raise ValueError(f"oversubscription ratio must be >= 1, got {oversub}")
        uplinks = max(n // (oversub + 1), 1)
        if uplinks >= n:
            raise ValueError("oversubscription leaves no server ports")
        if racks < 1:
            raise ValueError("need at least one rack")
        self.n = n
        self.racks = racks
        self.oversub = oversub
        self._uplinks = uplinks
        self._down = n - uplinks

    def params(self) -> Dict[str, Any]:
        return {"n": self.n, "racks": self.racks, "oversub": self.oversub}

    # ------------------------------------------------------------------
    # derived sizes
    # ------------------------------------------------------------------
    @property
    def servers_per_rack(self) -> int:
        return self._down

    @property
    def uplinks_per_rack(self) -> int:
        return self._uplinks

    @property
    def num_agg(self) -> int:
        """One aggregation switch per uplink index, covering all racks.

        Aggregation switch ``i`` takes uplink ``i`` of every rack; its
        radix must be >= racks + core uplinks, so we provision the
        smallest sufficient port count (reported by switch_ports).
        """
        return self._uplinks

    @property
    def num_core(self) -> int:
        return max(self._uplinks // 2, 1)

    @property
    def num_servers(self) -> int:
        return self.racks * self.servers_per_rack

    @property
    def num_switches(self) -> int:
        return self.racks + self.num_agg + self.num_core

    @property
    def num_links(self) -> int:
        return (
            self.num_servers  # server - ToR
            + self.racks * self._uplinks  # ToR - agg
            + self.num_agg * self.num_core  # agg - core
        )

    @property
    def server_ports(self) -> int:
        return 1

    @property
    def switch_ports(self) -> int:
        return max(self.n, self.racks + self.num_core)

    def switch_inventory(self) -> Dict[int, int]:
        inventory: Dict[int, int] = {self.n: self.racks}
        agg_ports = self.racks + self.num_core
        inventory[agg_ports] = inventory.get(agg_ports, 0) + self.num_agg + self.num_core
        return inventory

    @property
    def diameter_server_hops(self) -> Optional[int]:
        return 1

    @property
    def diameter_link_hops(self) -> Optional[int]:
        if self.racks == 1:
            return 2
        return 6  # server - tor - agg - core - agg - tor - server

    @property
    def bisection_links(self) -> Optional[float]:
        """Limited by the ToR uplinks: half the racks' uplinks cross."""
        if self.racks == 1:
            return None
        return self.racks * self._uplinks / 2

    def link_policy(self) -> LinkPolicy:
        return LinkPolicy.switch_centric()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def build(self) -> Network:
        net = Network(name=self.label)
        net.meta["kind"] = "tree"
        net.meta["racks"] = self.racks
        agg_ports = self.racks + self.num_core
        for i in range(self.num_core):
            net.add_switch(f"core{i}", ports=agg_ports, role="core")
        for i in range(self.num_agg):
            agg = f"agg{i}"
            net.add_switch(agg, ports=agg_ports, role="aggregation")
            for j in range(self.num_core):
                net.add_link(agg, f"core{j}")
        for rack in range(self.racks):
            tor = f"tor{rack}"
            net.add_switch(tor, ports=self.n, role="tor")
            for i in range(self.servers_per_rack):
                name = f"r{rack}.{i}"
                net.add_server(name, ports=1, address=(rack, i))
                net.add_link(name, tor)
            for uplink in range(self._uplinks):
                net.add_link(tor, f"agg{uplink}")
        return net

    def route(self, net: Network, src: str, dst: str) -> Route:
        return bfs_path(net, src, dst)
