"""Jellyfish — random regular ToR graph (Singla et al., NSDI 2012).

The *other* famous answer to incremental expandability: wire top-of-rack
switches into a random ``r``-regular graph and claim near-optimal
bandwidth plus grow-by-one-rack expansion.  Including it makes the
expandability comparison honest: Jellyfish also expands cheaply, but
gives up structure — no closed-form diameter, no address-based routing
(k-shortest-path state per pair), and rewiring *is* required on every
expansion step (a few random cables are re-plugged to attach a new rack).

``JellyfishSpec(switches, ports, servers_per_switch, seed)``: each of the
``switches`` ToRs uses ``servers_per_switch`` ports downward and
``r = ports - servers_per_switch`` ports for the random inter-switch
fabric.  The graph is sampled with networkx's seeded regular-graph
generator (retrying on disconnected draws), so every spec builds
deterministically.

Node names: servers ``j<switch>.<i>``, switches ``js<switch>``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set, Tuple

from repro.routing.base import Route
from repro.routing.shortest import bfs_path
from repro.topology.graph import Network
from repro.topology.spec import TopologySpec
from repro.topology.validate import LinkPolicy


def _sample_regular_graph(
    nodes: int, degree: int, seed: int
) -> Set[Tuple[int, int]]:
    """A connected simple ``degree``-regular graph on ``nodes`` vertices.

    Uses networkx's seeded pairing-model generator (which already repairs
    self-loops/multi-edges) and retries with derived seeds until the
    sample is connected — a handful of draws at most for the parameters a
    data center would use.  Raises ``ValueError`` when no such graph
    exists (``n * d`` odd, ``d >= n``) or sampling keeps failing.
    """
    import networkx as nx

    if degree >= nodes:
        raise ValueError(f"degree {degree} needs more than {nodes} switches")
    if (nodes * degree) % 2 != 0:
        raise ValueError(f"{nodes} switches of fabric degree {degree}: odd stub count")
    if degree == 0:
        raise ValueError("fabric degree 0 cannot connect the switches")
    for attempt in range(50):
        graph = nx.random_regular_graph(degree, nodes, seed=seed * 1000 + attempt)
        if nx.is_connected(graph):
            return {(min(u, v), max(u, v)) for u, v in graph.edges()}
    raise ValueError(
        f"could not sample a connected {degree}-regular graph on {nodes} nodes"
    )


class JellyfishSpec(TopologySpec):
    """Jellyfish as a registrable topology spec (seeded, deterministic)."""

    kind = "jellyfish"

    def __init__(self, switches: int, ports: int, servers_per_switch: int, seed: int = 0):
        if switches < 3:
            raise ValueError("need at least 3 switches")
        if not 1 <= servers_per_switch < ports:
            raise ValueError("servers_per_switch must leave fabric ports free")
        self.switches_count = switches
        self.ports = ports
        self.servers_per_switch = servers_per_switch
        self.seed = seed
        self._fabric_degree = ports - servers_per_switch
        # Validate samplability eagerly so bad specs fail at construction.
        _sample_regular_graph(switches, self._fabric_degree, seed)

    def params(self) -> Dict[str, Any]:
        return {
            "switches": self.switches_count,
            "ports": self.ports,
            "servers_per_switch": self.servers_per_switch,
            "seed": self.seed,
        }

    @property
    def num_servers(self) -> int:
        return self.switches_count * self.servers_per_switch

    @property
    def num_switches(self) -> int:
        return self.switches_count

    @property
    def num_links(self) -> int:
        return self.num_servers + self.switches_count * self._fabric_degree // 2

    @property
    def server_ports(self) -> int:
        return 1

    @property
    def switch_ports(self) -> int:
        return self.ports

    @property
    def diameter_server_hops(self) -> Optional[int]:
        return None  # random graph: measured, not closed-form

    @property
    def diameter_link_hops(self) -> Optional[int]:
        return None

    def link_policy(self) -> LinkPolicy:
        return LinkPolicy.switch_centric()

    def build(self) -> Network:
        net = Network(name=self.label)
        net.meta["kind"] = "jellyfish"
        net.meta["seed"] = self.seed
        for s in range(self.switches_count):
            net.add_switch(f"js{s}", ports=self.ports, role="tor")
            for i in range(self.servers_per_switch):
                name = f"j{s}.{i}"
                net.add_server(name, ports=1, address=(s, i))
                net.add_link(name, f"js{s}")
        for u, v in sorted(
            _sample_regular_graph(self.switches_count, self._fabric_degree, self.seed)
        ):
            net.add_link(f"js{u}", f"js{v}")
        return net

    def route(self, net: Network, src: str, dst: str) -> Route:
        return bfs_path(net, src, dst)


def grow_jellyfish(net: Network, spec: JellyfishSpec, seed: int = 0):
    """Jellyfish's incremental expansion: splice one new ToR into ``net``.

    The published procedure: pick ``r/2`` random existing fabric edges,
    *remove* them, and wire both freed endpoints to the new switch — the
    new ToR lands with full fabric degree and every old switch keeps its
    degree.  Returns an :class:`~repro.core.expansion.ExpansionPlan`
    (same accounting as the structured families), and mutates ``net`` in
    place to the expanded fabric.

    The point for the F5 comparison: Jellyfish *does* grow one rack at a
    time — but every step re-plugs live cables (``removed_links`` > 0),
    which ABCCC's pure-addition growth never does.
    """
    import random as _random

    from repro.core.expansion import ExpansionError, ExpansionPlan

    rng = _random.Random(seed)
    r = spec.ports - spec.servers_per_switch
    if r % 2 != 0:
        raise ExpansionError(
            "incremental growth needs an even fabric degree (r/2 edges split)"
        )
    fabric_edges = [
        (link.u, link.v)
        for link in net.links()
        if net.node(link.u).is_switch and net.node(link.v).is_switch
    ]
    if len(fabric_edges) < r // 2:
        raise ExpansionError("not enough fabric edges to splice into")

    new_switch = f"js{spec.switches_count}"
    if new_switch in net:
        raise ExpansionError(f"{new_switch} already exists; grow from the spec's size")
    net.add_switch(new_switch, ports=spec.ports, role="tor")
    new_servers = []
    new_links = []
    for i in range(spec.servers_per_switch):
        name = f"j{spec.switches_count}.{i}"
        net.add_server(name, ports=1, address=(spec.switches_count, i))
        net.add_link(name, new_switch)
        new_servers.append(name)
        new_links.append(tuple(sorted((name, new_switch))))

    removed = []
    recabled = set()
    # The spliced edges must be endpoint-disjoint: every freed port gets
    # exactly one new cable to the new switch.
    rng.shuffle(fabric_edges)
    chosen = []
    used: Set[str] = set()
    for u, v in fabric_edges:
        if u in used or v in used:
            continue
        chosen.append((u, v))
        used.update((u, v))
        if len(chosen) == r // 2:
            break
    if len(chosen) < r // 2:
        raise ExpansionError("could not find enough endpoint-disjoint fabric edges")
    for u, v in chosen:
        net.remove_link(u, v)
        removed.append(tuple(sorted((u, v))))
        for endpoint in (u, v):
            net.add_link(endpoint, new_switch)
            new_links.append(tuple(sorted((endpoint, new_switch))))
            recabled.add(endpoint)

    bigger = JellyfishSpec(
        spec.switches_count + 1, spec.ports, spec.servers_per_switch, spec.seed
    )
    return ExpansionPlan(
        old_label=spec.label,
        new_label=bigger.label,
        new_servers=tuple(sorted(new_servers)),
        new_switches=(new_switch,),
        new_links=tuple(sorted(new_links)),
        removed_links=tuple(sorted(removed)),
        upgraded_servers=(),
        replaced_switches=(),
        recabled_nodes=tuple(sorted(recabled)),
    )
