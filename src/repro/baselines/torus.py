"""3D torus (k-ary 3-cube) — the CamCube-style direct-connect baseline.

CamCube (Abu-Libdeh et al., SIGCOMM 2010) wired servers as a 3D torus
with six NIC ports and no switches at all; it is the other "cube" design
of the ABCCC era and brackets the family from the switchless side: zero
switch CAPEX, but per-server port count fixed at 6 and diameter growing
as the cube root of N times 3/2.

``Torus3dSpec(a, b, c)`` builds an ``a x b x c`` torus (each dimension
>= 2; a dimension of exactly 2 would duplicate the wrap-around link, so
sizes of 2 use a single link per neighbour pair).

Node names: ``t<x>.<y>.<z>``.  Native routing is dimension-ordered
routing (DOR) with shortest wrap direction per dimension.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, List, Optional, Tuple

from repro.routing.base import Route, RoutingError
from repro.topology.graph import Network
from repro.topology.spec import TopologySpec
from repro.topology.validate import LinkPolicy


def server_name(coord: Tuple[int, int, int]) -> str:
    return "t{}.{}.{}".format(*coord)


def parse_server(name: str) -> Tuple[int, int, int]:
    if not name.startswith("t"):
        raise ValueError(f"not a torus server name: {name!r}")
    x, y, z = (int(p) for p in name[1:].split("."))
    return (x, y, z)


def build_torus3d(a: int, b: int, c: int) -> Network:
    """Build the a x b x c torus (all dimensions >= 2)."""
    dims = (a, b, c)
    if any(d < 2 for d in dims):
        raise ValueError(f"all torus dimensions must be >= 2, got {dims}")
    net = Network(name=f"Torus3D({a}x{b}x{c})")
    net.meta["kind"] = "torus3d"
    net.meta["dims"] = dims
    ports = sum(1 if d == 2 else 2 for d in dims)
    for coord in itertools.product(range(a), range(b), range(c)):
        net.add_server(server_name(coord), ports=ports, address=coord)
    for coord in itertools.product(range(a), range(b), range(c)):
        name = server_name(coord)
        for axis, size in enumerate(dims):
            neighbour = list(coord)
            neighbour[axis] = (coord[axis] + 1) % size
            neighbour = tuple(neighbour)
            if neighbour == coord:
                continue
            neighbour_name = server_name(neighbour)
            if not net.has_link(name, neighbour_name):
                net.add_link(name, neighbour_name)
    return net


def torus_route(dims: Tuple[int, int, int], src: Tuple[int, ...], dst: Tuple[int, ...]) -> Route:
    """Dimension-ordered routing, shortest wrap direction per axis."""
    if len(src) != 3 or len(dst) != 3:
        raise RoutingError("torus addresses have three coordinates")
    for axis, size in enumerate(dims):
        if not (0 <= src[axis] < size and 0 <= dst[axis] < size):
            raise RoutingError(f"coordinate out of range on axis {axis}")
    nodes: List[str] = [server_name(tuple(src))]
    current = list(src)
    for axis, size in enumerate(dims):
        delta = (dst[axis] - current[axis]) % size
        step = 1 if delta <= size - delta else -1
        while current[axis] != dst[axis]:
            current[axis] = (current[axis] + step) % size
            nodes.append(server_name(tuple(current)))
    return Route.of(nodes)


class Torus3dSpec(TopologySpec):
    """A 3D torus as a registrable topology spec."""

    kind = "torus3d"

    def __init__(self, a: int, b: int, c: int):
        if any(d < 2 for d in (a, b, c)):
            raise ValueError("all torus dimensions must be >= 2")
        self.a, self.b, self.c = a, b, c

    def params(self) -> Dict[str, Any]:
        return {"a": self.a, "b": self.b, "c": self.c}

    @property
    def dims(self) -> Tuple[int, int, int]:
        return (self.a, self.b, self.c)

    @property
    def num_servers(self) -> int:
        return self.a * self.b * self.c

    @property
    def num_switches(self) -> int:
        return 0

    @property
    def num_links(self) -> int:
        total = 0
        n = self.num_servers
        for d in self.dims:
            # d rings of length d have d links each — unless d == 2,
            # where the "ring" is a single link.
            per_ring = d if d > 2 else 1
            total += (n // d) * per_ring
        return total

    @property
    def server_ports(self) -> int:
        return sum(1 if d == 2 else 2 for d in self.dims)

    @property
    def switch_ports(self) -> int:
        return 0

    @property
    def diameter_server_hops(self) -> Optional[int]:
        return sum(d // 2 for d in self.dims)

    @property
    def diameter_link_hops(self) -> Optional[int]:
        return self.diameter_server_hops  # direct links

    @property
    def bisection_links(self) -> Optional[float]:
        """Cut across the largest even dimension: ``2 * N / d`` links
        (two wrap surfaces of N/d links each)."""
        even = [d for d in self.dims if d % 2 == 0]
        if not even:
            return None
        d = max(even)
        surfaces = 1 if d == 2 else 2
        return surfaces * self.num_servers / d

    def link_policy(self) -> LinkPolicy:
        return LinkPolicy.direct_server()

    def build(self) -> Network:
        return build_torus3d(self.a, self.b, self.c)

    def route(self, net: Network, src: str, dst: str) -> Route:
        return torus_route(self.dims, parse_server(src), parse_server(dst))
