"""FiConn(n, k) — Li et al., INFOCOM 2009.

The *other* dual-port-server baseline: ``FiConn_0`` is ``n`` servers on an
``n``-port switch; to build ``FiConn_k``, take ``g_k = b_{k-1}/2 + 1``
copies of ``FiConn_{k-1}`` (where ``b_{k-1}`` is the number of servers with
an idle backup port) and wire the copies into a complete graph, each copy
spending **half** of its idle ports, keeping the other half for future
levels.  Servers never need more than 2 ports — cheaper than DCell/BCube
but with a longer diameter and weaker bisection; it brackets ABCCC from
the low-cost side in the comparison tables.

Pairing rule **[RECON]**: sub-cell ``u`` connects to sub-cell ``v``
(``u < v``) by wiring entry ``v - 1`` of ``u``'s idle list to entry ``u``
of ``v``'s idle list, after which the *unused second half* of each idle
list stays idle — this reproduces FiConn's counts and degree structure;
the original paper spreads the chosen servers evenly, which changes only
cosmetic positions, not any metric this library reports.

Node names: servers ``f<path>`` , switches ``v<path>``.
"""

from __future__ import annotations

import functools
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.routing.base import Route, RoutingError
from repro.topology.graph import Network
from repro.topology.spec import TopologySpec
from repro.topology.validate import LinkPolicy


@functools.lru_cache(maxsize=None)
def ficonn_counts(n: int, level: int) -> Tuple[int, int]:
    """``(N_l, b_l)``: servers and idle-backup-port servers of FiConn_l.

    ``n`` must be even (the recursion halves idle counts).
    """
    if n < 2 or n % 2 != 0:
        raise ValueError(f"FiConn port count n must be even and >= 2, got {n}")
    if level == 0:
        return n, n
    below_servers, below_idle = ficonn_counts(n, level - 1)
    g = below_idle // 2 + 1
    servers = below_servers * g
    idle = (below_idle // 2) * g  # each copy keeps half its idle ports
    return servers, idle


def server_name(path: Sequence[int]) -> str:
    return "f" + ".".join(str(d) for d in path)


def parse_server(name: str) -> Tuple[int, ...]:
    if not name.startswith("f"):
        raise ValueError(f"not a FiConn server name: {name!r}")
    return tuple(int(p) for p in name[1:].split("."))


def switch_name(prefix: Sequence[int]) -> str:
    if prefix:
        return "v" + ".".join(str(d) for d in prefix)
    return "v"


@functools.lru_cache(maxsize=None)
def idle_relative(n: int, level: int) -> Tuple[Tuple[int, ...], ...]:
    """The ordered idle-server list of any FiConn_level, as paths
    *relative* to that sub-cell (every instance is identical).

    Mirrors :func:`build_ficonn`'s recursion exactly — the build's wiring
    and this routing helper are cross-checked by the tests.
    """
    if level == 0:
        return tuple((i,) for i in range(n))
    below = idle_relative(n, level - 1)
    g = len(below) // 2 + 1
    remaining: List[Tuple[int, ...]] = []
    for sub in range(g):
        for rel in below[g - 1 :]:
            remaining.append((sub,) + rel)
    return tuple(remaining)


def ficonn_level_link(
    n: int, level: int, u: int, v: int
) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
    """The level-``level`` link between sub-cells ``u < v`` (relative
    paths within the enclosing FiConn_level)."""
    if not 0 <= u < v:
        raise ValueError("requires 0 <= u < v")
    below = idle_relative(n, level - 1)
    return (u,) + below[v - 1], (v,) + below[u]


def ficonn_route(n: int, k: int, src: Sequence[int], dst: Sequence[int]) -> Route:
    """FiConn's traffic-oblivious routing (TOR): recursive descent.

    Same structure as DCellRouting: find the level where the paths
    diverge, cross the single level link joining the two sub-cells,
    recurse on both sides.  Length is bounded by ``2^(k+1) - 1`` server
    hops.
    """
    src = tuple(src)
    dst = tuple(dst)
    if len(src) != k + 1 or len(dst) != k + 1:
        raise RoutingError(f"addresses must have {k + 1} digits")

    def recurse(a: Tuple[int, ...], b: Tuple[int, ...], level: int) -> List[str]:
        if a == b:
            return [server_name(a)]
        prefix_len = len(a) - (level + 1)
        if level == 0:
            return [server_name(a), switch_name(a[:-1]), server_name(b)]
        if a[prefix_len] == b[prefix_len]:
            return recurse(a, b, level - 1)
        prefix = a[:prefix_len]
        i, j = a[prefix_len], b[prefix_len]
        if i < j:
            exit_rel, entry_rel = ficonn_level_link(n, level, i, j)
        else:
            entry_rel, exit_rel = ficonn_level_link(n, level, j, i)
        exit_server = prefix + exit_rel
        entry_server = prefix + entry_rel
        return recurse(a, exit_server, level - 1) + recurse(entry_server, b, level - 1)

    return Route.of(recurse(src, dst, k))


def build_ficonn(n: int, k: int) -> Network:
    """Build the full FiConn(n, k) graph.

    Returns the network; each recursion level wires sub-cells with the
    pairing rule from the module docstring and records the still-idle
    server list bottom-up.
    """
    ficonn_counts(n, k)  # validate n early
    net = Network(name=f"FiConn(n={n}, k={k})")
    net.meta["kind"] = "ficonn"
    net.meta["n"], net.meta["k"] = n, k

    def build_cell(prefix: Tuple[int, ...], level: int) -> List[str]:
        """Build the sub-cell; return its ordered idle-server list."""
        if level == 0:
            switch = switch_name(prefix)
            net.add_switch(switch, ports=n, role="ficonn0")
            idle: List[str] = []
            for i in range(n):
                name = server_name(prefix + (i,))
                net.add_server(name, ports=2, address=prefix + (i,))
                net.add_link(name, switch)
                idle.append(name)
            return idle

        sub_idle: List[List[str]] = []
        _, below_idle = ficonn_counts(n, level - 1)
        g = below_idle // 2 + 1
        for sub in range(g):
            sub_idle.append(build_cell(prefix + (sub,), level - 1))
        for u in range(g):
            for v in range(u + 1, g):
                net.add_link(sub_idle[u][v - 1], sub_idle[v][u])
        # Each sub-cell consumed its first g - 1 = below_idle / 2 entries.
        remaining: List[str] = []
        for idle in sub_idle:
            remaining.extend(idle[g - 1 :])
        return remaining

    build_cell((), k)
    return net


class FiconnSpec(TopologySpec):
    """FiConn(n, k) as a registrable topology spec."""

    kind = "ficonn"

    def __init__(self, n: int, k: int):
        ficonn_counts(n, 0)  # validates n
        if k < 0:
            raise ValueError(f"k must be >= 0, got {k}")
        self.n = n
        self.k = k

    def params(self) -> Dict[str, Any]:
        return {"n": self.n, "k": self.k}

    @property
    def num_servers(self) -> int:
        return ficonn_counts(self.n, self.k)[0]

    @property
    def num_switches(self) -> int:
        return self.num_servers // self.n

    @property
    def num_links(self) -> int:
        total = self.num_servers  # server-switch links
        for level in range(1, self.k + 1):
            _, below_idle = ficonn_counts(self.n, level - 1)
            g = below_idle // 2 + 1
            cells = self.num_servers // ficonn_counts(self.n, level)[0]
            total += cells * g * (g - 1) // 2
        return total

    @property
    def server_ports(self) -> int:
        return 2

    @property
    def switch_ports(self) -> int:
        return self.n

    @property
    def diameter_server_hops(self) -> Optional[int]:
        """FiConn's routing bound: ``2^(k+1) - 1`` server hops."""
        return 2 ** (self.k + 1) - 1

    @property
    def diameter_link_hops(self) -> Optional[int]:
        return None  # mixed switch/direct hops; measured empirically

    def link_policy(self) -> LinkPolicy:
        return LinkPolicy.direct_server()

    def build(self) -> Network:
        return build_ficonn(self.n, self.k)

    def route(self, net: Network, src: str, dst: str) -> Route:
        """FiConn's native traffic-oblivious routing."""
        return ficonn_route(self.n, self.k, parse_server(src), parse_server(dst))
