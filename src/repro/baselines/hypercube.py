"""Binary hypercube Q_m — the classical cube the whole family descends from.

``2^m`` servers, each with ``m`` ports, wired directly (no switches) to the
``m`` servers whose binary address differs in one bit.  Included as the
historical reference point of the "cube-based" lineage the paper's title
invokes: excellent diameter (``m``) and bisection (``2^(m-1)``), but the
per-server port count grows with the network — exactly the scaling problem
BCube/BCCC/ABCCC re-solve with commodity switches.

Node names: ``q<bits>`` with the most significant bit first, e.g. ``q0110``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.routing.base import Route, RoutingError
from repro.topology.graph import Network
from repro.topology.spec import TopologySpec
from repro.topology.validate import LinkPolicy


def server_name(value: int, m: int) -> str:
    return "q" + format(value, f"0{m}b")


def parse_server(name: str) -> int:
    if not name.startswith("q"):
        raise ValueError(f"not a hypercube server name: {name!r}")
    return int(name[1:], 2)


def build_hypercube(m: int) -> Network:
    """Build Q_m (``m >= 1``)."""
    if m < 1:
        raise ValueError(f"hypercube dimension must be >= 1, got {m}")
    net = Network(name=f"Hypercube(m={m})")
    net.meta["kind"] = "hypercube"
    net.meta["m"] = m
    size = 1 << m
    for value in range(size):
        net.add_server(server_name(value, m), ports=m, address=value)
    for value in range(size):
        name = server_name(value, m)
        for bit in range(m):
            other = value ^ (1 << bit)
            if other > value:
                net.add_link(name, server_name(other, m))
    return net


def hypercube_route(m: int, src: int, dst: int) -> Route:
    """Bit-fixing (e-cube) routing, ascending bit order."""
    size = 1 << m
    if not (0 <= src < size and 0 <= dst < size):
        raise RoutingError(f"addresses must be in [0, {size})")
    nodes: List[str] = [server_name(src, m)]
    current = src
    for bit in range(m):
        if (current ^ dst) & (1 << bit):
            current ^= 1 << bit
            nodes.append(server_name(current, m))
    return Route.of(nodes)


class HypercubeSpec(TopologySpec):
    """Q_m as a registrable topology spec."""

    kind = "hypercube"

    def __init__(self, m: int):
        if m < 1:
            raise ValueError(f"hypercube dimension must be >= 1, got {m}")
        self.m = m

    def params(self) -> Dict[str, Any]:
        return {"m": self.m}

    @property
    def num_servers(self) -> int:
        return 1 << self.m

    @property
    def num_switches(self) -> int:
        return 0

    @property
    def num_links(self) -> int:
        return self.m * (1 << (self.m - 1))

    @property
    def server_ports(self) -> int:
        return self.m

    @property
    def switch_ports(self) -> int:
        return 0

    @property
    def diameter_server_hops(self) -> Optional[int]:
        return self.m

    @property
    def diameter_link_hops(self) -> Optional[int]:
        return self.m  # direct links: one link per logical hop

    @property
    def bisection_links(self) -> Optional[float]:
        return float(1 << (self.m - 1))

    def link_policy(self) -> LinkPolicy:
        return LinkPolicy.direct_server()

    def build(self) -> Network:
        return build_hypercube(self.m)

    def route(self, net: Network, src: str, dst: str) -> Route:
        return hypercube_route(self.m, parse_server(src), parse_server(dst))
