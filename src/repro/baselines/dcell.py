"""DCell(n, k) — Guo et al., SIGCOMM 2008.

The recursively-defined server-centric baseline with direct server-server
links: ``DCell_0`` is ``n`` servers on one ``n``-port switch; ``DCell_l``
is ``g_l = t_{l-1} + 1`` copies of ``DCell_{l-1}`` wired as a complete
graph — sub-cell ``i``'s server with uid ``j - 1`` connects to sub-cell
``j``'s server with uid ``i`` for every ``i < j``.  Servers need ``k + 1``
ports; size grows doubly exponentially in ``k``.

Node names: servers ``d<a_k>.<…>.<a_0>`` (sub-cell path then in-cell
index), switches ``w<path of the DCell_0>``.

Includes the paper's recursive ``DCellRouting`` algorithm, whose route
length is at most ``2^(k+1) - 1`` server hops.
"""

from __future__ import annotations

import functools
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.routing.base import Route, RoutingError
from repro.topology.graph import Network
from repro.topology.spec import TopologySpec
from repro.topology.validate import LinkPolicy


@functools.lru_cache(maxsize=None)
def dcell_servers(n: int, level: int) -> int:
    """``t_l``: number of servers in a DCell_l built from n-port DCell_0s."""
    if level == 0:
        return n
    below = dcell_servers(n, level - 1)
    return below * (below + 1)


def dcell_subcells(n: int, level: int) -> int:
    """``g_l``: number of DCell_{l-1} units inside a DCell_l (l >= 1)."""
    return dcell_servers(n, level - 1) + 1


def uid_to_path(n: int, level: int, uid: int) -> Tuple[int, ...]:
    """Decode a server uid within a DCell_level into its digit path.

    The path is ``(a_level, …, a_1, a_0)`` where ``a_level`` picks the
    sub-cell at each recursion step and ``a_0`` the server in its DCell_0.
    """
    total = dcell_servers(n, level)
    if not 0 <= uid < total:
        raise ValueError(f"uid {uid} out of range [0, {total})")
    if level == 0:
        return (uid,)
    below = dcell_servers(n, level - 1)
    return (uid // below,) + uid_to_path(n, level - 1, uid % below)


def path_to_uid(n: int, path: Sequence[int]) -> int:
    """Inverse of :func:`uid_to_path`."""
    level = len(path) - 1
    if level == 0:
        return path[0]
    below = dcell_servers(n, level - 1)
    return path[0] * below + path_to_uid(n, path[1:])


def server_name(path: Sequence[int]) -> str:
    return "d" + ".".join(str(d) for d in path)


def parse_server(name: str) -> Tuple[int, ...]:
    if not name.startswith("d"):
        raise ValueError(f"not a DCell server name: {name!r}")
    return tuple(int(p) for p in name[1:].split("."))


def switch_name(prefix: Sequence[int]) -> str:
    """Name of the DCell_0 switch under sub-cell ``prefix``."""
    if prefix:
        return "w" + ".".join(str(d) for d in prefix)
    return "w"


def level_link(
    n: int, level: int, prefix: Tuple[int, ...], i: int, j: int
) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
    """The level-``level`` link between sub-cells ``i < j`` under ``prefix``.

    Returns the two server paths: ``(prefix, i, uid_to_path(j-1))`` and
    ``(prefix, j, uid_to_path(i))``.
    """
    if not 0 <= i < j:
        raise ValueError("level_link requires 0 <= i < j")
    left = prefix + (i,) + uid_to_path(n, level - 1, j - 1)
    right = prefix + (j,) + uid_to_path(n, level - 1, i)
    return left, right


def build_dcell(n: int, k: int) -> Network:
    """Build the full DCell(n, k) graph."""
    if n < 2:
        raise ValueError(f"n must be >= 2, got {n}")
    if k < 0:
        raise ValueError(f"k must be >= 0, got {k}")
    net = Network(name=f"DCell(n={n}, k={k})")
    net.meta["kind"] = "dcell"
    net.meta["n"], net.meta["k"] = n, k

    def build_cell(prefix: Tuple[int, ...], level: int) -> None:
        if level == 0:
            switch = switch_name(prefix)
            net.add_switch(switch, ports=n, role="dcell0")
            for i in range(n):
                name = server_name(prefix + (i,))
                net.add_server(name, ports=k + 1, address=prefix + (i,))
                net.add_link(name, switch)
            return
        for sub in range(dcell_subcells(n, level)):
            build_cell(prefix + (sub,), level - 1)
        for i in range(dcell_subcells(n, level)):
            for j in range(i + 1, dcell_subcells(n, level)):
                left, right = level_link(n, level, prefix, i, j)
                net.add_link(server_name(left), server_name(right))

    build_cell((), k)
    return net


def dcell_route(n: int, k: int, src: Sequence[int], dst: Sequence[int]) -> Route:
    """The paper's recursive DCellRouting (server names, switches included)."""
    src = tuple(src)
    dst = tuple(dst)

    def recurse(a: Tuple[int, ...], b: Tuple[int, ...], level: int) -> List[str]:
        """Server/switch name walk from server a to server b, both inside
        the same DCell_level (paths include the shared prefix)."""
        if a == b:
            return [server_name(a)]
        prefix_len = len(a) - (level + 1)
        if level == 0:
            # Same DCell_0: two hops through the local switch.
            return [server_name(a), switch_name(a[:-1]), server_name(b)]
        if a[prefix_len] == b[prefix_len]:
            return recurse(a, b, level - 1)
        prefix = a[:prefix_len]
        i, j = a[prefix_len], b[prefix_len]
        if i < j:
            exit_server, entry_server = level_link(n, level, prefix, i, j)
        else:
            entry_server, exit_server = level_link(n, level, prefix, j, i)
        first = recurse(a, exit_server, level - 1)
        last = recurse(entry_server, b, level - 1)
        return first + last

    nodes = recurse(src, dst, k)
    return Route.of(nodes)


class DcellSpec(TopologySpec):
    """DCell(n, k) as a registrable topology spec."""

    kind = "dcell"

    def __init__(self, n: int, k: int):
        if n < 2:
            raise ValueError(f"n must be >= 2, got {n}")
        if k < 0:
            raise ValueError(f"k must be >= 0, got {k}")
        self.n = n
        self.k = k

    def params(self) -> Dict[str, Any]:
        return {"n": self.n, "k": self.k}

    @property
    def num_servers(self) -> int:
        return dcell_servers(self.n, self.k)

    @property
    def num_switches(self) -> int:
        return dcell_servers(self.n, self.k) // self.n

    @property
    def num_links(self) -> int:
        total = self.num_servers  # server-switch links
        for level in range(1, self.k + 1):
            cells = dcell_servers(self.n, self.k) // dcell_servers(self.n, level)
            g = dcell_subcells(self.n, level)
            total += cells * g * (g - 1) // 2
        return total

    @property
    def server_ports(self) -> int:
        return self.k + 1

    @property
    def switch_ports(self) -> int:
        return self.n

    @property
    def diameter_server_hops(self) -> Optional[int]:
        """Upper bound from DCellRouting: ``2^(k+1) - 1`` (the true
        diameter can be slightly smaller; experiments measure it)."""
        return 2 ** (self.k + 1) - 1

    @property
    def diameter_link_hops(self) -> Optional[int]:
        return None  # mixed switch/direct hops; measured empirically

    def link_policy(self) -> LinkPolicy:
        return LinkPolicy.direct_server()

    def build(self) -> Network:
        return build_dcell(self.n, self.k)

    def route(self, net: Network, src: str, dst: str) -> Route:
        return dcell_route(self.n, self.k, parse_server(src), parse_server(dst))
