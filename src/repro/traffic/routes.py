"""Flow x link incidence: routes as edge-id arrays over the CSR graph.

The legacy :mod:`repro.sim.flow` path keeps one Python ``Route`` object
and one ``(name, name)`` link-key list per flow; at a few hundred
thousand flows that is gigabytes of dict churn.  A :class:`RouteSet`
stores the same information as two flat numpy arrays — the concatenated
undirected *edge ids* every flow crosses and a per-flow offset array —
which is all progressive filling ever looks at.  Multiplicity is
preserved (a detour crossing a link twice consumes capacity twice,
exactly like the legacy key list), and a flow with no surviving path is
an empty slice plus a bit in :attr:`RouteSet.unreachable`, never an
exception: degraded networks are results, not errors.

Edge ids are positions into ``graph.edge_u`` / ``graph.edge_v`` /
``graph.edge_capacity`` — the id space shared by object-built
:class:`~repro.topology.compiled.CompiledGraph`, fast-built
:class:`~repro.topology.fastbuild.FastCompiledGraph` and
:class:`~repro.faults.mask.MaskedGraph` (same arrays, masked entries).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from repro.topology.compiled import HAVE_NUMPY

if HAVE_NUMPY:
    import numpy as _np


class RouteSetError(ValueError):
    """Raised when routes cannot be expressed against the graph."""


def edge_id_array(graph, u, v):
    """Vectorized undirected ``(u, v) -> edge id`` lookup.

    Builds a sorted composite-key index over ``edge_u``/``edge_v`` once
    per call (O(E log E)), then answers all queries by binary search —
    the batch twin of :meth:`CompiledGraph.edge_id`.  Raises
    :class:`RouteSetError` if any queried pair is not an edge.
    """
    u = _np.asarray(u, dtype=_np.int64)
    v = _np.asarray(v, dtype=_np.int64)
    num_nodes = int(graph.num_nodes)
    edge_u = _np.asarray(graph.edge_u, dtype=_np.int64)
    edge_v = _np.asarray(graph.edge_v, dtype=_np.int64)
    keys = _np.minimum(edge_u, edge_v) * num_nodes + _np.maximum(edge_u, edge_v)
    order = _np.argsort(keys, kind="stable")
    sorted_keys = keys[order]
    queries = _np.minimum(u, v) * num_nodes + _np.maximum(u, v)
    pos = _np.searchsorted(sorted_keys, queries)
    pos = _np.minimum(pos, len(sorted_keys) - 1) if len(sorted_keys) else pos
    if len(sorted_keys) == 0 or not bool((sorted_keys[pos] == queries).all()):
        missing = (
            int(u[0]),
            int(v[0]),
        ) if len(sorted_keys) == 0 else tuple(
            int(x) for x in (u[(sorted_keys[pos] != queries)][0], v[(sorted_keys[pos] != queries)][0])
        )
        raise RouteSetError(f"no edge between nodes {missing[0]} and {missing[1]}")
    return order[pos].astype(_np.int64, copy=False)


@dataclass(frozen=True)
class RouteSet:
    """Routes for one flow set, as a sparse flow x edge incidence.

    Attributes:
        graph: the compiled graph the edge ids index into.
        src_nodes, dst_nodes: int64 node ids, one per flow.
        edge_ids: int64 concatenated undirected edge ids, route order,
            with multiplicity.
        offsets: int64 array of length ``num_flows + 1``; flow ``i``
            crosses ``edge_ids[offsets[i]:offsets[i+1]]``.
        unreachable: bool array — flows with no surviving path (their
            slice is empty).
    """

    graph: Any
    src_nodes: Any
    dst_nodes: Any
    edge_ids: Any
    offsets: Any
    unreachable: Any

    def __post_init__(self) -> None:
        if len(self.offsets) != len(self.src_nodes) + 1:
            raise RouteSetError("offsets must have num_flows + 1 entries")
        if int(self.offsets[-1]) != len(self.edge_ids):
            raise RouteSetError("offsets[-1] must equal len(edge_ids)")

    @property
    def num_flows(self) -> int:
        return len(self.src_nodes)

    @property
    def num_edges(self) -> int:
        return len(self.graph.edge_u)

    @property
    def hop_counts(self):
        """Link hops per flow (0 for unreachable flows)."""
        return _np.diff(self.offsets)

    @property
    def num_unreachable(self) -> int:
        return int(_np.count_nonzero(self.unreachable))

    def incidence_flows(self):
        """Flow index per incidence entry, aligned with ``edge_ids``."""
        return _np.repeat(
            _np.arange(self.num_flows, dtype=_np.int64), self.hop_counts
        )

    def crossings(self):
        """Crossing count per edge (multiplicity included), length E."""
        return _np.bincount(self.edge_ids, minlength=self.num_edges)

    def capacities(self):
        """Per-edge capacity as float64 (tuple- or array-backed)."""
        return _np.asarray(self.graph.edge_capacity, dtype=_np.float64)

    def max_link_load(self):
        """Max crossings/capacity over loaded edges — the F7 column."""
        crossings = self.crossings()
        loaded = crossings > 0
        if not bool(loaded.any()):
            return 0.0
        return float((crossings[loaded] / self.capacities()[loaded]).max())

    def validate_against_matrix(self, matrix) -> None:
        """Check the route endpoints match a matrix's ordinal pairs."""
        if matrix.num_flows != self.num_flows:
            raise RouteSetError(
                f"route set has {self.num_flows} flows, "
                f"matrix has {matrix.num_flows}"
            )
        servers = _np.asarray(self.graph.server_indices, dtype=_np.int64)
        want_src = servers[_np.asarray(matrix.src, dtype=_np.int64)]
        want_dst = servers[_np.asarray(matrix.dst, dtype=_np.int64)]
        if not bool((want_src == _np.asarray(self.src_nodes)).all()) or not bool(
            (want_dst == _np.asarray(self.dst_nodes)).all()
        ):
            raise RouteSetError("route endpoints do not match the traffic matrix")

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_node_paths(
        cls,
        graph,
        paths: Sequence[Optional[Sequence[int]]],
        src_nodes=None,
        dst_nodes=None,
    ) -> "RouteSet":
        """Build from per-flow node-id paths (``None`` = unreachable).

        Edge ids are resolved in one vectorized lookup over all hops.
        """
        hop_u: List[Any] = []
        hop_v: List[Any] = []
        counts = _np.zeros(len(paths), dtype=_np.int64)
        srcs = _np.empty(len(paths), dtype=_np.int64)
        dsts = _np.empty(len(paths), dtype=_np.int64)
        unreachable = _np.zeros(len(paths), dtype=bool)
        for i, path in enumerate(paths):
            if path is None:
                unreachable[i] = True
                srcs[i] = -1 if src_nodes is None else int(src_nodes[i])
                dsts[i] = -1 if dst_nodes is None else int(dst_nodes[i])
                continue
            nodes = _np.asarray(path, dtype=_np.int64)
            if nodes.size < 2:
                raise RouteSetError(f"path for flow {i} has fewer than two nodes")
            srcs[i] = int(nodes[0])
            dsts[i] = int(nodes[-1])
            counts[i] = nodes.size - 1
            hop_u.append(nodes[:-1])
            hop_v.append(nodes[1:])
        offsets = _np.zeros(len(paths) + 1, dtype=_np.int64)
        _np.cumsum(counts, out=offsets[1:])
        if hop_u:
            edge_ids = edge_id_array(
                graph, _np.concatenate(hop_u), _np.concatenate(hop_v)
            )
        else:
            edge_ids = _np.empty(0, dtype=_np.int64)
        return cls(
            graph=graph,
            src_nodes=srcs,
            dst_nodes=dsts,
            edge_ids=edge_ids,
            offsets=offsets,
            unreachable=unreachable,
        )

    @classmethod
    def from_name_routes(cls, graph, flows, routes: Dict[str, Any]) -> "RouteSet":
        """Build from legacy ``flow_id -> Route`` name paths.

        The bridge the F7 parity path uses: legacy routers produce name
        routes, this converts them to the incidence form so both engines
        allocate over byte-identical inputs.  Flow order defines flow
        index order.
        """
        index = graph.index
        paths = []
        for flow in flows:
            route = routes[flow.flow_id]
            paths.append([index[name] for name in route.nodes])
        return cls.from_node_paths(graph, paths)

    @classmethod
    def from_edge_arrays(
        cls, graph, src_nodes, dst_nodes, edge_ids, offsets, unreachable=None
    ) -> "RouteSet":
        """Build from precomputed arrays (the batch routers' output)."""
        src_nodes = _np.asarray(src_nodes, dtype=_np.int64)
        if unreachable is None:
            unreachable = _np.zeros(len(src_nodes), dtype=bool)
        return cls(
            graph=graph,
            src_nodes=src_nodes,
            dst_nodes=_np.asarray(dst_nodes, dtype=_np.int64),
            edge_ids=_np.asarray(edge_ids, dtype=_np.int64),
            offsets=_np.asarray(offsets, dtype=_np.int64),
            unreachable=_np.asarray(unreachable, dtype=bool),
        )
