"""Journaled multi-trial traffic runs: matrix -> routes -> rates -> table.

One :func:`run_traffic` call is the ``repro traffic`` command's engine:
for each trial it draws a seeded :class:`~repro.traffic.matrix
.TrafficMatrix`, optionally degrades the network with an index-based
fault draw (:func:`repro.faults.plan.random_index_failures` +
:meth:`repro.faults.mask.MaskedGraph.from_indices` — no names touched,
so lazy-name fast graphs stay lazy), extracts batch routes
(:func:`repro.routing.batch.batch_routes`), solves max-min rates
(:func:`repro.traffic.engine.max_min_rates`) and, when asked, the fluid
FCT distribution.  Results land in the standard pipeline:

* a :class:`~repro.sim.results.ResultTable` row per trial (rate and FCT
  percentiles, throughput, link-load, unreachable counts);
* :mod:`repro.obs` spans per phase (``traffic.matrix`` /
  ``traffic.routes`` / ``traffic.allocate`` / ``traffic.fct``) and
  counters, so ``repro obs report`` works on traced runs;
* metrics histograms (``traffic.rate.units`` / ``traffic.fct.seconds``,
  labeled by pattern) recorded in bulk via ``observe_many``;
* every completed trial journaled under a deterministic key — a killed
  multi-trial run resumes without recomputing finished trials.

Trials fan out over a process pool above a threshold, with the compiled
graph shipped once per pool through the shared-memory exporter and the
usual crash-recovery / sequential-degrade ladder.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.faults.journal import TrialJournal, get_active_journal
from repro.faults.mask import MaskedGraph
from repro.faults.plan import child_seed, random_index_failures
from repro.metrics.engine import map_with_pool_recovery, resolve_workers
from repro.obs import metrics as _metrics
from repro.obs import trace as _obs
from repro.sim.results import ResultTable
from repro.traffic.engine import fluid_fct, max_min_rates
from repro.traffic.matrix import generate_matrix

#: fewer pending trials than this and process fan-out cannot pay off.
TRAFFIC_PARALLEL_THRESHOLD = 4

#: the fixed table schema of one traffic run.
COLUMNS = [
    "trial",
    "pattern",
    "servers",
    "flows",
    "unreachable",
    "agg_throughput",
    "agg_per_server",
    "min_rate",
    "p50_rate",
    "mean_rate",
    "p99_rate",
    "max_rate",
    "jain",
    "max_link_load",
    "rounds",
    "mean_fct",
    "p50_fct",
    "p99_fct",
    "max_fct",
    "dead_nodes",
    "dead_links",
    "elapsed_s",
]


@dataclass(frozen=True)
class TrafficTrialSpec:
    """Everything one trial needs besides the graph itself."""

    pattern: str
    num_servers: int
    seed: int
    trial: int
    pattern_params: Tuple[Tuple[str, Any], ...] = ()
    fault_fractions: Tuple[Tuple[str, float], ...] = ()
    fault_seed: int = 0
    fct: bool = False


def run_trial(graph, spec: TrafficTrialSpec) -> Dict[str, Any]:
    """Execute one trial against ``graph``; returns the table row dict."""
    # Deferred: repro.routing.batch imports repro.traffic.routes, so a
    # top-level import here would close an import cycle.
    from repro.routing.batch import batch_routes

    started = time.perf_counter()
    with _obs.span("traffic.matrix", pattern=spec.pattern, trial=spec.trial):
        matrix = generate_matrix(
            spec.pattern,
            spec.num_servers,
            seed=child_seed(spec.seed, "traffic-matrix", spec.trial),
            **dict(spec.pattern_params),
        )
    masked = None
    dead_nodes = dead_links = 0
    if spec.fault_fractions:
        with _obs.span("traffic.faults", trial=spec.trial):
            plan = random_index_failures(
                graph,
                seed=child_seed(spec.fault_seed, "traffic-fault", spec.trial),
                **dict(spec.fault_fractions),
            )
            masked = MaskedGraph.from_indices(graph, plan.dead_nodes, plan.dead_edges)
            dead_nodes, dead_links = len(plan.dead_nodes), len(plan.dead_edges)
    with _obs.span("traffic.routes", pattern=spec.pattern, trial=spec.trial):
        routes = batch_routes(graph, matrix, masked)
    with _obs.span("traffic.allocate", pattern=spec.pattern, trial=spec.trial):
        allocation = max_min_rates(routes)
    _obs.counter("traffic.trials")
    _obs.counter("traffic.flows", routes.num_flows)
    registry = _metrics.get_registry()
    registry.histogram("traffic.rate.units", pattern=spec.pattern).observe_many(
        allocation.rates[~allocation.unreachable]
    )
    percentiles = allocation.rate_percentiles((0.50, 0.99))
    fct_summary = {"mean_fct": 0.0, "p50_fct": 0.0, "p99_fct": 0.0, "max_fct": 0.0}
    if spec.fct:
        with _obs.span("traffic.fct", pattern=spec.pattern, trial=spec.trial):
            fct = fluid_fct(routes, matrix.size)
        fct_summary = {
            key: fct.summary()[key] for key in ("mean_fct", "p50_fct", "p99_fct", "max_fct")
        }
        times = fct.completion_times
        import numpy as np

        finite = np.asarray(times)
        registry.histogram("traffic.fct.seconds", pattern=spec.pattern).observe_many(
            finite[np.isfinite(finite)]
        )
    num_servers = matrix.num_servers
    row = {
        "trial": spec.trial,
        "pattern": spec.pattern,
        "servers": num_servers,
        "flows": routes.num_flows,
        "unreachable": allocation.num_unreachable,
        "agg_throughput": allocation.aggregate_throughput,
        "agg_per_server": allocation.aggregate_throughput / num_servers,
        "min_rate": allocation.min_rate,
        "p50_rate": percentiles[0.50],
        "mean_rate": allocation.mean_rate,
        "p99_rate": percentiles[0.99],
        "max_rate": allocation.max_rate,
        "jain": allocation.jain_fairness,
        "max_link_load": routes.max_link_load(),
        "rounds": allocation.rounds,
        "dead_nodes": dead_nodes,
        "dead_links": dead_links,
        "elapsed_s": time.perf_counter() - started,
    }
    row.update(fct_summary)
    return row


def trial_key(label: str, spec: TrafficTrialSpec) -> str:
    """The deterministic journal key of one trial."""
    params = ",".join(f"{k}={v}" for k, v in spec.pattern_params)
    faults = ",".join(f"{k}={v}" for k, v in spec.fault_fractions)
    return (
        f"traffic|{label}|{spec.pattern}|params={params}|seed={spec.seed}"
        f"|trial={spec.trial}|faults={faults}|fseed={spec.fault_seed}"
        f"|fct={int(spec.fct)}"
    )


# Worker-process state: the compiled graph arrives once per pool, as a
# shared-memory handle (zero-copy attach) or a pickled graph.
_WORKER_GRAPH = None


def _traffic_worker_init(graph) -> None:
    global _WORKER_GRAPH
    if hasattr(graph, "materialize"):  # a shm GraphHandle descriptor
        graph = graph.materialize()
    _WORKER_GRAPH = graph
    _obs.maybe_init_worker()


def _traffic_worker_trial(spec: TrafficTrialSpec) -> Dict[str, Any]:
    assert _WORKER_GRAPH is not None, "traffic worker pool not initialised"
    return run_trial(_WORKER_GRAPH, spec)


def run_traffic(
    graph,
    label: str,
    pattern: str,
    *,
    trials: int = 1,
    seed: int = 0,
    pattern_params: Optional[Mapping[str, Any]] = None,
    fault_fractions: Optional[Mapping[str, float]] = None,
    fault_seed: Optional[int] = None,
    fct: bool = False,
    workers: Optional[int] = None,
    journal: Optional[TrialJournal] = None,
) -> ResultTable:
    """Multi-trial traffic run over one compiled graph.

    Args:
        graph: any compiled / fast-built graph (healthy baseline).
        label: instance label for titles and journal keys.
        pattern: matrix family name (see ``repro.traffic.MATRICES``).
        pattern_params: generator overrides (``fan_in=...``); scale-aware
            defaults fill the rest.
        fault_fractions: optional ``{"server_fraction": ..., ...}`` —
            each trial draws its own indexed fault plan and runs on the
            degraded network.
        fct: also compute the fluid FCT distribution per trial.
        journal: explicit journal; falls back to the ambient
            :func:`~repro.faults.journal.get_active_journal`.
    """
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    journal = journal if journal is not None else get_active_journal()
    num_servers = int(len(graph.server_indices))
    specs = [
        TrafficTrialSpec(
            pattern=pattern,
            num_servers=num_servers,
            seed=seed,
            trial=t,
            pattern_params=tuple(sorted((pattern_params or {}).items())),
            fault_fractions=tuple(
                sorted((k, float(v)) for k, v in (fault_fractions or {}).items() if v)
            ),
            fault_seed=seed if fault_seed is None else fault_seed,
            fct=fct,
        )
        for t in range(trials)
    ]

    rows: Dict[int, Dict[str, Any]] = {}
    pending: List[TrafficTrialSpec] = []
    for spec in specs:
        key = trial_key(label, spec)
        if journal is not None and key in journal:
            cached = journal.get(key)
            if isinstance(cached, dict):
                rows[spec.trial] = cached
                _obs.counter("traffic.journal_replays")
                continue
        pending.append(spec)

    workers = resolve_workers(workers)
    with _obs.span(
        "traffic.run",
        pattern=pattern,
        label=label,
        trials=trials,
        pending=len(pending),
        workers=workers,
    ):
        if pending:
            if workers > 1 and len(pending) >= TRAFFIC_PARALLEL_THRESHOLD:
                from repro.topology.shm import export_graph

                handle = export_graph(graph)
                try:
                    results = map_with_pool_recovery(
                        _traffic_worker_trial,
                        pending,
                        workers=min(workers, len(pending)),
                        initializer=_traffic_worker_init,
                        initargs=(handle,),
                        sequential=lambda tasks: [
                            run_trial(graph, spec) for spec in tasks
                        ],
                        context=f"traffic {label}/{pattern}",
                    )
                finally:
                    handle.release()
            else:
                results = [run_trial(graph, spec) for spec in pending]
            for spec, row in zip(pending, results):
                rows[spec.trial] = row
                if journal is not None:
                    journal.record(trial_key(label, spec), row)

    table = ResultTable(
        title=f"Traffic: {pattern} on {label} ({num_servers} servers)",
        columns=list(COLUMNS),
    )
    for t in range(trials):
        table.add_row(**rows[t])
    if fault_fractions:
        table.add_note(
            "degraded: "
            + ", ".join(f"{k}={v}" for k, v in sorted(fault_fractions.items()) if v)
        )
    if fct:
        table.add_note("fct: fluid-model completion times (all flows start at t=0)")
    return table
