"""Vectorized flow-level traffic: matrices, batch routes, max-min, FCT.

The scale-native successor of the :mod:`repro.sim` flow layer: where
``sim.flow`` walks Python dicts per flow (and stays in the tree as the
small-scale parity oracle), this package keeps every flow in numpy
batch state over the compiled CSR graphs —

* :mod:`repro.traffic.matrix` — seeded :class:`TrafficMatrix`
  generators (permutation, all-to-all, uniform, incast, hot-rack,
  job-placement-driven) over integer server ordinals;
* :mod:`repro.traffic.routes` — :class:`RouteSet`, routes as a
  flow x link sparse incidence of undirected edge ids;
* :mod:`repro.traffic.engine` — bit-parity vectorized progressive
  filling (:func:`max_min_rates`) and fluid FCT (:func:`fluid_fct`);
* :mod:`repro.traffic.run` — journaled multi-trial orchestration
  behind ``repro traffic``.

Batch route extraction lives in :mod:`repro.routing.batch` (arithmetic
digit-correction on fast ABCCC layouts, grouped-BFS everywhere else).
"""

from repro.traffic.engine import (
    FctStats,
    TrafficAllocation,
    fluid_fct,
    max_min_rates,
)
from repro.traffic.matrix import (
    MATRICES,
    TrafficError,
    TrafficMatrix,
    all_to_all_matrix,
    default_params,
    generate_matrix,
    hot_rack_matrix,
    incast_matrix,
    job_matrix,
    permutation_matrix,
    uniform_matrix,
)
from repro.traffic.routes import RouteSet, RouteSetError, edge_id_array
from repro.traffic.run import COLUMNS, TrafficTrialSpec, run_traffic, run_trial

__all__ = [
    "COLUMNS",
    "FctStats",
    "MATRICES",
    "RouteSet",
    "RouteSetError",
    "TrafficAllocation",
    "TrafficError",
    "TrafficMatrix",
    "TrafficTrialSpec",
    "all_to_all_matrix",
    "default_params",
    "edge_id_array",
    "fluid_fct",
    "generate_matrix",
    "hot_rack_matrix",
    "incast_matrix",
    "job_matrix",
    "max_min_rates",
    "permutation_matrix",
    "run_traffic",
    "run_trial",
    "uniform_matrix",
]
