"""Vectorized max-min fair allocation and fluid FCT over a RouteSet.

The allocator is the batch twin of
:func:`repro.sim.flow.max_min_allocation` — progressive filling, but
every saturation round is a handful of array operations over the
flow x edge incidence instead of Python dict walks.  The float
operations per round are *identical* to the legacy loop (same headroom
division, same ``max(residual - increment * count, 0.0)`` drain, same
``1e-12`` saturation threshold, same scalar ``level`` accumulation), so
for equal inputs the computed rates are bit-for-bit equal — the test
suite asserts exactly that against the legacy oracle, which stays in
the tree for that purpose.

Flows marked unreachable in the :class:`~repro.traffic.routes.RouteSet`
allocate at rate 0.0 and are excluded from the fairness statistics —
under a degraded network, lost flows are reported, not crashed on.

FCT comes from the fluid trajectory: re-solve max-min over the still
active flows, advance to the next completion instant, retire, repeat.
With structured matrices the number of distinct completion instants is
small, so the loop runs a handful of solves even at 10^5 flows.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, Optional, Sequence, Tuple

from repro.topology.compiled import HAVE_NUMPY

if HAVE_NUMPY:
    import numpy as _np

#: the legacy filler's saturation threshold — keep in lockstep with
#: repro.sim.flow.max_min_allocation for bit parity.
SATURATION_EPS = 1e-12


@dataclass(frozen=True)
class TrafficAllocation:
    """Max-min fair outcome for one RouteSet, batch form.

    Attributes:
        rates: float64 rate per flow (0.0 for unreachable flows).
        bottleneck_edges: saturating edge id per flow, route order,
            -1 for unreachable (or uncapped) flows.
        unreachable: per-flow bool, copied from the RouteSet.
        rounds: saturation rounds the filler ran.
    """

    rates: Any
    bottleneck_edges: Any
    unreachable: Any
    rounds: int

    @property
    def num_flows(self) -> int:
        return len(self.rates)

    @property
    def num_unreachable(self) -> int:
        return int(_np.count_nonzero(self.unreachable))

    def _served(self):
        return self.rates[~self.unreachable]

    @property
    def aggregate_throughput(self) -> float:
        return float(self._served().sum())

    @property
    def min_rate(self) -> float:
        served = self._served()
        return float(served.min()) if served.size else 0.0

    @property
    def max_rate(self) -> float:
        served = self._served()
        return float(served.max()) if served.size else 0.0

    @property
    def mean_rate(self) -> float:
        served = self._served()
        return float(served.mean()) if served.size else 0.0

    @property
    def jain_fairness(self) -> float:
        """Jain's index over served flows, clamped into [0, 1]."""
        served = self._served()
        if not served.size:
            return 0.0
        square_of_sum = float(served.sum()) ** 2
        sum_of_squares = float((served * served).sum())
        return min(square_of_sum / (served.size * sum_of_squares), 1.0)

    def rate_percentiles(self, qs: Sequence[float] = (0.01, 0.50, 0.99)):
        """Nearest-rank percentiles of the served rate distribution."""
        served = _np.sort(self._served())
        if not served.size:
            return {q: 0.0 for q in qs}
        ranks = [min(max(math.ceil(q * served.size) - 1, 0), served.size - 1) for q in qs]
        return {q: float(served[r]) for q, r in zip(qs, ranks)}


def _ragged_gather(starts, lens):
    """Flattened ``[start, start + len)`` slices, concatenated in order."""
    np = _np
    nonzero = lens > 0
    starts = starts[nonzero]
    lens = lens[nonzero]
    if starts.size == 0:
        return np.empty(0, dtype=np.int64)
    step = np.ones(int(lens.sum()), dtype=np.int64)
    step[0] = starts[0]
    ends = np.cumsum(lens)[:-1]
    step[ends] = starts[1:] - starts[:-1] - lens[:-1] + 1
    return np.cumsum(step)


def max_min_rates(
    routes, active: Optional[Any] = None, sizes_scale: Optional[Any] = None
) -> TrafficAllocation:
    """Progressive-filling max-min rates for a RouteSet, vectorized.

    Args:
        routes: the flow x edge incidence.
        active: optional per-flow bool — flows outside the mask get
            rate 0.0 and consume no capacity (the FCT loop's retired
            flows).
        sizes_scale: reserved for weighted filling; must be ``None``.

    Round structure (legacy-identical): increment = min over loaded
    edges of ``residual / crossings``; every loaded edge drains by
    ``increment * crossings`` clamped at zero; edges at ``<= 1e-12``
    freeze every flow crossing them at the accumulated level.

    The loaded-edge state lives in compacted arrays (an edge drops out
    the round its crossing count hits zero) and frozen flows are found
    through an edge -> flow adjacency, so one round costs
    O(loaded edges) rather than O(total incidence); with ~10^5 flows at
    ~10^4 saturation rounds that is the difference between seconds and
    minutes.  The per-edge float sequence is untouched by the
    compaction — the loaded set is identical to the legacy
    ``counts > 0`` test and min/subtract/clamp are elementwise — so bit
    parity with the oracle survives.
    """
    if sizes_scale is not None:
        raise NotImplementedError("weighted max-min filling is not implemented")
    np = _np
    num_flows = routes.num_flows
    num_edges = routes.num_edges
    rates = np.zeros(num_flows, dtype=np.float64)
    bottlenecks = np.full(num_flows, -1, dtype=np.int64)
    unreachable = np.asarray(routes.unreachable, dtype=bool)

    flow_active = ~unreachable
    if active is not None:
        flow_active = flow_active & np.asarray(active, dtype=bool)

    offsets = np.asarray(routes.offsets, dtype=np.int64)
    hop_counts = np.diff(offsets)
    inc_edge = np.asarray(routes.edge_ids, dtype=np.int64)
    inc_flow = routes.incidence_flows()

    counts = np.bincount(inc_edge[flow_active[inc_flow]], minlength=num_edges)
    # Compacted parallel arrays over the currently loaded edges; pos maps
    # edge id -> compacted slot (stale once an edge drains, but a drained
    # edge only carried now-frozen flows and is never decremented again).
    loaded_ids = np.flatnonzero(counts > 0).astype(np.int64)
    # float64 counts: exact for any realistic crossing count, and the
    # legacy divide/multiply converts int counts to float64 anyway — so
    # the arithmetic is value-identical while skipping the per-round
    # conversion pass.
    cnt_l = counts[loaded_ids].astype(np.float64)
    res_l = routes.capacities()[loaded_ids]
    pos = np.full(num_edges, -1, dtype=np.int64)
    pos[loaded_ids] = np.arange(loaded_ids.size, dtype=np.int64)
    # scratch buffers reused every round (sliced to the live prefix)
    scratch = np.empty(loaded_ids.size, dtype=np.float64)
    sat_buf = np.empty(loaded_ids.size, dtype=bool)

    # Edge -> flow adjacency, built once: when an edge saturates, its
    # slice names the flows to freeze.  Entries are filtered by liveness
    # at use and an edge saturates at most once, so each incidence entry
    # is scanned O(1) times over the whole fill.
    ef_order = np.argsort(inc_edge, kind="stable")
    ef_flow = inc_flow[ef_order]
    ef_offsets = np.zeros(num_edges + 1, dtype=np.int64)
    np.cumsum(np.bincount(inc_edge, minlength=num_edges), out=ef_offsets[1:])

    sat_round = np.zeros(num_edges, dtype=np.int64)
    level = 0.0
    rounds = 0
    remaining = int(np.count_nonzero(flow_active))

    while remaining > 0:
        if loaded_ids.size == 0:
            # No capacity constraint binds (cannot happen for positive-
            # length routes) — mirror the legacy guard: rate = inf.
            rates[flow_active] = math.inf
            break
        rounds += 1
        tmp = scratch[: res_l.size]
        sat = sat_buf[: res_l.size]
        np.divide(res_l, cnt_l, out=tmp)
        increment = float(tmp.min())
        level += increment
        np.multiply(cnt_l, increment, out=tmp)
        np.subtract(res_l, tmp, out=res_l)
        np.maximum(res_l, 0.0, out=res_l)
        np.less_equal(res_l, SATURATION_EPS, out=sat)
        if not bool(sat.any()):
            # Large capacities can leave a sub-ulp residue above the
            # threshold; the legacy loop re-rounds too.  Guard runaways.
            if rounds > 64 * max(num_flows, 1):  # pragma: no cover
                raise RuntimeError("progressive filling failed to converge")
            continue
        sat_local = np.flatnonzero(sat)
        sat_edges = loaded_ids[sat_local]
        sat_round[sat_edges] = rounds
        cand = ef_flow[
            _ragged_gather(
                ef_offsets[sat_edges], ef_offsets[sat_edges + 1] - ef_offsets[sat_edges]
            )
        ]
        # A loaded edge has at least one active crossing, so newly != [].
        newly = np.unique(cand[flow_active[cand]])
        rates[newly] = level
        flow_active[newly] = False
        remaining -= int(newly.size)
        # One walk over the frozen flows' routes covers both bottleneck
        # attribution (first edge saturated this round, route order —
        # newly is sorted, so the repeat below is flow-major like the
        # legacy incidence scan) and crossing-count decrements.
        lens = hop_counts[newly]
        redges = inc_edge[_ragged_gather(offsets[newly], lens)]
        rflows = np.repeat(newly, lens)
        hit = sat_round[redges] == rounds
        uniq, first_of = np.unique(rflows[hit], return_index=True)
        bottlenecks[uniq] = redges[hit][first_of]
        dec_edges, dec_by = np.unique(redges, return_counts=True)
        cnt_l[pos[dec_edges]] -= dec_by
        keep = cnt_l > 0
        if not bool(keep.all()):
            loaded_ids = loaded_ids[keep]
            cnt_l = cnt_l[keep]
            res_l = res_l[keep]
            pos[loaded_ids] = np.arange(loaded_ids.size, dtype=np.int64)

    return TrafficAllocation(
        rates=rates,
        bottleneck_edges=bottlenecks,
        unreachable=unreachable,
        rounds=rounds,
    )


@dataclass(frozen=True)
class FctStats:
    """Flow-completion-time distribution from the fluid trajectory."""

    completion_times: Any  # float64 per flow; inf for unreachable flows
    solves: int

    @property
    def num_completed(self) -> int:
        return int(_np.count_nonzero(_np.isfinite(self.completion_times)))

    def _finite(self):
        times = _np.asarray(self.completion_times)
        return _np.sort(times[_np.isfinite(times)])

    @property
    def mean_fct(self) -> float:
        finite = self._finite()
        return float(finite.mean()) if finite.size else 0.0

    @property
    def max_fct(self) -> float:
        finite = self._finite()
        return float(finite[-1]) if finite.size else 0.0

    def percentile(self, q: float) -> float:
        finite = self._finite()
        if not finite.size:
            return 0.0
        rank = min(max(math.ceil(q * finite.size) - 1, 0), finite.size - 1)
        return float(finite[rank])

    def summary(self) -> Dict[str, float]:
        return {
            "mean_fct": self.mean_fct,
            "p50_fct": self.percentile(0.50),
            "p95_fct": self.percentile(0.95),
            "p99_fct": self.percentile(0.99),
            "max_fct": self.max_fct,
        }


def fluid_fct(routes, sizes, max_solves: Optional[int] = None) -> FctStats:
    """Fluid-model completion times: re-solve, advance, retire.

    All flows start at time zero (the matrices are static snapshots);
    arrivals belong to the event-driven :mod:`repro.sim.fct`, which
    remains the small-scale oracle for that regime.
    """
    np = _np
    sizes = np.asarray(sizes, dtype=np.float64)
    if len(sizes) != routes.num_flows:
        raise ValueError("sizes must have one entry per flow")
    remaining = sizes.copy()
    finish = np.full(routes.num_flows, math.inf, dtype=np.float64)
    active = ~np.asarray(routes.unreachable, dtype=bool)
    now = 0.0
    solves = 0
    limit = routes.num_flows if max_solves is None else max_solves
    while bool(active.any()) and solves < limit + 1:
        allocation = max_min_rates(routes, active=active)
        solves += 1
        rates = allocation.rates
        positive = active & (rates > 0.0)
        if not bool(positive.any()):  # pragma: no cover - invariant
            break
        dt = float((remaining[positive] / rates[positive]).min())
        now += dt
        remaining[positive] -= rates[positive] * dt
        done = positive & (remaining <= SATURATION_EPS)
        finish[done] = now
        active &= ~done
    return FctStats(completion_times=finish, solves=solves)
