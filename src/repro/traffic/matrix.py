"""Seeded traffic-matrix generators over integer server ordinals.

A :class:`TrafficMatrix` is the batch-native counterpart of the
:class:`repro.sim.traffic.Flow` lists: one numpy record of ``src`` /
``dst`` server *ordinals* (positions ``0 .. num_servers-1`` into a
graph's ``server_indices``) plus per-flow ``size``.  Ordinals — not
names — are the contract that lets the same workload run on an
object-built :class:`~repro.topology.compiled.CompiledGraph`, a
lazy-name :class:`~repro.topology.fastbuild.FastCompiledGraph` and a
:class:`~repro.faults.mask.MaskedGraph` without ever materialising a
name string.

Workload families (the Lebiednik et al. survey's evaluation staples):

* ``permutation`` — every server sends one flow, receives one flow
  (a derangement);
* ``all_to_all`` — every ordered pair, optionally subsampled;
* ``uniform`` — independent uniform pairs;
* ``incast`` — many senders converge on few receivers (fan-in);
* ``hot_rack`` — a skewed fraction of all flows targets the servers of
  a few "hot" racks (contiguous ordinal blocks — crossbar blocks on
  the cube families);
* ``job`` — job-placement-driven: a batch of MapReduce-style jobs
  (shuffle / aggregate / disseminate) placed by the
  :mod:`repro.sim.jobs` generators over the ordinal space.

Every generator is a pure function of ``(num_servers, seed, params)``:
two topologies with equal server counts receive bit-identical matrices,
and the numpy ``PCG64`` streams (seeded through
:func:`repro.faults.plan.child_seed`) are stable across processes and
platforms — the discipline the paper's cross-family comparisons need.

Degenerate inputs are handled explicitly rather than crashing mid-sweep:
an incast fan-in larger than the available senders is clamped (recorded
in :attr:`TrafficMatrix.notes`), a hot-rack pattern on a single-rack
topology draws its senders from inside the rack, and every generator
raises :class:`TrafficError` below two servers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.faults.plan import child_seed
from repro.topology.compiled import HAVE_NUMPY

if HAVE_NUMPY:
    import numpy as _np


class TrafficError(ValueError):
    """Raised on unusable traffic-matrix parameters."""


def _require_numpy() -> None:
    if not HAVE_NUMPY:
        raise TrafficError(
            "repro.traffic requires numpy; use repro.sim.traffic generators "
            "for the object-graph path"
        )


def _rng(seed: int, *labels: object):
    """A process-stable PCG64 generator for one (seed, label) path."""
    return _np.random.Generator(_np.random.PCG64(child_seed(seed, *labels)))


@dataclass(frozen=True)
class TrafficMatrix:
    """One workload: parallel ``src``/``dst``/``size`` flow arrays.

    Attributes:
        pattern: generator name (``"permutation"``, ``"incast"``, …).
        num_servers: ordinal space size the matrix was drawn for.
        src, dst: int64 server ordinals, one entry per flow.
        size: float64 data volume per flow (1.0 unless the generator
            says otherwise).
        seed: the seed the generator consumed.
        params: the caller's parameters, for provenance.
        notes: adjustments applied (clamps, fallbacks).
    """

    pattern: str
    num_servers: int
    src: Any
    dst: Any
    size: Any
    seed: int
    params: Mapping[str, Any] = field(default_factory=dict)
    notes: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if len(self.src) != len(self.dst) or len(self.src) != len(self.size):
            raise TrafficError("src/dst/size arrays must have equal length")
        if len(self.src) and bool((_np.asarray(self.src) == _np.asarray(self.dst)).any()):
            raise TrafficError(f"{self.pattern}: matrix contains src == dst flows")

    @property
    def num_flows(self) -> int:
        return len(self.src)

    @property
    def total_volume(self) -> float:
        return float(_np.asarray(self.size).sum())

    def flows(self, servers: Optional[Sequence[Any]] = None):
        """The legacy :class:`~repro.sim.traffic.Flow` view of the matrix.

        ``servers`` maps ordinals to identities (names, or the server
        list of a built network); omitted, flows carry the raw ordinals
        — which the :mod:`repro.sim` layer accepts since generators went
        id-agnostic.  This is the parity bridge to ``sim.flow``.
        """
        from repro.sim.traffic import Flow

        def ident(ordinal: int):
            return servers[ordinal] if servers is not None else int(ordinal)

        prefix = self.pattern[:4]
        return [
            Flow(f"{prefix}-{i}", ident(int(s)), ident(int(d)), size=float(z))
            for i, (s, d, z) in enumerate(zip(self.src, self.dst, self.size))
        ]

    def describe(self) -> str:
        parts = [f"{self.pattern}: {self.num_flows} flows over {self.num_servers} servers"]
        parts.extend(self.notes)
        return "; ".join(parts)


def _unit_matrix(
    pattern: str,
    num_servers: int,
    src,
    dst,
    seed: int,
    params: Mapping[str, Any],
    notes: Sequence[str] = (),
    size=None,
) -> TrafficMatrix:
    src = _np.ascontiguousarray(src, dtype=_np.int64)
    dst = _np.ascontiguousarray(dst, dtype=_np.int64)
    if size is None:
        size = _np.ones(len(src), dtype=_np.float64)
    return TrafficMatrix(
        pattern=pattern,
        num_servers=int(num_servers),
        src=src,
        dst=dst,
        size=size,
        seed=seed,
        params=dict(params),
        notes=tuple(notes),
    )


def _check_servers(num_servers: int, pattern: str) -> None:
    _require_numpy()
    if num_servers < 2:
        raise TrafficError(f"{pattern}: need at least two servers, got {num_servers}")


# ----------------------------------------------------------------------
# generator family
# ----------------------------------------------------------------------
def permutation_matrix(num_servers: int, seed: int = 0) -> TrafficMatrix:
    """A uniform random derangement: one flow out and one in per server.

    Drawn as a random permutation with fixed points repaired by cycling
    them among themselves (one fixed point swaps with a random other
    position) — O(S) numpy work, no per-element Python loop.
    """
    _check_servers(num_servers, "permutation")
    rng = _rng(seed, "traffic", "permutation", num_servers)
    dst = rng.permutation(num_servers)
    src = _np.arange(num_servers, dtype=_np.int64)
    fixed = _np.flatnonzero(dst == src)
    if fixed.size == 1:
        other = int(rng.integers(num_servers - 1))
        if other >= fixed[0]:
            other += 1
        dst[fixed[0]], dst[other] = dst[other], dst[fixed[0]]
    elif fixed.size > 1:
        dst[fixed] = dst[_np.roll(fixed, 1)]
    return _unit_matrix("permutation", num_servers, src, dst, seed, {})


def all_to_all_matrix(
    num_servers: int, max_flows: Optional[int] = None, seed: int = 0
) -> TrafficMatrix:
    """Every ordered pair — subsampled without replacement past ``max_flows``.

    Subsampling rejection-samples unique pair codes from the
    ``S * (S - 1)`` space, so million-server instances never materialise
    the full pair list.
    """
    _check_servers(num_servers, "all_to_all")
    total = num_servers * (num_servers - 1)
    params = {"max_flows": max_flows}
    if max_flows is None or max_flows >= total:
        src = _np.repeat(_np.arange(num_servers, dtype=_np.int64), num_servers - 1)
        offset = _np.tile(_np.arange(1, num_servers, dtype=_np.int64), num_servers)
        dst = (src + offset) % num_servers
        return _unit_matrix("all_to_all", num_servers, src, dst, seed, params)
    if max_flows < 1:
        raise TrafficError(f"all_to_all: max_flows must be >= 1, got {max_flows}")
    rng = _rng(seed, "traffic", "all_to_all", num_servers, max_flows)
    chosen = _np.empty(0, dtype=_np.int64)
    while chosen.size < max_flows:
        draw = rng.integers(0, total, size=2 * (max_flows - chosen.size) + 16)
        chosen = _np.unique(_np.concatenate([chosen, draw]))
    chosen = chosen[rng.permutation(chosen.size)[:max_flows]]
    src = chosen // (num_servers - 1)
    rest = chosen % (num_servers - 1)
    dst = (src + 1 + rest) % num_servers
    return _unit_matrix("all_to_all", num_servers, src, dst, seed, params)


def uniform_matrix(num_servers: int, num_flows: int, seed: int = 0) -> TrafficMatrix:
    """``num_flows`` independent uniform source/destination pairs."""
    _check_servers(num_servers, "uniform")
    if num_flows < 0:
        raise TrafficError(f"uniform: num_flows must be >= 0, got {num_flows}")
    rng = _rng(seed, "traffic", "uniform", num_servers, num_flows)
    src = rng.integers(0, num_servers, size=num_flows)
    gap = rng.integers(1, num_servers, size=num_flows)
    dst = (src + gap) % num_servers
    return _unit_matrix(
        "uniform", num_servers, src, dst, seed, {"num_flows": num_flows}
    )


def incast_matrix(
    num_servers: int,
    fan_in: int,
    num_targets: int = 1,
    seed: int = 0,
) -> TrafficMatrix:
    """Fan-in: ``fan_in`` distinct senders converge on each of
    ``num_targets`` distinct receivers.

    A ``fan_in`` larger than the available senders (``num_servers - 1``)
    is clamped and recorded in the matrix notes — the degenerate "ask
    for more senders than the cluster has" sweep point measures the
    full-cluster incast rather than crashing.
    """
    _check_servers(num_servers, "incast")
    if fan_in < 1:
        raise TrafficError(f"incast: fan_in must be >= 1, got {fan_in}")
    if not 1 <= num_targets <= num_servers:
        raise TrafficError(
            f"incast: num_targets must be in [1, {num_servers}], got {num_targets}"
        )
    params = {"fan_in": fan_in, "num_targets": num_targets}
    notes: List[str] = []
    effective = fan_in
    if fan_in > num_servers - 1:
        effective = num_servers - 1
        notes.append(
            f"fan_in={fan_in} exceeds {num_servers - 1} available senders; "
            f"clamped to {effective}"
        )
    rng = _rng(seed, "traffic", "incast", num_servers, fan_in, num_targets)
    targets = rng.choice(num_servers, size=num_targets, replace=False)
    srcs = []
    dsts = []
    for target in targets:
        senders = rng.choice(num_servers - 1, size=effective, replace=False)
        senders = senders + (senders >= target)  # skip the receiver itself
        srcs.append(senders)
        dsts.append(_np.full(effective, target, dtype=_np.int64))
    return _unit_matrix(
        "incast",
        num_servers,
        _np.concatenate(srcs),
        _np.concatenate(dsts),
        seed,
        params,
        notes,
    )


def hot_rack_matrix(
    num_servers: int,
    num_flows: int,
    rack_size: int = 40,
    num_hot_racks: int = 1,
    hot_fraction: float = 0.7,
    seed: int = 0,
) -> TrafficMatrix:
    """Skewed traffic toward a few hot racks.

    Racks are contiguous ordinal blocks of ``rack_size`` servers (the
    crossbar blocks, when ``rack_size`` is the crossbar size).
    ``hot_fraction`` of the flows pick a uniform destination inside a
    hot rack and a uniform source outside all hot racks; the remainder
    are uniform pairs.  On a single-rack topology there is no outside —
    sources fall back to in-rack servers (recorded in the notes), so
    the pattern degrades to an intra-rack hotspot instead of failing.
    """
    _check_servers(num_servers, "hot_rack")
    if rack_size < 1:
        raise TrafficError(f"hot_rack: rack_size must be >= 1, got {rack_size}")
    if not 0.0 <= hot_fraction <= 1.0:
        raise TrafficError(
            f"hot_rack: hot_fraction must be in [0, 1], got {hot_fraction}"
        )
    if num_flows < 0:
        raise TrafficError(f"hot_rack: num_flows must be >= 0, got {num_flows}")
    num_racks = (num_servers + rack_size - 1) // rack_size
    if not 1 <= num_hot_racks <= num_racks:
        raise TrafficError(
            f"hot_rack: num_hot_racks must be in [1, {num_racks}], got {num_hot_racks}"
        )
    params = {
        "num_flows": num_flows,
        "rack_size": rack_size,
        "num_hot_racks": num_hot_racks,
        "hot_fraction": hot_fraction,
    }
    notes: List[str] = []
    rng = _rng(
        seed, "traffic", "hot_rack", num_servers, rack_size, num_hot_racks, num_flows
    )
    hot_racks = rng.choice(num_racks, size=num_hot_racks, replace=False)
    hot_mask = _np.zeros(num_servers, dtype=bool)
    for rack in hot_racks:
        hot_mask[rack * rack_size : min((rack + 1) * rack_size, num_servers)] = True
    hot_servers = _np.flatnonzero(hot_mask)
    cold_servers = _np.flatnonzero(~hot_mask)

    is_hot_flow = rng.random(num_flows) < hot_fraction
    num_hot = int(is_hot_flow.sum())
    dst = _np.empty(num_flows, dtype=_np.int64)
    src = _np.empty(num_flows, dtype=_np.int64)
    dst[is_hot_flow] = hot_servers[rng.integers(0, hot_servers.size, size=num_hot)]
    if cold_servers.size:
        src[is_hot_flow] = cold_servers[
            rng.integers(0, cold_servers.size, size=num_hot)
        ]
    else:
        notes.append(
            "every server is in a hot rack (single-rack topology); "
            "senders drawn from inside the rack"
        )
        in_rack = rng.integers(0, num_servers - 1, size=num_hot)
        src[is_hot_flow] = in_rack + (in_rack >= dst[is_hot_flow])
    num_cold = num_flows - num_hot
    cold_src = rng.integers(0, num_servers, size=num_cold)
    cold_gap = rng.integers(1, num_servers, size=num_cold)
    src[~is_hot_flow] = cold_src
    dst[~is_hot_flow] = (cold_src + cold_gap) % num_servers
    return _unit_matrix("hot_rack", num_servers, src, dst, seed, params, notes)


def job_matrix(
    num_servers: int,
    num_jobs: int = 8,
    job_mix: Sequence[str] = ("shuffle", "incast", "disseminate"),
    scale: int = 8,
    seed: int = 0,
) -> TrafficMatrix:
    """Job-placement-driven traffic reusing the :mod:`repro.sim.jobs` shapes.

    Each job draws its placement with the :func:`repro.sim.jobs`
    generators over the *ordinal* space (they are id-agnostic), so the
    flow set is exactly what a job scheduler placing ``num_jobs``
    MapReduce-style jobs would offer the fabric: shuffles are ``m x r``
    bicliques, aggregates fan in, disseminates fan out.  ``scale``
    bounds the participants per job (clamped to the cluster size).
    """
    _check_servers(num_servers, "job")
    if num_jobs < 1:
        raise TrafficError(f"job: num_jobs must be >= 1, got {num_jobs}")
    if scale < 2:
        raise TrafficError(f"job: scale must be >= 2, got {scale}")
    for kind in job_mix:
        if kind not in ("shuffle", "incast", "disseminate"):
            raise TrafficError(f"job: unknown job kind {kind!r} in job_mix")
    if not job_mix:
        raise TrafficError("job: job_mix must not be empty")
    from repro.sim.jobs import disseminate_job, incast_job, shuffle_job

    params = {"num_jobs": num_jobs, "job_mix": tuple(job_mix), "scale": scale}
    notes: List[str] = []
    effective_scale = min(scale, num_servers - 1)
    if effective_scale < scale:
        notes.append(f"scale={scale} clamped to {effective_scale} participants")
    ordinals = range(num_servers)
    srcs: List[int] = []
    dsts: List[int] = []
    sizes: List[float] = []
    for j in range(num_jobs):
        kind = job_mix[j % len(job_mix)]
        job_seed = child_seed(seed, "traffic", "job", num_servers, j, kind)
        if kind == "shuffle":
            mappers = max(effective_scale // 2, 1)
            reducers = max(effective_scale - mappers, 1)
            job = shuffle_job(f"j{j}", 0.0, ordinals, mappers, reducers, seed=job_seed)
        elif kind == "incast":
            job = incast_job(f"j{j}", 0.0, ordinals, effective_scale, seed=job_seed)
        else:
            job = disseminate_job(
                f"j{j}", 0.0, ordinals, effective_scale, seed=job_seed
            )
        for flow in job.flows:
            srcs.append(int(flow.src))
            dsts.append(int(flow.dst))
            sizes.append(float(flow.size))
    return _unit_matrix(
        "job",
        num_servers,
        _np.asarray(srcs, dtype=_np.int64),
        _np.asarray(dsts, dtype=_np.int64),
        seed,
        params,
        notes,
        size=_np.asarray(sizes, dtype=_np.float64),
    )


#: pattern name -> generator.  All take ``(num_servers, seed=, **params)``.
MATRICES: Dict[str, Callable[..., TrafficMatrix]] = {
    "permutation": permutation_matrix,
    "all_to_all": all_to_all_matrix,
    "uniform": uniform_matrix,
    "incast": incast_matrix,
    "hot_rack": hot_rack_matrix,
    "job": job_matrix,
}

#: sensible scale-aware defaults per pattern when the caller gives none.
def default_params(pattern: str, num_servers: int) -> Dict[str, Any]:
    """Parameters that make ``pattern`` meaningful at ``num_servers``."""
    if pattern == "all_to_all":
        return {"max_flows": min(num_servers * (num_servers - 1), 4 * num_servers)}
    if pattern == "uniform":
        return {"num_flows": 2 * num_servers}
    if pattern == "incast":
        return {"fan_in": min(64, num_servers - 1), "num_targets": max(num_servers // 512, 1)}
    if pattern == "hot_rack":
        return {"num_flows": 2 * num_servers, "rack_size": min(40, num_servers)}
    if pattern == "job":
        return {"num_jobs": max(num_servers // 128, 8)}
    return {}


def generate_matrix(
    pattern: str, num_servers: int, seed: int = 0, **params: Any
) -> TrafficMatrix:
    """Dispatch to a generator by name, filling scale-aware defaults."""
    _require_numpy()
    try:
        generator = MATRICES[pattern]
    except KeyError:
        raise TrafficError(
            f"unknown traffic pattern {pattern!r}; "
            f"available: {', '.join(sorted(MATRICES))}"
        ) from None
    merged = default_params(pattern, num_servers)
    merged.update(params)
    return generator(num_servers, seed=seed, **merged)
