"""Apply failure scenarios as masks over a compiled CSR graph.

The historic failure path materialises every trial:
``subgraph_without`` copies the dict graph, ``compile_graph`` rebuilds
the CSR arrays, and only then does the connectivity question get
answered.  A :class:`MaskedGraph` skips both copies — it keeps the
original :class:`~repro.topology.compiled.CompiledGraph` and overlays a
node-alive bitmap plus a dead-entry set, so a degradation sweep reuses
one compiled kernel across all its trials.

Parity: :func:`masked_connection_ratio` and
:func:`masked_largest_component_fraction` reproduce the legacy
``connection_ratio`` / ``largest_component_fraction`` results *exactly*
(same sampling RNG, same alive-server ordering); the tests in
``tests/test_faults_mask.py`` assert identity on randomised scenarios
across topology families.
"""

from __future__ import annotations

import random
from array import array
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.faults.plan import FailureScenario, FaultPlan
from repro.topology.compiled import (
    HAVE_NUMPY,
    CompiledGraph,
    CSRGraphView,
    compile_graph,
)
from repro.topology.graph import Network

if HAVE_NUMPY:
    import numpy as _np


def _scenario_of(scenario) -> FailureScenario:
    return scenario.scenario if isinstance(scenario, FaultPlan) else scenario


class MaskedGraph:
    """A compiled graph with one failure scenario overlaid as masks."""

    __slots__ = (
        "graph",
        "node_alive",
        "dead_entries",
        "dead_edge_ids",
        "_labels",
        "_sweep_view",
    )

    def __init__(self, graph: CompiledGraph, scenario) -> None:
        scenario = _scenario_of(scenario)
        self.graph = graph
        index = graph.index
        dead_nodes = [
            i
            for name in scenario.dead_servers + scenario.dead_switches
            for i in (index.get(name),)
            if i is not None
        ]
        if HAVE_NUMPY:
            alive = _np.ones(graph.num_nodes, dtype=bool)
            alive[dead_nodes] = False
            self.node_alive = alive
        else:
            self.node_alive = [True] * graph.num_nodes
            for i in dead_nodes:
                self.node_alive[i] = False
        dead_entries: Set[int] = set()
        dead_edge_ids: List[int] = []
        for u_name, v_name in scenario.dead_links:
            u, v = index.get(u_name), index.get(v_name)
            if u is None or v is None:
                continue
            try:
                dead_entries.add(graph.entry_index(u, v))
                dead_entries.add(graph.entry_index(v, u))
            except KeyError:
                continue  # legacy subgraph_without ignores missing links too
            try:
                dead_edge_ids.append(graph.edge_id(u, v))
            except KeyError:  # pragma: no cover - entry without edge row
                pass
        self.dead_entries: Optional[Set[int]] = dead_entries or None
        self.dead_edge_ids: Tuple[int, ...] = tuple(dead_edge_ids)
        self._labels = None
        self._sweep_view: Optional[CSRGraphView] = None

    @classmethod
    def from_indices(
        cls,
        graph: CompiledGraph,
        dead_nodes: Sequence[int] = (),
        dead_edges: Sequence[int] = (),
    ) -> "MaskedGraph":
        """Overlay a failure draw given as node ids and edge ids.

        The name-free constructor for lazy-name fast graphs (apply an
        :class:`~repro.faults.plan.IndexFaultPlan`, or any id-space
        draw): no name is ever resolved or materialised.  ``dead_edges``
        are positions into ``edge_u``/``edge_v``; both CSR entries of
        each edge are masked, so sweeps and component labels see the
        same degraded adjacency the name path would produce.
        """
        masked = cls.__new__(cls)
        masked.graph = graph
        dead_node_list = [int(i) for i in dead_nodes]
        if HAVE_NUMPY:
            alive = _np.ones(graph.num_nodes, dtype=bool)
            alive[dead_node_list] = False
            masked.node_alive = alive
        else:
            masked.node_alive = [True] * graph.num_nodes
            for i in dead_node_list:
                masked.node_alive[i] = False
        dead_entries: Set[int] = set()
        edge_u, edge_v = graph.edge_u, graph.edge_v
        for e in dead_edges:
            u, v = int(edge_u[int(e)]), int(edge_v[int(e)])
            dead_entries.add(graph.entry_index(u, v))
            dead_entries.add(graph.entry_index(v, u))
        masked.dead_entries = dead_entries or None
        masked.dead_edge_ids = tuple(int(e) for e in dead_edges)
        masked._labels = None
        masked._sweep_view = None
        return masked

    @classmethod
    def from_plan(cls, graph: CompiledGraph, plan) -> "MaskedGraph":
        """Apply either plan flavor: name-based scenarios route through
        the name-resolving constructor, index plans stay in id space."""
        if hasattr(plan, "dead_nodes"):
            return cls.from_indices(graph, plan.dead_nodes, plan.dead_edges)
        return cls(graph, plan)

    # ------------------------------------------------------------------
    def component_labels(self):
        """Masked component labels (``-1`` for dead nodes), cached."""
        if self._labels is None:
            self._labels = self.graph.component_labels_masked(
                self.node_alive, self.dead_entries
            )
        return self._labels

    def alive_servers(self) -> List[str]:
        """Names of alive servers, in the network's insertion order.

        Matches ``subgraph_without(...).servers`` because both the
        compile order and ``Network.copy`` preserve insertion order.
        """
        names, alive = self.graph.names, self.node_alive
        return [names[i] for i in self.graph.server_indices if alive[i]]

    def sweep_view(self) -> CSRGraphView:
        """Alive-only kernel view of the masked graph, cached.

        Same node-id space as the parent graph: dead nodes keep their
        ids but lose every CSR entry, dead links lose their two entries,
        and ``server_indices`` shrinks to the alive servers — so the
        sweep engine (:func:`repro.metrics.engine
        .sweep_graph_distance_stats`, :func:`~repro.metrics.engine
        .pairwise_distances`) runs on the degraded topology without a
        ``subgraph_without`` copy or recompile.  Distances between alive
        servers match compiling the failure-injected subgraph exactly.
        """
        if self._sweep_view is not None:
            return self._sweep_view
        graph = self.graph
        num_nodes = graph.num_nodes
        if HAVE_NUMPY:
            neighbors = _np.asarray(graph.neighbors)
            rows = graph._entry_rows()
            alive = _np.asarray(self.node_alive, dtype=bool)
            keep = alive[rows] & alive[neighbors.astype(_np.int64)]
            if self.dead_entries:
                keep[list(self.dead_entries)] = False
            kept = _np.ascontiguousarray(neighbors[keep], dtype=_np.uint32)
            counts = _np.bincount(rows[keep], minlength=num_nodes)
            offsets = _np.zeros(num_nodes + 1, dtype=_np.int64)
            _np.cumsum(counts, out=offsets[1:])
            servers = _np.asarray(graph.server_indices)
            alive_servers = _np.ascontiguousarray(
                servers[alive[servers.astype(_np.int64)]], dtype=_np.uint32
            )
            view = CSRGraphView(
                num_nodes, offsets.astype(_np.uint32), kept, alive_servers
            )
        else:
            offsets, neighbors = graph.offsets, graph.neighbors
            alive = self.node_alive
            dead_entries = self.dead_entries or ()
            new_offsets = [0]
            kept_list: List[int] = []
            for u in range(num_nodes):
                if alive[u]:
                    for j in range(offsets[u], offsets[u + 1]):
                        v = neighbors[j]
                        if j in dead_entries or not alive[v]:
                            continue
                        kept_list.append(int(v))
                new_offsets.append(len(kept_list))
            alive_servers_list = [
                int(i) for i in graph.server_indices if alive[i]
            ]
            view = CSRGraphView(
                num_nodes,
                array("q", new_offsets),
                array("q", kept_list),
                array("q", alive_servers_list),
            )
        self._sweep_view = view
        return view

    def num_alive_servers(self) -> int:
        alive = self.node_alive
        if HAVE_NUMPY:
            return int(_np.asarray(alive, dtype=bool)[self.graph.server_indices].sum())
        return sum(1 for i in self.graph.server_indices if alive[i])

    def connected(self, src: str, dst: str) -> bool:
        """Are two alive nodes in the same alive component?"""
        index = self.graph.index
        u, v = index[src], index[dst]
        if not (self.node_alive[u] and self.node_alive[v]):
            return False
        labels = self.component_labels()
        return labels[u] == labels[v]

    def largest_component_fraction(self) -> float:
        """Alive servers in the largest component / alive servers.

        Dead servers carry label ``-1``, so the alive-server count and
        the component membership histogram both fall out of the label
        array directly (vectorised when numpy is present).
        """
        labels = self.component_labels()
        if HAVE_NUMPY:
            server_labels = _np.asarray(labels)[self.graph.server_indices]
            server_labels = server_labels[server_labels >= 0]
            if server_labels.size == 0:
                return 0.0
            return int(_np.bincount(server_labels).max()) / int(server_labels.size)
        alive_total = self.num_alive_servers()
        if alive_total == 0:
            return 0.0
        members: Dict[int, int] = {}
        for server in self.graph.server_indices:
            label = int(labels[server])
            if label < 0:
                continue
            members[label] = members.get(label, 0) + 1
        return max(members.values()) / alive_total

    def alive_server_indices(self):
        """Node ids of alive servers, insertion order (flat int sequence)."""
        servers = self.graph.server_indices
        alive = self.node_alive
        if HAVE_NUMPY:
            servers = _np.asarray(servers)
            mask = _np.asarray(alive, dtype=bool)[servers.astype(_np.int64)]
            return servers[mask]
        return array("q", (int(i) for i in servers if alive[i]))

    def connection_ratio_indexed(self, sample_pairs: int = 200, seed: int = 0) -> float:
        """Sampled pair-connectivity ratio over server *indices*.

        Same estimator as :meth:`connection_ratio` but the RNG draws
        positions into the alive-server index array instead of names,
        so no name string is ever materialised — this is the query
        path for million-server fast-built graphs whose name tables
        are lazy.  (The draws differ from :meth:`connection_ratio` for
        the same seed: that method samples the *name list* to stay
        bit-identical with the legacy protocol.)
        """
        alive_idx = self.alive_server_indices()
        count = len(alive_idx)
        if count < 2:
            return 0.0
        rng = random.Random(seed)
        labels = self.component_labels()
        connected = 0
        for _ in range(sample_pairs):
            a, b = rng.sample(range(count), 2)
            if labels[int(alive_idx[a])] == labels[int(alive_idx[b])]:
                connected += 1
        return connected / sample_pairs

    def cut_off_servers(self, limit: int = 10):
        """Alive servers outside the largest alive component.

        Returns ``(count, names)`` where ``names`` holds at most
        ``limit`` examples (insertion order) — the "what breaks if this
        rack dies" answer: servers that survive the failure but lose
        the majority partition.  ``(0, [])`` when no server survives.
        """
        labels = self.component_labels()
        if HAVE_NUMPY:
            servers = _np.asarray(self.graph.server_indices).astype(_np.int64)
            server_labels = _np.asarray(labels)[servers]
            alive = server_labels >= 0
            if not bool(alive.any()):
                return 0, []
            majority = int(_np.bincount(server_labels[alive]).argmax())
            cut = alive & (server_labels != majority)
            count = int(cut.sum())
            names = self.graph.names
            examples = [names[int(i)] for i in servers[cut][:limit]]
            return count, examples
        counts: Dict[int, int] = {}
        for server in self.graph.server_indices:
            label = int(labels[server])
            if label >= 0:
                counts[label] = counts.get(label, 0) + 1
        if not counts:
            return 0, []
        majority = max(counts, key=lambda label: (counts[label], -label))
        names = self.graph.names
        count = 0
        examples: List[str] = []
        for server in self.graph.server_indices:
            label = int(labels[server])
            if label >= 0 and label != majority:
                count += 1
                if len(examples) < limit:
                    examples.append(names[int(server)])
        return count, examples

    def connection_ratio(self, sample_pairs: int = 200, seed: int = 0) -> float:
        """Fraction of sampled alive server pairs still mutually reachable.

        Replicates the legacy ``connection_ratio`` protocol bit for bit:
        one ``random.Random(seed)``, ``sample_pairs`` draws of
        ``rng.sample(alive_servers, 2)`` over the insertion-ordered
        alive-server list.
        """
        servers = self.alive_servers()
        if len(servers) < 2:
            return 0.0
        rng = random.Random(seed)
        labels = self.component_labels()
        index = self.graph.index
        connected = 0
        total = 0
        for _ in range(sample_pairs):
            src, dst = rng.sample(servers, 2)
            total += 1
            if labels[index[src]] == labels[index[dst]]:
                connected += 1
        return connected / total if total else 0.0

    def panel_ratio(self, panel: Sequence[Sequence[int]]) -> float:
        """Connection ratio over a fixed panel of server *index* pairs.

        Pairs with a dead endpoint are excluded (the ratio is over alive
        pairs, like the sampled protocol); returns 0.0 when no panel
        pair survives.  This is the degradation-sweep fast path: the
        panel is drawn once per sweep, so a trial costs two list
        lookups per pair instead of an RNG draw.
        """
        labels = self.component_labels()
        alive = self.node_alive
        if HAVE_NUMPY:
            arr = _np.asarray(panel)
            pu, pv = arr[:, 0], arr[:, 1]
            alive_arr = _np.asarray(alive, dtype=bool)
            ok = alive_arr[pu] & alive_arr[pv]
            total = int(ok.sum())
            if not total:
                return 0.0
            lab = _np.asarray(labels)
            connected = int((ok & (lab[pu] == lab[pv])).sum())
            return connected / total
        connected = 0
        total = 0
        for u, v in panel:
            if not (alive[u] and alive[v]):
                continue
            total += 1
            if labels[u] == labels[v]:
                connected += 1
        return connected / total if total else 0.0


# ----------------------------------------------------------------------
# drop-in masked equivalents of the legacy metric entry points
# ----------------------------------------------------------------------
def masked_connection_ratio(
    net: Network, scenario, sample_pairs: int = 200, seed: int = 0
) -> float:
    """``connection_ratio`` without the subgraph copy + recompile.

    Produces exactly the legacy value for the same arguments.
    """
    return MaskedGraph(compile_graph(net), scenario).connection_ratio(
        sample_pairs=sample_pairs, seed=seed
    )


def masked_largest_component_fraction(net: Network, scenario) -> float:
    """``largest_component_fraction`` without copy + recompile."""
    return MaskedGraph(compile_graph(net), scenario).largest_component_fraction()
