"""Unified fault models: scenarios, plans, and seed-streamed generators.

Every failure experiment in the repo used to hand-roll its own draws
(``draw_failures`` here, ``draw_rack_failures`` there, churn's inline
exponential lifetimes in :mod:`repro.sim.churn`).  This module is the
single home for that logic:

* :class:`FailureScenario` — the *what*: which servers, switches and
  links are dead.  (Re-exported by :mod:`repro.metrics.connectivity`
  for backward compatibility.)
* :class:`FaultPlan` — a scenario plus full provenance: the model that
  produced it, the requested parameters, the seed, and the *effective*
  dead counts (what a fraction actually rounded to on this instance).
* Generators — :func:`random_failures`, :func:`rack_failures`,
  :func:`explicit_failures` and the churn up/down process
  :func:`churn_events` — all derive their randomness from one
  seed-streaming scheme (:func:`child_seed`), so every consumer gets an
  independent, process-stable stream from a single experiment seed.

Rounding guard: ``round(fraction * population)`` silently selects zero
components on small quick-mode instances (5% of 8 switches is 0.4 → 0),
which made quick runs measure an *unfailed* network.  A nonzero fraction
now floors at one dead component and emits a
:class:`FaultRoundingWarning`; the adjustment is recorded on the plan.
"""

from __future__ import annotations

import hashlib
import random
import warnings
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.topology.graph import Network


class FaultRoundingWarning(UserWarning):
    """A nonzero failure fraction rounded to zero and was floored to 1."""


@dataclass(frozen=True)
class FailureScenario:
    """One failure draw: the dead component sets."""

    dead_servers: Tuple[str, ...]
    dead_switches: Tuple[str, ...]
    dead_links: Tuple[Tuple[str, str], ...]

    @property
    def is_empty(self) -> bool:
        return not (self.dead_servers or self.dead_switches or self.dead_links)


@dataclass(frozen=True)
class FaultPlan:
    """A :class:`FailureScenario` with full provenance.

    Attributes:
        model: generator name (``"random"``, ``"rack"``, ``"explicit"``).
        scenario: the dead component sets.
        seed: the seed the generator consumed (``None`` for explicit).
        requested: the caller's parameters (fractions, rack count, …).
        effective: actual dead counts per component class.
        notes: human-readable adjustments (e.g. rounding floors).
    """

    model: str
    scenario: FailureScenario
    seed: Optional[int]
    requested: Mapping[str, float] = field(default_factory=dict)
    effective: Mapping[str, int] = field(default_factory=dict)
    notes: Tuple[str, ...] = ()

    @property
    def is_empty(self) -> bool:
        return self.scenario.is_empty


def _effective_counts(scenario: FailureScenario) -> Dict[str, int]:
    return {
        "dead_servers": len(scenario.dead_servers),
        "dead_switches": len(scenario.dead_switches),
        "dead_links": len(scenario.dead_links),
    }


# ----------------------------------------------------------------------
# seed streaming
# ----------------------------------------------------------------------
def child_seed(seed: int, *labels: object) -> int:
    """A stable child seed derived from ``seed`` and a label path.

    Unlike ``hash()``, the derivation is independent of
    ``PYTHONHASHSEED`` and of the process, so worker pools, resumed runs
    and re-ordered loops all see the same stream for the same labels.
    """
    text = ":".join([str(int(seed))] + [str(label) for label in labels])
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def seed_stream(seed: int, *labels: object) -> random.Random:
    """An independent :class:`random.Random` for one (seed, label) path."""
    return random.Random(child_seed(seed, *labels))


# ----------------------------------------------------------------------
# generators
# ----------------------------------------------------------------------
_SORTED_COMPONENTS_KEY = "_fault_components"


def _sorted_components(net: Network):
    """``(servers, switches, link_keys)`` sorted; cached on ``net.meta``.

    Random draws sample from sorted name lists so the draw depends only
    on the network's content, not its construction order.  The sort is
    O(N log N) per call, which dominates a masked trial — cache it keyed
    on :attr:`Network.version` like the compiled views.
    """
    cache = net.meta.get(_SORTED_COMPONENTS_KEY)
    if not isinstance(cache, dict) or cache.get("version") != net.version:
        cache = {
            "version": net.version,
            "servers": sorted(net.servers),
            "switches": sorted(net.switches),
            "links": sorted(link.key for link in net.links()),
        }
        net.meta[_SORTED_COMPONENTS_KEY] = cache
    return cache["servers"], cache["switches"], cache["links"]


def _dead_count(
    fraction: float, population: int, kind: str, notes: List[str]
) -> int:
    count = round(fraction * population)
    if fraction > 0.0 and population > 0 and count == 0:
        note = (
            f"{kind}_fraction={fraction} rounds to zero of {population} "
            f"{kind}s; floored to 1 dead {kind}"
        )
        warnings.warn(FaultRoundingWarning(note), stacklevel=4)
        notes.append(note)
        count = 1
    return count


def random_failures(
    net: Network,
    server_fraction: float = 0.0,
    switch_fraction: float = 0.0,
    link_fraction: float = 0.0,
    seed: int = 0,
) -> FaultPlan:
    """Fail a uniform random fraction of each component class.

    The sampling protocol (one ``random.Random(seed)``, servers then
    switches then links, populations in sorted name order) matches the
    historic ``draw_failures`` exactly, except that nonzero fractions
    floor at one dead component (see :class:`FaultRoundingWarning`).
    """
    for name, fraction in (
        ("server", server_fraction),
        ("switch", switch_fraction),
        ("link", link_fraction),
    ):
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"{name}_fraction must be in [0, 1], got {fraction}")
    rng = random.Random(seed)
    servers, switches, links = _sorted_components(net)
    notes: List[str] = []

    def _draw(population, count):
        # sample(pop, 0) consumes no RNG state, so skipping it entirely
        # is stream-identical to the historic protocol — just faster.
        return tuple(rng.sample(population, count)) if count else ()

    scenario = FailureScenario(
        dead_servers=_draw(
            servers, _dead_count(server_fraction, len(servers), "server", notes)
        ),
        dead_switches=_draw(
            switches, _dead_count(switch_fraction, len(switches), "switch", notes)
        ),
        dead_links=_draw(
            links, _dead_count(link_fraction, len(links), "link", notes)
        ),
    )
    return FaultPlan(
        model="random",
        scenario=scenario,
        seed=seed,
        requested={
            "server_fraction": server_fraction,
            "switch_fraction": switch_fraction,
            "link_fraction": link_fraction,
        },
        effective=_effective_counts(scenario),
        notes=tuple(notes),
    )


_RACK_CACHE_KEY = "_fault_racks"


def rack_assignment(net: Network, rack_capacity: int) -> Dict[str, str]:
    """The layout model's rack map, cached per (network version, capacity)."""
    cache = net.meta.get(_RACK_CACHE_KEY)
    if (
        not isinstance(cache, dict)
        or cache.get("version") != net.version
        or cache.get("capacity") != rack_capacity
    ):
        from repro.metrics.layout import LayoutConfig, assign_racks

        cache = {
            "version": net.version,
            "capacity": rack_capacity,
            "racks": assign_racks(net, LayoutConfig(rack_capacity=rack_capacity)),
        }
        net.meta[_RACK_CACHE_KEY] = cache
    return cache["racks"]


def rack_failures(
    net: Network,
    num_racks: int,
    rack_capacity: int = 40,
    seed: int = 0,
) -> FaultPlan:
    """Correlated failure: whole racks go dark (PDU/cooling events).

    Uses the same address-order rack assignment as the layout model
    (:mod:`repro.metrics.layout`) and kills every server *and switch*
    placed in ``num_racks`` randomly chosen racks.
    """
    racks = rack_assignment(net, rack_capacity)
    all_racks = sorted(set(racks.values()))
    if not 0 <= num_racks <= len(all_racks):
        raise ValueError(f"num_racks must be in [0, {len(all_racks)}], got {num_racks}")
    rng = random.Random(seed)
    dead_racks = set(rng.sample(all_racks, num_racks))
    scenario = FailureScenario(
        dead_servers=tuple(
            sorted(name for name in net.servers if racks[name] in dead_racks)
        ),
        dead_switches=tuple(
            sorted(name for name in net.switches if racks[name] in dead_racks)
        ),
        dead_links=(),
    )
    return FaultPlan(
        model="rack",
        scenario=scenario,
        seed=seed,
        requested={"num_racks": num_racks, "rack_capacity": rack_capacity},
        effective=_effective_counts(scenario),
    )


def explicit_failures(
    dead_servers: Iterable[str] = (),
    dead_switches: Iterable[str] = (),
    dead_links: Iterable[Tuple[str, str]] = (),
) -> FaultPlan:
    """Wrap a hand-picked failure set in a provenance-carrying plan."""
    scenario = FailureScenario(
        dead_servers=tuple(dead_servers),
        dead_switches=tuple(dead_switches),
        dead_links=tuple(dead_links),
    )
    return FaultPlan(
        model="explicit",
        scenario=scenario,
        seed=None,
        effective=_effective_counts(scenario),
    )


# ----------------------------------------------------------------------
# index-based plans (lazy-name fast graphs never resolve a name)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class IndexFaultPlan:
    """A failure draw expressed in node ids and edge ids, with provenance.

    The fast-built graphs keep their name tables lazy; resolving a
    scenario's name strings would materialise exactly what the fast path
    avoids.  An :class:`IndexFaultPlan` stays in the compiled id space:
    ``dead_nodes`` are node ids (servers or switches), ``dead_edges``
    are positions into ``edge_u``/``edge_v``.  Apply with
    :meth:`repro.faults.mask.MaskedGraph.from_indices`.
    """

    model: str
    dead_nodes: Tuple[int, ...]
    dead_edges: Tuple[int, ...]
    seed: Optional[int]
    requested: Mapping[str, float] = field(default_factory=dict)
    effective: Mapping[str, int] = field(default_factory=dict)
    notes: Tuple[str, ...] = ()

    @property
    def is_empty(self) -> bool:
        return not (self.dead_nodes or self.dead_edges)


def random_index_failures(
    graph,
    server_fraction: float = 0.0,
    switch_fraction: float = 0.0,
    link_fraction: float = 0.0,
    seed: int = 0,
) -> IndexFaultPlan:
    """Uniform random failures drawn directly over a compiled graph.

    The populations are the graph's server node ids, switch node ids
    (every non-server node) and edge ids; each class draws from its own
    :func:`child_seed` PCG64 stream, so the plan is stable across
    processes and independent of draw order.  Nonzero fractions floor at
    one dead component (:class:`FaultRoundingWarning`), matching
    :func:`random_failures`.

    This is the name-free twin of :func:`random_failures`, not a
    stream-compatible replacement: the name-based protocol samples
    sorted *name* lists with one shared ``random.Random``.
    """
    from repro.topology.compiled import HAVE_NUMPY

    if not HAVE_NUMPY:
        raise RuntimeError("random_index_failures requires numpy")
    import numpy as np

    for name, fraction in (
        ("server", server_fraction),
        ("switch", switch_fraction),
        ("link", link_fraction),
    ):
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"{name}_fraction must be in [0, 1], got {fraction}")

    servers = np.sort(np.asarray(graph.server_indices, dtype=np.int64))
    is_server = np.zeros(graph.num_nodes, dtype=bool)
    is_server[servers] = True
    switches = np.flatnonzero(~is_server)
    num_edges = len(graph.edge_u)
    notes: List[str] = []

    def _draw(population, fraction: float, kind: str, label: str):
        count = _dead_count(fraction, len(population), kind, notes)
        if not count:
            return np.empty(0, dtype=np.int64)
        rng = np.random.Generator(np.random.PCG64(child_seed(seed, "faults", label)))
        return np.sort(population[rng.choice(len(population), count, replace=False)])

    dead_servers = _draw(servers, server_fraction, "server", "servers")
    dead_switches = _draw(switches, switch_fraction, "switch", "switches")
    dead_edges = _draw(
        np.arange(num_edges, dtype=np.int64), link_fraction, "link", "links"
    )
    return IndexFaultPlan(
        model="random-index",
        dead_nodes=tuple(int(i) for i in dead_servers)
        + tuple(int(i) for i in dead_switches),
        dead_edges=tuple(int(e) for e in dead_edges),
        seed=seed,
        requested={
            "server_fraction": server_fraction,
            "switch_fraction": switch_fraction,
            "link_fraction": link_fraction,
        },
        effective={
            "dead_servers": int(len(dead_servers)),
            "dead_switches": int(len(dead_switches)),
            "dead_links": int(len(dead_edges)),
        },
        notes=tuple(notes),
    )


# ----------------------------------------------------------------------
# level-parameterised models (what a degradation sweep iterates over)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FaultModel:
    """A family of failure draws parameterised by a severity *level*.

    ``kind`` selects what a level means:

    * ``"server"`` / ``"switch"`` / ``"link"`` — level is the failed
      fraction of that component class;
    * ``"server+switch"`` — level is applied to servers and switches
      simultaneously (the F8b/E6 setting);
    * ``"rack"`` — level is the integer number of dead racks
      (``rack_capacity`` sizes them).
    """

    kind: str
    rack_capacity: int = 40

    _KINDS = ("server", "switch", "link", "server+switch", "rack")

    def __post_init__(self) -> None:
        if self.kind not in self._KINDS:
            raise ValueError(f"kind must be one of {self._KINDS}, got {self.kind!r}")

    def draw(self, net: Network, level: float, seed: int) -> FaultPlan:
        """One plan at ``level`` severity from the model's distribution."""
        if self.kind == "rack":
            return rack_failures(
                net, int(level), rack_capacity=self.rack_capacity, seed=seed
            )
        fractions = {
            "server_fraction": level if self.kind in ("server", "server+switch") else 0.0,
            "switch_fraction": level if self.kind in ("switch", "server+switch") else 0.0,
            "link_fraction": level if self.kind == "link" else 0.0,
        }
        return random_failures(net, seed=seed, **fractions)


# ----------------------------------------------------------------------
# churn: the continuous up/down process
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ChurnEvent:
    """One component state transition in a churn realisation."""

    time: float
    component: str
    up: bool  # True = repaired, False = failed


def churn_events(
    lifetimes: Mapping[str, Tuple[float, float]],
    duration: float,
    seed: int = 0,
) -> List[ChurnEvent]:
    """A deterministic realisation of the exponential up/down process.

    ``lifetimes`` maps each component name to ``(mtbf, mttr)``.  Every
    component alternates UP → (fail) → DOWN → (repair) → UP with
    exponential holding times drawn from its *own* child stream
    (:func:`seed_stream` keyed on the component name), so a realisation
    is independent of dict ordering and reproducible across processes.
    Events are returned sorted by ``(time, component)``; all times are
    strictly below ``duration``.
    """
    if duration <= 0:
        raise ValueError(f"duration must be positive, got {duration}")
    events: List[ChurnEvent] = []
    for component in sorted(lifetimes):
        mtbf, mttr = lifetimes[component]
        if mtbf <= 0 or mttr <= 0:
            raise ValueError(
                f"mtbf/mttr must be positive for {component!r}, got ({mtbf}, {mttr})"
            )
        rng = seed_stream(seed, "churn", component)
        now = rng.expovariate(1.0 / mtbf)
        up = False  # the first transition is a failure
        while now < duration:
            events.append(ChurnEvent(now, component, up))
            now += rng.expovariate(1.0 / (mtbf if up else mttr))
            up = not up
    events.sort(key=lambda event: (event.time, event.component))
    return events
