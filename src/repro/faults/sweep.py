"""Degradation sweeps: masked-CSR failure trials, journaled and parallel.

One call answers the paper's headline resilience question — how does
the connection ratio degrade as failures grow? — for any topology and
any :class:`~repro.faults.plan.FaultModel`:

``degradation_sweep(net, model, levels, trials)`` draws ``trials``
scenarios per severity level, evaluates each as an int-mask over the
*one* compiled CSR graph (no ``subgraph_without`` copy, no recompile —
see :mod:`repro.faults.mask`), and returns per-level connection-ratio
and largest-component curves with 95% confidence intervals.

Robustness:

* every completed trial is journaled (when a
  :class:`~repro.faults.journal.TrialJournal` is active or passed), so
  a killed run resumes without recomputing finished trials;
* worker fan-out goes through
  :func:`repro.metrics.engine.map_with_pool_recovery` — a crashed pool
  is retried once, then degraded to sequential with a loud
  :class:`~repro.metrics.engine.DegradedModeWarning`;
* ``use_masking=False`` keeps the legacy copy-and-recompile path, which
  produces *identical* trial results (asserted by the parity tests) and
  exists for exactly that purpose.

``REPRO_FAULTS_TRIAL_SLEEP`` (seconds, float) throttles each computed
trial — a test hook so crash/resume tests can interrupt a quick-mode
run deterministically.  ``REPRO_FAULTS_TRIAL_TRACE`` (a file path)
appends the key of every trial actually *computed* (journal replays are
not traced) — the resume tests use it to prove completed trials are
never recomputed.
"""

from __future__ import annotations

import math
import os
import statistics
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.faults.journal import TrialJournal, get_active_journal
from repro.faults.mask import MaskedGraph
from repro.faults.plan import FailureScenario, FaultModel, FaultPlan, child_seed, seed_stream
from repro.metrics.engine import map_with_pool_recovery, resolve_workers
from repro.obs import trace as _obs
from repro.topology.compiled import CompiledGraph, compile_graph
from repro.topology.graph import Network

#: fewer pending trials than this and process fan-out cannot pay off.
SWEEP_PARALLEL_THRESHOLD = 8


@dataclass(frozen=True)
class TrialOutcome:
    """One evaluated failure trial."""

    level: float
    trial: int
    seed: int
    connection_ratio: float
    largest_component: float
    alive_servers: int
    dead_servers: int
    dead_switches: int
    dead_links: int


@dataclass(frozen=True)
class LevelStats:
    """Aggregates over the trials of one severity level."""

    level: float
    trials: int
    mean_ratio: float
    ci95_ratio: float
    mean_largest: float
    ci95_largest: float
    mean_alive_servers: float


@dataclass(frozen=True)
class DegradationCurve:
    """The result of one sweep: per-level stats plus raw trial outcomes."""

    net_name: str
    model: str
    sample_pairs: int
    points: Tuple[LevelStats, ...]
    outcomes: Tuple[TrialOutcome, ...]

    def point(self, level: float) -> LevelStats:
        for stats in self.points:
            if stats.level == level:
                return stats
        raise KeyError(f"no level {level!r} in sweep of {self.net_name!r}")


def _ci95(values: Sequence[float]) -> float:
    """Half-width of the normal 95% CI of the mean (sample stdev).

    Plain float arithmetic — ``statistics.stdev`` goes through exact
    ``Fraction`` math, which showed up in sweep profiles.
    """
    n = len(values)
    if n < 2:
        return 0.0
    mean = sum(values) / n
    variance = sum((v - mean) ** 2 for v in values) / (n - 1)
    return 1.96 * math.sqrt(variance / n)


def _model_tag(model: FaultModel) -> str:
    if model.kind == "rack":
        return f"rack@rc{model.rack_capacity}"
    return model.kind


def _trial_sleep() -> None:
    delay = os.environ.get("REPRO_FAULTS_TRIAL_SLEEP", "").strip()
    if delay:
        time.sleep(float(delay))


def _trace_computed(key: str) -> None:
    path = os.environ.get("REPRO_FAULTS_TRIAL_TRACE", "").strip()
    if path:
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(key + "\n")


# ----------------------------------------------------------------------
# trial evaluation (masked fast path and legacy reference path)
# ----------------------------------------------------------------------
def _evaluate_masked(
    graph: CompiledGraph, panel: Sequence[Tuple[int, int]], scenario: FailureScenario
) -> Tuple[float, float, int]:
    """``(connection_ratio, largest_component, alive_servers)`` via masks."""
    with _obs.span("faults.mask"):
        masked = MaskedGraph(graph, scenario)
    with _obs.span("faults.trial"):
        _obs.counter("faults.trials")
        return (
            masked.panel_ratio(panel),
            masked.largest_component_fraction(),
            masked.num_alive_servers(),
        )


def _evaluate_legacy(
    net: Network, panel_names: Sequence[Tuple[str, str]], scenario: FailureScenario
) -> Tuple[float, float, int]:
    """The reference path: subgraph copy + cold recompile per trial."""
    alive = net.subgraph_without(
        dead_nodes=list(scenario.dead_servers) + list(scenario.dead_switches),
        dead_links=scenario.dead_links,
    )
    graph = compile_graph(alive)
    labels = graph.component_labels()
    index = graph.index
    connected = 0
    total = 0
    for src, dst in panel_names:
        u, v = index.get(src), index.get(dst)
        if u is None or v is None:
            continue
        total += 1
        if labels[u] == labels[v]:
            connected += 1
    ratio = connected / total if total else 0.0
    alive_servers = graph.num_servers
    if alive_servers == 0:
        return ratio, 0.0, 0
    members: Dict[int, int] = {}
    for server in graph.server_indices:
        label = int(labels[server])
        members[label] = members.get(label, 0) + 1
    return ratio, max(members.values()) / alive_servers, alive_servers


# Worker-process state: compiled graph + panel arrive once per pool —
# the graph as a shared-memory GraphHandle (attached zero-copy), or as
# a pickled graph on the legacy/test path.
_WORKER_STATE: Optional[Tuple[CompiledGraph, Tuple[Tuple[int, int], ...]]] = None


def _sweep_worker_init(graph, panel: Tuple[Tuple[int, int], ...]) -> None:
    global _WORKER_STATE
    if hasattr(graph, "materialize"):  # a shm GraphHandle descriptor
        graph = graph.materialize()
    _WORKER_STATE = (graph, panel)
    _obs.maybe_init_worker()


def _sweep_worker_trial(scenario: FailureScenario) -> Tuple[float, float, int]:
    assert _WORKER_STATE is not None, "sweep worker pool not initialised"
    graph, panel = _WORKER_STATE
    return _evaluate_masked(graph, panel, scenario)


# ----------------------------------------------------------------------
# the sweep
# ----------------------------------------------------------------------
def degradation_sweep(
    net: Network,
    model: FaultModel,
    levels: Sequence[float],
    trials: int,
    sample_pairs: int = 200,
    seed: int = 0,
    workers: Optional[int] = None,
    journal: Optional[TrialJournal] = None,
    use_masking: bool = True,
) -> DegradationCurve:
    """Connection-ratio / largest-component degradation curves for ``net``.

    For each severity ``level`` (a failure fraction, or a rack count for
    the rack model) the sweep draws ``trials`` independent scenarios —
    seeds streamed from ``seed`` via :func:`~repro.faults.plan.child_seed`,
    so trial (level, i) gets the same draw regardless of execution
    order, worker count or resume — and evaluates the connection ratio
    over a fixed panel of ``sample_pairs`` server pairs plus the largest
    alive component fraction.

    When a journal is active (or passed), completed trials are replayed
    from it and newly computed ones are appended, making the sweep
    crash-safe and resumable.
    """
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    journal = journal if journal is not None else get_active_journal()
    tag = _model_tag(model)
    graph = compile_graph(net)
    servers = [graph.names[i] for i in graph.server_indices]
    if len(servers) < 2:
        raise ValueError(f"need at least two servers in {net.name!r}")

    # The pair panel is part of the sweep's identity: drawn once from
    # the full server list, reused by every trial (dead-endpoint pairs
    # are excluded per trial — the ratio stays "over alive pairs").
    # Distinct ordered pairs via two C-level ``random()`` draws per pair
    # — uniform over the same pair space as ``sample(servers, 2)`` at a
    # fraction of the cost (the 2^-53 truncation bias is immaterial for
    # panel sampling).
    panel_rng = seed_stream(seed, "panel", net.name, tag)
    uniform = panel_rng.random
    count = len(servers)
    panel_names = []
    for _ in range(sample_pairs):
        u = int(uniform() * count)
        v = int(uniform() * (count - 1))
        if v >= u:
            v += 1
        panel_names.append((servers[u], servers[v]))
    panel_names = tuple(panel_names)
    index = graph.index
    panel = tuple((index[u], index[v]) for u, v in panel_names)

    def key_of(level: float, trial: int) -> str:
        return f"{net.name}|{tag}|L{level!r}|p{sample_pairs}|s{seed}|t{trial}"

    # Draw every plan up front (cheap — sampling only) so pending work
    # is a flat task list that can ship to a worker pool.
    plans: Dict[str, FaultPlan] = {}
    trial_meta: Dict[str, Tuple[float, int, int]] = {}
    pending: List[str] = []
    with _obs.span(
        "faults.plan", net=net.name, model=tag, levels=len(levels), trials=trials
    ):
        for level in levels:
            for trial in range(trials):
                key = key_of(level, trial)
                trial_seed = child_seed(seed, tag, level, trial)
                trial_meta[key] = (level, trial, trial_seed)
                if journal is not None and key in journal:
                    _obs.counter("faults.trials_replayed")
                    continue
                plans[key] = model.draw(net, level, trial_seed)
                pending.append(key)

    computed: Dict[str, Tuple[float, float, int]] = {}
    # Trials with identical scenarios (every trial of the 0.0 level draws
    # the same empty scenario, for one) evaluate once and share the
    # result — scenarios are frozen/hashable, so this is parity-exact.
    by_scenario: Dict[FailureScenario, Tuple[float, float, int]] = {}
    workers = resolve_workers(workers)
    trials_span = _obs.span(
        "faults.trials", net=net.name, model=tag, pending=len(pending), workers=workers
    )
    with trials_span:
        if (
            use_masking
            and workers > 1
            and len(pending) >= max(SWEEP_PARALLEL_THRESHOLD, 2 * workers)
        ):
            scenarios = [plans[key].scenario for key in pending]
            unique = list(dict.fromkeys(scenarios))
            _obs.counter("faults.scenario_dedup", len(scenarios) - len(unique))
            from repro.topology.shm import export_graph

            handle = export_graph(graph)
            try:
                unique_results = map_with_pool_recovery(
                    _sweep_worker_trial,
                    unique,
                    workers=workers,
                    initializer=_sweep_worker_init,
                    initargs=(handle, panel),
                    sequential=lambda tasks: [
                        _evaluate_masked(graph, panel, scenario) for scenario in tasks
                    ],
                    context=f"degradation sweep {net.name}/{tag}",
                )
            finally:
                handle.release()
            by_scenario.update(zip(unique, unique_results))
            results = [by_scenario[scenario] for scenario in scenarios]
            for key, result in zip(pending, results):
                computed[key] = result
                _trace_computed(key)
                if journal is not None:
                    _record(journal, key, plans[key], result)
        else:
            for key in pending:
                scenario = plans[key].scenario
                result = by_scenario.get(scenario)
                if result is None:
                    if use_masking:
                        result = _evaluate_masked(graph, panel, scenario)
                    else:
                        result = _evaluate_legacy(net, panel_names, scenario)
                    by_scenario[scenario] = result
                else:
                    _obs.counter("faults.scenario_dedup")
                computed[key] = result
                _trace_computed(key)
                _trial_sleep()
                if journal is not None:
                    _record(journal, key, plans[key], computed[key])

    # Assemble outcomes from journal replays + fresh computations.
    outcomes: List[TrialOutcome] = []
    for level in levels:
        for trial in range(trials):
            key = key_of(level, trial)
            _, _, trial_seed = trial_meta[key]
            if key in computed:
                ratio, largest, alive = computed[key]
                plan = plans[key]
                dead = plan.effective
            else:
                entry = journal.get(key)  # journal is not None here
                ratio, largest, alive = (
                    entry["ratio"],
                    entry["largest"],
                    entry["alive_servers"],
                )
                dead = entry["dead"]
            outcomes.append(
                TrialOutcome(
                    level=level,
                    trial=trial,
                    seed=trial_seed,
                    connection_ratio=ratio,
                    largest_component=largest,
                    alive_servers=alive,
                    dead_servers=dead["dead_servers"],
                    dead_switches=dead["dead_switches"],
                    dead_links=dead["dead_links"],
                )
            )

    points: List[LevelStats] = []
    for level in levels:
        of_level = [o for o in outcomes if o.level == level]
        ratios = [o.connection_ratio for o in of_level]
        largests = [o.largest_component for o in of_level]
        points.append(
            LevelStats(
                level=level,
                trials=len(of_level),
                mean_ratio=statistics.fmean(ratios),
                ci95_ratio=_ci95(ratios),
                mean_largest=statistics.fmean(largests),
                ci95_largest=_ci95(largests),
                mean_alive_servers=statistics.fmean(o.alive_servers for o in of_level),
            )
        )
    return DegradationCurve(
        net_name=net.name,
        model=tag,
        sample_pairs=sample_pairs,
        points=tuple(points),
        outcomes=tuple(outcomes),
    )


def _record(
    journal: TrialJournal,
    key: str,
    plan: FaultPlan,
    result: Tuple[float, float, int],
) -> None:
    ratio, largest, alive = result
    with _obs.span("faults.journal"):
        journal.record(
            key,
            {
                "ratio": ratio,
                "largest": largest,
                "alive_servers": alive,
                "dead": dict(plan.effective),
            },
        )
