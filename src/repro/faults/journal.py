"""Crash-safe trial journaling for resumable failure sweeps.

A :class:`TrialJournal` is an append-only JSONL file mapping stable
trial keys to their recorded results.  Each completed trial is flushed
as one line, so a killed run (worker crash, SIGKILL, wall-clock
timeout) loses at most the trial in flight; re-running with resume
enabled replays the journal and computes only the missing trials.

The experiment harness (:mod:`repro.experiments.harness`) opens one
journal per experiment run at ``<out_dir>/<exp_id>.journal.jsonl`` and
installs it as the *active* journal; :func:`repro.faults.sweep.
degradation_sweep` picks it up automatically.  On a successful run the
journal is deleted — a journal on disk always means an interrupted run.
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Dict, Iterator, Optional


class TrialJournal:
    """Append-only key → result store backed by a JSONL file."""

    def __init__(self, path: str) -> None:
        self.path = path
        self._completed: Dict[str, Any] = {}
        self._handle = None
        if os.path.exists(path):
            with open(path, "r", encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        entry = json.loads(line)
                        self._completed[entry["key"]] = entry["value"]
                    except (ValueError, KeyError, TypeError):
                        # A truncated trailing line from a killed writer
                        # is expected; everything before it is intact.
                        continue

    # ------------------------------------------------------------------
    def __contains__(self, key: str) -> bool:
        return key in self._completed

    def __len__(self) -> int:
        return len(self._completed)

    def get(self, key: str) -> Optional[Any]:
        return self._completed.get(key)

    def keys(self) -> Iterator[str]:
        return iter(self._completed)

    def record(self, key: str, value: Any) -> None:
        """Persist one completed trial (appended and flushed immediately)."""
        from repro.obs import trace as _obs

        started = time.perf_counter()
        if self._handle is None:
            directory = os.path.dirname(self.path)
            if directory:
                os.makedirs(directory, exist_ok=True)
            self._handle = open(self.path, "a", encoding="utf-8")
        self._handle.write(json.dumps({"key": key, "value": value}) + "\n")
        self._handle.flush()
        self._completed[key] = value
        _obs.counter("journal.flushes")
        _obs.counter("journal.flush_s", time.perf_counter() - started)

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def delete(self) -> None:
        """Close and remove the journal file (successful-run cleanup)."""
        self.close()
        try:
            os.unlink(self.path)
        except FileNotFoundError:
            pass

    def __enter__(self) -> "TrialJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# ----------------------------------------------------------------------
# the active journal (installed per experiment run by the harness)
# ----------------------------------------------------------------------
_ACTIVE: Optional[TrialJournal] = None


def set_active_journal(journal: Optional[TrialJournal]) -> Optional[TrialJournal]:
    """Install ``journal`` as the run-wide default; returns the previous one."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = journal
    return previous


def get_active_journal() -> Optional[TrialJournal]:
    return _ACTIVE
