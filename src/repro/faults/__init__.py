"""Unified fault injection and resilience sweeps.

This package is the single home for everything failure-related:

* :mod:`repro.faults.plan` — :class:`FaultPlan` (scenario + provenance),
  the :class:`FaultModel` generators (server / switch / link / rack),
  the churn up–down event process, and the ``child_seed`` /
  ``seed_stream`` seed-streaming helpers;
* :mod:`repro.faults.mask` — :class:`MaskedGraph`, applying a scenario
  as masks over one compiled CSR graph instead of copying and
  recompiling per trial;
* :mod:`repro.faults.sweep` — :func:`degradation_sweep`, the journaled,
  parallel, crash-recoverable degradation-curve engine that the F8 /
  E7 / E8 experiments and the churn simulator are built on;
* :mod:`repro.faults.journal` — the append-only :class:`TrialJournal`
  behind ``--resume``.

The legacy entry points in :mod:`repro.metrics.connectivity`
(``draw_failures``, ``draw_rack_failures``, ``connection_ratio``, …)
remain and now delegate to this package.
"""

from repro.faults.journal import TrialJournal, get_active_journal, set_active_journal
from repro.faults.mask import (
    MaskedGraph,
    masked_connection_ratio,
    masked_largest_component_fraction,
)
from repro.faults.plan import (
    ChurnEvent,
    FailureScenario,
    FaultModel,
    FaultPlan,
    FaultRoundingWarning,
    IndexFaultPlan,
    child_seed,
    churn_events,
    explicit_failures,
    rack_assignment,
    rack_failures,
    random_failures,
    random_index_failures,
    seed_stream,
)
from repro.faults.sweep import (
    DegradationCurve,
    LevelStats,
    TrialOutcome,
    degradation_sweep,
)

__all__ = [
    "ChurnEvent",
    "DegradationCurve",
    "FailureScenario",
    "FaultModel",
    "FaultPlan",
    "FaultRoundingWarning",
    "IndexFaultPlan",
    "LevelStats",
    "MaskedGraph",
    "TrialJournal",
    "TrialOutcome",
    "child_seed",
    "churn_events",
    "degradation_sweep",
    "explicit_failures",
    "get_active_journal",
    "masked_connection_ratio",
    "masked_largest_component_fraction",
    "rack_assignment",
    "rack_failures",
    "random_failures",
    "random_index_failures",
    "seed_stream",
    "set_active_journal",
]
