"""Bisection-width estimation.

The bisection width is the minimum number of links that must be cut to
split the *servers* into two (near-)halves; switches fall on whichever
side minimises the cut.  Finding the optimum is NP-hard, so the module
provides:

* :func:`partition_cut_width` — **exact** minimum cut for a *given* server
  bipartition (switch placement optimised by max-flow on the contracted
  graph);
* :func:`bisection_upper_bound` — the best (smallest) cut over a portfolio
  of candidate partitions: spectral (Fiedler-vector) splits, address-digit
  splits supplied by the caller, and random splits.  An upper bound on the
  true width — tests assert it *meets* the closed-form value on ABCCC and
  BCube instances, which certifies both the formula and the estimator;
* :func:`exact_bisection_small` — brute force over all balanced server
  bipartitions, feasible up to ~14 servers, used as ground truth in tests.
"""

from __future__ import annotations

import itertools
import random
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

import networkx as nx

from repro.topology.compiled import compile_graph
from repro.topology.graph import Network


def partition_cut_width(net: Network, side_a: Iterable[str]) -> int:
    """Exact min link cut separating ``side_a`` servers from the rest.

    Servers are pinned to their side; switches are free.  Computed as a
    max-flow between two contracted terminals (unit link capacities) on
    the contracted graph, built from the compiled edge arrays — the
    compile is cached per network, so the portfolio search in
    :func:`bisection_upper_bound` flattens the network only once.
    """
    side_a = set(side_a)
    servers = set(net.servers)
    if not side_a or side_a == servers:
        raise ValueError("side_a must be a proper non-empty subset of servers")
    if not side_a <= servers:
        raise ValueError("side_a contains non-server nodes")

    compiled = compile_graph(net)
    side = {compiled.index[name] for name in side_a}
    server_ids = set(int(i) for i in compiled.server_indices)
    # Terminal (or own index) per node: contract servers into _A/_B.
    terminal = [
        "_A" if i in side else ("_B" if i in server_ids else i)
        for i in range(compiled.num_nodes)
    ]
    graph = nx.Graph()
    for u, v in zip(compiled.edge_u, compiled.edge_v):
        a, b = terminal[u], terminal[v]
        if a == b:
            continue
        # Parallel links accumulate capacity.
        if graph.has_edge(a, b):
            graph[a][b]["capacity"] += 1
        else:
            graph.add_edge(a, b, capacity=1)
    cut_value, _ = nx.minimum_cut(graph, "_A", "_B")
    return int(cut_value)


def spectral_split(net: Network, seed: int = 0) -> Set[str]:
    """Server halves from the Fiedler vector of the full graph."""
    graph = net.to_networkx()
    servers = net.servers
    try:
        fiedler = nx.fiedler_vector(graph, seed=seed, method="tracemin_lu")
        order = sorted(zip(graph.nodes(), fiedler), key=lambda kv: kv[1])
        ranked = [name for name, _ in order if name in set(servers)]
    except nx.NetworkXError:  # tiny or disconnected graphs
        ranked = list(servers)
    return set(ranked[: len(servers) // 2])


def random_split(net: Network, seed: int) -> Set[str]:
    servers = list(net.servers)
    rng = random.Random(seed)
    rng.shuffle(servers)
    return set(servers[: len(servers) // 2])


def bisection_upper_bound(
    net: Network,
    candidate_partitions: Sequence[Iterable[str]] = (),
    random_tries: int = 3,
    spectral: bool = True,
    seed: int = 0,
) -> int:
    """Smallest exact cut over spectral, supplied, and random partitions."""
    candidates: List[Set[str]] = [set(p) for p in candidate_partitions]
    if spectral:
        candidates.append(spectral_split(net, seed=seed))
    for i in range(random_tries):
        candidates.append(random_split(net, seed + 1000 + i))
    best = None
    for side in candidates:
        width = partition_cut_width(net, side)
        if best is None or width < best:
            best = width
    if best is None:
        raise ValueError("no candidate partitions")
    return best


def exact_bisection_small(net: Network, max_servers: int = 14) -> int:
    """Ground-truth bisection width by exhaustive balanced bipartition."""
    servers = list(net.servers)
    if len(servers) > max_servers:
        raise ValueError(
            f"{len(servers)} servers is too many for exhaustive bisection "
            f"(limit {max_servers})"
        )
    half = len(servers) // 2
    anchor = servers[0]  # fix one server's side to halve the search
    best: Optional[int] = None
    for rest in itertools.combinations(servers[1:], half - 1):
        side = set(rest) | {anchor}
        width = partition_cut_width(net, side)
        if best is None or width < best:
            best = width
    if best is None:  # fewer than 2 servers
        raise ValueError("need at least 2 servers for a bisection")
    return best


def digit_split_abccc(net: Network, level: int) -> Set[str]:
    """ABCCC/BCCC candidate partition: low half of the level's digit."""
    from repro.core.address import ServerAddress

    params = net.meta.get("params")
    if params is None:
        raise ValueError("network was not built by the ABCCC builder")
    half = params.n // 2
    side = set()
    for name in net.servers:
        if ServerAddress.parse(name).digit(level) < half:
            side.add(name)
    return side


def digit_split_bcube(net: Network, level: int) -> Set[str]:
    """BCube candidate partition: low half of the level's digit."""
    from repro.baselines.bcube import parse_server

    n = net.meta["n"]
    half = n // 2
    return {name for name in net.servers if parse_server(name)[level] < half}


def pod_split_fattree(net: Network) -> Set[str]:
    """Fat-tree candidate partition: low half of the pods."""
    p = net.meta["p"]
    side = set()
    for name in net.servers:
        pod = int(name[1:].split(".")[0])
        if pod < p // 2:
            side.add(name)
    return side
