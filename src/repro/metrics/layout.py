"""Physical layout and cabling model (ablation E4).

The CAPEX model in :mod:`repro.metrics.cost` prices every cable equally;
real deployments pay by *length*, and cable length is a layout question:
servers live in racks, racks in rows, and a link between two nodes runs
along the aisles (Manhattan distance through the overhead tray).  This
module adds that physical dimension:

* servers are assigned to racks **in address order**, so structurally
  adjacent servers (an ABCCC crossbar, a BCube level-0 group) share a
  rack — the placement a competent deployment would use;
* each switch is placed in the rack that minimises its total cable run
  (the median rack of its neighbours — optimal for Manhattan distance
  along a row-major layout);
* per-link length = intra-rack constant if both ends share a rack, else
  tray height + Manhattan run between rack positions.

The E4 experiment uses this to compare *length-priced* cabling CAPEX
across topologies — where server-centric designs shine (most links stay
inside or near a rack) and switch-centric cores pay for long home runs.
"""

from __future__ import annotations


import statistics
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.topology.graph import Network
from repro.topology.node import NodeKind


@dataclass(frozen=True)
class LayoutConfig:
    """Machine-room geometry and cable pricing."""

    rack_capacity: int = 40  # servers per rack
    racks_per_row: int = 10
    rack_pitch: float = 0.8  # metres between adjacent racks in a row
    row_pitch: float = 3.0  # metres between rows (aisle)
    intra_rack_length: float = 2.0  # metres for a same-rack patch cable
    tray_overhead: float = 4.0  # up-and-down to the overhead tray
    price_per_metre: float = 1.5
    connector_price: float = 4.0  # per cable, both ends

    def __post_init__(self) -> None:
        if self.rack_capacity < 1 or self.racks_per_row < 1:
            raise ValueError("rack_capacity and racks_per_row must be >= 1")

    def rack_position(self, rack: int) -> Tuple[float, float]:
        """(x, y) of a rack in metres, row-major placement."""
        row, col = divmod(rack, self.racks_per_row)
        return (col * self.rack_pitch, row * self.row_pitch)

    def rack_distance(self, rack_a: int, rack_b: int) -> float:
        ax, ay = self.rack_position(rack_a)
        bx, by = self.rack_position(rack_b)
        return abs(ax - bx) + abs(ay - by)

    def cable_length(self, rack_a: int, rack_b: int) -> float:
        if rack_a == rack_b:
            return self.intra_rack_length
        return self.tray_overhead + self.rack_distance(rack_a, rack_b)

    def cable_price(self, length: float) -> float:
        return self.connector_price + length * self.price_per_metre


@dataclass(frozen=True)
class CablePlan:
    """The cabling bill of one topology under one layout."""

    racks_used: int
    lengths: Tuple[float, ...]
    intra_rack_cables: int

    @property
    def num_cables(self) -> int:
        return len(self.lengths)

    @property
    def total_length(self) -> float:
        return sum(self.lengths)

    @property
    def mean_length(self) -> float:
        return statistics.fmean(self.lengths) if self.lengths else 0.0

    @property
    def max_length(self) -> float:
        return max(self.lengths) if self.lengths else 0.0

    @property
    def intra_rack_fraction(self) -> float:
        if not self.lengths:
            return 0.0
        return self.intra_rack_cables / len(self.lengths)

    def total_price(self, config: LayoutConfig) -> float:
        return sum(config.cable_price(length) for length in self.lengths)


def assign_racks(net: Network, config: LayoutConfig) -> Dict[str, int]:
    """Rack id per node.

    Servers fill racks in insertion (address) order; each switch goes to
    the median rack of its server-side neighbours (recursively resolved
    for switches whose neighbours are switches, as in a fat-tree core,
    by a second pass over already-placed neighbours).
    """
    racks: Dict[str, int] = {}
    for index, server in enumerate(net.servers):
        racks[server] = index // config.rack_capacity

    unplaced = [n.name for n in net.nodes() if n.kind is NodeKind.SWITCH]
    # Iterate until every switch has a rack; each pass places switches
    # with at least one placed neighbour, so termination is guaranteed on
    # connected networks.
    guard = 0
    while unplaced:
        guard += 1
        if guard > len(net) + 2:
            raise ValueError("cannot place switches: disconnected network?")
        still: List[str] = []
        for switch in unplaced:
            neighbour_racks = sorted(
                racks[v] for v in net.neighbors(switch) if v in racks
            )
            if not neighbour_racks:
                still.append(switch)
                continue
            racks[switch] = neighbour_racks[len(neighbour_racks) // 2]
        unplaced = still
    return racks


def cable_plan(net: Network, config: Optional[LayoutConfig] = None) -> CablePlan:
    """Compute the full cabling bill for a built network."""
    config = config or LayoutConfig()
    racks = assign_racks(net, config)
    lengths: List[float] = []
    intra = 0
    for link in net.links():
        rack_u, rack_v = racks[link.u], racks[link.v]
        if rack_u == rack_v:
            intra += 1
        lengths.append(config.cable_length(rack_u, rack_v))
    used = len(set(racks.values()))
    return CablePlan(
        racks_used=used, lengths=tuple(lengths), intra_rack_cables=intra
    )
