"""Reroute impact: what a failure does to *live traffic*.

Connection ratio (F8) asks whether pairs can still talk; operators also
ask what happens to the flows that were already running: how many had to
move to a different path (route churn — each move risks packet loss and
reordering), how many lost connectivity outright, and what the failure
did to their max-min rates.  This module computes exactly that for any
topology, by routing the same flow set before and after a failure
scenario with the topology's own router.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence, Tuple, Union

from repro.faults.plan import FailureScenario, FaultPlan
from repro.metrics.connectivity import apply_failures
from repro.routing.base import Route, RoutingError
from repro.sim.flow import max_min_allocation
from repro.sim.traffic import Flow
from repro.topology.graph import Network


@dataclass(frozen=True)
class RerouteImpact:
    """Before/after accounting for one failure scenario."""

    total_flows: int
    #: flows whose endpoints died with the failure.
    endpoint_lost: int
    #: surviving flows with no path at all in the alive network.
    disconnected: int
    #: surviving, connected flows whose route had to change.
    rerouted: int
    #: surviving, connected flows keeping their exact old route.
    unchanged: int
    aggregate_before: float
    aggregate_after: float
    mean_stretch_rerouted: float  # new length / old length over moved flows

    @property
    def survivors(self) -> int:
        return self.rerouted + self.unchanged

    @property
    def churn_ratio(self) -> float:
        """Fraction of surviving connected flows that had to move."""
        if self.survivors == 0:
            return 0.0
        return self.rerouted / self.survivors

    @property
    def throughput_retention(self) -> float:
        """Aggregate max-min throughput after / before."""
        if self.aggregate_before == 0:
            return 0.0
        return self.aggregate_after / self.aggregate_before


def reroute_impact(
    net: Network,
    flows: Sequence[Flow],
    router: Callable[[Network, str, str], Route],
    scenario: Union[FailureScenario, FaultPlan],
) -> RerouteImpact:
    """Route ``flows`` before and after ``scenario`` and diff the outcome.

    ``scenario`` may be a bare :class:`FailureScenario` or a
    provenance-carrying :class:`~repro.faults.plan.FaultPlan` from the
    unified generators.

    ``router`` is called as ``router(network, src, dst)`` against the
    *relevant* network (original, then alive subgraph), so both
    address-based routers (which ignore the graph argument) and
    graph-search routers behave correctly; an address-based router that
    returns a route through dead equipment counts as *rerouted* only if a
    valid alternative is found by the same router — otherwise the flow is
    disconnected from its point of view.
    """
    if isinstance(scenario, FaultPlan):
        scenario = scenario.scenario
    before_routes: Dict[str, Route] = {}
    for flow in flows:
        before_routes[flow.flow_id] = router(net, flow.src, flow.dst)
    before_alloc = max_min_allocation(net, flows, before_routes)

    alive = apply_failures(net, scenario)
    endpoint_lost = disconnected = rerouted = unchanged = 0
    stretches = []
    after_flows = []
    after_routes: Dict[str, Route] = {}
    for flow in flows:
        if flow.src not in alive or flow.dst not in alive:
            endpoint_lost += 1
            continue
        old = before_routes[flow.flow_id]
        if old.is_valid(alive):
            unchanged += 1
            after_flows.append(flow)
            after_routes[flow.flow_id] = old
            continue
        try:
            new = router(alive, flow.src, flow.dst)
            if not new.is_valid(alive):
                raise RoutingError("router returned a route through failures")
        except RoutingError:
            disconnected += 1
            continue
        rerouted += 1
        stretches.append(new.link_hops / max(old.link_hops, 1))
        after_flows.append(flow)
        after_routes[flow.flow_id] = new

    after_alloc = (
        max_min_allocation(alive, after_flows, after_routes)
        if after_flows
        else None
    )
    return RerouteImpact(
        total_flows=len(flows),
        endpoint_lost=endpoint_lost,
        disconnected=disconnected,
        rerouted=rerouted,
        unchanged=unchanged,
        aggregate_before=before_alloc.aggregate_throughput,
        aggregate_after=after_alloc.aggregate_throughput if after_alloc else 0.0,
        mean_stretch_rerouted=(
            sum(stretches) / len(stretches) if stretches else 1.0
        ),
    )
