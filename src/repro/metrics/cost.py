"""Capital-expenditure (CAPEX) model.

The paper compares topologies on "capital expenditure" at equal server
count.  Absolute hardware prices are ephemeral; what the comparison needs
is a *price book* whose ratios match the 2015-era assumptions the DCN
literature shared:

* commodity switch cost grows roughly linearly in port count above a
  small chassis base (large-radix switches were disproportionately more
  expensive, captured by a superlinear kink above 48 ports);
* a server NIC port is much cheaper than a switch port;
* cables cost roughly an order of magnitude less than ports.

Every number is a dataclass field, so experiments can re-run the tables
under different assumptions (the F4/T2 benches sweep the NIC/switch price
ratio as an ablation).  Costs exclude the servers themselves — identical
across topologies at equal server count.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional

from repro.topology.spec import TopologySpec


@dataclass(frozen=True)
class PriceBook:
    """Unit prices in abstract dollars (defaults: 2015-era ratios)."""

    switch_base: float = 200.0  # chassis, PSU, management plane
    switch_port: float = 50.0  # per port up to the commodity radix
    premium_port: float = 100.0  # per port beyond ``commodity_radix``
    commodity_radix: int = 48
    nic_port: float = 20.0  # per server NIC port
    cable: float = 5.0  # per installed link

    def switch_cost(self, ports: int) -> float:
        """Price of one switch of the given radix."""
        if ports <= 0:
            return 0.0
        commodity = min(ports, self.commodity_radix)
        premium = max(ports - self.commodity_radix, 0)
        return self.switch_base + commodity * self.switch_port + premium * self.premium_port


@dataclass(frozen=True)
class CapexBreakdown:
    """Itemised CAPEX of one topology instance."""

    label: str
    num_servers: int
    switch_cost: float
    nic_cost: float
    cable_cost: float

    @property
    def total(self) -> float:
        return self.switch_cost + self.nic_cost + self.cable_cost

    @property
    def per_server(self) -> float:
        if self.num_servers == 0:
            return 0.0
        return self.total / self.num_servers

    def as_dict(self) -> Dict[str, float]:
        return {
            "switches": self.switch_cost,
            "nics": self.nic_cost,
            "cables": self.cable_cost,
            "total": self.total,
            "per_server": self.per_server,
        }


def capex(spec: TopologySpec, prices: Optional[PriceBook] = None) -> CapexBreakdown:
    """CAPEX of a topology instance from its analytic inventory."""
    prices = prices or PriceBook()
    switch_cost = sum(
        prices.switch_cost(ports) * count
        for ports, count in spec.switch_inventory().items()
    )
    nic_cost = spec.num_servers * spec.server_ports * prices.nic_port
    cable_cost = spec.num_links * prices.cable
    return CapexBreakdown(
        label=spec.label,
        num_servers=spec.num_servers,
        switch_cost=switch_cost,
        nic_cost=nic_cost,
        cable_cost=cable_cost,
    )


def expansion_capex(
    plan, prices: Optional[PriceBook] = None, switch_ports: int = 48, server_ports: int = 2
) -> float:
    """Rough CAPEX of an expansion plan's *new* purchases.

    Uses flat per-class prices because the plan records names, not specs;
    the F5 experiment reports component counts as its primary series and
    this dollar figure as colour.
    """
    prices = prices or PriceBook()
    return (
        len(plan.new_switches) * prices.switch_cost(switch_ports)
        + len(plan.new_servers) * server_ports * prices.nic_port
        + len(plan.new_links) * prices.cable
        + len(plan.upgraded_servers) * prices.nic_port
        + len(plan.replaced_switches) * prices.switch_cost(switch_ports)
    )
