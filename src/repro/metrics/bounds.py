"""Theoretical throughput upper bounds.

The measured throughputs of F7/E3 mean little without the ceilings they
are up against.  Two standard bounds for uniform all-to-all traffic:

* **bisection bound** — in expectation half of all-to-all traffic
  crosses any balanced server cut, so the aggregate throughput ``T``
  satisfies ``T / 2 <= B`` i.e. ``T <= 2 B`` (undirected unit-capacity
  links of the cut, both directions share the link);
* **NIC bound** — every flow leaves its source through that server's
  wired ports: ``T <= sum_s degree(s)`` (and symmetrically for sinks).

The binding minimum tells you *why* a topology tops out: server-centric
designs at small ``s`` are NIC-bound per server but bisection-bound in
aggregate (``1/(2c)`` per server); the oversubscribed tree is purely
bisection-bound.  Tests assert every measured allocation in the suite
respects these ceilings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.topology.graph import Network
from repro.topology.spec import TopologySpec


@dataclass(frozen=True)
class ThroughputBounds:
    """Ceilings for aggregate all-to-all throughput (capacity units)."""

    bisection_bound: Optional[float]
    nic_bound: float

    @property
    def binding(self) -> float:
        """The tighter (smaller) of the two ceilings."""
        if self.bisection_bound is None:
            return self.nic_bound
        return min(self.bisection_bound, self.nic_bound)

    @property
    def bottleneck(self) -> str:
        """Which constraint binds: 'bisection', 'nic', or 'tie'."""
        if self.bisection_bound is None:
            return "nic"
        if self.bisection_bound < self.nic_bound:
            return "bisection"
        if self.bisection_bound > self.nic_bound:
            return "nic"
        return "tie"


def all_to_all_bounds(spec: TopologySpec, net: Optional[Network] = None) -> ThroughputBounds:
    """Aggregate all-to-all throughput ceilings for one instance.

    The NIC bound uses the *wired* server degrees when a built network is
    supplied (last-in-crossbar servers may have spare ports); otherwise
    it falls back to the provisioned ``server_ports``.
    """
    bisection = spec.bisection_links
    bisection_bound = 2.0 * bisection if bisection is not None else None
    if net is not None:
        nic_bound = float(sum(net.degree(s) for s in net.servers))
    else:
        nic_bound = float(spec.num_servers * spec.server_ports)
    return ThroughputBounds(bisection_bound=bisection_bound, nic_bound=nic_bound)


def per_server_ceiling(spec: TopologySpec, net: Optional[Network] = None) -> float:
    """The binding all-to-all ceiling divided by the server count."""
    bounds = all_to_all_bounds(spec, net)
    return bounds.binding / spec.num_servers
