"""Aggregate bottleneck throughput (ABT) and link-load statistics.

ABT is the BCube paper's all-to-all figure of merit: when every flow is
throttled to the rate of the most loaded link (the *bottleneck*), the
aggregate throughput is ``(number of flows) / (bottleneck link load)``
with unit-capacity links — equivalently ``flows * capacity / load``.
Under all-to-all traffic the shuffle phase of MapReduce-style jobs is
bottlenecked exactly this way, which is why the DCN literature reports it.

The module also provides per-link load statistics (mean/max/coefficient
of variation) used by the permutation-strategy experiment: a good routing
permutation spreads the same flow set over more links.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.routing.base import Route
from repro.topology.compiled import compile_graph
from repro.topology.graph import Network
from repro.topology.node import link_key


@dataclass(frozen=True)
class LinkLoadStats:
    """Distribution of the number of routes crossing each link."""

    num_routes: int
    loaded_links: int
    total_links: int
    max_load: float
    mean_load: float
    coefficient_of_variation: float

    @property
    def utilisation(self) -> float:
        """Fraction of physical links carrying at least one route."""
        if self.total_links == 0:
            return 0.0
        return self.loaded_links / self.total_links


def link_loads(net: Network, routes: Iterable[Route]) -> Dict[Tuple[str, str], float]:
    """Routes crossing each link, normalised by link capacity.

    Accumulates over dense compiled edge ids (one cached compile per
    network) instead of per-hop name-pair keys, so all-to-all route sets
    pay one int lookup per hop.
    """
    compiled = compile_graph(net)
    index = compiled.index
    counts: Dict[int, float] = {}
    for route in routes:
        for u, v in route.edges():
            try:
                edge = compiled.edge_id(index[u], index[v])
            except KeyError:
                net.link(u, v)  # raises NetworkError naming the bad hop
                raise
            counts[edge] = counts.get(edge, 0.0) + 1.0
    names = compiled.names
    loads: Dict[Tuple[str, str], float] = {}
    for edge, load in counts.items():
        key = link_key(names[compiled.edge_u[edge]], names[compiled.edge_v[edge]])
        loads[key] = load / compiled.edge_capacity[edge]
    return loads


def load_stats(net: Network, routes: Iterable[Route]) -> LinkLoadStats:
    """Summarise link loads over **all** physical links (zeros included)."""
    routes = list(routes)
    loads = link_loads(net, routes)
    total_links = net.num_links
    values = list(loads.values()) + [0.0] * (total_links - len(loads))
    mean = statistics.fmean(values) if values else 0.0
    stdev = statistics.pstdev(values) if len(values) > 1 else 0.0
    return LinkLoadStats(
        num_routes=len(routes),
        loaded_links=len(loads),
        total_links=total_links,
        max_load=max(values) if values else 0.0,
        mean_load=mean,
        coefficient_of_variation=(stdev / mean) if mean > 0 else 0.0,
    )


def aggregate_bottleneck_throughput(net: Network, routes: Iterable[Route]) -> float:
    """ABT in units of one link capacity: ``flows / bottleneck_load``."""
    routes = list(routes)
    if not routes:
        return 0.0
    loads = link_loads(net, routes)
    if not loads:  # all flows are self-loops of zero length
        return 0.0
    bottleneck = max(loads.values())
    return len(routes) / bottleneck


def per_server_abt(net: Network, routes: Iterable[Route]) -> float:
    """ABT normalised by server count — comparable across topologies."""
    routes = list(routes)
    abt = aggregate_bottleneck_throughput(net, routes)
    servers = net.num_servers
    return abt / servers if servers else 0.0
