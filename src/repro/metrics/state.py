"""Forwarding-state accounting (ablation E1).

A deployment of ABCCC (or BCube) routes *algorithmically*: every server
computes next hops from addresses in O(k + c) time with O(k) state (its
own address and the parameters).  A generic deployment of the same graph
would install shortest-path forwarding tables instead: O(N) entries per
node.  This module quantifies that gap — the state-cost argument for
structured addressing that the server-centric literature makes in prose —
so the E1 experiment can print it as numbers.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Sequence

from repro.routing.table import ForwardingTable
from repro.topology.graph import Network

#: rough per-entry cost of a forwarding table row (destination id +
#: next-hop id), used only to express totals in bytes.
BYTES_PER_ENTRY = 8


@dataclass(frozen=True)
class StateStats:
    """Forwarding-state footprint of one routing scheme on one network."""

    scheme: str
    nodes: int
    total_entries: int
    mean_entries: float
    max_entries: int

    @property
    def total_bytes(self) -> int:
        return self.total_entries * BYTES_PER_ENTRY

    @property
    def mean_bytes(self) -> float:
        return self.mean_entries * BYTES_PER_ENTRY


def table_state(
    net: Network, destinations: Optional[Sequence[str]] = None
) -> StateStats:
    """Footprint of classic per-destination shortest-path tables."""
    table = ForwardingTable.from_shortest_paths(net, destinations)
    per_node: Dict[str, int] = {}
    for node, _, _ in table.entries():
        per_node[node] = per_node.get(node, 0) + 1
    counts = [per_node.get(name, 0) for name in net.node_names()]
    return StateStats(
        scheme="tables",
        nodes=len(net),
        total_entries=table.size,
        mean_entries=statistics.fmean(counts) if counts else 0.0,
        max_entries=max(counts) if counts else 0,
    )


def algorithmic_state(net: Network, address_digits: int) -> StateStats:
    """Footprint of address-based (algorithmic) routing.

    Every node stores its own address (``address_digits`` words) plus the
    global parameters — a constant, independent of N.  We count one
    "entry" per address digit so the two schemes are in the same unit.
    """
    per_node = address_digits
    nodes = len(net)
    return StateStats(
        scheme="algorithmic",
        nodes=nodes,
        total_entries=per_node * nodes,
        mean_entries=float(per_node),
        max_entries=per_node,
    )


def state_ratio(tables: StateStats, algorithmic: StateStats) -> float:
    """How many times more state the table scheme needs per node."""
    if algorithmic.mean_entries == 0:
        return float("inf")
    return tables.mean_entries / algorithmic.mean_entries
