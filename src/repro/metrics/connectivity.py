"""Connectivity and fault-resilience metrics.

Covers the two resilience quantities the evaluation reports: structural
path diversity between server pairs (node/edge connectivity) and graceful
degradation under random component failures (connection ratio — the
fraction of server pairs that remain mutually reachable).
"""

from __future__ import annotations

import random
from typing import Dict, List, Sequence, Set, Tuple

import networkx as nx

from repro.faults.plan import FailureScenario, rack_failures, random_failures
from repro.topology.compiled import compile_graph
from repro.topology.graph import Network


def server_pair_connectivity(
    net: Network, pairs: Sequence[Tuple[str, str]]
) -> List[Tuple[int, int]]:
    """``(node_connectivity, edge_connectivity)`` for each server pair."""
    graph = net.to_networkx()
    results = []
    for src, dst in pairs:
        node_conn = nx.node_connectivity(graph, src, dst)
        edge_conn = nx.edge_connectivity(graph, src, dst)
        results.append((node_conn, edge_conn))
    return results


def sample_server_pairs(
    net: Network, count: int, seed: int = 0
) -> List[Tuple[str, str]]:
    """``count`` distinct random ordered server pairs (src != dst)."""
    servers = list(net.servers)
    if len(servers) < 2:
        raise ValueError("need at least two servers")
    rng = random.Random(seed)
    pairs: Set[Tuple[str, str]] = set()
    limit = len(servers) * (len(servers) - 1)
    while len(pairs) < min(count, limit):
        src, dst = rng.sample(servers, 2)
        pairs.add((src, dst))
    return sorted(pairs)


# FailureScenario now lives in :mod:`repro.faults.plan` (re-exported
# here for backward compatibility); the draw_* helpers below delegate to
# the unified generators and return bare scenarios as they always did.
# Use :func:`repro.faults.random_failures` / :func:`repro.faults.
# rack_failures` directly when the provenance-carrying FaultPlan is
# wanted.


def draw_failures(
    net: Network,
    server_fraction: float = 0.0,
    switch_fraction: float = 0.0,
    link_fraction: float = 0.0,
    seed: int = 0,
) -> FailureScenario:
    """Fail a uniform random fraction of each component class.

    Nonzero fractions that would round to zero dead components on a
    small instance floor at one and emit a
    :class:`~repro.faults.plan.FaultRoundingWarning`.
    """
    return random_failures(
        net,
        server_fraction=server_fraction,
        switch_fraction=switch_fraction,
        link_fraction=link_fraction,
        seed=seed,
    ).scenario


def draw_rack_failures(
    net: Network,
    num_racks: int,
    rack_capacity: int = 40,
    seed: int = 0,
) -> FailureScenario:
    """Correlated failure: whole racks go dark (PDU/cooling events).

    Uses the same address-order rack assignment as the layout model
    (:mod:`repro.metrics.layout`), kills every server *and switch* placed
    in ``num_racks`` randomly chosen racks.  This is the failure mode that
    separates topologies with rack-local structure (an ABCCC crossbar
    dies with its rack, leaving the rest intact) from fabrics whose
    aggregation layers concentrate in a few racks.
    """
    return rack_failures(
        net, num_racks, rack_capacity=rack_capacity, seed=seed
    ).scenario


def apply_failures(net: Network, scenario: FailureScenario) -> Network:
    """The alive subgraph after the scenario's failures."""
    return net.subgraph_without(
        dead_nodes=list(scenario.dead_servers) + list(scenario.dead_switches),
        dead_links=scenario.dead_links,
    )


def connection_ratio(
    net: Network,
    scenario: FailureScenario,
    sample_pairs: int = 200,
    seed: int = 0,
) -> float:
    """Fraction of sampled alive server pairs still mutually reachable."""
    alive = apply_failures(net, scenario)
    servers = alive.servers
    if len(servers) < 2:
        return 0.0
    rng = random.Random(seed)
    # Mutual reachability in an undirected graph is component membership,
    # so one compiled component sweep answers every sampled pair.
    graph = compile_graph(alive)
    labels = graph.component_labels()
    connected = 0
    total = 0
    for _ in range(sample_pairs):
        src, dst = rng.sample(servers, 2)
        total += 1
        if labels[graph.index[src]] == labels[graph.index[dst]]:
            connected += 1
    return connected / total if total else 0.0


def largest_component_fraction(net: Network, scenario: FailureScenario) -> float:
    """Alive servers in the largest connected component / alive servers."""
    alive = apply_failures(net, scenario)
    if alive.num_servers == 0:
        return 0.0
    graph = compile_graph(alive)
    labels = graph.component_labels()
    members: Dict[int, int] = {}
    for server in graph.server_indices:
        label = int(labels[server])
        members[label] = members.get(label, 0) + 1
    return max(members.values()) / graph.num_servers
