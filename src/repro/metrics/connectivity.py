"""Connectivity and fault-resilience metrics.

Covers the two resilience quantities the evaluation reports: structural
path diversity between server pairs (node/edge connectivity) and graceful
degradation under random component failures (connection ratio — the
fraction of server pairs that remain mutually reachable).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

import networkx as nx

from repro.topology.compiled import compile_graph
from repro.topology.graph import Network


def server_pair_connectivity(
    net: Network, pairs: Sequence[Tuple[str, str]]
) -> List[Tuple[int, int]]:
    """``(node_connectivity, edge_connectivity)`` for each server pair."""
    graph = net.to_networkx()
    results = []
    for src, dst in pairs:
        node_conn = nx.node_connectivity(graph, src, dst)
        edge_conn = nx.edge_connectivity(graph, src, dst)
        results.append((node_conn, edge_conn))
    return results


def sample_server_pairs(
    net: Network, count: int, seed: int = 0
) -> List[Tuple[str, str]]:
    """``count`` distinct random ordered server pairs (src != dst)."""
    servers = list(net.servers)
    if len(servers) < 2:
        raise ValueError("need at least two servers")
    rng = random.Random(seed)
    pairs: Set[Tuple[str, str]] = set()
    limit = len(servers) * (len(servers) - 1)
    while len(pairs) < min(count, limit):
        src, dst = rng.sample(servers, 2)
        pairs.add((src, dst))
    return sorted(pairs)


@dataclass(frozen=True)
class FailureScenario:
    """One random failure draw."""

    dead_servers: Tuple[str, ...]
    dead_switches: Tuple[str, ...]
    dead_links: Tuple[Tuple[str, str], ...]

    @property
    def is_empty(self) -> bool:
        return not (self.dead_servers or self.dead_switches or self.dead_links)


def draw_failures(
    net: Network,
    server_fraction: float = 0.0,
    switch_fraction: float = 0.0,
    link_fraction: float = 0.0,
    seed: int = 0,
) -> FailureScenario:
    """Fail a uniform random fraction of each component class."""
    for name, fraction in (
        ("server", server_fraction),
        ("switch", switch_fraction),
        ("link", link_fraction),
    ):
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"{name}_fraction must be in [0, 1], got {fraction}")
    rng = random.Random(seed)
    servers = sorted(net.servers)
    switches = sorted(net.switches)
    links = sorted(link.key for link in net.links())
    return FailureScenario(
        dead_servers=tuple(rng.sample(servers, round(server_fraction * len(servers)))),
        dead_switches=tuple(
            rng.sample(switches, round(switch_fraction * len(switches)))
        ),
        dead_links=tuple(rng.sample(links, round(link_fraction * len(links)))),
    )


def draw_rack_failures(
    net: Network,
    num_racks: int,
    rack_capacity: int = 40,
    seed: int = 0,
) -> FailureScenario:
    """Correlated failure: whole racks go dark (PDU/cooling events).

    Uses the same address-order rack assignment as the layout model
    (:mod:`repro.metrics.layout`), kills every server *and switch* placed
    in ``num_racks`` randomly chosen racks.  This is the failure mode that
    separates topologies with rack-local structure (an ABCCC crossbar
    dies with its rack, leaving the rest intact) from fabrics whose
    aggregation layers concentrate in a few racks.
    """
    from repro.metrics.layout import LayoutConfig, assign_racks

    racks = assign_racks(net, LayoutConfig(rack_capacity=rack_capacity))
    all_racks = sorted(set(racks.values()))
    if not 0 <= num_racks <= len(all_racks):
        raise ValueError(
            f"num_racks must be in [0, {len(all_racks)}], got {num_racks}"
        )
    rng = random.Random(seed)
    dead_racks = set(rng.sample(all_racks, num_racks))
    dead_servers = tuple(
        sorted(name for name in net.servers if racks[name] in dead_racks)
    )
    dead_switches = tuple(
        sorted(name for name in net.switches if racks[name] in dead_racks)
    )
    return FailureScenario(
        dead_servers=dead_servers, dead_switches=dead_switches, dead_links=()
    )


def apply_failures(net: Network, scenario: FailureScenario) -> Network:
    """The alive subgraph after the scenario's failures."""
    return net.subgraph_without(
        dead_nodes=list(scenario.dead_servers) + list(scenario.dead_switches),
        dead_links=scenario.dead_links,
    )


def connection_ratio(
    net: Network,
    scenario: FailureScenario,
    sample_pairs: int = 200,
    seed: int = 0,
) -> float:
    """Fraction of sampled alive server pairs still mutually reachable."""
    alive = apply_failures(net, scenario)
    servers = alive.servers
    if len(servers) < 2:
        return 0.0
    rng = random.Random(seed)
    # Mutual reachability in an undirected graph is component membership,
    # so one compiled component sweep answers every sampled pair.
    graph = compile_graph(alive)
    labels = graph.component_labels()
    connected = 0
    total = 0
    for _ in range(sample_pairs):
        src, dst = rng.sample(servers, 2)
        total += 1
        if labels[graph.index[src]] == labels[graph.index[dst]]:
            connected += 1
    return connected / total if total else 0.0


def largest_component_fraction(net: Network, scenario: FailureScenario) -> float:
    """Alive servers in the largest connected component / alive servers."""
    alive = apply_failures(net, scenario)
    if alive.num_servers == 0:
        return 0.0
    graph = compile_graph(alive)
    labels = graph.component_labels()
    members: Dict[int, int] = {}
    for server in graph.server_indices:
        label = int(labels[server])
        members[label] = members.get(label, 0) + 1
    return max(members.values()) / graph.num_servers
