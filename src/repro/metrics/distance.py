"""Distance metrics: diameter, average path length, hop histograms.

Two hop conventions are reported throughout (see
:mod:`repro.routing.base`): physical *link hops* over the full graph and
logical *server hops* over the server-projected graph (two servers are
logically adjacent when they share a switch or a direct cable).  The
projection makes server-hop distances well-defined even for topologies
mixing switched and direct links (DCell, FiConn).

:func:`link_hop_stats` and :func:`server_hop_stats` route through the
compiled CSR kernel and (optionally parallel) sweep engine
(:mod:`repro.metrics.engine`); the original dict-BFS implementations are
kept as ``legacy_*`` references — the parity tests assert both paths
produce identical :class:`DistanceStats`, and the micro-benchmarks
measure the speedup.
"""

from __future__ import annotations

import random
from collections import Counter, deque
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.routing.shortest import bfs_distances
from repro.topology.graph import Network
from repro.topology.node import NodeKind


def logical_server_adjacency(net: Network) -> Dict[str, Set[str]]:
    """Server-projected adjacency: shared switch or direct server link."""
    adjacency: Dict[str, Set[str]] = {s: set() for s in net.servers}
    for node in net.nodes():
        if node.kind is NodeKind.SWITCH:
            members = [v for v in net.neighbors(node.name) if net.node(v).is_server]
            for i, u in enumerate(members):
                for v in members[i + 1 :]:
                    adjacency[u].add(v)
                    adjacency[v].add(u)
    for link in net.links():
        if net.node(link.u).is_server and net.node(link.v).is_server:
            adjacency[link.u].add(link.v)
            adjacency[link.v].add(link.u)
    return adjacency


def _bfs_over(adjacency: Dict[str, Set[str]], source: str) -> Dict[str, int]:
    dist = {source: 0}
    queue = deque([source])
    while queue:
        u = queue.popleft()
        for v in adjacency[u]:
            if v not in dist:
                dist[v] = dist[u] + 1
                queue.append(v)
    return dist


@dataclass(frozen=True)
class DistanceStats:
    """Summary of pairwise server distances under one hop convention.

    ``mean_ci95`` is the 95% confidence half-width of ``mean`` when the
    sweep was sampled (``exact`` is False), computed from the spread of
    per-source mean distances; exact sweeps carry 0.0.
    """

    diameter: int
    mean: float
    histogram: Dict[int, int]
    pairs: int
    exact: bool
    mean_ci95: float = 0.0

    @property
    def p99(self) -> int:
        """99th percentile distance (from the histogram)."""
        threshold = 0.99 * self.pairs
        seen = 0
        for hops in sorted(self.histogram):
            seen += self.histogram[hops]
            if seen >= threshold:
                return hops
        return self.diameter


def _collect(
    sources: Sequence[str],
    all_servers: Sequence[str],
    dist_fn,
    exact: bool,
) -> DistanceStats:
    histogram: Counter = Counter()
    total = 0
    diameter = 0
    targets: FrozenSet[str] = frozenset(all_servers)
    expected = len(targets) - 1
    for src in sources:
        reached = 0
        for dst, hops in dist_fn(src).items():
            if hops == 0 or dst not in targets:
                continue
            reached += 1
            histogram[hops] += 1
            total += hops
            if hops > diameter:
                diameter = hops
        if reached != expected:
            raise ValueError(
                f"{expected - reached} servers unreachable from {src!r}"
            )
    pairs = len(sources) * expected
    return DistanceStats(
        diameter=diameter,
        mean=total / pairs if pairs else 0.0,
        histogram=dict(sorted(histogram.items())),
        pairs=pairs,
        exact=exact,
    )


def link_hop_stats(
    net: Network,
    sample_sources: Optional[int] = None,
    seed: int = 0,
    workers: Optional[int] = None,
) -> DistanceStats:
    """Pairwise server distances in link hops (compiled sweep engine).

    Exact (all sources) when ``sample_sources`` is None; otherwise one BFS
    per sampled source — diameter becomes a lower bound, means stay
    unbiased.  ``workers`` fans the sweep out over processes (``None`` =
    engine default, see :func:`repro.metrics.engine.resolve_workers`).
    """
    from repro.metrics.engine import sweep_distance_stats

    return sweep_distance_stats(
        net, hops="link", sample_sources=sample_sources, seed=seed, workers=workers
    )


def server_hop_stats(
    net: Network,
    sample_sources: Optional[int] = None,
    seed: int = 0,
    workers: Optional[int] = None,
) -> DistanceStats:
    """Pairwise server distances in logical server hops (compiled engine)."""
    from repro.metrics.engine import sweep_distance_stats

    return sweep_distance_stats(
        net, hops="server", sample_sources=sample_sources, seed=seed, workers=workers
    )


def legacy_link_hop_stats(
    net: Network, sample_sources: Optional[int] = None, seed: int = 0
) -> DistanceStats:
    """Reference implementation: dict-BFS over the ``Network`` adjacency.

    Kept as the parity/benchmark baseline for the compiled engine; prefer
    :func:`link_hop_stats`.
    """
    servers = net.servers
    sources = _pick_sources(servers, sample_sources, seed)
    return _collect(
        sources,
        servers,
        lambda src: bfs_distances(net, src),
        exact=sample_sources is None or sample_sources >= len(servers),
    )


def legacy_server_hop_stats(
    net: Network, sample_sources: Optional[int] = None, seed: int = 0
) -> DistanceStats:
    """Reference implementation of :func:`server_hop_stats` (dict-BFS)."""
    adjacency = logical_server_adjacency(net)
    servers = net.servers
    sources = _pick_sources(servers, sample_sources, seed)
    return _collect(
        sources,
        servers,
        lambda src: _bfs_over(adjacency, src),
        exact=sample_sources is None or sample_sources >= len(servers),
    )


def _pick_sources(
    servers: Sequence[str], sample: Optional[int], seed: int
) -> Sequence[str]:
    if sample is None or sample >= len(servers):
        return servers
    return random.Random(seed).sample(list(servers), sample)


def server_diameter(net: Network) -> int:
    """Exact logical server-hop diameter."""
    return server_hop_stats(net).diameter


def link_diameter(net: Network) -> int:
    """Exact link-hop diameter over server pairs."""
    return link_hop_stats(net).diameter
