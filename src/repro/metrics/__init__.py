"""Metrics: distances, bisection width, throughput, resilience, cost."""

from repro.metrics.bisection import (
    bisection_upper_bound,
    digit_split_abccc,
    digit_split_bcube,
    exact_bisection_small,
    partition_cut_width,
    pod_split_fattree,
    spectral_split,
)
from repro.metrics.bottleneck import (
    LinkLoadStats,
    aggregate_bottleneck_throughput,
    link_loads,
    load_stats,
    per_server_abt,
)
from repro.metrics.connectivity import (
    FailureScenario,
    apply_failures,
    connection_ratio,
    draw_failures,
    largest_component_fraction,
    sample_server_pairs,
    server_pair_connectivity,
)
from repro.metrics.bounds import (
    ThroughputBounds,
    all_to_all_bounds,
    per_server_ceiling,
)
from repro.metrics.cost import CapexBreakdown, PriceBook, capex, expansion_capex
from repro.metrics.layout import CablePlan, LayoutConfig, assign_racks, cable_plan
from repro.metrics.reroute import RerouteImpact, reroute_impact
from repro.metrics.state import (
    StateStats,
    algorithmic_state,
    state_ratio,
    table_state,
)
from repro.metrics.distance import (
    DistanceStats,
    legacy_link_hop_stats,
    legacy_server_hop_stats,
    link_diameter,
    link_hop_stats,
    logical_server_adjacency,
    server_diameter,
    server_hop_stats,
)
from repro.metrics.engine import (
    get_default_workers,
    resolve_workers,
    set_default_workers,
    sweep_distance_stats,
)

__all__ = [
    "CablePlan",
    "CapexBreakdown",
    "DistanceStats",
    "LayoutConfig",
    "RerouteImpact",
    "StateStats",
    "reroute_impact",
    "ThroughputBounds",
    "all_to_all_bounds",
    "per_server_ceiling",
    "algorithmic_state",
    "assign_racks",
    "cable_plan",
    "state_ratio",
    "table_state",
    "FailureScenario",
    "LinkLoadStats",
    "PriceBook",
    "aggregate_bottleneck_throughput",
    "apply_failures",
    "bisection_upper_bound",
    "capex",
    "connection_ratio",
    "digit_split_abccc",
    "digit_split_bcube",
    "draw_failures",
    "exact_bisection_small",
    "expansion_capex",
    "get_default_workers",
    "largest_component_fraction",
    "legacy_link_hop_stats",
    "legacy_server_hop_stats",
    "link_diameter",
    "link_hop_stats",
    "link_loads",
    "load_stats",
    "logical_server_adjacency",
    "partition_cut_width",
    "per_server_abt",
    "pod_split_fattree",
    "resolve_workers",
    "sample_server_pairs",
    "server_diameter",
    "server_hop_stats",
    "server_pair_connectivity",
    "set_default_workers",
    "spectral_split",
    "sweep_distance_stats",
]
