"""Parallel all-pairs sweep engine over compiled CSR graphs.

Every distance experiment reduces to the same kernel: one BFS per source
server, histogram the distances to all other servers, merge.  This
module runs that kernel over the compiled views from
:mod:`repro.topology.compiled` and fans the source set out over a
:class:`~concurrent.futures.ProcessPoolExecutor` in chunks — each worker
receives the pickled CSR arrays **once** (pool initializer), not one
network per task — then merges the per-chunk histograms, diameters and
unreachable counts.

The sequential path runs in-process when ``workers <= 1`` or the source
set is too small for forking to pay off, and produces *identical*
:class:`~repro.metrics.distance.DistanceStats` to the parallel path and
to the legacy dict-BFS implementation (asserted by the parity tests in
``tests/test_metrics_engine.py``).

Worker-count resolution (``resolve_workers``): an explicit int wins; 0
or a negative value means "all cores"; ``None`` falls back to the
``REPRO_WORKERS`` environment variable, then the module default set by
:func:`set_default_workers` (the experiment runner's ``--workers`` flag
sets that default for a run).
"""

from __future__ import annotations

import math
import os
import pickle
import random
import time
import warnings
from collections import Counter
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.metrics.distance import DistanceStats
from repro.obs import trace as _obs
from repro.topology.compiled import (
    HAVE_NUMPY,
    HAVE_SCIPY,
    CompiledGraph,
    compile_graph,
    compile_server_projection,
)
from repro.topology.graph import Network

#: below this many sources the fork/pickle overhead outweighs the fan-out.
PARALLEL_THRESHOLD = 16

#: seconds to back off before the single pool-recovery retry.
POOL_RETRY_BACKOFF_S = 0.25

#: exception classes that mean "the worker pool is unusable", not "the
#: computation is wrong": a crashed/OOM-killed worker, an unpicklable
#: payload, or a platform without fork/semaphores.  AttributeError and
#: TypeError are what CPython's pickle actually raises for local
#: functions and unpicklable objects (not PicklingError); catching them
#: here is safe because the sequential fallback re-runs the computation
#: and reproduces any genuine error in the task function itself.
POOL_FAILURES = (
    BrokenProcessPool,
    OSError,
    PermissionError,
    pickle.PicklingError,
    AttributeError,
    TypeError,
)

_DEFAULT_WORKERS = 1


class DegradedModeWarning(UserWarning):
    """A parallel stage lost its worker pool and ran sequentially.

    Structured: carries the stage ``context``, the requested ``workers``
    and the final ``error`` so harnesses and tests can filter on them
    rather than parse the message.
    """

    def __init__(self, context: str, workers: int, error: BaseException) -> None:
        self.context = context
        self.workers = workers
        self.error = error
        super().__init__(
            f"{context}: worker pool (workers={workers}) failed twice "
            f"({type(error).__name__}: {error}); degraded to sequential "
            f"execution — results are complete but slower"
        )


def map_with_pool_recovery(
    fn: Callable,
    tasks: Sequence,
    *,
    workers: int,
    initializer: Optional[Callable] = None,
    initargs: Tuple = (),
    sequential: Callable[[Sequence], List],
    context: str,
) -> List:
    """``pool.map(fn, tasks)`` with crash recovery, preserving order.

    A mid-run worker crash (``BrokenProcessPool``), a pickling failure
    or a missing-fork platform no longer kills the caller: the pool is
    retried once after a short backoff, and if it fails again the whole
    task list is recomputed by ``sequential(tasks)`` — loudly, via a
    :class:`DegradedModeWarning` (never silently).
    """
    last_error: Optional[BaseException] = None
    with _obs.span("pool", context=context, workers=workers, tasks=len(tasks)) as pool_span:
        for attempt in (1, 2):
            try:
                with ProcessPoolExecutor(
                    max_workers=workers, initializer=initializer, initargs=initargs
                ) as pool:
                    results = list(pool.map(fn, tasks))
                    pool_span.tag(attempts=attempt)
                    return results
            except POOL_FAILURES as error:
                last_error = error
                if attempt == 1:
                    _obs.event(
                        "pool-retry",
                        f"{context}: worker pool failed, retrying once",
                        context=context,
                        workers=workers,
                        error=f"{type(error).__name__}: {error}",
                    )
                    _obs.counter("pool.retries")
                    time.sleep(POOL_RETRY_BACKOFF_S)
        assert last_error is not None
        _obs.event(
            "degraded-mode",
            f"{context}: worker pool failed twice; degraded to sequential",
            context=context,
            workers=workers,
            error=f"{type(last_error).__name__}: {last_error}",
        )
        _obs.counter("pool.degraded")
        pool_span.tag(degraded=True)
        warnings.warn(
            DegradedModeWarning(context, workers, last_error), stacklevel=2
        )
        return sequential(tasks)


def set_default_workers(workers: int) -> int:
    """Set the module-default worker count; returns the previous value."""
    global _DEFAULT_WORKERS
    previous = _DEFAULT_WORKERS
    _DEFAULT_WORKERS = int(workers)
    return previous


def get_default_workers() -> int:
    return _DEFAULT_WORKERS


def resolve_workers(workers: Optional[int] = None) -> int:
    """Resolve an effective worker count (see module docstring)."""
    if workers is None:
        env = os.environ.get("REPRO_WORKERS", "").strip()
        workers = int(env) if env else _DEFAULT_WORKERS
    workers = int(workers)
    if workers <= 0:
        workers = os.cpu_count() or 1
    return workers


# ----------------------------------------------------------------------
# the kernel: multi-source sweep -> (histogram, unreachable count)
# ----------------------------------------------------------------------
def _sweep_sources(
    graph: CompiledGraph, sources: Sequence[int]
) -> Tuple[Dict[int, int], int]:
    """Histogram of server->server distances from ``sources``.

    Distance 0 entries (the source itself) are excluded; unreachable
    (src, dst) pairs are counted, not raised — the caller decides.

    Kernel selection, fastest available first: batched multi-source BFS
    via sparse matmul (scipy), per-source vectorised frontier BFS
    (numpy), flat-array BFS (stdlib only).  All three produce identical
    histograms — distances are unique, only the traversal differs.
    """
    if HAVE_SCIPY:
        return _sweep_batched(graph, sources)
    targets = graph.server_indices
    unreachable = 0
    if HAVE_NUMPY:
        import numpy as np

        acc = np.zeros(1, dtype=np.int64)
        for src in sources:
            d = graph.bfs_distances(src)[targets]
            unreachable += int((d < 0).sum())
            counts = np.bincount(d[d > 0], minlength=acc.size)
            if counts.size > acc.size:
                counts[: acc.size] += acc
                acc = counts
            else:
                acc += counts
        return {int(h): int(c) for h, c in enumerate(acc) if c}, unreachable
    histogram: Counter = Counter()
    for src in sources:
        dist = graph.bfs_distances(src)
        for t in targets:
            hops = dist[t]
            if hops < 0:
                unreachable += 1
            elif hops > 0:
                histogram[hops] += 1
    return dict(histogram), unreachable


def _sweep_batched(
    graph: CompiledGraph, sources: Sequence[int]
) -> Tuple[Dict[int, int], int]:
    """Level-synchronous BFS over a *block* of sources at once.

    The frontier of a whole source block is one dense (nodes x block)
    matrix; expanding every frontier is a single sparse-matrix multiply,
    so the per-level Python overhead is amortised over the block.  Block
    size is capped to keep the working set a few megabytes regardless of
    graph size.
    """
    import numpy as np

    mat = graph.sparse_adjacency()
    nodes = graph.num_nodes
    targets = np.asarray(graph.server_indices)
    source_arr = np.asarray(sources, dtype=np.int64)
    block = int(min(max(8_000_000 // max(nodes, 1), 16), 1024))
    acc = np.zeros(1, dtype=np.int64)
    unreachable = 0
    for lo in range(0, len(source_arr), block):
        chunk = source_arr[lo : lo + block]
        width = len(chunk)
        cols = np.arange(width)
        frontier = np.zeros((nodes, width), dtype=np.int32)
        frontier[chunk, cols] = 1
        visited = frontier > 0
        dist = np.full((nodes, width), -1, dtype=np.int32)
        dist[chunk, cols] = 0
        level = 0
        while True:
            level += 1
            fresh = (mat @ frontier) > 0
            fresh &= ~visited
            if not fresh.any():
                break
            dist[fresh] = level
            visited |= fresh
            frontier = fresh.astype(np.int32)
        sub = dist[targets, :]
        unreachable += int((sub < 0).sum())
        counts = np.bincount(sub[sub > 0], minlength=acc.size)
        if counts.size > acc.size:
            counts[: acc.size] += acc
            acc = counts
        else:
            acc += counts
    return {int(h): int(c) for h, c in enumerate(acc) if c}, unreachable


def pairwise_distances(
    graph: CompiledGraph, pairs: Sequence[Tuple[int, int]]
) -> List[int]:
    """Hop distance for each ``(src, dst)`` node-index pair (-1 = unreachable).

    Sources are deduplicated; with scipy present the distinct sources run
    through the same block BFS as the all-pairs sweep — a panel of
    hundreds of pairs costs a handful of sparse matmuls instead of one
    full BFS per distinct source.  Used by the fault-routing experiments
    for their shortest-path baselines.
    """
    sources = sorted({u for u, _ in pairs})
    dist: Dict[int, Sequence[int]] = {}
    if HAVE_SCIPY and len(sources) >= 4:
        import numpy as np

        mat = graph.sparse_adjacency()
        nodes = graph.num_nodes
        block = int(min(max(8_000_000 // max(nodes, 1), 16), 1024))
        for lo in range(0, len(sources), block):
            chunk = np.asarray(sources[lo : lo + block], dtype=np.int64)
            width = len(chunk)
            cols = np.arange(width)
            frontier = np.zeros((nodes, width), dtype=np.int32)
            frontier[chunk, cols] = 1
            visited = frontier > 0
            d = np.full((nodes, width), -1, dtype=np.int32)
            d[chunk, cols] = 0
            level = 0
            while True:
                level += 1
                fresh = (mat @ frontier) > 0
                fresh &= ~visited
                if not fresh.any():
                    break
                d[fresh] = level
                visited |= fresh
                frontier = fresh.astype(np.int32)
            for j, src in enumerate(sources[lo : lo + block]):
                dist[src] = d[:, j]
    else:
        for src in sources:
            dist[src] = graph.bfs_distances(src)
    return [int(dist[u][v]) for u, v in pairs]


# Worker-process state: the compiled graph arrives once via the pool
# initializer and is reused by every chunk the worker executes.
_WORKER_GRAPH: Optional[CompiledGraph] = None


def _worker_init(graph: CompiledGraph) -> None:
    global _WORKER_GRAPH
    _WORKER_GRAPH = graph
    _obs.maybe_init_worker()


def _worker_sweep(sources: Sequence[int]) -> Tuple[Dict[int, int], int]:
    assert _WORKER_GRAPH is not None, "worker pool not initialised"
    with _obs.span("engine.batch", sources=len(sources)):
        _obs.counter("engine.batches")
        _obs.counter("engine.sources", len(sources))
        return _sweep_sources(_WORKER_GRAPH, sources)


def _chunk(sources: Sequence[int], workers: int) -> List[Sequence[int]]:
    """Split sources into ~4 chunks per worker for load balancing."""
    per = max(1, math.ceil(len(sources) / (workers * 4)))
    return [sources[i : i + per] for i in range(0, len(sources), per)]


def _parallel_sweep(
    graph: CompiledGraph, sources: Sequence[int], workers: int
) -> Tuple[Dict[int, int], int]:
    results = map_with_pool_recovery(
        _worker_sweep,
        _chunk(sources, workers),
        workers=workers,
        initializer=_worker_init,
        initargs=(graph,),
        sequential=lambda chunks: [_sweep_sources(graph, c) for c in chunks],
        context="all-pairs distance sweep",
    )
    merged: Counter = Counter()
    unreachable = 0
    for histogram, missed in results:
        merged.update(histogram)
        unreachable += missed
    return dict(merged), unreachable


# ----------------------------------------------------------------------
# public entry point
# ----------------------------------------------------------------------
def sweep_distance_stats(
    net: Network,
    hops: str = "link",
    sample_sources: Optional[int] = None,
    seed: int = 0,
    workers: Optional[int] = None,
) -> DistanceStats:
    """All-pairs (or sampled-source) server distance stats for ``net``.

    ``hops`` selects the compiled view: ``"link"`` (physical link hops
    over the full graph) or ``"server"`` (logical server hops over the
    server projection).  Sampling semantics, seeding and the resulting
    :class:`DistanceStats` match the legacy pure-Python sweep exactly.
    """
    if hops == "link":
        graph = compile_graph(net)
    elif hops == "server":
        graph = compile_server_projection(net)
    else:
        raise ValueError(f"hops must be 'link' or 'server', got {hops!r}")

    server_names = [graph.names[i] for i in graph.server_indices]
    if len(server_names) < 2:
        return DistanceStats(diameter=0, mean=0.0, histogram={}, pairs=0, exact=True)
    exact = sample_sources is None or sample_sources >= len(server_names)
    if exact:
        source_names: Sequence[str] = server_names
    else:
        source_names = random.Random(seed).sample(list(server_names), sample_sources)
    source_idx = [graph.index[name] for name in source_names]

    workers = resolve_workers(workers)
    with _obs.span(
        "engine.sweep", hops=hops, sources=len(source_idx), workers=workers
    ):
        if workers <= 1 or len(source_idx) < max(PARALLEL_THRESHOLD, 2 * workers):
            _obs.counter("engine.sources", len(source_idx))
            histogram, unreachable = _sweep_sources(graph, source_idx)
        else:
            histogram, unreachable = _parallel_sweep(graph, source_idx, workers)
    if unreachable:
        raise ValueError(
            f"{unreachable} (src, dst) server pairs unreachable "
            f"in {net.name!r} ({hops} hops)"
        )

    pairs = len(source_idx) * (len(server_names) - 1)
    total = sum(h * c for h, c in histogram.items())
    return DistanceStats(
        diameter=max(histogram) if histogram else 0,
        mean=total / pairs if pairs else 0.0,
        histogram=dict(sorted(histogram.items())),
        pairs=pairs,
        exact=exact,
    )
