"""Parallel all-pairs sweep engine over compiled CSR graphs.

Every distance experiment reduces to the same kernel: one BFS per source
server, histogram the distances to all other servers, merge.  This
module runs that kernel over the compiled views from
:mod:`repro.topology.compiled` and fans the source set out over a
:class:`~concurrent.futures.ProcessPoolExecutor` in chunks.  Workers do
not receive a pickled graph: the pool initializer gets a
:class:`~repro.topology.shm.GraphHandle` — the CSR arrays live once in
shared memory (or in their memmap files) and every worker attaches
zero-copy, so pool spin-up is O(graph), not O(workers x graph).

Two public entries:

* :func:`sweep_graph_distance_stats` — **graph-native**: takes any
  :class:`~repro.topology.compiled.CompiledGraph` /
  :class:`~repro.topology.fastbuild.FastCompiledGraph` (or a
  :class:`~repro.faults.mask.MaskedGraph`, swept through its alive-only
  view), so million-server fast-built graphs are swept without ever
  constructing a ``Network``.  Above ``AUTO_SAMPLE_THRESHOLD`` servers
  it defaults to sampled-source estimation and reports a 95% confidence
  interval on the mean (``DistanceStats.mean_ci95``).
* :func:`sweep_distance_stats` — the legacy ``Network`` entry, now a
  thin compile-then-delegate wrapper producing byte-identical
  ``DistanceStats`` (asserted in ``tests/test_metrics_engine.py`` and
  ``tests/test_engine_graph_native.py``).

Three BFS kernels produce identical histograms (``resolve_kernel``
picks; ``REPRO_SWEEP_KERNEL`` overrides):

* ``bitpack`` — level-synchronous multi-source BFS with the frontier
  bit-packed into uint64 words (64 sources per word, ~32x smaller
  working set than the old dense int32 frontier); expansion is a CSR
  gather + ``bitwise_or.reduceat``, histogramming is popcount.  The
  default above ``BITPACK_AUTO_NODES`` nodes.
* ``dense`` — the original scipy sparse-matmul block BFS (default for
  small graphs, where its constants win).
* ``flat`` — one BFS per source over the flat arrays (no scipy, or no
  numpy at all).

Worker-count resolution (``resolve_workers``): an explicit int wins; 0
or a negative value means "all cores"; ``None`` falls back to the
``REPRO_WORKERS`` environment variable (invalid values warn and fall
back), then the module default set by :func:`set_default_workers` (the
experiment runner's ``--workers`` flag sets that default for a run).
"""

from __future__ import annotations

import math
import os
import pickle
import random
import sys
import time
import warnings
from collections import Counter
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.metrics.distance import DistanceStats
from repro.obs import trace as _obs
from repro.topology.compiled import (
    HAVE_NUMPY,
    HAVE_SCIPY,
    CompiledGraph,
    CSRGraphView,
    compile_graph,
    compile_server_projection,
)
from repro.topology.graph import Network

if HAVE_NUMPY:
    import numpy as _np

#: below this many sources the fork/pickle overhead outweighs the fan-out.
PARALLEL_THRESHOLD = 16

#: seconds to back off before the single pool-recovery retry.
POOL_RETRY_BACKOFF_S = 0.25

#: above this many servers `sweep_graph_distance_stats` defaults to
#: sampled-source estimation (exact all-pairs at 786k servers would be
#: ~6 * 10^11 BFS-pair evaluations).  The Network wrapper never
#: auto-samples: its legacy semantics are exact unless asked.
AUTO_SAMPLE_THRESHOLD = 20_000

#: sources drawn when auto-sampling kicks in.
AUTO_SAMPLE_SOURCES = 1024

#: the bit-packed kernel beats the scipy dense-frontier kernel once the
#: dense (nodes x block) working set stops fitting in cache; below this
#: node count the matmul's constants win.
BITPACK_AUTO_NODES = 4096

#: recognised kernel names (``resolve_kernel`` maps "auto" to a real one).
SWEEP_KERNELS = ("auto", "bitpack", "dense", "flat")

#: per-block working-set budget of the bit-packed kernel, in MB
#: (gather buffer + frontier + visited + next); REPRO_SWEEP_BUDGET_MB
#: overrides.
SWEEP_BUDGET_MB = 192.0

#: the bit-packed kernel maps word bits to source columns through a
#: little-endian byte view; big-endian platforms fall back to "flat".
_BITPACK_OK = HAVE_NUMPY and sys.byteorder == "little"

#: exception classes that mean "the worker pool is unusable", not "the
#: computation is wrong": a crashed/OOM-killed worker, an unpicklable
#: payload, or a platform without fork/semaphores.  AttributeError and
#: TypeError are what CPython's pickle actually raises for local
#: functions and unpicklable objects (not PicklingError); catching them
#: here is safe because the sequential fallback re-runs the computation
#: and reproduces any genuine error in the task function itself.
POOL_FAILURES = (
    BrokenProcessPool,
    OSError,
    PermissionError,
    pickle.PicklingError,
    AttributeError,
    TypeError,
)

_DEFAULT_WORKERS = 1


class DegradedModeWarning(UserWarning):
    """A parallel stage lost its worker pool and ran sequentially.

    Structured: carries the stage ``context``, the requested ``workers``
    and the final ``error`` so harnesses and tests can filter on them
    rather than parse the message.
    """

    def __init__(self, context: str, workers: int, error: BaseException) -> None:
        self.context = context
        self.workers = workers
        self.error = error
        super().__init__(
            f"{context}: worker pool (workers={workers}) failed twice "
            f"({type(error).__name__}: {error}); degraded to sequential "
            f"execution — results are complete but slower"
        )


def map_with_pool_recovery(
    fn: Callable,
    tasks: Sequence,
    *,
    workers: int,
    initializer: Optional[Callable] = None,
    initargs: Tuple = (),
    sequential: Callable[[Sequence], List],
    context: str,
) -> List:
    """``pool.map(fn, tasks)`` with crash recovery, preserving order.

    A mid-run worker crash (``BrokenProcessPool``), a pickling failure
    or a missing-fork platform no longer kills the caller: the pool is
    retried once after a short backoff, and if it fails again the whole
    task list is recomputed by ``sequential(tasks)`` — loudly, via a
    :class:`DegradedModeWarning` (never silently).
    """
    last_error: Optional[BaseException] = None
    with _obs.span("pool", context=context, workers=workers, tasks=len(tasks)) as pool_span:
        for attempt in (1, 2):
            try:
                with ProcessPoolExecutor(
                    max_workers=workers, initializer=initializer, initargs=initargs
                ) as pool:
                    results = list(pool.map(fn, tasks))
                    pool_span.tag(attempts=attempt)
                    return results
            except POOL_FAILURES as error:
                last_error = error
                if attempt == 1:
                    _obs.event(
                        "pool-retry",
                        f"{context}: worker pool failed, retrying once",
                        context=context,
                        workers=workers,
                        error=f"{type(error).__name__}: {error}",
                    )
                    _obs.counter("pool.retries")
                    time.sleep(POOL_RETRY_BACKOFF_S)
        assert last_error is not None
        _obs.event(
            "degraded-mode",
            f"{context}: worker pool failed twice; degraded to sequential",
            context=context,
            workers=workers,
            error=f"{type(last_error).__name__}: {last_error}",
        )
        _obs.counter("pool.degraded")
        pool_span.tag(degraded=True)
        warnings.warn(
            DegradedModeWarning(context, workers, last_error), stacklevel=2
        )
        return sequential(tasks)


def set_default_workers(workers: int) -> int:
    """Set the module-default worker count; returns the previous value."""
    global _DEFAULT_WORKERS
    previous = _DEFAULT_WORKERS
    _DEFAULT_WORKERS = int(workers)
    return previous


def get_default_workers() -> int:
    return _DEFAULT_WORKERS


def resolve_workers(workers: Optional[int] = None) -> int:
    """Resolve an effective worker count (see module docstring)."""
    if workers is None:
        env = os.environ.get("REPRO_WORKERS", "").strip()
        if env:
            try:
                workers = int(env)
            except ValueError:
                warnings.warn(
                    f"ignoring invalid REPRO_WORKERS={env!r} (not an integer); "
                    f"using the module default ({_DEFAULT_WORKERS})",
                    RuntimeWarning,
                    stacklevel=2,
                )
                workers = _DEFAULT_WORKERS
        else:
            workers = _DEFAULT_WORKERS
    workers = int(workers)
    if workers <= 0:
        workers = os.cpu_count() or 1
    return workers


def resolve_kernel(kernel: Optional[str] = None, graph: Optional[CompiledGraph] = None) -> str:
    """Resolve a kernel name to a concrete, available kernel.

    ``None`` reads ``REPRO_SWEEP_KERNEL`` (empty = "auto"); "auto" picks
    bit-packed at ``BITPACK_AUTO_NODES``+ nodes, scipy dense below, flat
    without scipy.  An explicit kernel that is unavailable on this
    platform degrades to "flat" rather than failing — all kernels give
    identical results.
    """
    if kernel is None:
        kernel = os.environ.get("REPRO_SWEEP_KERNEL", "").strip().lower() or "auto"
    if kernel not in SWEEP_KERNELS:
        raise ValueError(
            f"sweep kernel must be one of {SWEEP_KERNELS}, got {kernel!r}"
        )
    if kernel == "auto":
        nodes = graph.num_nodes if graph is not None else 0
        if _BITPACK_OK and nodes >= BITPACK_AUTO_NODES:
            return "bitpack"
        if HAVE_SCIPY:
            return "dense"
        return "flat"
    if kernel == "bitpack" and not _BITPACK_OK:
        return "flat"
    if kernel == "dense" and not HAVE_SCIPY:
        return "flat"
    return kernel


# ----------------------------------------------------------------------
# the kernels: multi-source sweep ->
#   (histogram, unreachable count, per-source sums, per-source reached)
# ----------------------------------------------------------------------
def _sweep_sources(
    graph: CompiledGraph,
    sources: Sequence[int],
    kernel: str = "auto",
    per_source: bool = False,
) -> Tuple[Dict[int, int], int, List[int], List[int]]:
    """Histogram of server->server distances from ``sources``.

    Distance 0 entries (the source itself) are excluded; unreachable
    (src, dst) pairs are counted, not raised — the caller decides.  With
    ``per_source`` the last two elements carry, per source in input
    order, the sum of its distances and its reached-target count (exact
    ints, so every kernel returns bit-identical values) — the raw
    material for the sampled-sweep confidence interval.
    """
    kernel = resolve_kernel(kernel, graph)
    if kernel == "bitpack":
        return _sweep_bitpack(graph, sources, per_source)
    if kernel == "dense":
        return _sweep_dense(graph, sources, per_source)
    return _sweep_flat(graph, sources, per_source)


def _merge_hist(acc, counts):
    """Accumulate a bincount into the (growing) histogram array."""
    if counts.size > acc.size:
        counts = counts.astype(_np.int64, copy=True)
        counts[: acc.size] += acc
        return counts
    acc += counts
    return acc


def _hist_dict(acc) -> Dict[int, int]:
    return {int(h): int(c) for h, c in enumerate(acc) if c}


def _sweep_flat(
    graph: CompiledGraph, sources: Sequence[int], per_source: bool
) -> Tuple[Dict[int, int], int, List[int], List[int]]:
    """One BFS per source: vectorised frontier (numpy) or flat lists."""
    targets = graph.server_indices
    unreachable = 0
    sums: List[int] = []
    reached: List[int] = []
    if HAVE_NUMPY:
        acc = _np.zeros(1, dtype=_np.int64)
        for src in sources:
            d = graph.bfs_distances(src)[targets]
            unreachable += int((d < 0).sum())
            pos = d > 0
            acc = _merge_hist(acc, _np.bincount(d[pos], minlength=acc.size))
            if per_source:
                sums.append(int(d[pos].sum()))
                reached.append(int(pos.sum()))
        return _hist_dict(acc), unreachable, sums, reached
    histogram: Counter = Counter()
    for src in sources:
        dist = graph.bfs_distances(src)
        total = 0
        count = 0
        for t in targets:
            hops = dist[t]
            if hops < 0:
                unreachable += 1
            elif hops > 0:
                histogram[hops] += 1
                total += hops
                count += 1
        if per_source:
            sums.append(total)
            reached.append(count)
    return dict(histogram), unreachable, sums, reached


def _dense_block(nodes: int) -> int:
    """Sources per dense block: caps the (nodes x block) int32 frontier."""
    return int(min(max(8_000_000 // max(nodes, 1), 16), 1024))


def _block_bfs_dense(mat, nodes: int, chunk):
    """Level-synchronous BFS over one block of sources at once.

    The frontier of the whole block is one dense (nodes x width) matrix;
    expanding every frontier is a single sparse-matrix multiply, so the
    per-level Python overhead is amortised over the block.  Returns the
    (nodes x width) int32 distance matrix (-1 = unreachable).  Shared by
    the all-pairs sweep and :func:`pairwise_distances` — this is the one
    copy of the dense block-BFS loop.
    """
    width = len(chunk)
    cols = _np.arange(width)
    frontier = _np.zeros((nodes, width), dtype=_np.int32)
    frontier[chunk, cols] = 1
    visited = frontier > 0
    dist = _np.full((nodes, width), -1, dtype=_np.int32)
    dist[chunk, cols] = 0
    level = 0
    while True:
        level += 1
        fresh = (mat @ frontier) > 0
        fresh &= ~visited
        if not fresh.any():
            break
        dist[fresh] = level
        visited |= fresh
        frontier = fresh.astype(_np.int32)
    return dist


def _sweep_dense(
    graph: CompiledGraph, sources: Sequence[int], per_source: bool
) -> Tuple[Dict[int, int], int, List[int], List[int]]:
    """Block BFS via scipy sparse matmul (the original batched kernel)."""
    mat = graph.sparse_adjacency()
    nodes = graph.num_nodes
    targets = _np.asarray(graph.server_indices, dtype=_np.int64)
    source_arr = _np.asarray(sources, dtype=_np.int64)
    block = _dense_block(nodes)
    acc = _np.zeros(1, dtype=_np.int64)
    unreachable = 0
    sums: List[int] = []
    reached: List[int] = []
    for lo in range(0, len(source_arr), block):
        chunk = source_arr[lo : lo + block]
        sub = _block_bfs_dense(mat, nodes, chunk)[targets, :]
        unreachable += int((sub < 0).sum())
        pos = sub > 0
        acc = _merge_hist(acc, _np.bincount(sub[pos], minlength=acc.size))
        if per_source:
            sums.extend(
                int(v) for v in _np.where(pos, sub, 0).sum(axis=0, dtype=_np.int64)
            )
            reached.extend(int(v) for v in pos.sum(axis=0))
    return _hist_dict(acc), unreachable, sums, reached


# -- the bit-packed kernel ---------------------------------------------
if HAVE_NUMPY:
    #: _BYTE_BITS[b, j] = bit j of byte b — turns per-byte-value counts
    #: into per-bit counts with one (256 x 8) matmul.
    _BYTE_BITS = _np.array(
        [[(b >> j) & 1 for j in range(8)] for b in range(256)], dtype=_np.int64
    )
    if hasattr(_np, "bitwise_count"):

        def _popcount_sum(a) -> int:
            return int(_np.bitwise_count(a).sum())

    else:  # pragma: no cover - numpy < 2.0
        _POP8 = _np.array([bin(b).count("1") for b in range(256)], dtype=_np.uint8)

        def _popcount_sum(a) -> int:
            return int(_POP8[_np.ascontiguousarray(a).view(_np.uint8)].sum(dtype=_np.int64))


def _per_source_counts(bits, width: int):
    """Per-source set-bit counts of a (rows x words) uint64 bit matrix.

    Column ``j`` of the packed matrix is source ``j``: byte ``p`` of the
    little-endian word stream holds sources ``8p .. 8p+7``, so one
    bincount per byte column + the byte->bit table recovers every
    source's count without unpacking the matrix.
    """
    byte_cols = _np.ascontiguousarray(bits).view(_np.uint8).reshape(len(bits), -1)
    out = _np.zeros(byte_cols.shape[1] * 8, dtype=_np.int64)
    for p in range(byte_cols.shape[1]):
        out[p * 8 : (p + 1) * 8] = (
            _np.bincount(byte_cols[:, p], minlength=256) @ _BYTE_BITS
        )
    return out[:width]


def _bitpack_block(nodes: int, entries: int) -> int:
    """Sources per bit-packed block, from the working-set budget.

    Each uint64 word column costs ``8 * (entries + 3 * nodes)`` bytes
    (the gather buffer dominates); the budget caps that, and 64 words
    (4096 sources) caps the per-level popcount work.  Even at 1M nodes
    the block stays in the thousands — the dense kernel's cap at that
    size is 16.
    """
    budget_mb = SWEEP_BUDGET_MB
    env = os.environ.get("REPRO_SWEEP_BUDGET_MB", "").strip()
    if env:
        try:
            budget_mb = float(env)
        except ValueError:
            pass
    per_word = 8.0 * (entries + 3 * max(nodes, 1))
    words = int(budget_mb * 1e6 // per_word)
    return 64 * max(1, min(words, 64))


class _BitExpander:
    """Frontier expansion for the bit-packed kernel.

    ``expand(frontier)[v] = OR of frontier[u] over u adjacent to v`` —
    valid as the transpose-free form because the graphs are undirected
    (CSR == its transpose).  Implemented as one gather of the neighbor
    rows plus ``bitwise_or.reduceat`` over the row starts; degree-0 rows
    (possible in masked views) get their start index clipped and their
    output zeroed, since ``reduceat`` cannot express an empty slice.
    """

    __slots__ = ("neighbors", "starts", "zero_rows", "entries")

    def __init__(self, graph: CompiledGraph) -> None:
        offsets = _np.asarray(graph.offsets, dtype=_np.int64)
        self.neighbors = _np.asarray(graph.neighbors, dtype=_np.int64)
        self.entries = len(self.neighbors)
        starts = offsets[:-1]
        self.zero_rows = None
        if self.entries:
            degree = offsets[1:] - starts
            if bool((degree == 0).any()):
                self.zero_rows = degree == 0
                starts = _np.minimum(starts, self.entries - 1)
        self.starts = starts

    def expand(self, frontier):
        if not self.entries:
            return _np.zeros_like(frontier)
        gathered = frontier[self.neighbors]
        nxt = _np.bitwise_or.reduceat(gathered, self.starts, axis=0)
        if self.zero_rows is not None:
            nxt[self.zero_rows] = 0
        return nxt


def _sweep_bitpack(
    graph: CompiledGraph, sources: Sequence[int], per_source: bool
) -> Tuple[Dict[int, int], int, List[int], List[int]]:
    """Bit-packed level-synchronous multi-source BFS (see module docstring).

    The frontier/visited sets of a whole block are (nodes x words)
    uint64 matrices — 64 sources per word — so the working set is ~32x
    smaller than the dense kernel's int32 frontier and the block size
    grows to thousands of sources where dense is capped at 16.
    Histogram increments are popcounts; distances never materialise.
    """
    expander = _BitExpander(graph)
    nodes = graph.num_nodes
    targets = _np.asarray(graph.server_indices, dtype=_np.int64)
    source_arr = _np.asarray(sources, dtype=_np.int64)
    block = _bitpack_block(nodes, expander.entries)
    acc = _np.zeros(1, dtype=_np.int64)
    unreachable = 0
    sums: List[int] = []
    reached: List[int] = []
    one = _np.uint64(1)
    for lo in range(0, len(source_arr), block):
        chunk = source_arr[lo : lo + block]
        width = len(chunk)
        words = (width + 63) // 64
        col = _np.arange(width, dtype=_np.int64)
        frontier = _np.zeros((nodes, words), dtype=_np.uint64)
        frontier[chunk, col >> 6] = one << (col & 63).astype(_np.uint64)
        visited = frontier.copy()
        if per_source:
            chunk_sums = _np.zeros(width, dtype=_np.int64)
            chunk_reached = _np.zeros(width, dtype=_np.int64)
        level = 0
        while True:
            level += 1
            nxt = expander.expand(frontier)
            nxt &= ~visited
            if not nxt.any():
                break
            hit = nxt[targets]
            count = _popcount_sum(hit)
            if count:
                if level >= acc.size:
                    grown = _np.zeros(level + 1, dtype=_np.int64)
                    grown[: acc.size] = acc
                    acc = grown
                acc[level] += count
                if per_source:
                    per = _per_source_counts(hit, width)
                    chunk_sums += level * per
                    chunk_reached += per
            visited |= nxt
            frontier = nxt
        unreachable += width * len(targets) - _popcount_sum(visited[targets])
        if per_source:
            sums.extend(int(v) for v in chunk_sums)
            reached.extend(int(v) for v in chunk_reached)
    return _hist_dict(acc), unreachable, sums, reached


def pairwise_distances(
    graph: CompiledGraph,
    pairs: Sequence[Tuple[int, int]],
    kernel: Optional[str] = None,
) -> List[int]:
    """Hop distance for each ``(src, dst)`` node-index pair (-1 = unreachable).

    Sources are deduplicated and run through the shared block-BFS
    kernels: the bit-packed frontier when ``resolve_kernel`` picks it
    (big graphs, or ``kernel="bitpack"``), else the dense scipy block
    BFS — a panel of hundreds of pairs costs a handful of block
    expansions instead of one full BFS per distinct source.  Used by the
    fault-routing experiments for their shortest-path baselines.
    """
    sources = sorted({u for u, _ in pairs})
    kernel = resolve_kernel(kernel, graph)
    if kernel == "bitpack" and len(sources) >= 2:
        return _pairwise_bitpack(graph, pairs, sources)
    dist: Dict[int, Sequence[int]] = {}
    if kernel == "dense" and len(sources) >= 4:
        mat = graph.sparse_adjacency()
        nodes = graph.num_nodes
        block = _dense_block(nodes)
        for lo in range(0, len(sources), block):
            chunk = _np.asarray(sources[lo : lo + block], dtype=_np.int64)
            d = _block_bfs_dense(mat, nodes, chunk)
            for j, src in enumerate(sources[lo : lo + block]):
                dist[src] = d[:, j]
    else:
        for src in sources:
            dist[src] = graph.bfs_distances(src)
    return [int(dist[u][v]) for u, v in pairs]


def _pairwise_bitpack(
    graph: CompiledGraph, pairs: Sequence[Tuple[int, int]], sources: List[int]
) -> List[int]:
    """Pairwise distances through the bit-packed frontier.

    Instead of materialising distance columns, each pair watches one
    (row, word, bit) cell of the packed frontier and records the level
    at which its destination's bit first appears.
    """
    expander = _BitExpander(graph)
    nodes = graph.num_nodes
    block = _bitpack_block(nodes, expander.entries)
    position = {src: j for j, src in enumerate(sources)}
    results = [-1] * len(pairs)
    one = _np.uint64(1)
    for lo in range(0, len(sources), block):
        chunk = _np.asarray(sources[lo : lo + block], dtype=_np.int64)
        width = len(chunk)
        words = (width + 63) // 64
        col = _np.arange(width, dtype=_np.int64)
        frontier = _np.zeros((nodes, words), dtype=_np.uint64)
        frontier[chunk, col >> 6] = one << (col & 63).astype(_np.uint64)
        visited = frontier.copy()
        watch_ids: List[int] = []
        watch_row: List[int] = []
        watch_word: List[int] = []
        watch_mask: List[int] = []
        for i, (u, v) in enumerate(pairs):
            j = position[u]
            if not lo <= j < lo + width:
                continue
            if u == v:
                results[i] = 0
                continue
            watch_ids.append(i)
            watch_row.append(v)
            watch_word.append((j - lo) >> 6)
            watch_mask.append(1 << ((j - lo) & 63))
        ids = _np.asarray(watch_ids, dtype=_np.int64)
        row = _np.asarray(watch_row, dtype=_np.int64)
        word = _np.asarray(watch_word, dtype=_np.int64)
        mask = _np.asarray(watch_mask, dtype=_np.uint64)
        pending = _np.ones(len(ids), dtype=bool)
        level = 0
        while pending.any():
            level += 1
            nxt = expander.expand(frontier)
            nxt &= ~visited
            if not nxt.any():
                break
            found = pending & ((nxt[row, word] & mask) != 0)
            for i in ids[found]:
                results[int(i)] = level
            pending &= ~found
            visited |= nxt
            frontier = nxt
    return results


# ----------------------------------------------------------------------
# the worker pool: shared-memory graph hand-off
# ----------------------------------------------------------------------
# Worker-process state: the graph arrives once via the pool initializer
# — as a GraphHandle attaching shared memory, or (legacy/test path) a
# pickled graph — and is reused by every chunk the worker executes.
_WORKER_GRAPH: Optional[CompiledGraph] = None
_WORKER_KERNEL: str = "auto"
_WORKER_PER_SOURCE: bool = False


def _worker_init(graph, kernel: str = "auto", per_source: bool = False) -> None:
    global _WORKER_GRAPH, _WORKER_KERNEL, _WORKER_PER_SOURCE
    if hasattr(graph, "materialize"):  # a shm GraphHandle descriptor
        graph = graph.materialize()
    _WORKER_GRAPH = graph
    _WORKER_KERNEL = kernel
    _WORKER_PER_SOURCE = per_source
    _obs.maybe_init_worker()


def _worker_sweep(sources: Sequence[int]):
    assert _WORKER_GRAPH is not None, "worker pool not initialised"
    with _obs.span("engine.batch", sources=len(sources)):
        _obs.counter("engine.batches")
        _obs.counter("engine.sources", len(sources))
        return _sweep_sources(_WORKER_GRAPH, sources, _WORKER_KERNEL, _WORKER_PER_SOURCE)


def _chunk(sources: Sequence[int], workers: int) -> List[Sequence[int]]:
    """Split sources into ~4 chunks per worker for load balancing."""
    per = max(1, math.ceil(len(sources) / (workers * 4)))
    return [sources[i : i + per] for i in range(0, len(sources), per)]


def _parallel_sweep(
    graph: CompiledGraph,
    sources: Sequence[int],
    workers: int,
    kernel: str = "auto",
    per_source: bool = False,
) -> Tuple[Dict[int, int], int, List[int], List[int]]:
    from repro.topology import shm as _shm

    kernel = resolve_kernel(kernel, graph)
    with _obs.span("engine.handoff", workers=workers):
        handle = _shm.export_graph(CSRGraphView.of(graph))
    try:
        results = map_with_pool_recovery(
            _worker_sweep,
            _chunk(sources, workers),
            workers=workers,
            initializer=_worker_init,
            initargs=(handle, kernel, per_source),
            sequential=lambda chunks: [
                _sweep_sources(graph, c, kernel, per_source) for c in chunks
            ],
            context="all-pairs distance sweep",
        )
    finally:
        handle.release()
    merged: Counter = Counter()
    unreachable = 0
    sums: List[int] = []
    reached: List[int] = []
    for histogram, missed, chunk_sums, chunk_reached in results:
        merged.update(histogram)
        unreachable += missed
        sums.extend(chunk_sums)
        reached.extend(chunk_reached)
    return dict(merged), unreachable, sums, reached


# ----------------------------------------------------------------------
# public entry points
# ----------------------------------------------------------------------
def _mean_ci95(sums: Sequence[int], reached: Sequence[int]) -> float:
    """95% CI half-width of the mean distance, from per-source stats.

    Sources are the independent sampling unit, so the CI comes from the
    spread of per-source mean distances (sources that reach nothing are
    excluded — with drop semantics they contribute no pairs).  Inputs
    are exact ints from the kernels, so the result is bit-identical
    across kernels and across the parallel/sequential paths.
    """
    means = [s / r for s, r in zip(sums, reached) if r]
    k = len(means)
    if k < 2:
        return 0.0
    mu = sum(means) / k
    var = sum((m - mu) ** 2 for m in means) / (k - 1)
    return 1.96 * math.sqrt(var / k)


def _graph_label(graph) -> str:
    layout = getattr(graph, "layout", None)
    if layout is not None:
        return layout.label()
    return f"<{type(graph).__name__}: {graph.num_servers} servers>"


def sweep_graph_distance_stats(
    graph,
    *,
    sample_sources: Optional[int] = None,
    seed: int = 0,
    workers: Optional[int] = None,
    kernel: Optional[str] = None,
    unreachable: Optional[str] = None,
    auto_sample: bool = True,
    auto_sample_threshold: Optional[int] = None,
    label: Optional[str] = None,
) -> DistanceStats:
    """All-pairs (or sampled-source) server distance stats of a graph.

    The graph-native sweep entry: ``graph`` is any
    :class:`CompiledGraph` (including :class:`FastCompiledGraph` and
    :class:`CSRGraphView`) — or a
    :class:`~repro.faults.mask.MaskedGraph`, which is swept through its
    alive-only :meth:`~repro.faults.mask.MaskedGraph.sweep_view` so
    degraded topologies need no subgraph copy or recompile.

    ``unreachable`` decides what an unreachable (src, dst) pair does:
    ``"raise"`` (the default for plain graphs, matching the legacy
    Network path) or ``"drop"`` (the default for masked graphs — the
    pair is excluded from ``pairs`` and the mean).

    With ``sample_sources`` the sweep runs one BFS per sampled source:
    the diameter becomes a lower bound, the mean stays unbiased, and
    ``DistanceStats.mean_ci95`` carries a 95% confidence half-width
    from the per-source spread.  Above ``auto_sample_threshold``
    servers (default :data:`AUTO_SAMPLE_THRESHOLD`) sampling of
    :data:`AUTO_SAMPLE_SOURCES` sources becomes the default — exact
    all-pairs at that scale must be requested via
    ``auto_sample=False``.
    """
    if hasattr(graph, "sweep_view"):  # a MaskedGraph (duck-typed: no import cycle)
        view = graph.sweep_view()
        if unreachable is None:
            unreachable = "drop"
        if label is None:
            label = f"masked {_graph_label(graph.graph)}"
    else:
        view = graph
    if unreachable is None:
        unreachable = "raise"
    if unreachable not in ("raise", "drop"):
        raise ValueError(
            f"unreachable must be 'raise' or 'drop', got {unreachable!r}"
        )
    if label is None:
        label = _graph_label(view)

    servers = view.server_indices
    num_servers = len(servers)
    if num_servers < 2:
        return DistanceStats(diameter=0, mean=0.0, histogram={}, pairs=0, exact=True)

    threshold = (
        AUTO_SAMPLE_THRESHOLD if auto_sample_threshold is None else auto_sample_threshold
    )
    if sample_sources is None and auto_sample and num_servers > threshold:
        sample_sources = min(AUTO_SAMPLE_SOURCES, num_servers)
        _obs.event(
            "auto-sample",
            f"{label}: {num_servers} servers exceed the exact-sweep "
            f"threshold; sampling {sample_sources} sources",
            servers=num_servers,
            sources=sample_sources,
        )
    exact = sample_sources is None or sample_sources >= num_servers
    if exact:
        source_idx = [int(i) for i in servers]
    else:
        # Sample *positions*, not names: random.sample picks the same
        # positions for any equal-length population, so this matches the
        # legacy sample-the-name-list semantics bit for bit without
        # materialising a single name (LazyNames stays lazy).
        positions = random.Random(seed).sample(range(num_servers), sample_sources)
        source_idx = [int(servers[p]) for p in positions]

    kernel_name = resolve_kernel(kernel, view)
    per_source = not exact
    workers = resolve_workers(workers)
    with _obs.span(
        "engine.sweep",
        kernel=kernel_name,
        sources=len(source_idx),
        workers=workers,
        exact=exact,
    ):
        if workers <= 1 or len(source_idx) < max(PARALLEL_THRESHOLD, 2 * workers):
            _obs.counter("engine.sources", len(source_idx))
            histogram, missed, sums, reached = _sweep_sources(
                view, source_idx, kernel_name, per_source
            )
        else:
            histogram, missed, sums, reached = _parallel_sweep(
                view, source_idx, workers, kernel_name, per_source
            )
    if missed and unreachable == "raise":
        raise ValueError(
            f"{missed} (src, dst) server pairs unreachable in {label}"
        )

    pairs = len(source_idx) * (num_servers - 1)
    if unreachable == "drop":
        pairs -= missed
    total = sum(h * c for h, c in histogram.items())
    return DistanceStats(
        diameter=max(histogram) if histogram else 0,
        mean=total / pairs if pairs else 0.0,
        histogram=dict(sorted(histogram.items())),
        pairs=pairs,
        exact=exact,
        mean_ci95=_mean_ci95(sums, reached) if per_source else 0.0,
    )


def sweep_distance_stats(
    net: Network,
    hops: str = "link",
    sample_sources: Optional[int] = None,
    seed: int = 0,
    workers: Optional[int] = None,
    kernel: Optional[str] = None,
) -> DistanceStats:
    """All-pairs (or sampled-source) server distance stats for ``net``.

    ``hops`` selects the compiled view: ``"link"`` (physical link hops
    over the full graph) or ``"server"`` (logical server hops over the
    server projection).  A thin compile-then-delegate wrapper over
    :func:`sweep_graph_distance_stats`; sampling semantics, seeding and
    the resulting :class:`DistanceStats` match the legacy pure-Python
    sweep exactly (never auto-sampled, unreachable pairs raise).
    """
    if hops == "link":
        graph = compile_graph(net)
    elif hops == "server":
        graph = compile_server_projection(net)
    else:
        raise ValueError(f"hops must be 'link' or 'server', got {hops!r}")
    return sweep_graph_distance_stats(
        graph,
        sample_sources=sample_sources,
        seed=seed,
        workers=workers,
        kernel=kernel,
        auto_sample=False,
        label=f"{net.name!r} ({hops} hops)",
    )
