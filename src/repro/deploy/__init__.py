"""Deployment artefacts: rack BOMs, cable schedules, expansion work orders."""

from repro.deploy.manifest import (
    CableRun,
    DeploymentManifest,
    RackBom,
    WorkOrder,
    build_manifest,
    expansion_work_orders,
    render_work_orders,
)

__all__ = [
    "CableRun",
    "DeploymentManifest",
    "RackBom",
    "WorkOrder",
    "build_manifest",
    "expansion_work_orders",
    "render_work_orders",
]
