"""Deployment manifests: turn a topology (or an expansion plan) into the
paperwork a build-out crew actually needs.

Two artefacts:

* :class:`DeploymentManifest` — the bill of materials of a built network
  under a physical layout: per-rack equipment lists and the full cable
  schedule (endpoint, endpoint, length), renderable as text;
* :func:`expansion_work_orders` — an ordered, phased work plan for an
  :class:`~repro.core.expansion.ExpansionPlan`: rack & stack new
  switches, then new servers, then pull cables (intra-rack first, then by
  run length), then — only if the plan is not pure addition — the
  disruptive phase touching deployed equipment.  The ordering guarantees
  every cable's endpoints exist when it is pulled, and the disruptive
  phase is isolated so an operator can see exactly what risks downtime.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.expansion import ExpansionPlan
from repro.metrics.layout import LayoutConfig, assign_racks
from repro.topology.graph import Network
from repro.topology.node import NodeKind


@dataclass(frozen=True)
class RackBom:
    """Everything installed in one rack."""

    rack: int
    servers: Tuple[str, ...]
    switches: Tuple[str, ...]

    @property
    def units(self) -> int:
        return len(self.servers) + len(self.switches)


@dataclass(frozen=True)
class CableRun:
    """One cable of the schedule."""

    u: str
    v: str
    rack_u: int
    rack_v: int
    length: float

    @property
    def intra_rack(self) -> bool:
        return self.rack_u == self.rack_v


@dataclass(frozen=True)
class DeploymentManifest:
    """BOM + cable schedule of a built network under a layout."""

    network_name: str
    racks: Tuple[RackBom, ...]
    cables: Tuple[CableRun, ...]

    @property
    def num_racks(self) -> int:
        return len(self.racks)

    @property
    def total_cable_length(self) -> float:
        return sum(c.length for c in self.cables)

    def render(self, max_racks: int = 8, max_cables: int = 10) -> str:
        lines = [f"deployment manifest: {self.network_name}"]
        lines.append(
            f"  {self.num_racks} racks, {len(self.cables)} cables, "
            f"{self.total_cable_length:.0f} m total"
        )
        for bom in self.racks[:max_racks]:
            lines.append(
                f"  rack {bom.rack:>3}: {len(bom.servers)} servers, "
                f"{len(bom.switches)} switches"
            )
        if self.num_racks > max_racks:
            lines.append(f"  … {self.num_racks - max_racks} more racks")
        for cable in self.cables[:max_cables]:
            kind = "intra" if cable.intra_rack else "inter"
            lines.append(
                f"  cable {cable.u} <-> {cable.v} "
                f"({kind}-rack, {cable.length:.1f} m)"
            )
        if len(self.cables) > max_cables:
            lines.append(f"  … {len(self.cables) - max_cables} more cables")
        return "\n".join(lines)

    def to_json(self) -> Dict[str, object]:
        """Machine-readable manifest (what ``repro manifest --json`` emits).

        The rack-death what-if workflow reads this to map a physical
        rack to the node names it takes down, then feeds those to the
        serve daemon's ``/whatif`` endpoint.
        """
        return {
            "network": self.network_name,
            "num_racks": self.num_racks,
            "total_cable_length_m": round(self.total_cable_length, 3),
            "racks": [
                {
                    "rack": bom.rack,
                    "servers": list(bom.servers),
                    "switches": list(bom.switches),
                }
                for bom in self.racks
            ],
            "cables": [
                {
                    "u": cable.u,
                    "v": cable.v,
                    "rack_u": cable.rack_u,
                    "rack_v": cable.rack_v,
                    "length_m": round(cable.length, 3),
                    "intra_rack": cable.intra_rack,
                }
                for cable in self.cables
            ],
        }


def build_manifest(
    net: Network, config: Optional[LayoutConfig] = None
) -> DeploymentManifest:
    """Compute the manifest of a built network."""
    config = config or LayoutConfig()
    racks = assign_racks(net, config)
    by_rack: Dict[int, Dict[str, List[str]]] = {}
    for node in net.nodes():
        bucket = by_rack.setdefault(racks[node.name], {"servers": [], "switches": []})
        key = "servers" if node.kind is NodeKind.SERVER else "switches"
        bucket[key].append(node.name)
    boms = tuple(
        RackBom(rack, tuple(sorted(b["servers"])), tuple(sorted(b["switches"])))
        for rack, b in sorted(by_rack.items())
    )
    cables = tuple(
        CableRun(
            link.u,
            link.v,
            racks[link.u],
            racks[link.v],
            config.cable_length(racks[link.u], racks[link.v]),
        )
        for link in net.links()
    )
    return DeploymentManifest(net.name, boms, cables)


@dataclass(frozen=True)
class WorkOrder:
    """One phase of an expansion build-out."""

    phase: int
    title: str
    disruptive: bool
    items: Tuple[str, ...]

    @property
    def size(self) -> int:
        return len(self.items)


def expansion_work_orders(
    plan: ExpansionPlan,
    new_net: Network,
    config: Optional[LayoutConfig] = None,
) -> List[WorkOrder]:
    """Phase an expansion plan into executable work orders.

    Args:
        new_net: the built *target* network (provides rack placement for
            the new equipment).

    Phases: 1 new switches, 2 new servers, 3 new cables (intra-rack runs
    first, then ascending length), 4 disruptive changes (upgrades,
    replacements, removals) — empty and omitted when the plan is pure
    addition.
    """
    config = config or LayoutConfig()
    racks = assign_racks(new_net, config)

    def by_rack(names: Sequence[str]) -> List[str]:
        return sorted(names, key=lambda n: (racks.get(n, 1 << 30), n))

    orders: List[WorkOrder] = []
    if plan.new_switches:
        orders.append(
            WorkOrder(1, "rack and stack new switches", False, tuple(by_rack(plan.new_switches)))
        )
    if plan.new_servers:
        orders.append(
            WorkOrder(2, "rack and stack new servers", False, tuple(by_rack(plan.new_servers)))
        )
    if plan.new_links:
        def cable_sort(link: Tuple[str, str]):
            u, v = link
            ru, rv = racks.get(u, 0), racks.get(v, 0)
            return (ru != rv, config.cable_length(ru, rv), u, v)

        cables = tuple(
            f"{u} <-> {v}" for u, v in sorted(plan.new_links, key=cable_sort)
        )
        orders.append(WorkOrder(3, "pull new cables", False, cables))

    disruptive: List[str] = []
    disruptive.extend(f"add NIC to {name}" for name in plan.upgraded_servers)
    disruptive.extend(f"replace switch {name}" for name in plan.replaced_switches)
    disruptive.extend(f"remove cable {u} <-> {v}" for u, v in plan.removed_links)
    if disruptive:
        orders.append(
            WorkOrder(4, "DISRUPTIVE: modify deployed equipment", True, tuple(disruptive))
        )
    return orders


def render_work_orders(orders: Sequence[WorkOrder], max_items: int = 6) -> str:
    """Human-readable work-order summary."""
    lines: List[str] = []
    for order in orders:
        marker = " !!" if order.disruptive else ""
        lines.append(f"phase {order.phase}: {order.title} ({order.size} items){marker}")
        for item in order.items[:max_items]:
            lines.append(f"    - {item}")
        if order.size > max_items:
            lines.append(f"    … {order.size - max_items} more")
    if not lines:
        return "nothing to do"
    return "\n".join(lines)
