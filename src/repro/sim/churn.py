"""Churn simulation: availability under continuous failure and repair.

F8/E7 measure static failure snapshots; operators live in a *process*:
components fail at some rate and take time to repair.  This module runs
that process:

* every server and switch independently alternates UP -> (fail) -> DOWN
  -> (repair) -> UP with exponential lifetimes/repair times — the
  realisation comes from :func:`repro.faults.plan.churn_events`, which
  gives each component its own seed-streamed RNG (independent of dict
  ordering and stable across processes);
* at a fixed sampling cadence the simulator checks a panel of server
  pairs for connectivity — as a mask over the *one* compiled CSR graph
  (:meth:`~repro.topology.compiled.CompiledGraph.
  component_labels_masked`), not a subgraph copy plus recompile per
  sample;
* the output is the *pair availability* (fraction of sampled checks
  where the pair was connected and both endpoints alive) plus component
  uptime accounting — the SLO-shaped number a topology comparison should
  end with.

Deterministic for a given seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.faults.plan import child_seed, churn_events
from repro.obs import trace as _obs
from repro.topology.compiled import compile_graph
from repro.topology.graph import Network


@dataclass(frozen=True)
class ChurnConfig:
    """Failure/repair process parameters (times in abstract hours)."""

    server_mtbf: float = 1000.0
    server_mttr: float = 24.0
    switch_mtbf: float = 4000.0
    switch_mttr: float = 12.0
    sample_interval: float = 10.0

    def __post_init__(self) -> None:
        for name in ("server_mtbf", "server_mttr", "switch_mtbf", "switch_mttr", "sample_interval"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")


@dataclass(frozen=True)
class ChurnResult:
    """Outcome of one churn run."""

    duration: float
    samples: int
    pair_checks: int
    pair_connected: int
    endpoint_down_checks: int
    mean_alive_fraction: float

    @property
    def pair_availability(self) -> float:
        """Connected checks / all checks (endpoint-down counts as outage)."""
        if self.pair_checks == 0:
            return 0.0
        return self.pair_connected / self.pair_checks

    @property
    def path_availability(self) -> float:
        """Connectivity given both endpoints alive (the network's share
        of the outage budget, excluding endpoint hardware itself)."""
        live_checks = self.pair_checks - self.endpoint_down_checks
        if live_checks == 0:
            return 0.0
        return self.pair_connected / live_checks


def simulate_churn(
    net: Network,
    duration: float,
    config: Optional[ChurnConfig] = None,
    monitored_pairs: Optional[Sequence[Tuple[str, str]]] = None,
    num_pairs: int = 20,
    seed: int = 0,
) -> ChurnResult:
    """Run the failure/repair process and sample pair connectivity."""
    config = config or ChurnConfig()
    rng = random.Random(seed)
    if monitored_pairs is None:
        servers = list(net.servers)
        if len(servers) < 2:
            raise ValueError("need at least two servers to monitor")
        monitored_pairs = [tuple(rng.sample(servers, 2)) for _ in range(num_pairs)]

    lifetimes: Dict[str, Tuple[float, float]] = {}
    for name in net.node_names():
        if net.node(name).is_server:
            lifetimes[name] = (config.server_mtbf, config.server_mttr)
        else:
            lifetimes[name] = (config.switch_mtbf, config.switch_mttr)
    events = churn_events(lifetimes, duration, seed=child_seed(seed, "churn-process"))

    graph = compile_graph(net)
    index = graph.index
    pair_indices = [(index[src], index[dst]) for src, dst in monitored_pairs]
    node_alive = [True] * graph.num_nodes
    down_count = 0
    total_components = len(net)

    alive_fraction_samples: List[float] = []
    samples = checks = connected = endpoint_down = 0
    event_i = 0
    now = config.sample_interval
    with _obs.span(
        "sim.churn", net=net.name, duration=duration, pairs=len(pair_indices)
    ) as churn_span:
        while now <= duration:
            while event_i < len(events) and events[event_i].time <= now:
                event = events[event_i]
                event_i += 1
                i = index[event.component]
                if node_alive[i] != event.up:
                    node_alive[i] = event.up
                    down_count += -1 if event.up else 1
            samples += 1
            alive_fraction_samples.append(1.0 - down_count / total_components)
            labels = graph.component_labels_masked(node_alive) if down_count else None
            for u, v in pair_indices:
                checks += 1
                if not (node_alive[u] and node_alive[v]):
                    endpoint_down += 1
                    continue
                if labels is None or labels[u] == labels[v]:
                    connected += 1
            now += config.sample_interval
        churn_span.tag(samples=samples, checks=checks)
        _obs.counter("churn.samples", samples)
        _obs.counter("churn.checks", checks)
        _obs.counter("churn.events", len(events))

    return ChurnResult(
        duration=duration,
        samples=samples,
        pair_checks=checks,
        pair_connected=connected,
        endpoint_down_checks=endpoint_down,
        mean_alive_fraction=(
            sum(alive_fraction_samples) / len(alive_fraction_samples)
            if alive_fraction_samples
            else 1.0
        ),
    )
