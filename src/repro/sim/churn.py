"""Churn simulation: availability under continuous failure and repair.

F8/E7 measure static failure snapshots; operators live in a *process*:
components fail at some rate and take time to repair.  This module runs
that process on the discrete-event engine:

* every server and switch independently alternates UP -> (fail) -> DOWN
  -> (repair) -> UP with exponential lifetimes/repair times;
* at a fixed sampling cadence the simulator checks a panel of server
  pairs for connectivity on the currently-alive subgraph;
* the output is the *pair availability* (fraction of sampled checks
  where the pair was connected and both endpoints alive) plus component
  uptime accounting — the SLO-shaped number a topology comparison should
  end with.

Deterministic for a given seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.routing.shortest import bfs_distances
from repro.sim.events import Simulator
from repro.topology.graph import Network


@dataclass(frozen=True)
class ChurnConfig:
    """Failure/repair process parameters (times in abstract hours)."""

    server_mtbf: float = 1000.0
    server_mttr: float = 24.0
    switch_mtbf: float = 4000.0
    switch_mttr: float = 12.0
    sample_interval: float = 10.0

    def __post_init__(self) -> None:
        for name in ("server_mtbf", "server_mttr", "switch_mtbf", "switch_mttr", "sample_interval"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")


@dataclass(frozen=True)
class ChurnResult:
    """Outcome of one churn run."""

    duration: float
    samples: int
    pair_checks: int
    pair_connected: int
    endpoint_down_checks: int
    mean_alive_fraction: float

    @property
    def pair_availability(self) -> float:
        """Connected checks / all checks (endpoint-down counts as outage)."""
        if self.pair_checks == 0:
            return 0.0
        return self.pair_connected / self.pair_checks

    @property
    def path_availability(self) -> float:
        """Connectivity given both endpoints alive (the network's share
        of the outage budget, excluding endpoint hardware itself)."""
        live_checks = self.pair_checks - self.endpoint_down_checks
        if live_checks == 0:
            return 0.0
        return self.pair_connected / live_checks


def simulate_churn(
    net: Network,
    duration: float,
    config: Optional[ChurnConfig] = None,
    monitored_pairs: Optional[Sequence[Tuple[str, str]]] = None,
    num_pairs: int = 20,
    seed: int = 0,
) -> ChurnResult:
    """Run the failure/repair process and sample pair connectivity."""
    config = config or ChurnConfig()
    rng = random.Random(seed)
    if monitored_pairs is None:
        servers = list(net.servers)
        if len(servers) < 2:
            raise ValueError("need at least two servers to monitor")
        monitored_pairs = [tuple(rng.sample(servers, 2)) for _ in range(num_pairs)]

    sim = Simulator()
    down: Set[str] = set()
    alive_fraction_samples: List[float] = []
    stats = {"samples": 0, "checks": 0, "connected": 0, "endpoint_down": 0}
    total_components = len(net)

    def mtbf_mttr(name: str) -> Tuple[float, float]:
        if net.node(name).is_server:
            return config.server_mtbf, config.server_mttr
        return config.switch_mtbf, config.switch_mttr

    def schedule_failure(name: str) -> None:
        mtbf, _ = mtbf_mttr(name)
        sim.schedule(rng.expovariate(1.0 / mtbf), lambda: fail(name))

    def fail(name: str) -> None:
        down.add(name)
        _, mttr = mtbf_mttr(name)
        sim.schedule(rng.expovariate(1.0 / mttr), lambda: repair(name))

    def repair(name: str) -> None:
        down.discard(name)
        schedule_failure(name)

    for name in net.node_names():
        schedule_failure(name)

    def sample() -> None:
        stats["samples"] += 1
        alive_fraction_samples.append(1.0 - len(down) / total_components)
        alive = net.subgraph_without(dead_nodes=list(down)) if down else net
        for src, dst in monitored_pairs:
            stats["checks"] += 1
            if src in down or dst in down:
                stats["endpoint_down"] += 1
                continue
            if dst in bfs_distances(alive, src, targets={dst}):
                stats["connected"] += 1
        if sim.now + config.sample_interval <= duration:
            sim.schedule(config.sample_interval, sample)

    sim.schedule(config.sample_interval, sample)
    sim.run(until=duration)

    return ChurnResult(
        duration=duration,
        samples=stats["samples"],
        pair_checks=stats["checks"],
        pair_connected=stats["connected"],
        endpoint_down_checks=stats["endpoint_down"],
        mean_alive_fraction=(
            sum(alive_fraction_samples) / len(alive_fraction_samples)
            if alive_fraction_samples
            else 1.0
        ),
    )
