"""A minimal discrete-event simulation engine.

Heap-ordered events with deterministic FIFO tie-breaking at equal
timestamps (a monotone sequence number), which keeps every simulation in
this library exactly reproducible for a given seed.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Tuple


class SimulationError(Exception):
    """Raised on misuse of the simulator (e.g. scheduling in the past)."""


@dataclass(order=True)
class _Event:
    time: float
    seq: int
    action: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class EventHandle:
    """Returned by :meth:`Simulator.schedule`; allows cancellation."""

    def __init__(self, event: _Event):
        self._event = event

    def cancel(self) -> None:
        self._event.cancelled = True

    @property
    def time(self) -> float:
        return self._event.time

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled


class Simulator:
    """Event loop: schedule callables at absolute or relative times."""

    def __init__(self) -> None:
        self._queue: List[_Event] = []
        self._seq = itertools.count()
        self.now: float = 0.0
        self.events_processed: int = 0

    def schedule_at(self, time: float, action: Callable[[], None]) -> EventHandle:
        """Schedule ``action`` at absolute time ``time`` (>= now)."""
        if time < self.now:
            raise SimulationError(f"cannot schedule at {time} < now {self.now}")
        event = _Event(time, next(self._seq), action)
        heapq.heappush(self._queue, event)
        return EventHandle(event)

    def schedule(self, delay: float, action: Callable[[], None]) -> EventHandle:
        """Schedule ``action`` after ``delay`` time units (>= 0)."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.schedule_at(self.now + delay, action)

    def step(self) -> bool:
        """Process one event; returns False when the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self.now = event.time
            self.events_processed += 1
            event.action()
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run until the queue drains, ``until`` is reached, or the event
        budget is exhausted."""
        processed = 0
        while self._queue:
            head = self._queue[0]
            if head.cancelled:
                heapq.heappop(self._queue)
                continue
            if until is not None and head.time > until:
                self.now = until
                return
            if max_events is not None and processed >= max_events:
                return
            self.step()
            processed += 1

    @property
    def pending(self) -> int:
        """Number of not-yet-cancelled queued events."""
        return sum(1 for e in self._queue if not e.cancelled)
