"""Simulators: discrete events, packet level, flow level, traffic patterns."""

from repro.sim.churn import ChurnConfig, ChurnResult, simulate_churn
from repro.sim.events import EventHandle, SimulationError, Simulator
from repro.sim.fairness import FairAllocation, alpha_fair_allocation
from repro.sim.fct import FctResult, shuffle_completion_time, simulate_fct
from repro.sim.flow import FlowAllocation, max_min_allocation, route_all
from repro.sim.jobs import (
    Job,
    JobResult,
    JobSimResult,
    disseminate_job,
    incast_job,
    shuffle_job,
    simulate_jobs,
)
from repro.sim.packet import PacketSimConfig, PacketSimResult, PacketSimulator
from repro.sim.results import ResultTable
from repro.sim.traffic import (
    PATTERNS,
    Flow,
    all_to_all_traffic,
    hotspot_traffic,
    one_to_all_traffic,
    permutation_traffic,
    shuffle_traffic,
    uniform_random_traffic,
)

__all__ = [
    "ChurnConfig",
    "ChurnResult",
    "EventHandle",
    "simulate_churn",
    "FairAllocation",
    "FctResult",
    "Flow",
    "FlowAllocation",
    "Job",
    "JobResult",
    "JobSimResult",
    "alpha_fair_allocation",
    "disseminate_job",
    "incast_job",
    "shuffle_job",
    "simulate_jobs",
    "PATTERNS",
    "PacketSimConfig",
    "PacketSimResult",
    "PacketSimulator",
    "ResultTable",
    "SimulationError",
    "Simulator",
    "all_to_all_traffic",
    "hotspot_traffic",
    "max_min_allocation",
    "one_to_all_traffic",
    "permutation_traffic",
    "route_all",
    "shuffle_completion_time",
    "shuffle_traffic",
    "simulate_fct",
    "uniform_random_traffic",
]
