"""Job-level workloads over the fluid simulator.

The evaluation's traffic patterns are single flow sets; production
clusters run *jobs* — a MapReduce shuffle, a parameter-server sync, a
backup — each a batch of flows sharing a start time, arriving over time.
This module models that layer:

* :class:`Job` — a named batch of flows with an arrival time;
* :func:`job_flows` generators for common job shapes (shuffle,
  aggregate/incast, broadcast-style disseminate);
* :func:`simulate_jobs` — run a job sequence through the fluid FCT
  engine and report per-job completion times (a job completes when its
  last flow does) and cluster-level statistics.

Powers the ``examples/deployment_manifest.py`` walk-through and gives
the library a realistic top layer users actually want.
"""

from __future__ import annotations

import random
import statistics
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.routing.base import Route
from repro.sim.fct import FctResult, simulate_fct
from repro.sim.traffic import Flow
from repro.topology.graph import Network


@dataclass(frozen=True)
class Job:
    """A batch of flows submitted together."""

    job_id: str
    arrival: float
    flows: Tuple[Flow, ...]

    def __post_init__(self) -> None:
        if self.arrival < 0:
            raise ValueError(f"job {self.job_id}: negative arrival time")
        if not self.flows:
            raise ValueError(f"job {self.job_id}: no flows")
        ids = {f.flow_id for f in self.flows}
        if len(ids) != len(self.flows):
            raise ValueError(f"job {self.job_id}: duplicate flow ids")

    @property
    def total_volume(self) -> float:
        return sum(f.size for f in self.flows)


def shuffle_job(
    job_id: str,
    arrival: float,
    servers: Sequence[str],
    num_mappers: int,
    num_reducers: int,
    volume_per_flow: float = 1.0,
    seed: int = 0,
) -> Job:
    """An m x r all-to-all shuffle between disjoint random server sets."""
    rng = random.Random(seed)
    chosen = rng.sample(list(servers), num_mappers + num_reducers)
    mappers, reducers = chosen[:num_mappers], chosen[num_mappers:]
    flows = tuple(
        Flow(f"{job_id}/s{m}-{r}", mapper, reducer, size=volume_per_flow)
        for m, mapper in enumerate(mappers)
        for r, reducer in enumerate(reducers)
    )
    return Job(job_id, arrival, flows)


def incast_job(
    job_id: str,
    arrival: float,
    servers: Sequence[str],
    num_workers: int,
    volume_per_flow: float = 1.0,
    seed: int = 0,
) -> Job:
    """Aggregation: many workers send to one coordinator simultaneously."""
    rng = random.Random(seed)
    chosen = rng.sample(list(servers), num_workers + 1)
    coordinator, workers = chosen[0], chosen[1:]
    flows = tuple(
        Flow(f"{job_id}/w{i}", worker, coordinator, size=volume_per_flow)
        for i, worker in enumerate(workers)
    )
    return Job(job_id, arrival, flows)


def disseminate_job(
    job_id: str,
    arrival: float,
    servers: Sequence[str],
    num_receivers: int,
    volume_per_flow: float = 1.0,
    seed: int = 0,
) -> Job:
    """One source pushes a dataset to many receivers (unicast fan-out)."""
    rng = random.Random(seed)
    chosen = rng.sample(list(servers), num_receivers + 1)
    source, receivers = chosen[0], chosen[1:]
    flows = tuple(
        Flow(f"{job_id}/r{i}", source, receiver, size=volume_per_flow)
        for i, receiver in enumerate(receivers)
    )
    return Job(job_id, arrival, flows)


@dataclass(frozen=True)
class JobResult:
    """Completion record of one job."""

    job_id: str
    arrival: float
    completion: float

    @property
    def duration(self) -> float:
        return self.completion - self.arrival


@dataclass(frozen=True)
class JobSimResult:
    """Outcome of a multi-job fluid simulation."""

    jobs: Tuple[JobResult, ...]
    flow_result: FctResult

    @property
    def makespan(self) -> float:
        return max((j.completion for j in self.jobs), default=0.0)

    @property
    def mean_duration(self) -> float:
        return statistics.fmean(j.duration for j in self.jobs) if self.jobs else 0.0

    @property
    def p99_duration(self) -> float:
        if not self.jobs:
            return 0.0
        ordered = sorted(j.duration for j in self.jobs)
        return ordered[min(len(ordered) - 1, int(0.99 * len(ordered)))]

    def job(self, job_id: str) -> JobResult:
        for result in self.jobs:
            if result.job_id == job_id:
                return result
        raise KeyError(job_id)


def simulate_jobs(
    net: Network,
    jobs: Sequence[Job],
    router: Callable[[Network, str, str], Route],
) -> JobSimResult:
    """Run the job sequence to completion under max-min fair sharing.

    All jobs' flows share the fabric; a job's completion time is its last
    flow's completion.  ``router`` produces each flow's path once, at
    submission (static routing, the model the paper evaluates).
    """
    all_flows: List[Flow] = []
    arrivals: Dict[str, float] = {}
    owner: Dict[str, str] = {}
    for job in jobs:
        for flow in job.flows:
            if flow.flow_id in owner:
                raise ValueError(f"duplicate flow id {flow.flow_id!r} across jobs")
            all_flows.append(flow)
            arrivals[flow.flow_id] = job.arrival
            owner[flow.flow_id] = job.job_id

    routes = {f.flow_id: router(net, f.src, f.dst) for f in all_flows}
    flow_result = simulate_fct(net, all_flows, routes, arrivals=arrivals)

    completion: Dict[str, float] = {}
    for flow_id, finished in flow_result.completion_times.items():
        job_id = owner[flow_id]
        completion[job_id] = max(completion.get(job_id, 0.0), finished)
    results = tuple(
        JobResult(job.job_id, job.arrival, completion[job.job_id]) for job in jobs
    )
    return JobSimResult(jobs=results, flow_result=flow_result)
