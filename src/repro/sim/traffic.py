"""Traffic patterns: the workloads the evaluation runs on every topology.

A *pattern* is a list of :class:`Flow` endpoint pairs.  All generators are
deterministic for a given seed, and operate on the server list of any
topology, so identical workloads can be applied across topologies — the
discipline the paper's "extensive simulations" comparisons need.

Endpoints are opaque hashable ids: server *name strings* on the object
graph, or *integer ordinals* (``range(num_servers)``, a numpy index
array) on the compiled CSR path — every generator accepts either, so
the same code drives :func:`repro.sim.flow.route_all` and the
batch-native :mod:`repro.traffic` engine.  For large-scale seeded
matrices prefer :mod:`repro.traffic.matrix`, whose PCG64 streams are
process-stable; these ``random.Random`` generators remain the
small-scale, name-friendly originals.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, List, Optional, Sequence, Tuple

#: a server id: a name string on the object graph, an integer ordinal on
#: the compiled path.  Only equality/hashability is assumed.
ServerId = Any


@dataclass(frozen=True)
class Flow:
    """One unidirectional traffic demand."""

    flow_id: str
    src: ServerId
    dst: ServerId
    size: float = 1.0  # abstract data volume (packets for the packet sim)

    def __post_init__(self) -> None:
        if self.src == self.dst:
            raise ValueError(f"flow {self.flow_id}: src == dst == {self.src!r}")
        if self.size <= 0:
            raise ValueError(f"flow {self.flow_id}: size must be positive")


def permutation_traffic(servers: Sequence[ServerId], seed: int = 0) -> List[Flow]:
    """A random server permutation with no fixed points (derangement).

    Every server sends exactly one flow and receives exactly one flow —
    the classic stress pattern for path diversity.
    """
    servers = list(servers)
    if len(servers) < 2:
        raise ValueError("need at least two servers")
    rng = random.Random(seed)
    destinations = servers[:]
    # Sattolo's algorithm yields a uniformly random single cycle, which is
    # always a derangement.
    for i in range(len(destinations) - 1, 0, -1):
        j = rng.randrange(i)
        destinations[i], destinations[j] = destinations[j], destinations[i]
    return [
        Flow(f"perm-{i}", src, dst)
        for i, (src, dst) in enumerate(zip(servers, destinations))
    ]


def all_to_all_traffic(
    servers: Sequence[ServerId], max_flows: Optional[int] = None, seed: int = 0
) -> List[Flow]:
    """Every ordered pair — optionally subsampled to ``max_flows``.

    Subsampling keeps per-server symmetry loose but unbiased; experiments
    on larger instances use it to bound runtime.
    """
    servers = list(servers)
    pairs = [(s, d) for s in servers for d in servers if s != d]
    if max_flows is not None and max_flows < len(pairs):
        pairs = random.Random(seed).sample(pairs, max_flows)
    return [Flow(f"a2a-{i}", s, d) for i, (s, d) in enumerate(pairs)]


def uniform_random_traffic(
    servers: Sequence[ServerId], num_flows: int, seed: int = 0
) -> List[Flow]:
    """``num_flows`` source/destination pairs drawn uniformly."""
    servers = list(servers)
    if len(servers) < 2:
        raise ValueError("need at least two servers")
    rng = random.Random(seed)
    flows = []
    for i in range(num_flows):
        src, dst = rng.sample(servers, 2)
        flows.append(Flow(f"uni-{i}", src, dst))
    return flows


def hotspot_traffic(
    servers: Sequence[ServerId],
    num_flows: int,
    num_hotspots: int = 1,
    hot_fraction: float = 0.7,
    seed: int = 0,
) -> List[Flow]:
    """Skewed traffic: ``hot_fraction`` of flows target a few servers.

    Models incast toward popular services; the remaining flows are
    uniform.
    """
    servers = list(servers)
    if not 0 <= hot_fraction <= 1:
        raise ValueError(f"hot_fraction must be in [0, 1], got {hot_fraction}")
    if not 1 <= num_hotspots < len(servers):
        raise ValueError("num_hotspots must be in [1, num_servers)")
    rng = random.Random(seed)
    hotspots = rng.sample(servers, num_hotspots)
    flows = []
    for i in range(num_flows):
        if rng.random() < hot_fraction:
            dst = rng.choice(hotspots)
            src = rng.choice([s for s in servers if s != dst])
        else:
            src, dst = rng.sample(servers, 2)
        flows.append(Flow(f"hot-{i}", src, dst))
    return flows


def shuffle_traffic(
    servers: Sequence[ServerId],
    num_mappers: int,
    num_reducers: int,
    seed: int = 0,
) -> List[Flow]:
    """MapReduce shuffle: every mapper sends to every reducer.

    Mappers and reducers are disjoint random server subsets.
    """
    servers = list(servers)
    if num_mappers + num_reducers > len(servers):
        raise ValueError("mappers + reducers exceed the server count")
    rng = random.Random(seed)
    chosen = rng.sample(servers, num_mappers + num_reducers)
    mappers, reducers = chosen[:num_mappers], chosen[num_mappers:]
    return [
        Flow(f"shfl-{m}-{r}", mapper, reducer)
        for m, mapper in enumerate(mappers)
        for r, reducer in enumerate(reducers)
    ]


def one_to_all_traffic(servers: Sequence[ServerId], source: Optional[ServerId] = None) -> List[Flow]:
    """The broadcast demand set: one flow from ``source`` to every other."""
    servers = list(servers)
    src = source if source is not None else servers[0]
    if src not in servers:
        raise ValueError(f"source {src!r} is not a server")
    return [
        Flow(f"o2a-{i}", src, dst) for i, dst in enumerate(s for s in servers if s != src)
    ]


PATTERNS = {
    "permutation": permutation_traffic,
    "all_to_all": all_to_all_traffic,
    "uniform": uniform_random_traffic,
    "hotspot": hotspot_traffic,
    "shuffle": shuffle_traffic,
    "one_to_all": one_to_all_traffic,
}
