"""Alpha-fair rate allocation (network utility maximisation).

Max-min fairness (:mod:`repro.sim.flow`) is one point on the fairness
spectrum.  The standard family is *alpha-fairness* (Mo & Walrand 2000):
maximise ``sum_f U_alpha(x_f)`` subject to link capacities, where

* ``alpha = 0``   — maximise total throughput (may starve long flows);
* ``alpha = 1``   — proportional fairness (``sum log x_f``, TCP-like);
* ``alpha -> inf`` — max-min fairness.

Implemented as a projected-gradient/dual decomposition: each link prices
congestion, each flow picks the utility-optimal rate for the current
price sum along its path, prices adjust toward feasibility.  For the
modest instance sizes the experiments use, a few thousand damped
iterations converge far below the tolerance the tests assert.

Used to show the library's throughput conclusions are not an artefact of
the max-min choice: tests verify the alpha = 8 allocation approaches the
max-min one, and alpha = 1 reproduces the textbook triangle example.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.routing.base import Route
from repro.sim.traffic import Flow
from repro.topology.graph import Network
from repro.topology.node import link_key


@dataclass(frozen=True)
class FairAllocation:
    """Outcome of the alpha-fair solver."""

    alpha: float
    rates: Dict[str, float]
    iterations: int
    max_violation: float  # worst relative link over-subscription

    @property
    def aggregate_throughput(self) -> float:
        return sum(self.rates.values())

    @property
    def min_rate(self) -> float:
        return min(self.rates.values()) if self.rates else 0.0

    def utility(self) -> float:
        """The achieved alpha-utility (for convergence diagnostics)."""
        if self.alpha == 1.0:
            return sum(math.log(max(r, 1e-12)) for r in self.rates.values())
        a = self.alpha
        return sum(r ** (1 - a) / (1 - a) for r in self.rates.values())


def alpha_fair_allocation(
    net: Network,
    flows: Sequence[Flow],
    routes: Dict[str, Route],
    alpha: float = 1.0,
    iterations: int = 4000,
    step: float = 0.05,
) -> FairAllocation:
    """Solve the alpha-fair NUM problem by dual (price) iteration.

    Args:
        alpha: fairness parameter, ``alpha > 0`` (use
            :func:`repro.sim.flow.max_min_allocation` for the
            alpha -> inf limit and a plain LP for alpha = 0).

    The demand function for utility ``x^(1-a)/(1-a)`` at price ``p`` is
    ``x = p^(-1/a)``; prices follow the standard subgradient
    ``p += step * (load - capacity) / capacity``, clipped at zero.
    """
    if alpha <= 0:
        raise ValueError(f"alpha must be > 0, got {alpha}")
    flow_links: Dict[str, List[Tuple[str, str]]] = {}
    capacities: Dict[Tuple[str, str], float] = {}
    link_members: Dict[Tuple[str, str], List[str]] = {}
    for flow in flows:
        route = routes[flow.flow_id]
        keys = [link_key(u, v) for u, v in route.edges()]
        if not keys:
            raise ValueError(f"flow {flow.flow_id} has a zero-hop route")
        flow_links[flow.flow_id] = keys
        for key in keys:
            capacities.setdefault(key, net.link(*key).capacity)
            link_members.setdefault(key, []).append(flow.flow_id)

    # Initial prices: uniform, scaled so initial demands are ~feasible.
    prices: Dict[Tuple[str, str], float] = {key: 1.0 for key in capacities}
    rates: Dict[str, float] = {}
    performed = 0
    for performed in range(1, iterations + 1):
        for flow_id, keys in flow_links.items():
            total_price = sum(prices[key] for key in keys)
            rates[flow_id] = max(total_price, 1e-9) ** (-1.0 / alpha)
        for key, members in link_members.items():
            load = sum(rates[f] for f in members)
            capacity = capacities[key]
            gradient = (load - capacity) / capacity
            prices[key] = max(prices[key] + step * gradient, 1e-9)

    max_violation = 0.0
    for key, members in link_members.items():
        load = sum(rates[f] for f in members)
        max_violation = max(max_violation, (load - capacities[key]) / capacities[key])

    # Project onto the feasible region: uniform scaling by the worst
    # overload (preserves the fairness structure, guarantees feasibility).
    if max_violation > 0:
        scale = 1.0 / (1.0 + max_violation)
        rates = {f: r * scale for f, r in rates.items()}

    return FairAllocation(
        alpha=alpha,
        rates=rates,
        iterations=performed,
        max_violation=max_violation,
    )
