"""Flow-level throughput: max-min fair allocation by progressive filling.

Given a set of flows with fixed routes over capacitated links, the
*max-min fair* allocation is the unique rate vector in which no flow can
be raised without lowering an already-smaller flow.  Progressive filling
computes it exactly: grow all unfrozen flows uniformly until some link
saturates, freeze that link's flows at their current rate, repeat.

This is the standard fluid model the DCN literature evaluates topology
throughput with (per-flow rates under permutation traffic, aggregate
throughput under all-to-all), and experiment F7 is built on it.
"""

from __future__ import annotations

import math
import statistics
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.routing.base import Route
from repro.sim.traffic import Flow
from repro.topology.graph import Network
from repro.topology.node import link_key


@dataclass(frozen=True)
class FlowAllocation:
    """The max-min fair outcome for one flow set."""

    rates: Dict[str, float]  # flow_id -> rate (link-capacity units)
    bottlenecks: Dict[str, Tuple[str, str]]  # flow_id -> saturating link

    @property
    def num_flows(self) -> int:
        return len(self.rates)

    @property
    def aggregate_throughput(self) -> float:
        return sum(self.rates.values())

    @property
    def min_rate(self) -> float:
        return min(self.rates.values()) if self.rates else 0.0

    @property
    def max_rate(self) -> float:
        return max(self.rates.values()) if self.rates else 0.0

    @property
    def mean_rate(self) -> float:
        return statistics.fmean(self.rates.values()) if self.rates else 0.0

    @property
    def jain_fairness(self) -> float:
        """Jain's fairness index: 1.0 = perfectly equal rates."""
        values = list(self.rates.values())
        if not values:
            return 0.0
        square_of_sum = sum(values) ** 2
        sum_of_squares = sum(v * v for v in values)
        # Mathematically <= 1; clamp the last-ulp float excess.
        return min(square_of_sum / (len(values) * sum_of_squares), 1.0)


def max_min_allocation(
    net: Network,
    flows: Sequence[Flow],
    routes: Dict[str, Route],
) -> FlowAllocation:
    """Progressive-filling max-min fair rates.

    Args:
        routes: flow_id -> route; zero-hop routes (src == dst paths) are
            rejected by :class:`Flow` already, but a route may legally
            revisit a link (fault detours) — each crossing consumes
            capacity.

    Raises:
        KeyError: if a flow has no route.
        ValueError: if a route does not connect the flow's endpoints.
    """
    # flow -> list of link keys (with multiplicity); link -> flows.
    flow_links: Dict[str, List[Tuple[str, str]]] = {}
    link_flows: Dict[Tuple[str, str], List[str]] = {}
    capacities: Dict[Tuple[str, str], float] = {}
    for flow in flows:
        route = routes[flow.flow_id]
        if route.source != flow.src or route.destination != flow.dst:
            raise ValueError(
                f"route for {flow.flow_id} connects {route.source}->{route.destination}, "
                f"flow wants {flow.src}->{flow.dst}"
            )
        keys = [link_key(u, v) for u, v in route.edges()]
        flow_links[flow.flow_id] = keys
        for key in keys:
            link_flows.setdefault(key, []).append(flow.flow_id)
            if key not in capacities:
                capacities[key] = net.link(*key).capacity

    rates: Dict[str, float] = {}
    bottlenecks: Dict[str, Tuple[str, str]] = {}
    unfrozen: Set[str] = set(flow_links)
    residual = dict(capacities)
    # Count of *unfrozen crossings* per link (a flow crossing twice counts
    # twice — it consumes capacity twice).
    crossings: Dict[Tuple[str, str], int] = {
        key: len(ids) for key, ids in link_flows.items()
    }
    level = 0.0  # the common rate all unfrozen flows have reached

    while unfrozen:
        # The next link to saturate is the one with the smallest headroom
        # per unfrozen crossing.
        tightest: Optional[Tuple[str, str]] = None
        increment = math.inf
        for key, count in crossings.items():
            if count <= 0:
                continue
            head = residual[key] / count
            if head < increment:
                increment = head
                tightest = key
        if tightest is None:
            # No capacity constraint binds the remaining flows (cannot
            # happen with positive-length routes, but guard anyway).
            for flow_id in unfrozen:
                rates[flow_id] = math.inf
            break

        level += increment
        # Drain every link by its unfrozen crossings.
        for key, count in crossings.items():
            if count > 0:
                residual[key] = max(residual[key] - increment * count, 0.0)
        # Freeze all flows crossing any now-saturated link.
        saturated = {key for key, r in residual.items() if r <= 1e-12 and crossings[key] > 0}
        newly_frozen = {
            flow_id
            for key in saturated
            for flow_id in link_flows[key]
            if flow_id in unfrozen
        }
        for flow_id in newly_frozen:
            rates[flow_id] = level
            bottleneck = next(
                key for key in flow_links[flow_id] if key in saturated
            )
            bottlenecks[flow_id] = bottleneck
            for key in flow_links[flow_id]:
                crossings[key] -= 1
        unfrozen -= newly_frozen

    return FlowAllocation(rates=rates, bottlenecks=bottlenecks)


def route_all(
    net: Network,
    flows: Sequence[Flow],
    router,
) -> Dict[str, Route]:
    """Produce a route per flow via ``router(net, src, dst)``.

    ``router`` may also accept a ``flow_id`` keyword (ECMP hashing); it is
    passed when the signature supports it.
    """
    import inspect

    try:
        wants_flow_id = "flow_id" in inspect.signature(router).parameters
    except (TypeError, ValueError):  # builtins / C callables
        wants_flow_id = False
    routes: Dict[str, Route] = {}
    for flow in flows:
        if wants_flow_id:
            routes[flow.flow_id] = router(net, flow.src, flow.dst, flow_id=flow.flow_id)
        else:
            routes[flow.flow_id] = router(net, flow.src, flow.dst)
    return routes
