"""Fluid flow-completion-time (FCT) simulation.

The max-min solver in :mod:`repro.sim.flow` gives instantaneous rates for
a *fixed* flow set; real workloads complete: when a flow finishes, the
capacity it held is redistributed.  This module simulates that fluid
process exactly:

1. solve max-min fair rates over the currently active flows;
2. advance time to the earliest of (next flow completion, next arrival);
3. debit transferred volume, retire completed flows, admit arrivals;
4. repeat until all flows finish.

Between events rates are constant, so the simulation is exact for the
fluid model (no discretisation error) and runs in
``O(events x solver)``.  This is the standard model behind "shuffle
completion time" numbers in the DCN literature, and powers the E3
adaptive-routing experiment and the MapReduce example.
"""

from __future__ import annotations

import math
import statistics
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.routing.base import Route
from repro.sim.flow import max_min_allocation
from repro.sim.traffic import Flow
from repro.topology.graph import Network


@dataclass(frozen=True)
class FctResult:
    """Outcome of a fluid FCT simulation."""

    completion_times: Dict[str, float]  # flow_id -> absolute finish time
    start_times: Dict[str, float]
    makespan: float
    rounds: int  # solver invocations

    def fct(self, flow_id: str) -> float:
        return self.completion_times[flow_id] - self.start_times[flow_id]

    @property
    def fcts(self) -> List[float]:
        return [self.fct(fid) for fid in self.completion_times]

    @property
    def mean_fct(self) -> float:
        return statistics.fmean(self.fcts) if self.completion_times else 0.0

    @property
    def p99_fct(self) -> float:
        if not self.completion_times:
            return 0.0
        ordered = sorted(self.fcts)
        return ordered[min(len(ordered) - 1, int(0.99 * len(ordered)))]

    @property
    def max_fct(self) -> float:
        return max(self.fcts) if self.completion_times else 0.0


def simulate_fct(
    net: Network,
    flows: Sequence[Flow],
    routes: Dict[str, Route],
    arrivals: Optional[Dict[str, float]] = None,
    max_rounds: Optional[int] = None,
) -> FctResult:
    """Run the fluid completion process to the end.

    Args:
        arrivals: optional flow_id -> start time (default: all at t=0).
        max_rounds: safety valve on solver invocations (default
            ``4 * len(flows) + 8``; each round retires at least one flow
            or admits at least one arrival, so the default cannot bind
            on well-formed inputs).

    Flow ``size`` is the data volume; rates are in link-capacity units,
    so a size-1.0 flow alone on a unit path completes in 1.0 time units.
    """
    arrivals = arrivals or {}
    flow_by_id = {f.flow_id: f for f in flows}
    if len(flow_by_id) != len(flows):
        raise ValueError("duplicate flow ids")
    for fid in arrivals:
        if fid not in flow_by_id:
            raise KeyError(f"arrival for unknown flow {fid!r}")

    start_times = {f.flow_id: arrivals.get(f.flow_id, 0.0) for f in flows}
    pending = sorted(
        flow_by_id.values(), key=lambda f: (start_times[f.flow_id], f.flow_id)
    )
    remaining: Dict[str, float] = {}
    active: List[Flow] = []
    completion: Dict[str, float] = {}
    now = 0.0
    rounds = 0
    budget = max_rounds if max_rounds is not None else 4 * len(flows) + 8

    # Admit everything that starts at the initial instant.
    if pending:
        now = start_times[pending[0].flow_id]
    while pending and start_times[pending[0].flow_id] <= now:
        flow = pending.pop(0)
        active.append(flow)
        remaining[flow.flow_id] = flow.size

    while active or pending:
        if rounds >= budget:
            raise RuntimeError(
                f"FCT simulation exceeded {budget} rounds — check inputs"
            )
        rounds += 1
        if not active:
            # Idle gap until the next arrival.
            now = start_times[pending[0].flow_id]
            while pending and start_times[pending[0].flow_id] <= now:
                flow = pending.pop(0)
                active.append(flow)
                remaining[flow.flow_id] = flow.size
            continue

        allocation = max_min_allocation(net, active, routes)
        # Earliest completion among active flows at these rates.
        next_completion = math.inf
        for flow in active:
            rate = allocation.rates[flow.flow_id]
            if rate > 0:
                next_completion = min(
                    next_completion, remaining[flow.flow_id] / rate
                )
        next_arrival = (
            start_times[pending[0].flow_id] - now if pending else math.inf
        )
        step = min(next_completion, next_arrival)
        if not math.isfinite(step):
            raise RuntimeError("no progress possible: a flow has zero rate")

        now += step
        still_active: List[Flow] = []
        for flow in active:
            rate = allocation.rates[flow.flow_id]
            remaining[flow.flow_id] -= rate * step
            if remaining[flow.flow_id] <= 1e-12:
                completion[flow.flow_id] = now
            else:
                still_active.append(flow)
        active = still_active
        while pending and start_times[pending[0].flow_id] <= now + 1e-12:
            flow = pending.pop(0)
            active.append(flow)
            remaining[flow.flow_id] = flow.size

    return FctResult(
        completion_times=completion,
        start_times=start_times,
        makespan=max(completion.values()) if completion else 0.0,
        rounds=rounds,
    )


def shuffle_completion_time(
    net: Network, flows: Sequence[Flow], routes: Dict[str, Route]
) -> float:
    """Makespan of a simultaneous-start flow set — the 'shuffle time'."""
    return simulate_fct(net, flows, routes).makespan
