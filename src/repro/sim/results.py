"""Tabular result records: pretty text tables and CSV output.

The experiment harness produces :class:`ResultTable` objects — ordered
rows of named columns — printed in the paper's row/series style and
written as CSV under ``results/`` for downstream plotting.
"""

from __future__ import annotations

import csv
import io
import os
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence


def _format_cell(value: Any, precision: int) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
        return f"{value:.{precision}f}"
    return str(value)


@dataclass
class ResultTable:
    """An ordered table of result rows."""

    title: str
    columns: List[str]
    rows: List[Dict[str, Any]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, **values: Any) -> None:
        """Append a row; unknown column names are rejected to catch typos."""
        unknown = set(values) - set(self.columns)
        if unknown:
            raise KeyError(f"unknown columns {sorted(unknown)}; have {self.columns}")
        self.rows.append(values)

    def add_note(self, text: str) -> None:
        self.notes.append(text)

    def column(self, name: str) -> List[Any]:
        """All values of one column, in row order."""
        if name not in self.columns:
            raise KeyError(f"unknown column {name!r}")
        return [row.get(name) for row in self.rows]

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------
    def render(self, precision: int = 3) -> str:
        """Fixed-width text rendering, paper-table style."""
        cells = [
            [_format_cell(row.get(col), precision) for col in self.columns]
            for row in self.rows
        ]
        widths = [
            max(len(col), *(len(r[i]) for r in cells)) if cells else len(col)
            for i, col in enumerate(self.columns)
        ]
        out = io.StringIO()
        out.write(f"== {self.title} ==\n")
        header = "  ".join(col.ljust(w) for col, w in zip(self.columns, widths))
        out.write(header + "\n")
        out.write("-" * len(header) + "\n")
        for row in cells:
            out.write("  ".join(cell.rjust(w) for cell, w in zip(row, widths)) + "\n")
        for note in self.notes:
            out.write(f"note: {note}\n")
        return out.getvalue()

    def print(self, precision: int = 3) -> None:
        print(self.render(precision))

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def to_csv(self, path: str) -> str:
        """Write the table as CSV; creates parent directories; returns path."""
        directory = os.path.dirname(path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        with open(path, "w", newline="") as handle:
            writer = csv.DictWriter(handle, fieldnames=self.columns)
            writer.writeheader()
            for row in self.rows:
                writer.writerow({col: row.get(col, "") for col in self.columns})
        return path

    @classmethod
    def from_csv(cls, path: str, title: Optional[str] = None) -> "ResultTable":
        """Load a table back (all values as strings)."""
        with open(path, newline="") as handle:
            reader = csv.DictReader(handle)
            columns = list(reader.fieldnames or [])
            table = cls(title or os.path.basename(path), columns)
            for row in reader:
                table.add_row(**row)
        return table
