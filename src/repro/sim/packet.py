"""Packet-level network simulator (store-and-forward, FIFO, finite buffers).

The synthetic stand-in for the authors' simulator: packets follow
precomputed explicit routes; every directed link is a FIFO server with a
serialisation time of ``packet_size / capacity``, a fixed propagation
delay, and a bounded output queue (tail drop).  Deterministic for a given
seed.

Model simplifications, stated plainly: output-queued nodes (no switching
contention beyond the output link), constant packet size, no
retransmission — standard for topology-comparison studies, where relative
latency/loss ordering between topologies under identical workloads is the
quantity of interest (experiment F10).
"""

from __future__ import annotations

import random
import statistics
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.routing.base import Route
from repro.sim.events import Simulator
from repro.sim.traffic import Flow
from repro.topology.graph import Network


@dataclass(frozen=True)
class PacketSimConfig:
    """Knobs of the packet simulator (times in abstract units)."""

    packet_size: float = 1.0  # volume units per packet
    link_capacity: float = 1.0  # volume units per time unit (per link)
    propagation_delay: float = 0.05  # per link traversal
    queue_capacity: int = 16  # packets per directed link queue
    switching_delay: float = 0.0  # per-node forwarding latency

    def __post_init__(self) -> None:
        if self.packet_size <= 0 or self.link_capacity <= 0:
            raise ValueError("packet_size and link_capacity must be positive")
        if self.propagation_delay < 0 or self.switching_delay < 0:
            raise ValueError("delays must be non-negative")
        if self.queue_capacity < 1:
            raise ValueError("queue_capacity must be >= 1")

    @property
    def serialisation_time(self) -> float:
        return self.packet_size / self.link_capacity


@dataclass
class _Packet:
    flow_id: str
    route: Tuple[str, ...]
    hop: int  # index into route of the node the packet sits at
    created: float
    seq: int = 0  # per-flow sequence number (reordering accounting)


@dataclass
class _DirectedLink:
    """FIFO output queue + serialiser for one direction of a link."""

    queue_capacity: int
    busy_until: float = 0.0
    queued: int = 0
    drops: int = 0


@dataclass(frozen=True)
class PacketSimResult:
    """Aggregated outcome of one packet-simulation run."""

    delivered: int
    dropped: int
    offered: int
    latencies: Tuple[float, ...]
    duration: float
    #: per-directed-link drop counts, heaviest first.
    drop_hotspots: Tuple[Tuple[Tuple[str, str], int], ...] = ()
    #: deliveries whose sequence number was below an already-delivered
    #: one of the same flow (multipath spraying causes these).
    reordered: int = 0

    @property
    def reorder_ratio(self) -> float:
        return self.reordered / self.delivered if self.delivered else 0.0

    @property
    def delivery_ratio(self) -> float:
        return self.delivered / self.offered if self.offered else 0.0

    @property
    def mean_latency(self) -> float:
        return statistics.fmean(self.latencies) if self.latencies else 0.0

    @property
    def p99_latency(self) -> float:
        if not self.latencies:
            return 0.0
        ordered = sorted(self.latencies)
        index = min(len(ordered) - 1, int(0.99 * len(ordered)))
        return ordered[index]

    @property
    def throughput(self) -> float:
        """Delivered packets per time unit."""
        return self.delivered / self.duration if self.duration > 0 else 0.0


class PacketSimulator:
    """Run packet workloads over a network with explicit per-flow routes."""

    def __init__(self, net: Network, config: Optional[PacketSimConfig] = None):
        self._net = net
        self._config = config or PacketSimConfig()
        self._sim = Simulator()
        self._links: Dict[Tuple[str, str], _DirectedLink] = {}
        self._latencies: List[float] = []
        self._delivered = 0
        self._dropped = 0
        self._offered = 0
        self._reordered = 0
        self._max_seq_delivered: Dict[str, int] = {}

    def _directed(self, u: str, v: str) -> _DirectedLink:
        key = (u, v)
        link = self._links.get(key)
        if link is None:
            if not self._net.has_link(u, v):
                raise ValueError(f"route crosses non-existent link {u} - {v}")
            link = _DirectedLink(self._config.queue_capacity)
            self._links[key] = link
        return link

    # ------------------------------------------------------------------
    # packet lifecycle
    # ------------------------------------------------------------------
    def _inject(self, packet: _Packet) -> None:
        self._offered += 1
        self._forward(packet)

    def _forward(self, packet: _Packet) -> None:
        """Transmit the packet from its current node to the next."""
        cfg = self._config
        u = packet.route[packet.hop]
        v = packet.route[packet.hop + 1]
        link = self._directed(u, v)
        if link.queued >= link.queue_capacity:
            self._dropped += 1
            link.drops += 1
            return
        link.queued += 1
        now = self._sim.now
        start = max(now + cfg.switching_delay, link.busy_until)
        done = start + cfg.serialisation_time
        link.busy_until = done

        def arrive() -> None:
            link.queued -= 1
            packet.hop += 1
            if packet.hop == len(packet.route) - 1:
                self._delivered += 1
                self._latencies.append(self._sim.now - packet.created)
                high = self._max_seq_delivered.get(packet.flow_id, -1)
                if packet.seq < high:
                    self._reordered += 1
                else:
                    self._max_seq_delivered[packet.flow_id] = packet.seq
            else:
                self._forward(packet)

        self._sim.schedule_at(done + cfg.propagation_delay, arrive)

    # ------------------------------------------------------------------
    # workload execution
    # ------------------------------------------------------------------
    def run(
        self,
        flows: Sequence[Flow],
        routes: Dict[str, "Route | Sequence[Route]"],
        packets_per_flow: int = 10,
        mean_interarrival: float = 1.0,
        seed: int = 0,
        until: Optional[float] = None,
        spray: str = "round_robin",
    ) -> PacketSimResult:
        """Inject a Poisson packet stream per flow and run to completion.

        Args:
            routes: one :class:`Route` per flow, **or a sequence of
                routes** — multipath spraying: each packet takes one of
                the flow's paths (per ``spray``: ``"round_robin"`` or
                ``"random"``), the model behind per-packet load balancing
                over ABCCC/BCube parallel paths.  The result's
                ``reordered`` count quantifies the price.
            packets_per_flow: packets each flow injects.
            mean_interarrival: Poisson mean gap between a flow's packets —
                lower values mean higher offered load.
            until: optional simulation-time cutoff (in-flight packets past
                the cutoff are neither delivered nor counted as dropped).
        """
        if spray not in ("round_robin", "random"):
            raise ValueError(f"unknown spray policy {spray!r}")
        rng = random.Random(seed)
        for flow in flows:
            entry = routes[flow.flow_id]
            paths: List[Route] = (
                [entry] if isinstance(entry, Route) else list(entry)
            )
            if not paths:
                raise ValueError(f"flow {flow.flow_id} has no routes")
            for route in paths:
                if route.link_hops == 0:
                    raise ValueError(f"flow {flow.flow_id} has a zero-hop route")
            at = 0.0
            for index in range(packets_per_flow):
                at += rng.expovariate(1.0 / mean_interarrival)
                if len(paths) == 1:
                    route = paths[0]
                elif spray == "round_robin":
                    route = paths[index % len(paths)]
                else:
                    route = rng.choice(paths)
                packet = _Packet(flow.flow_id, route.nodes, 0, at, seq=index)

                def inject(p: _Packet = packet) -> None:
                    p.created = self._sim.now
                    self._inject(p)

                self._sim.schedule_at(at, inject)
        self._sim.run(until=until)
        hotspots = tuple(
            sorted(
                (
                    (key, link.drops)
                    for key, link in self._links.items()
                    if link.drops > 0
                ),
                key=lambda item: (-item[1], item[0]),
            )
        )
        return PacketSimResult(
            delivered=self._delivered,
            dropped=self._dropped,
            offered=self._offered,
            latencies=tuple(self._latencies),
            duration=self._sim.now,
            drop_hotspots=hotspots,
            reordered=self._reordered,
        )
