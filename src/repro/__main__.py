"""Entry point for ``python -m repro``.

The ``__name__`` guard is load-bearing: ``repro serve`` workers use the
``spawn`` start method, which re-executes the parent's main module in
each child (as ``__mp_main__``) — without the guard every worker would
re-run the CLI.
"""

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main())
