"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``list`` — registered topologies and their parameters.
* ``build KIND --params k=v…`` — build a topology, print its summary and
  validate the structural invariants.  ``--fast`` compiles straight to
  CSR arrays through the vectorized constructors (``--memmap DIR`` backs
  them with files, ``--trace PATH`` records the build spans) — this is
  the way to summarise 10^5–10^6-server instances in seconds.
* ``route KIND --params … SRC DST`` — print the native route between two
  servers (server indexes or names).
* ``export KIND --params … --format json|graphml|dot OUT`` — serialise a
  built topology.
* ``verify FILE [--params n=…,k=…,s=…]`` — load a JSON network and check
  ABCCC conformance (parameters inferred when omitted).
* ``sweep KIND --params … [--sample N] [--kernel K] [--workers N]`` —
  distance sweep straight on the compiled CSR graph
  (:func:`repro.metrics.engine.sweep_graph_distance_stats`): no
  ``Network`` object is ever built, so million-server instances fit.
  ``--sample N`` sweeps N sources (mean carries a 95% CI; exact when
  omitted and small), ``--kernel`` forces bitpack/dense/flat.
* ``manifest KIND --params …`` — print the deployment manifest (rack
  BOMs + cable schedule).
* ``experiments`` — list the evaluation suite.
* ``run EXP_ID|all [--quick] [--out DIR] [--workers N] [--resume]
  [--timeout S] [--trace [PATH]] [--profile]`` — regenerate
  tables/figures; ``--workers`` fans sweeps out over processes,
  ``--resume`` replays the trial journal an interrupted run left
  behind, ``--timeout`` bounds each experiment's wall clock (the
  journal survives a timeout, so ``--resume`` finishes the run),
  ``--trace`` writes a JSONL span trace (``repro.obs``) and
  ``--profile`` dumps a cProfile per experiment.
* ``serve KIND --params … [--port N | --unix PATH] [--workers N]`` —
  the always-on topology query daemon: compiles the graph once and
  answers ``/route``, ``/distance`` and ``/whatif`` queries over HTTP
  until SIGTERM drains it (see docs/OPERATIONS.md).
* ``obs report TRACE… [--slowest N] [--trace-id ID]`` — per-phase
  wall-time breakdown, slowest spans, worker utilization, cache hit
  rates and peak RSS of one or more trace files; ``--trace-id``
  stitches one request's client/queue/worker spans into a tree
  (see docs/OBSERVABILITY.md).  Empty traces print ``no events``
  and exit 0.
* ``obs tail TRACE [--poll S] [--timeout S]`` — follow a live trace
  file (shards included), one rendered line per span/event.
* ``obs diff OLD NEW [--threshold-pct P] [--calibrate]`` — compare two
  benchmark or metrics JSON snapshots; exits 1 when any timing
  regressed beyond the threshold (the CI perf gate).

Error handling contract: user-level mistakes — unknown topology kind,
malformed ``--param``, a ``--memmap`` path that is not a usable
directory, a missing input file — exit with status **2** and a
one-line ``repro: error: …`` message on stderr, never a traceback
(``REPRO_DEBUG=1`` re-raises for debugging).  Argparse's own usage
errors also exit 2, so scripts can treat 2 uniformly as "bad
invocation".
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Any, Dict, List, Optional, Sequence

from repro.topology.registry import available, create, spec_class
from repro.topology.validate import find_problems


class CliError(Exception):
    """A user-facing CLI mistake: one-line stderr message, exit code 2."""


def _parse_params(pairs: Sequence[str]) -> Dict[str, Any]:
    params: Dict[str, Any] = {}
    for pair in pairs:
        if "=" not in pair:
            raise CliError(f"bad parameter {pair!r}; expected name=value")
        name, _, value = pair.partition("=")
        try:
            params[name] = int(value)
        except ValueError:
            raise CliError(f"parameter {name!r} must be an integer, got {value!r}")
    return params


def _cmd_list(_: argparse.Namespace) -> int:
    import inspect

    for kind in available():
        cls = spec_class(kind)
        signature = inspect.signature(cls.__init__)
        params = [p for p in signature.parameters if p != "self"]
        doc = (cls.__doc__ or "").strip().splitlines()[0]
        print(f"{kind:<10} params: {', '.join(params):<12} {doc}")
    return 0


def _cmd_build(args: argparse.Namespace) -> int:
    spec = create(args.kind, **_parse_params(args.param))
    if getattr(args, "fast", False):
        return _build_fast(spec, args)
    net = spec.build()
    problems = find_problems(net, spec.link_policy())
    print(f"{spec.label}: {net.num_servers} servers, {net.num_switches} switches, "
          f"{net.num_links} links")
    print(f"  server ports: {spec.server_ports}, switch ports: {spec.switch_ports}")
    print(f"  diameter: {spec.diameter_server_hops} server hops / "
          f"{spec.diameter_link_hops} link hops (analytic)")
    if spec.bisection_links is not None:
        print(f"  bisection: {spec.bisection_links:g} links")
    if problems:
        print("  INVALID:")
        for problem in problems:
            print(f"    - {problem}")
        return 1
    print("  structural invariants: OK")
    return 0


def _build_fast(spec, args: argparse.Namespace) -> int:
    """``build --fast``: direct-to-CSR compile, no object graph.

    Goes through the :func:`repro.topology.compiled.build_compiled`
    seam, so families without a vectorized constructor still work (the
    summary says which path ran).  ``--memmap DIR`` backs the arrays
    with files there; ``--trace PATH`` writes the span trace.
    """
    import time

    from repro.obs import peak_rss_mb
    from repro.obs import trace as obs_trace
    from repro.topology.fastbuild import FastCompiledGraph, csr_nbytes

    tracer = obs_trace.Tracer(path=args.trace) if args.trace else None
    previous = obs_trace.set_tracer(tracer) if tracer else None
    try:
        started = time.perf_counter()
        graph = spec.compiled(memmap_dir=args.memmap)
        elapsed = time.perf_counter() - started
    finally:
        if tracer is not None:
            obs_trace.set_tracer(previous)
            tracer.close()
    path = "fastbuild" if isinstance(graph, FastCompiledGraph) else "object graph"
    switches = graph.num_nodes - graph.num_servers
    print(f"{spec.label}: {graph.num_servers} servers, {switches} switches, "
          f"{graph.num_edges} links ({path})")
    print(f"  compiled in {elapsed:.3f}s, CSR {csr_nbytes(graph) / 1e6:.1f} MB")
    rss = peak_rss_mb()
    if rss is not None:
        print(f"  peak RSS: {rss:.1f} MB")
    if args.memmap:
        print(f"  arrays memory-mapped under {args.memmap}")
    if args.trace:
        print(f"  trace written to {args.trace}")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    """``sweep``: graph-native distance stats, no ``Network`` built."""
    import time

    from repro.metrics.engine import sweep_graph_distance_stats
    from repro.obs import peak_rss_mb
    from repro.obs import trace as obs_trace

    spec = create(args.kind, **_parse_params(args.param))
    tracer = obs_trace.Tracer(path=args.trace) if args.trace else None
    previous = obs_trace.set_tracer(tracer) if tracer else None
    try:
        started = time.perf_counter()
        graph = spec.compiled(memmap_dir=args.memmap)
        compiled_at = time.perf_counter()
        stats = sweep_graph_distance_stats(
            graph,
            sample_sources=args.sample,
            seed=args.seed,
            workers=args.workers,
            kernel=args.kernel,
            label=spec.label,
        )
        swept_at = time.perf_counter()
    finally:
        if tracer is not None:
            obs_trace.set_tracer(previous)
            tracer.close()
    switches = graph.num_nodes - graph.num_servers
    print(f"{spec.label}: {graph.num_servers} servers, {switches} switches")
    mean = f"{stats.mean:.4f}"
    if not stats.exact and stats.mean_ci95:
        mean += f" ± {stats.mean_ci95:.4f} (95% CI)"
    mode = "exact" if stats.exact else "sampled"
    bound = "diameter" if stats.exact else "diameter >="
    print(f"  {bound} {stats.diameter} link hops, mean {mean} "
          f"({mode}, {stats.pairs} pairs)")
    print(f"  compile {compiled_at - started:.3f}s, "
          f"sweep {swept_at - compiled_at:.3f}s")
    rss = peak_rss_mb()
    if rss is not None:
        print(f"  peak RSS: {rss:.1f} MB")
    if args.trace:
        print(f"  trace written to {args.trace}")
    return 0


def _cmd_route(args: argparse.Namespace) -> int:
    spec = create(args.kind, **_parse_params(args.param))
    net = spec.build()
    servers = net.servers

    def resolve(token: str) -> str:
        if token in net:
            return token
        try:
            return servers[int(token)]
        except (ValueError, IndexError):
            raise CliError(f"{token!r} is neither a server name nor an index")

    src, dst = resolve(args.src), resolve(args.dst)
    route = spec.route(net, src, dst)
    route.validate(net)
    print(" -> ".join(route.nodes))
    print(f"{route.link_hops} link hops, {route.server_hops(net)} server hops")
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    from repro.topology.serialize import save_graphml, save_json, to_dot

    spec = create(args.kind, **_parse_params(args.param))
    net = spec.build()
    if args.format == "json":
        save_json(net, args.out)
    elif args.format == "graphml":
        save_graphml(net, args.out)
    else:
        with open(args.out, "w") as handle:
            handle.write(to_dot(net))
    print(f"wrote {spec.label} ({len(net)} nodes, {net.num_links} links) "
          f"as {args.format} to {args.out}")
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    from repro.core.address import AbcccParams
    from repro.core.conformance import conformance_problems, infer_params
    from repro.topology.serialize import load_json

    net = load_json(args.file)
    if args.param:
        params_dict = _parse_params(args.param)
        params = AbcccParams(params_dict["n"], params_dict["k"], params_dict["s"])
        problems = conformance_problems(net, params)
        if problems:
            print(f"FAIL: not ABCCC(n={params.n}, k={params.k}, s={params.s})")
            for problem in problems[:10]:
                print(f"  - {problem}")
            return 1
        print(f"OK: network conforms to ABCCC(n={params.n}, k={params.k}, s={params.s})")
        return 0
    try:
        params = infer_params(net)
    except ValueError as error:
        print(f"FAIL: {error}")
        return 1
    print(f"OK: network verified as ABCCC(n={params.n}, k={params.k}, s={params.s})")
    return 0


def _cmd_manifest(args: argparse.Namespace) -> int:
    from repro.deploy import build_manifest
    from repro.metrics.layout import LayoutConfig

    spec = create(args.kind, **_parse_params(args.param))
    net = spec.build()
    config = LayoutConfig(rack_capacity=args.rack_capacity)
    manifest = build_manifest(net, config)
    if args.json:
        import json

        print(json.dumps(manifest.to_json(), indent=2, sort_keys=True))
    else:
        print(manifest.render())
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.report import topology_report

    spec = create(args.kind, **_parse_params(args.param))
    print(topology_report(spec, max_measure_nodes=args.max_measure_nodes))
    return 0


def _cmd_plan(args: argparse.Namespace) -> int:
    from repro.core.planner import Requirements, plan

    req = Requirements(
        min_servers=args.min_servers,
        max_servers=args.max_servers,
        max_nic_ports=args.max_nic_ports,
        switch_radix=args.switch_radix,
        min_bisection_per_server=args.min_bisection,
        max_diameter=args.max_diameter,
        expansion_headroom=args.headroom,
    )
    candidates = plan(req)
    if not candidates:
        print("no feasible ABCCC configuration for these requirements")
        return 1
    header = (
        f"{'configuration':<26} {'servers':>8} {'diam':>5} "
        f"{'bisect/srv':>11} {'$/server':>9}  pareto"
    )
    print(header)
    print("-" * len(header))
    for candidate in candidates[: args.limit]:
        bisect = (
            f"{candidate.bisection_per_server:.3f}"
            if candidate.bisection_per_server is not None
            else "-"
        )
        print(
            f"{candidate.label:<26} {candidate.servers:>8} {candidate.diameter:>5} "
            f"{bisect:>11} {candidate.capex_per_server:>9,.0f}  "
            f"{'*' if candidate.pareto else ''}"
        )
    if len(candidates) > args.limit:
        print(f"… {len(candidates) - args.limit} more (raise --limit)")
    return 0


def _cmd_experiments(_: argparse.Namespace) -> int:
    from repro.experiments import all_experiments

    for experiment in all_experiments():
        print(f"{experiment.exp_id:<4} {experiment.title}")
        print(f"     expect: {experiment.expectation}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.experiments import run_all, run_experiment

    if args.exp_id.lower() == "all":
        run_all(
            quick=args.quick,
            out_dir=args.out,
            workers=args.workers,
            resume=args.resume,
            timeout=args.timeout,
            trace=args.trace,
            profile=args.profile or None,
        )
    else:
        run_experiment(
            args.exp_id,
            quick=args.quick,
            out_dir=args.out,
            workers=args.workers,
            resume=args.resume,
            timeout=args.timeout,
            trace=args.trace,
            profile=args.profile or None,
        )
    return 0


#: matrix families accepted by ``repro traffic`` — kept in lockstep with
#: repro.traffic.MATRICES (asserted by the test suite) so the parser
#: stays importable without numpy.
TRAFFIC_PATTERNS = ("all_to_all", "hot_rack", "incast", "job", "permutation", "uniform")

#: --faults classes, mapped onto random_index_failures keywords.
_FAULT_CLASSES = {
    "server": "server_fraction",
    "switch": "switch_fraction",
    "link": "link_fraction",
}


def _parse_matrix_params(pairs: Sequence[str]) -> Dict[str, Any]:
    """``NAME=VALUE`` generator overrides; ints stay ints (counts), the
    rest must parse as floats (fractions)."""
    params: Dict[str, Any] = {}
    for pair in pairs:
        if "=" not in pair:
            raise CliError(f"bad matrix parameter {pair!r}; expected name=value")
        name, _, value = pair.partition("=")
        try:
            params[name] = int(value)
        except ValueError:
            try:
                params[name] = float(value)
            except ValueError:
                raise CliError(
                    f"matrix parameter {name!r} must be a number, got {value!r}"
                )
    return params


def _parse_faults(text: Optional[str]) -> Dict[str, float]:
    """``server=0.02,switch=0.01,link=0.005`` -> fault-plan fractions."""
    fractions: Dict[str, float] = {}
    if not text:
        return fractions
    for item in text.split(","):
        if "=" not in item:
            raise CliError(f"bad --faults item {item!r}; expected class=fraction")
        name, _, value = item.partition("=")
        key = _FAULT_CLASSES.get(name.strip())
        if key is None:
            raise CliError(
                f"unknown fault class {name!r}; expected one of "
                f"{', '.join(sorted(_FAULT_CLASSES))}"
            )
        try:
            fractions[key] = float(value)
        except ValueError:
            raise CliError(f"fault fraction for {name!r} must be a number, got {value!r}")
    return fractions


def _cmd_traffic(args: argparse.Namespace) -> int:
    """``traffic``: flow-level max-min engine on the compiled graph."""
    import json
    import time

    from repro.faults.journal import TrialJournal
    from repro.obs import metrics as obs_metrics
    from repro.obs import peak_rss_mb
    from repro.obs import trace as obs_trace
    from repro.traffic import run_traffic

    if args.trials < 1:
        raise CliError(f"--trials must be >= 1, got {args.trials}")
    spec = create(args.kind, **_parse_params(args.param))
    matrix_params = _parse_matrix_params(args.matrix_param)
    fault_fractions = _parse_faults(args.faults)

    import re

    slug = re.sub(r"[^A-Za-z0-9._-]+", "", spec.label)
    journal = None
    if args.out:
        os.makedirs(args.out, exist_ok=True)
        journal_file = os.path.join(args.out, f"traffic-{slug}.journal.jsonl")
        if not args.resume and os.path.exists(journal_file):
            os.unlink(journal_file)
        journal = TrialJournal(journal_file)

    tracer = obs_trace.Tracer(path=args.trace) if args.trace else None
    previous = obs_trace.set_tracer(tracer) if tracer else None
    try:
        started = time.perf_counter()
        graph = spec.compiled(memmap_dir=args.memmap)
        compiled_at = time.perf_counter()
        table = run_traffic(
            graph,
            spec.label,
            args.pattern,
            trials=args.trials,
            seed=args.seed,
            pattern_params=matrix_params,
            fault_fractions=fault_fractions,
            fault_seed=args.fault_seed,
            fct=args.fct,
            workers=args.workers,
            journal=journal,
        )
        finished = time.perf_counter()
    finally:
        if journal is not None:
            journal.close()
        if tracer is not None:
            obs_trace.set_tracer(previous)
            tracer.close()
    print(table.render())
    print(f"  compile {compiled_at - started:.3f}s, "
          f"trials {finished - compiled_at:.3f}s")
    rss = peak_rss_mb()
    if rss is not None:
        print(f"  peak RSS: {rss:.1f} MB")
    if args.out:
        csv_path = os.path.join(args.out, f"traffic_{slug}_{args.pattern}.csv")
        table.to_csv(csv_path)
        print(f"  rows written to {csv_path}")
    if args.metrics:
        with open(args.metrics, "w", encoding="utf-8") as handle:
            json.dump(obs_metrics.get_registry().snapshot(), handle, indent=2)
        print(f"  metrics snapshot written to {args.metrics}")
    if args.trace:
        print(f"  trace written to {args.trace}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """``serve``: the always-on topology query daemon (docs/OPERATIONS.md)."""
    from repro.obs import trace as obs_trace
    from repro.serve import Daemon, ServeConfig, TopologyService

    if args.workers < 0:
        raise CliError(f"--workers must be >= 0, got {args.workers}")
    if args.queue < 1:
        raise CliError(f"--queue must be >= 1, got {args.queue}")
    if args.deadline_ms < 1:
        raise CliError(f"--deadline-ms must be >= 1, got {args.deadline_ms}")
    if args.memmap is not None and os.path.exists(args.memmap) and not os.path.isdir(args.memmap):
        raise CliError(f"--memmap {args.memmap!r} exists and is not a directory")
    spec = create(args.kind, **_parse_params(args.param))
    config = ServeConfig(
        workers=args.workers,
        queue_bound=args.queue,
        default_deadline_s=args.deadline_ms / 1000.0,
        hang_timeout_s=args.hang_timeout,
        drain_timeout_s=args.drain_timeout,
        scenario_cache=args.scenario_cache,
    )
    tracer = obs_trace.Tracer(path=args.trace) if args.trace else None
    previous = obs_trace.set_tracer(tracer) if tracer else None
    try:
        graph = spec.compiled(memmap_dir=args.memmap)
        service = TopologyService(graph, config, label=spec.label)
        daemon = Daemon(
            service,
            host=args.host,
            port=args.port,
            unix=args.unix,
            ready_file=args.ready_file,
        )
        switches = graph.num_nodes - graph.num_servers
        print(
            f"{spec.label}: serving {graph.num_servers} servers / {switches} switches "
            f"on {daemon.front.endpoint} (pid {os.getpid()}, "
            f"{config.workers or 'inline'} workers)",
            flush=True,
        )
        code = daemon.run()
        print("drained and stopped", flush=True)
        return code
    finally:
        if tracer is not None:
            obs_trace.set_tracer(previous)
            tracer.close()
            print(f"trace written to {args.trace}", flush=True)


def _cmd_obs_report(args: argparse.Namespace) -> int:
    from repro.obs.report import load_trace, report_files, report_trace_id

    # An empty or not-yet-written trace is a normal operational state
    # (the daemon just started, the run produced nothing): report it as
    # "no events", exit 0, so dashboards and scripts don't page on it.
    present = [path for path in args.trace if os.path.exists(path)]
    events = []
    for path in present:
        events.extend(load_trace(path))
    if not events:
        print("no events")
        return 0
    if args.trace_id:
        text, count = report_trace_id(args.trace, args.trace_id)
        if count == 0:
            print("no events")
            return 0
        print(text)
        return 0
    print(report_files(present, slowest=args.slowest))
    return 0


def _cmd_obs_tail(args: argparse.Namespace) -> int:
    from repro.obs.report import follow_trace, render_tail_event

    try:
        for event in follow_trace(
            args.trace,
            poll_s=args.poll,
            timeout_s=args.timeout,
            max_events=args.max_events,
        ):
            line = render_tail_event(event)
            if line is not None:
                print(line, flush=True)
    except KeyboardInterrupt:
        pass
    return 0


def _cmd_obs_diff(args: argparse.Namespace) -> int:
    from repro.obs.diff import diff_files, render_diff

    result = diff_files(
        args.old,
        args.new,
        threshold=args.threshold_pct / 100.0,
        min_abs_s=args.min_abs_ms / 1000.0,
        calibrate=args.calibrate,
    )
    print(render_diff(args.old, args.new, result, threshold=args.threshold_pct / 100.0))
    return 0 if result.ok else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ABCCC (ICDCS 2015) reproduction: topologies, routing, evaluation.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list registered topologies").set_defaults(fn=_cmd_list)

    build = sub.add_parser("build", help="build and summarise a topology")
    build.add_argument("kind", choices=available())
    build.add_argument("--param", "-p", action="append", default=[], metavar="NAME=INT")
    build.add_argument(
        "--fast",
        action="store_true",
        help="compile straight to CSR arrays (vectorized, no object graph)",
    )
    build.add_argument(
        "--memmap",
        default=None,
        metavar="DIR",
        help="with --fast: back the CSR arrays with memory-mapped files in DIR",
    )
    build.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="with --fast: write a JSONL span trace of the build",
    )
    build.set_defaults(fn=_cmd_build)

    sweep = sub.add_parser(
        "sweep", help="distance sweep on the compiled graph (no Network)"
    )
    sweep.add_argument("kind", choices=available())
    sweep.add_argument("--param", "-p", action="append", default=[], metavar="NAME=INT")
    sweep.add_argument(
        "--sample",
        type=int,
        default=None,
        metavar="N",
        help="sweep N sampled sources (default: exact below the auto-sample "
        "threshold, 1024 sources above)",
    )
    sweep.add_argument("--seed", type=int, default=0, help="source-sampling seed")
    sweep.add_argument(
        "--workers",
        type=int,
        default=None,
        help="processes for the sweep (0 = all cores; default 1)",
    )
    sweep.add_argument(
        "--kernel",
        choices=("auto", "bitpack", "dense", "flat"),
        default=None,
        help="BFS kernel (default auto: bitpack on big graphs)",
    )
    sweep.add_argument(
        "--memmap",
        default=None,
        metavar="DIR",
        help="back the CSR arrays with memory-mapped files in DIR",
    )
    sweep.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="write a JSONL span trace of compile + sweep",
    )
    sweep.set_defaults(fn=_cmd_sweep)

    route = sub.add_parser("route", help="route between two servers")
    route.add_argument("kind", choices=available())
    route.add_argument("--param", "-p", action="append", default=[], metavar="NAME=INT")
    route.add_argument("src", help="server name or index")
    route.add_argument("dst", help="server name or index")
    route.set_defaults(fn=_cmd_route)

    export = sub.add_parser("export", help="serialise a built topology")
    export.add_argument("kind", choices=available())
    export.add_argument("--param", "-p", action="append", default=[], metavar="NAME=INT")
    export.add_argument("--format", "-f", choices=("json", "graphml", "dot"), default="json")
    export.add_argument("out", help="output file path")
    export.set_defaults(fn=_cmd_export)

    verify = sub.add_parser("verify", help="check a JSON network for ABCCC conformance")
    verify.add_argument("file", help="network JSON produced by export")
    verify.add_argument("--param", "-p", action="append", default=[], metavar="NAME=INT")
    verify.set_defaults(fn=_cmd_verify)

    manifest = sub.add_parser("manifest", help="print the deployment manifest")
    manifest.add_argument("kind", choices=available())
    manifest.add_argument("--param", "-p", action="append", default=[], metavar="NAME=INT")
    manifest.add_argument("--rack-capacity", type=int, default=40)
    manifest.add_argument("--json", action="store_true",
                          help="emit the machine-readable manifest")
    manifest.set_defaults(fn=_cmd_manifest)

    planner = sub.add_parser("plan", help="find ABCCC configs for requirements")
    planner.add_argument("--min-servers", type=int, default=1)
    planner.add_argument("--max-servers", type=int, default=None)
    planner.add_argument("--max-nic-ports", type=int, default=4)
    planner.add_argument("--switch-radix", type=int, default=48)
    planner.add_argument("--min-bisection", type=float, default=0.0)
    planner.add_argument("--max-diameter", type=int, default=None)
    planner.add_argument("--headroom", type=int, default=0,
                         help="future pure-addition growth steps required")
    planner.add_argument("--limit", type=int, default=15)
    planner.set_defaults(fn=_cmd_plan)

    report = sub.add_parser("report", help="full property/measurement report")
    report.add_argument("kind", choices=available())
    report.add_argument("--param", "-p", action="append", default=[], metavar="NAME=INT")
    report.add_argument("--max-measure-nodes", type=int, default=2000)
    report.set_defaults(fn=_cmd_report)

    serve = sub.add_parser("serve", help="always-on topology query daemon")
    serve.add_argument("kind", choices=available())
    serve.add_argument("--param", "-p", action="append", default=[], metavar="NAME=INT")
    serve.add_argument("--host", default="127.0.0.1", help="TCP bind address")
    serve.add_argument(
        "--port", type=int, default=0, help="TCP port (default 0 = OS-assigned)"
    )
    serve.add_argument(
        "--unix", default=None, metavar="PATH", help="serve on a unix socket instead"
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=2,
        help="worker processes answering queries (0 = inline threads)",
    )
    serve.add_argument(
        "--queue",
        type=int,
        default=64,
        metavar="N",
        help="pending-request bound before shedding with 429",
    )
    serve.add_argument(
        "--deadline-ms",
        type=int,
        default=10_000,
        help="default per-request deadline (clients may lower it)",
    )
    serve.add_argument(
        "--hang-timeout",
        type=float,
        default=30.0,
        metavar="S",
        help="kill + restart a worker that answers nothing for S seconds",
    )
    serve.add_argument(
        "--drain-timeout",
        type=float,
        default=15.0,
        metavar="S",
        help="SIGTERM: wait up to S seconds for in-flight requests",
    )
    serve.add_argument(
        "--scenario-cache",
        type=int,
        default=64,
        metavar="N",
        help="what-if MaskedGraph LRU entries per worker",
    )
    serve.add_argument(
        "--memmap",
        default=None,
        metavar="DIR",
        help="back the CSR arrays with memory-mapped files in DIR",
    )
    serve.add_argument(
        "--ready-file",
        default=None,
        metavar="PATH",
        help="write {endpoint, pid} JSON here once ready (for scripts)",
    )
    serve.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="write a JSONL span trace of the serving session",
    )
    serve.set_defaults(fn=_cmd_serve)

    traffic = sub.add_parser(
        "traffic", help="flow-level traffic engine on the compiled graph"
    )
    traffic.add_argument("kind", choices=available())
    traffic.add_argument("--param", "-p", action="append", default=[], metavar="NAME=INT")
    traffic.add_argument(
        "--pattern",
        choices=TRAFFIC_PATTERNS,
        default="permutation",
        help="traffic-matrix family (default permutation)",
    )
    traffic.add_argument(
        "--matrix-param",
        "-m",
        action="append",
        default=[],
        metavar="NAME=NUM",
        help="generator override, e.g. fan_in=128 or hot_fraction=0.8",
    )
    traffic.add_argument("--trials", type=int, default=1, help="independent matrices")
    traffic.add_argument("--seed", type=int, default=0, help="matrix seed stream")
    traffic.add_argument(
        "--faults",
        default=None,
        metavar="CLASS=FRAC,...",
        help="degrade each trial, e.g. server=0.02,switch=0.01,link=0.005",
    )
    traffic.add_argument(
        "--fault-seed",
        type=int,
        default=None,
        help="fault draw seed stream (default: --seed)",
    )
    traffic.add_argument(
        "--fct", action="store_true", help="also compute fluid completion times"
    )
    traffic.add_argument(
        "--workers",
        type=int,
        default=None,
        help="processes for multi-trial fan-out (0 = all cores; default 1)",
    )
    traffic.add_argument(
        "--out",
        default=None,
        metavar="DIR",
        help="write the per-trial CSV and the resumable journal here",
    )
    traffic.add_argument(
        "--resume",
        action="store_true",
        help="replay journaled trials from --out instead of recomputing",
    )
    traffic.add_argument(
        "--memmap",
        default=None,
        metavar="DIR",
        help="back the CSR arrays with memory-mapped files in DIR",
    )
    traffic.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="write a JSONL span trace of compile + trials",
    )
    traffic.add_argument(
        "--metrics",
        default=None,
        metavar="PATH",
        help="write the metrics-registry snapshot (rate/FCT histograms) as JSON",
    )
    traffic.set_defaults(fn=_cmd_traffic)

    sub.add_parser("experiments", help="list the evaluation suite").set_defaults(
        fn=_cmd_experiments
    )

    run = sub.add_parser("run", help="run one experiment or 'all'")
    run.add_argument("exp_id", help="experiment id (T1, F5, ...) or 'all'")
    run.add_argument("--quick", action="store_true", help="small instances/samples")
    run.add_argument("--out", default="results", help="CSV output directory")
    run.add_argument(
        "--workers",
        type=int,
        default=None,
        help="processes for all-pairs sweeps (0 = all cores; default 1)",
    )
    run.add_argument(
        "--resume",
        action="store_true",
        help="replay the trial journal an interrupted run left in --out",
    )
    run.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-experiment wall-clock limit (journal survives, resumable)",
    )
    run.add_argument(
        "--trace",
        nargs="?",
        const=True,
        default=None,
        metavar="PATH",
        help="write a JSONL span trace (default <out>/<exp_id>.trace.jsonl; "
        "for 'run all', PATH names a directory)",
    )
    run.add_argument(
        "--profile",
        action="store_true",
        help="dump a cProfile per experiment to <out>/<exp_id>.prof",
    )
    run.set_defaults(fn=_cmd_run)

    obs = sub.add_parser("obs", help="observability: trace reports, tail, perf diff")
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)
    obs_report = obs_sub.add_parser(
        "report", help="per-phase breakdown / utilization report of trace files"
    )
    obs_report.add_argument("trace", nargs="+", help="trace JSONL file(s)")
    obs_report.add_argument(
        "--slowest", type=int, default=10, metavar="N", help="slowest spans to list"
    )
    obs_report.add_argument(
        "--trace-id",
        default=None,
        metavar="ID",
        help="stitch and render the spans of one request trace id "
        "(client attempt -> queue wait -> worker execution)",
    )
    obs_report.set_defaults(fn=_cmd_obs_report)

    obs_tail = obs_sub.add_parser(
        "tail", help="follow a live trace file, one line per span/event"
    )
    obs_tail.add_argument("trace", help="trace JSONL file (shards picked up too)")
    obs_tail.add_argument(
        "--poll", type=float, default=0.25, metavar="S", help="poll interval"
    )
    obs_tail.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="S",
        help="stop after S seconds (default: follow until interrupted)",
    )
    obs_tail.add_argument(
        "--max-events",
        type=int,
        default=None,
        metavar="N",
        help="stop after N events (for scripting)",
    )
    obs_tail.set_defaults(fn=_cmd_obs_tail)

    obs_diff = obs_sub.add_parser(
        "diff", help="compare two benchmark/metrics snapshots; exit 1 on regression"
    )
    obs_diff.add_argument("old", help="baseline JSON (BENCH_*.json or /stats dump)")
    obs_diff.add_argument("new", help="candidate JSON to compare against the baseline")
    obs_diff.add_argument(
        "--threshold-pct",
        type=float,
        default=25.0,
        metavar="PCT",
        help="flag timings more than PCT%% slower than the baseline",
    )
    obs_diff.add_argument(
        "--min-abs-ms",
        type=float,
        default=1.0,
        metavar="MS",
        help="ignore regressions smaller than MS milliseconds absolute",
    )
    obs_diff.add_argument(
        "--calibrate",
        action="store_true",
        help="divide ratios by the median ratio (normalises machine speed)",
    )
    obs_diff.set_defaults(fn=_cmd_obs_diff)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        return 130
    except (CliError, ValueError, KeyError, OSError, NotImplementedError) as error:
        # User-level mistakes exit 2 with a one-line message, matching
        # argparse's own usage errors; REPRO_DEBUG=1 re-raises so
        # developers still get the traceback.
        if os.environ.get("REPRO_DEBUG"):
            raise
        message = str(error) or type(error).__name__
        print(f"repro: error: {message}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
