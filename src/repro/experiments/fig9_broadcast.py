"""F9 — one-to-all and one-to-many communication (GBC3 extension).

Builds the dimensional-sweep broadcast tree on ABCCC instances and
reports depth (latency proxy), unicast link stress and message count,
then compares against the naive alternative (independent one-to-one
routes to every destination).  Multicast subsets exercise the pruned
tree.
"""

from __future__ import annotations

import random
from typing import List

from repro.core import (
    AbcccSpec,
    ServerAddress,
    broadcast_tree,
    multicast_tree,
)
from repro.experiments.harness import register
from repro.metrics.bottleneck import load_stats
from repro.sim.flow import route_all
from repro.sim.results import ResultTable
from repro.sim.traffic import one_to_all_traffic


def _broadcast_table(quick: bool) -> ResultTable:
    table = ResultTable(
        "F9a: broadcast tree vs naive unicast one-to-all",
        [
            "instance",
            "servers",
            "tree_depth",
            "diameter_bound",
            "one_port_rounds",
            "tree_stress",
            "tree_messages",
            "unicast_max_link_load",
            "stress_reduction",
        ],
    )
    cases = (
        [AbcccSpec(2, 1, 2)]
        if quick
        else [
            AbcccSpec(3, 1, 2),
            AbcccSpec(3, 2, 2),
            AbcccSpec(3, 2, 3),
            AbcccSpec(3, 2, 4),  # c = 1: the BCube-degenerate endpoint
            AbcccSpec(4, 2, 2),
        ]
    )
    for spec in cases:
        net = spec.build()
        source = ServerAddress.parse(net.servers[0])
        tree = broadcast_tree(spec.abccc, source)
        tree.validate(net)
        assert set(tree.servers) == set(net.servers)
        # Naive alternative: a unicast flow to every destination.
        flows = one_to_all_traffic(net.servers, source=source.name)
        routes = route_all(net, flows, spec.route)
        unicast = load_stats(net, routes.values())
        stress = tree.link_stress()
        table.add_row(
            instance=spec.label,
            servers=net.num_servers,
            tree_depth=tree.max_depth,
            diameter_bound=spec.diameter_server_hops,
            one_port_rounds=tree.one_port_rounds(),
            tree_stress=stress,
            tree_messages=len(tree.servers) - 1,
            unicast_max_link_load=unicast.max_load,
            stress_reduction=unicast.max_load / stress if stress else None,
        )
    table.add_note(
        "tree stress = max(c-1, n-1) by construction (fan-out at the "
        "first shared link); naive unicast concentrates the source's "
        "links with load ~ N-1."
    )
    return table


def _multicast_table(quick: bool) -> ResultTable:
    table = ResultTable(
        "F9b: one-to-many (pruned tree) vs group size",
        ["instance", "group_size", "tree_depth", "tree_messages", "covered"],
    )
    spec = AbcccSpec(2, 1, 2) if quick else AbcccSpec(4, 2, 2)
    net = spec.build()
    source = ServerAddress.parse(net.servers[0])
    rng = random.Random(9)
    sizes = (2,) if quick else (2, 8, 32, 64)
    for size in sizes:
        group = [
            ServerAddress.parse(name)
            for name in rng.sample(net.servers[1:], min(size, net.num_servers - 1))
        ]
        tree = multicast_tree(spec.abccc, source, group)
        tree.validate(net)
        covered = all(member.name in tree.parent for member in group)
        table.add_row(
            instance=spec.label,
            group_size=len(group),
            tree_depth=tree.max_depth,
            tree_messages=len(tree.servers) - 1,
            covered=covered,
        )
    table.add_note("messages grow sub-linearly in group size (shared prefix paths).")
    return table


@register(
    "F9",
    "One-to-all / one-to-many communication",
    "tree depth <= diameter; tree link stress is constant (max(c-1, n-1)) "
    "while naive unicast's hot link scales with N; multicast messages "
    "scale with group size, not network size.",
)
def run(quick: bool = False) -> List[ResultTable]:
    return [_broadcast_table(quick), _multicast_table(quick)]
