"""E6 (extension) — local-repair quality vs NIC count.

F8b showed ABCCC(s=2)'s greedy fault-tolerant routing; this extension
sweeps ``s`` at fixed (n, k) — including the BCube-degenerate endpoint —
and asks how much the extra NIC ports buy in *local repairability*: the
fraction of reachable pairs the greedy detouring resolves without global
repair, and the stretch it pays, at a fixed failure level.
"""

from __future__ import annotations

import random
import statistics
from typing import List

from repro.core import AbcccSpec, fault_tolerant_route
from repro.experiments.harness import register
from repro.faults import random_failures
from repro.metrics.engine import pairwise_distances
from repro.routing.base import RoutingError
from repro.sim.results import ResultTable
from repro.topology.compiled import compile_graph


@register(
    "E6",
    "Local repair vs NIC count (s sweep at fixed failures)",
    "greedy-repair success rises and stretch falls as s grows (more "
    "parallel families to detour through); the c=1 endpoint behaves like "
    "BCube; connection ratio itself also improves with s.",
)
def run(quick: bool = False) -> List[ResultTable]:
    table = ResultTable(
        "E6: greedy local repair across the s sweep (10% srv+sw failures)",
        [
            "instance",
            "s",
            "crossbar_size",
            "attempted",
            "reachable",
            "greedy_ok",
            "greedy_frac",
            "fallback",
            "mean_stretch",
        ],
    )
    if quick:
        n, k, s_values, attempts = 3, 1, (2, 3), 50
    else:
        n, k, s_values, attempts = 4, 2, (2, 3, 4), 250
    fraction = 0.10
    for s in s_values:
        spec = AbcccSpec(n, k, s)
        net = spec.build()
        plan = random_failures(
            net, server_fraction=fraction, switch_fraction=fraction, seed=17
        )
        alive = net.subgraph_without(
            dead_nodes=list(plan.scenario.dead_servers)
            + list(plan.scenario.dead_switches)
        )
        # Reachability baselines on the compiled alive graph: draw the
        # attempt pairs up front (same RNG stream as the loop would use)
        # and batch the distinct sources through one block BFS.
        graph = compile_graph(alive)
        index = graph.index
        rng = random.Random(23)
        servers = alive.servers
        attempt_pairs = [tuple(rng.sample(servers, 2)) for _ in range(attempts)]
        shortests = pairwise_distances(
            graph, [(index[src], index[dst]) for src, dst in attempt_pairs]
        )
        reachable = greedy_ok = fallback = 0
        stretches: List[float] = []
        for (src, dst), shortest in zip(attempt_pairs, shortests):
            if shortest < 0:
                continue
            reachable += 1
            try:
                result = fault_tolerant_route(spec.abccc, alive, src, dst, seed=5)
            except RoutingError:
                continue
            if result.fallback_used:
                fallback += 1
            else:
                greedy_ok += 1
                stretches.append(result.route.link_hops / max(shortest, 1))
        table.add_row(
            instance=spec.label,
            s=s,
            crossbar_size=spec.abccc.crossbar_size,
            attempted=attempts,
            reachable=reachable,
            greedy_ok=greedy_ok,
            greedy_frac=greedy_ok / reachable if reachable else None,
            fallback=fallback,
            mean_stretch=statistics.fmean(stretches) if stretches else None,
        )
    table.add_note(
        "stretch measured over greedy-only successes vs alive-graph "
        "shortest paths; same failure draw per s via fixed seeds."
    )
    return [table]
