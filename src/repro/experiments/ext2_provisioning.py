"""E2 (ablation) — crossbar-switch provisioning vs expansion headroom.

The F5 boundary finding quantified: pure-addition expansion holds while
the grown crossbar fits its crossbar switch (``c_new <= ports``).  An
operator choosing the crossbar-switch radix is therefore buying
*headroom*: bigger switches cost more today but push the replacement
cliff further out.  This ablation tabulates, per radix choice, the
maximum reachable order/size before any crossbar switch must be
replaced, and the CAPEX premium paid for the unused ports meanwhile.
"""

from __future__ import annotations

from typing import List

from repro.core import AbcccSpec
from repro.experiments.harness import register
from repro.metrics.cost import PriceBook
from repro.sim.results import ResultTable


def _headroom_table(n: int, s: int, quick: bool) -> ResultTable:
    table = ResultTable(
        f"E2: crossbar-switch radix vs expansion headroom (n={n}, s={s})",
        [
            "csw_ports",
            "k_max",
            "servers_at_kmax",
            "csw_premium_per_crossbar",
            "premium_per_server_at_kmax",
        ],
    )
    prices = PriceBook()
    baseline_cost = prices.switch_cost(n)
    port_options = (n, 2 * n) if quick else (n, 2 * n, 4 * n)
    for ports in port_options:
        # c = ceil((k+1)/(s-1)) <= ports  =>  k+1 <= ports * (s-1).
        k_max = ports * (s - 1) - 1
        spec = AbcccSpec(n, k_max, s)
        premium = prices.switch_cost(ports) - baseline_cost
        table.add_row(
            csw_ports=ports,
            k_max=k_max,
            servers_at_kmax=spec.num_servers,
            csw_premium_per_crossbar=premium,
            premium_per_server_at_kmax=premium
            * spec.abccc.num_crossbars
            / spec.num_servers,
        )
    table.add_note(
        "k_max is the largest order reachable by pure-addition expansion "
        "with the chosen crossbar-switch radix; the premium buys that "
        "headroom up front and amortises to pennies per server at scale."
    )
    return table


@register(
    "E2",
    "Provisioning ablation: crossbar-switch radix buys expansion headroom",
    "doubling the crossbar-switch radix multiplies the pure-addition "
    "size ceiling by n^(ports*(s-1)) while the premium per final server "
    "shrinks toward zero; under-provisioning hits the F5 replacement "
    "cliff.",
)
def run(quick: bool = False) -> List[ResultTable]:
    if quick:
        return [_headroom_table(4, 2, quick)]
    return [_headroom_table(4, 2, quick), _headroom_table(8, 2, quick), _headroom_table(4, 3, quick)]
