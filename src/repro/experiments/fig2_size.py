"""F2 — network size vs order k (log scale in the paper).

How many servers each configuration supports as it grows, for two switch
radixes.  The expandability story needs scale to come cheap: ABCCC at
``s = 2`` (BCCC) packs ``(k+1) * n^(k+1)`` servers — *more* than BCube at
equal k — and the ``s`` dial trades that density for diameter.
"""

from __future__ import annotations

from typing import List

from repro.baselines import BcubeSpec, DcellSpec, FatTreeSpec, FiconnSpec
from repro.core import AbcccSpec
from repro.experiments.harness import register
from repro.sim.results import ResultTable

S_VALUES = (2, 3, 4)


def _size_table(n: int, quick: bool) -> ResultTable:
    table = ResultTable(
        f"F2: servers vs k (n={n})",
        ["k"]
        + [f"abccc_s{s}" for s in S_VALUES]
        + ["bcube", "dcell", "ficonn"],
    )
    ks = range(0, 4) if quick else range(0, 7)
    for k in ks:
        row = {"k": k}
        for s in S_VALUES:
            row[f"abccc_s{s}"] = AbcccSpec(n, k, s).num_servers
        row["bcube"] = BcubeSpec(n, k).num_servers
        # DCell/FiConn sizes explode doubly-exponentially; cap the columns
        # where they exceed a million servers to keep the table readable.
        dcell = DcellSpec(n, k).num_servers if k <= 3 else None
        row["dcell"] = dcell if dcell is None or dcell < 10**7 else None
        ficonn = FiconnSpec(n, k).num_servers if n % 2 == 0 and k <= 4 else None
        row["ficonn"] = ficonn if ficonn is None or ficonn < 10**7 else None
        table.add_row(**row)
    return table


def _fattree_reference() -> ResultTable:
    table = ResultTable(
        "F2b: fat-tree size reference (scale set by switch radix only)",
        ["p", "servers", "switches"],
    )
    for p in (4, 8, 16, 24, 48):
        spec = FatTreeSpec(p)
        table.add_row(p=p, servers=spec.num_servers, switches=spec.num_switches)
    table.add_note(
        "a fat-tree of commodity 48-port switches tops out at 27648 "
        "servers; cube-family designs keep growing by raising k."
    )
    return table


@register(
    "F2",
    "Network size vs order k",
    "abccc(s=2) >= bcube at every k (factor k+1); size shrinks as s grows "
    "(fewer servers per crossbar); DCell dwarfs all at k>=2; fat-tree is "
    "capped by its radix.",
)
def run(quick: bool = False) -> List[ResultTable]:
    tables = [_size_table(4, quick)]
    if not quick:
        tables.append(_size_table(8, quick))
    tables.append(_fattree_reference())
    return tables
