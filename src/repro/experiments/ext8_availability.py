"""E8 (extension) — availability under continuous churn.

Runs the failure/repair process of :mod:`repro.sim.churn` on each
topology with identical component reliability parameters and reports the
SLO-shaped numbers: pair availability (endpoint hardware included) and
path availability (the network's own share — connectivity given both
endpoints alive).  Static snapshots (F8) rank topologies at one failure
level; churn integrates that ranking over the whole failure/repair
process.
"""

from __future__ import annotations

from typing import List

from repro.baselines import BcubeSpec, FatTreeSpec
from repro.core import AbcccSpec
from repro.experiments.harness import register
from repro.faults import child_seed
from repro.sim.churn import ChurnConfig, simulate_churn
from repro.sim.results import ResultTable


@register(
    "E8",
    "Availability under continuous failure/repair churn",
    "path availability ranks with static switch-failure resilience "
    "(bcube >= abccc_s3 >= abccc_s2 > fat-tree); pair availability is "
    "dominated by endpoint hardware and nearly equal everywhere — the "
    "network's contribution is what differs.",
)
def run(quick: bool = False) -> List[ResultTable]:
    table = ResultTable(
        "E8: pair/path availability over a churn run",
        [
            "topology",
            "servers",
            "duration_h",
            "samples",
            "mean_alive_frac",
            "pair_availability",
            "path_availability",
        ],
    )
    if quick:
        specs = [AbcccSpec(3, 1, 2), BcubeSpec(3, 1)]
        duration = 300.0
        pairs = 10
    else:
        specs = [AbcccSpec(4, 2, 2), AbcccSpec(4, 2, 3), BcubeSpec(4, 2), FatTreeSpec(8)]
        duration = 2000.0
        pairs = 25
    # Deliberately pessimistic hardware so differences are visible in a
    # bounded run: MTBF 400 h / MTTR 24 h per server, better for switches.
    config = ChurnConfig(
        server_mtbf=400.0,
        server_mttr=24.0,
        switch_mtbf=800.0,
        switch_mttr=12.0,
        sample_interval=10.0,
    )
    for spec in specs:
        net = spec.build()
        # Per-topology child seed: one experiment seed, independent
        # process-stable streams per instance.
        result = simulate_churn(
            net,
            duration=duration,
            config=config,
            num_pairs=pairs,
            seed=child_seed(71, spec.label),
        )
        table.add_row(
            topology=spec.label,
            servers=net.num_servers,
            duration_h=duration,
            samples=result.samples,
            mean_alive_frac=result.mean_alive_fraction,
            pair_availability=result.pair_availability,
            path_availability=result.path_availability,
        )
    table.add_note(
        "same per-component reliability for every topology; path "
        "availability excludes samples where an endpoint itself was down."
    )
    return [table]
