"""E4 (ablation) — physical cabling: length-priced CAPEX by topology.

The flat per-cable price in T2/F4 hides a real difference: server-centric
designs keep most links inside or adjacent to a rack (an ABCCC crossbar
is rack-local by construction), while switch-centric fabrics pull long
home runs to aggregation/core rows.  This ablation places every topology
into the same machine-room geometry and prices cables by Manhattan run
length.
"""

from __future__ import annotations

from typing import List

from repro.baselines import BcubeSpec, FatTreeSpec, TreeSpec
from repro.core import AbcccSpec
from repro.experiments.harness import register
from repro.metrics.layout import LayoutConfig, cable_plan
from repro.sim.results import ResultTable


@register(
    "E4",
    "Physical-layout ablation: length-priced cabling CAPEX",
    "ABCCC/BCCC keep the largest intra-rack cable fraction (crossbars "
    "are rack-local) and the lowest mean cable length; fat-tree pays the "
    "longest runs (agg/core rows); length-priced cost ordering therefore "
    "favours the server-centric designs even more than flat pricing.",
)
def run(quick: bool = False) -> List[ResultTable]:
    table = ResultTable(
        "E4: cabling under a common machine-room layout",
        [
            "topology",
            "servers",
            "racks",
            "cables",
            "intra_rack_frac",
            "mean_length_m",
            "max_length_m",
            "total_length_m",
            "cable_capex",
            "flat_capex",
        ],
    )
    # Quick mode shrinks racks so even the tiny instances span several
    # racks — otherwise every cable is trivially intra-rack.
    config = LayoutConfig(rack_capacity=6 if quick else 40)
    cases = (
        [AbcccSpec(3, 1, 2), BcubeSpec(3, 1), FatTreeSpec(4)]
        if quick
        else [
            AbcccSpec(4, 2, 2),
            AbcccSpec(4, 2, 3),
            BcubeSpec(4, 2),
            FatTreeSpec(8),
            TreeSpec(16, 12, oversub=3),
        ]
    )
    flat_price = 5.0  # the T2 price book's flat per-cable figure
    for spec in cases:
        net = spec.build()
        plan = cable_plan(net, config)
        table.add_row(
            topology=spec.label,
            servers=net.num_servers,
            racks=plan.racks_used,
            cables=plan.num_cables,
            intra_rack_frac=plan.intra_rack_fraction,
            mean_length_m=plan.mean_length,
            max_length_m=plan.max_length,
            total_length_m=plan.total_length,
            cable_capex=plan.total_price(config),
            flat_capex=plan.num_cables * flat_price,
        )
    table.add_note(
        "same geometry for everyone: servers fill racks in address "
        "order, switches placed at the median rack of their neighbours; "
        "lengths are Manhattan runs through the overhead tray."
    )
    return [table]
