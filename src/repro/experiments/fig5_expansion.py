"""F5 — expansion cost: the headline expandability comparison.

For each family, grow an instance one step (k -> k+1, or p -> p+2 for the
fat-tree) and account the exact component-level delta via the graph diff
of :mod:`repro.core.expansion`: purchases (servers/switches/cables) and —
the paper's point — *touched existing equipment*.  ABCCC and BCCC grow by
pure addition; BCube must open every deployed server; the fat-tree must
replace its whole fabric.
"""

from __future__ import annotations

from typing import List

from repro.core.expansion import (
    ExpansionPlan,
    plan_abccc_growth,
    plan_bccc_growth,
    plan_bcube_growth,
    plan_fattree_growth,
)
from repro.experiments.harness import register
from repro.metrics.cost import expansion_capex
from repro.sim.results import ResultTable


def _add_plan_row(table: ResultTable, family: str, plan: ExpansionPlan) -> None:
    summary = plan.summary()
    table.add_row(
        family=family,
        step=f"{plan.old_label} -> {plan.new_label}",
        new_servers=summary["new_servers"],
        new_switches=summary["new_switches"],
        new_cables=summary["new_cables"],
        upgraded_servers=summary["upgraded_servers"],
        replaced_switches=summary["replaced_switches"],
        removed_cables=summary["removed_cables"],
        pure_addition=plan.is_pure_addition,
        new_capex=expansion_capex(plan),
    )


@register(
    "F5",
    "Expansion cost per growth step (component-level accounting)",
    "ABCCC/BCCC steps are pure addition (zero upgraded/replaced/removed); "
    "BCube upgrades every existing server; fat-tree replaces every switch.",
)
def run(quick: bool = False) -> List[ResultTable]:
    table = ResultTable(
        "F5: one growth step per family (exact graph diff)",
        [
            "family",
            "step",
            "new_servers",
            "new_switches",
            "new_cables",
            "upgraded_servers",
            "replaced_switches",
            "removed_cables",
            "pure_addition",
            "new_capex",
        ],
    )
    n = 3 if quick else 4
    # Pure addition holds while the grown crossbar fits the n-port
    # crossbar switch (c_new <= n), i.e. k + 2 <= n at s = 2.
    s2_steps = (1,) if quick else (1, 2)
    s3_steps = (1,) if quick else (1, 2, 3)
    for k in s2_steps:
        _add_plan_row(table, "abccc_s2", plan_abccc_growth(n, k, 2))
        _add_plan_row(table, "bccc", plan_bccc_growth(n, k))
    for k in s3_steps:
        _add_plan_row(table, "abccc_s3", plan_abccc_growth(n, k, 3))
        _add_plan_row(table, "bcube", plan_bcube_growth(n, k))
    if not quick:
        # The boundary case: at s = 2, growing past k + 1 = n makes the
        # crossbar outgrow its switch — no longer pure addition.
        _add_plan_row(table, "abccc_s2(boundary)", plan_abccc_growth(n, n - 1, 2))
    for p in ((4,) if quick else (4, 6)):
        _add_plan_row(table, "fattree", plan_fattree_growth(p))
    if not quick:
        # Jellyfish: the other expandable design — grows one rack at a
        # time but must re-plug live fabric cables on every step.
        from repro.baselines.jellyfish import JellyfishSpec, grow_jellyfish

        jelly = JellyfishSpec(switches=20, ports=8, servers_per_switch=4, seed=3)
        _add_plan_row(table, "jellyfish", grow_jellyfish(jelly.build(), jelly, seed=3))
    table.add_note(
        "upgraded_servers = NIC additions to deployed machines (BCube's "
        "pain); replaced_switches = radix growth forces hardware swap "
        "(fat-tree, and the ABCCC boundary row where crossbars outgrow "
        "the n-port crossbar switch); removed_cables = live re-plugging "
        "(Jellyfish's per-rack splice); regular ABCCC rows only plug "
        "cables into spare ports."
    )
    return [table]
