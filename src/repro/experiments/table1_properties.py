"""T1 — structural comparison table (the paper's headline table).

Compares ABCCC against BCube, BCCC, fat-tree, DCell, FiConn and the
hypercube at comparable scale (~1000 servers) on the metrics the abstract
enumerates: network size, server/switch port counts, switch count, link
count, diameter and bisection width.

A second *validation* table rebuilds small instances of every family and
checks the analytic numbers against brute force (exhaustive BFS diameter,
exact counts) — the license to trust the closed forms at scale.
"""

from __future__ import annotations

from typing import List

from repro.baselines import (
    BcccSpec,
    BcubeSpec,
    DcellSpec,
    FatTreeSpec,
    FiconnSpec,
    HypercubeSpec,
)
from repro.core import AbcccSpec
from repro.experiments.harness import register
from repro.metrics.distance import link_hop_stats, server_hop_stats
from repro.sim.results import ResultTable
from repro.topology.validate import validate_network

#: ~1000-server configurations, the "comparable scale" of the paper.
SCALE_SPECS = [
    AbcccSpec(n=4, k=3, s=2),  # = BCCC territory: 1024 servers
    AbcccSpec(n=4, k=3, s=3),  # the new middle ground: 512 servers
    AbcccSpec(n=4, k=3, s=5),  # BCube-degenerate: 256 servers
    BcccSpec(n=4, k=3),
    BcubeSpec(n=4, k=4),
    FatTreeSpec(p=16),
    DcellSpec(n=6, k=2),
    FiconnSpec(n=10, k=2),
    HypercubeSpec(m=10),
]

#: small instances for measured-vs-analytic validation.
VALIDATION_SPECS = [
    AbcccSpec(n=3, k=2, s=2),
    AbcccSpec(n=3, k=2, s=3),
    BcccSpec(n=3, k=2),
    BcubeSpec(n=3, k=2),
    FatTreeSpec(p=4),
    DcellSpec(n=3, k=1),
    FiconnSpec(n=4, k=1),
    HypercubeSpec(m=5),
]

QUICK_VALIDATION = [AbcccSpec(n=2, k=1, s=2), BcubeSpec(n=2, k=1), FatTreeSpec(p=4)]


def _scale_table() -> ResultTable:
    table = ResultTable(
        "T1a: structural properties at comparable scale (analytic)",
        [
            "topology",
            "servers",
            "srv_ports",
            "switches",
            "sw_ports",
            "links",
            "diam_server_hops",
            "diam_link_hops",
            "bisection_links",
            "bisection_per_srv",
        ],
    )
    for spec in SCALE_SPECS:
        bisection = spec.bisection_links
        table.add_row(
            topology=spec.label,
            servers=spec.num_servers,
            srv_ports=spec.server_ports,
            switches=spec.num_switches,
            sw_ports=spec.switch_ports,
            links=spec.num_links,
            diam_server_hops=spec.diameter_server_hops,
            diam_link_hops=spec.diameter_link_hops,
            bisection_links=bisection,
            bisection_per_srv=(
                bisection / spec.num_servers if bisection is not None else None
            ),
        )
    table.add_note(
        "DCell/FiConn diameters are routing-algorithm upper bounds (2^(k+1)-1); "
        "bisection '-' entries have no closed form and are measured in F3."
    )
    return table


def _validation_table(quick: bool) -> ResultTable:
    table = ResultTable(
        "T1b: analytic vs measured on built instances",
        [
            "topology",
            "servers",
            "switches",
            "links",
            "diam_links_analytic",
            "diam_links_measured",
            "diam_srvhops_analytic",
            "diam_srvhops_measured",
            "valid",
        ],
    )
    specs = QUICK_VALIDATION if quick else VALIDATION_SPECS
    for spec in specs:
        net = spec.build()
        validate_network(net, spec.link_policy())
        counts_ok = (
            net.num_servers == spec.num_servers
            and net.num_switches == spec.num_switches
            and net.num_links == spec.num_links
        )
        link_stats = link_hop_stats(net)
        # The server-hop projection (shared switch or direct cable) is only
        # meaningful for server-centric topologies; in a fat-tree, servers
        # behind different edge switches share no switch at all.
        switch_centric = spec.link_policy().switch_switch
        server_stats = None if switch_centric else server_hop_stats(net)
        analytic_links = spec.diameter_link_hops
        analytic_server = spec.diameter_server_hops
        # Closed forms are exact for the cube family and fat-tree; DCell /
        # FiConn publish upper bounds — accept measured <= bound there.
        exact_families = {"abccc", "bccc", "bcube", "fattree", "hypercube"}
        if spec.kind in exact_families:
            diameter_ok = (
                analytic_links is None or link_stats.diameter == analytic_links
            ) and (
                server_stats is None
                or analytic_server is None
                or server_stats.diameter == analytic_server
            )
        else:
            diameter_ok = (
                server_stats is None
                or analytic_server is None
                or server_stats.diameter <= analytic_server
            )
        table.add_row(
            topology=spec.label,
            servers=net.num_servers,
            switches=net.num_switches,
            links=net.num_links,
            diam_links_analytic=analytic_links,
            diam_links_measured=link_stats.diameter,
            diam_srvhops_analytic=analytic_server,
            diam_srvhops_measured=(
                server_stats.diameter if server_stats is not None else None
            ),
            valid=counts_ok and diameter_ok,
        )
    return table


@register(
    "T1",
    "Structural comparison of ABCCC vs existing data-center topologies",
    "ABCCC interpolates between BCCC (cheap ports, longer diameter) and "
    "BCube (many ports, short diameter); fat-tree has the most switches; "
    "every analytic property matches brute force on built instances.",
)
def run(quick: bool = False) -> List[ResultTable]:
    return [_scale_table(), _validation_table(quick)]
