"""F1 — diameter vs order k, for ABCCC port counts s and BCube.

The paper's linear-diameter claim: ABCCC's diameter grows linearly in
``k`` with slope decreasing as servers get more NIC ports, collapsing to
BCube's ``k + 1`` when ``s >= k + 2``.  Analytic series (verified against
BFS in T1b/tests) plus two measured columns: exhaustive BFS where the
instance is small enough, and — now that the sweep engine is
graph-native — a sampled-source lower bound one size class further up
(``sweep_graph_distance_stats`` over the compiled server projection).
"""

from __future__ import annotations

from typing import List

from repro.baselines import BcubeSpec
from repro.core import AbcccSpec
from repro.experiments.harness import register
from repro.metrics.engine import sweep_graph_distance_stats
from repro.sim.results import ResultTable
from repro.topology.compiled import compile_server_projection

N = 4
S_VALUES = (2, 3, 4, 5)
K_RANGE = range(0, 7)
#: instances with at most this many graph nodes get an exhaustive sweep.
MEASURE_NODE_LIMIT = 800
#: ...and up to this many a sampled-source diameter lower bound (BCCC is
#: vertex-transitive, so every source realises the diameter and the
#: "lower bound" is exact in practice).
SAMPLE_NODE_LIMIT = 10_000
SAMPLE_SOURCES = 128


def _series_table(quick: bool) -> ResultTable:
    table = ResultTable(
        f"F1: server-hop diameter vs k (n={N})",
        ["k"]
        + [f"abccc_s{s}" for s in S_VALUES]
        + ["bcube", "measured_abccc_s2", "sampled_lb_abccc_s2"],
    )
    ks = list(K_RANGE)[:4] if quick else list(K_RANGE)
    for k in ks:
        row = {"k": k}
        for s in S_VALUES:
            row[f"abccc_s{s}"] = AbcccSpec(N, k, s).diameter_server_hops
        row["bcube"] = BcubeSpec(N, k).diameter_server_hops
        spec = AbcccSpec(N, k, 2)
        measured = None
        sampled = None
        nodes = spec.num_servers + spec.num_switches
        if not quick and nodes <= SAMPLE_NODE_LIMIT:
            projection = compile_server_projection(spec.build())
            if nodes <= MEASURE_NODE_LIMIT:
                measured = sweep_graph_distance_stats(projection).diameter
            else:
                sampled = sweep_graph_distance_stats(
                    projection, sample_sources=SAMPLE_SOURCES, seed=0
                ).diameter
        row["measured_abccc_s2"] = measured
        row["sampled_lb_abccc_s2"] = sampled
        table.add_row(**row)
    table.add_note(
        "abccc_s2 is BCCC (2k+2 for k>0); larger s lowers the line toward "
        "BCube's k+1; measured column is exhaustive BFS where buildable, "
        f"sampled_lb a {SAMPLE_SOURCES}-source sweep one size class up."
    )
    return table


@register(
    "F1",
    "Diameter growth with order k",
    "all series linear in k; ordering bcube <= abccc(s=5) <= abccc(s=4) "
    "<= abccc(s=3) <= abccc(s=2); measured == analytic where built.",
)
def run(quick: bool = False) -> List[ResultTable]:
    return [_series_table(quick)]
