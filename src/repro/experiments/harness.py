"""Experiment harness: registry, runner, CSV output.

Every module in :mod:`repro.experiments` defines one paper artefact
(table or figure) as an :class:`Experiment`: an id (``T1``, ``F5``…), a
title, the qualitative *expectation* the paper's abstract/claims imply,
and a ``run(quick)`` callable returning :class:`ResultTable` objects.

``quick=True`` shrinks instance sizes/samples so the same code path runs
inside pytest-benchmark targets; full runs regenerate the numbers recorded
in EXPERIMENTS.md.
"""

from __future__ import annotations

import csv
import os
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.sim.results import ResultTable

#: per-run timing log written next to the experiment CSVs; one row per
#: ``run_experiment`` call so quick-vs-full runs and perf PRs compare.
RUNTIMES_FILENAME = "runtimes.csv"


@dataclass(frozen=True)
class Experiment:
    """One reproducible table/figure of the evaluation."""

    exp_id: str
    title: str
    expectation: str  # the qualitative shape that must hold
    run: Callable[[bool], List[ResultTable]]

    def execute(self, quick: bool = False) -> List[ResultTable]:
        return self.run(quick)


_REGISTRY: Dict[str, Experiment] = {}


def register(
    exp_id: str, title: str, expectation: str
) -> Callable[[Callable[[bool], List[ResultTable]]], Callable[[bool], List[ResultTable]]]:
    """Decorator registering a ``run(quick) -> [ResultTable]`` function."""

    def decorator(fn: Callable[[bool], List[ResultTable]]):
        if exp_id in _REGISTRY:
            raise ValueError(f"experiment {exp_id!r} already registered")
        _REGISTRY[exp_id] = Experiment(exp_id, title, expectation, fn)
        return fn

    return decorator


def _load_all() -> None:
    """Import every experiment module (registration side effect)."""
    from repro.experiments import (  # noqa: F401
        ext1_state,
        ext2_provisioning,
        ext3_adaptive,
        ext4_layout,
        ext5_baselines,
        ext6_repair,
        ext7_rackfail,
        ext8_availability,
        fig1_diameter,
        fig2_size,
        fig3_bisection,
        fig4_capex,
        fig5_expansion,
        fig6_routing,
        fig7_throughput,
        fig8_faults,
        fig9_broadcast,
        fig10_packet,
        fig11_tradeoff,
        fig12_permutation,
        table1_properties,
        table2_capex,
    )


#: id-prefix ordering: paper tables, paper figures, then extensions.
_KIND_ORDER = {"T": 0, "F": 1, "E": 2}


def all_experiments() -> List[Experiment]:
    """Registered experiments in id order (T*, F*, then E*; numeric within)."""
    _load_all()

    def sort_key(exp: Experiment):
        kind = exp.exp_id[0]
        number = int(exp.exp_id[1:])
        return (_KIND_ORDER.get(kind, 9), number)

    return sorted(_REGISTRY.values(), key=sort_key)


def get_experiment(exp_id: str) -> Experiment:
    _load_all()
    try:
        return _REGISTRY[exp_id.upper()]
    except KeyError:
        known = ", ".join(e.exp_id for e in all_experiments())
        raise KeyError(f"unknown experiment {exp_id!r}; known: {known}") from None


def run_experiment(
    exp_id: str,
    quick: bool = False,
    out_dir: Optional[str] = "results",
    verbose: bool = True,
    workers: Optional[int] = None,
) -> List[ResultTable]:
    """Run one experiment; print its tables and write CSVs under out_dir.

    ``workers`` sets the sweep engine's default worker count for the
    duration of the run (see :mod:`repro.metrics.engine`); every run
    appends its wall time and effective worker count to
    ``out_dir/runtimes.csv``.
    """
    from repro.metrics import engine

    experiment = get_experiment(exp_id)
    previous = engine.set_default_workers(workers) if workers is not None else None
    started = time.perf_counter()
    try:
        tables = experiment.execute(quick=quick)
    finally:
        if previous is not None:
            engine.set_default_workers(previous)
    elapsed = time.perf_counter() - started
    effective_workers = engine.resolve_workers(workers)
    if verbose:
        print(f"### {experiment.exp_id} — {experiment.title}")
        print(f"expectation: {experiment.expectation}")
        for table in tables:
            table.print()
        print(f"[{experiment.exp_id} finished in {elapsed:.1f}s]\n")
    if out_dir:
        for i, table in enumerate(tables):
            suffix = "" if len(tables) == 1 else f"_{i}"
            name = f"{experiment.exp_id.lower()}{suffix}.csv"
            table.to_csv(os.path.join(out_dir, name))
        _append_runtime(out_dir, experiment.exp_id, quick, effective_workers, elapsed)
    return tables


def _append_runtime(
    out_dir: str, exp_id: str, quick: bool, workers: int, elapsed: float
) -> str:
    """Append one timing row to ``out_dir/runtimes.csv`` (header on create)."""
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, RUNTIMES_FILENAME)
    write_header = not os.path.exists(path)
    with open(path, "a", newline="") as handle:
        writer = csv.writer(handle)
        if write_header:
            writer.writerow(["experiment", "quick", "workers", "wall_time_s"])
        writer.writerow([exp_id, int(quick), workers, f"{elapsed:.3f}"])
    return path


def run_all(
    quick: bool = False,
    out_dir: Optional[str] = "results",
    verbose: bool = True,
    workers: Optional[int] = None,
) -> Dict[str, List[ResultTable]]:
    """Run the full evaluation suite."""
    return {
        exp.exp_id: run_experiment(
            exp.exp_id, quick=quick, out_dir=out_dir, verbose=verbose, workers=workers
        )
        for exp in all_experiments()
    }
