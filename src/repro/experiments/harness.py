"""Experiment harness: registry, runner, CSV output.

Every module in :mod:`repro.experiments` defines one paper artefact
(table or figure) as an :class:`Experiment`: an id (``T1``, ``F5``…), a
title, the qualitative *expectation* the paper's abstract/claims imply,
and a ``run(quick)`` callable returning :class:`ResultTable` objects.

``quick=True`` shrinks instance sizes/samples so the same code path runs
inside pytest-benchmark targets; full runs regenerate the numbers recorded
in EXPERIMENTS.md.

Robustness: when an output directory is set, each run opens a trial
journal at ``<out_dir>/<exp_id>.journal.jsonl`` and installs it as the
active journal for the fault sweeps (:mod:`repro.faults`) — every
completed failure trial is flushed to disk, so a killed run (crash,
SIGKILL, :class:`ExperimentTimeout`) can be re-run with ``resume=True``
and only the missing trials are recomputed.  The journal is deleted on
success; one on disk always means an interrupted run.  ``timeout``
bounds an experiment's wall clock via ``SIGALRM`` (POSIX main thread
only; a no-op elsewhere).

Observability: every experiment runs under a :mod:`repro.obs` tracer —
metrics-only by default (phase totals and peak RSS land in
``runtimes.csv``), streaming a JSONL trace when ``trace=`` / ``--trace``
/ ``REPRO_TRACE`` opt in (summarise with ``repro obs report``).
Progress messages go to stderr through the ``repro`` logger, with a
periodic heartbeat on long runs; result tables stay on stdout.
"""

from __future__ import annotations

import csv
import os
import signal
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Union

from repro import obs
from repro.sim.results import ResultTable

#: per-run timing log written next to the experiment CSVs; one row per
#: (experiment, quick, workers) key — re-runs replace their row, so the
#: file is a table of current timings, not an append-only history.
RUNTIMES_FILENAME = "runtimes.csv"

#: runtimes.csv schema: identity key, wall clock, per-phase attribution
#: (tracer span totals, parent process) and the process peak RSS.
RUNTIMES_COLUMNS = (
    "experiment",
    "quick",
    "workers",
    "wall_time_s",
    "compile_s",
    "sweep_s",
    "handoff_s",
    "plan_s",
    "mask_s",
    "trials_s",
    "journal_s",
    "peak_rss_mb",
)

#: span name feeding each phase column of runtimes.csv.
_PHASE_COLUMNS = {
    "compile_s": "topology.compile",
    "sweep_s": "engine.sweep",
    "handoff_s": "engine.handoff",
    "plan_s": "faults.plan",
    "mask_s": "faults.mask",
    "trials_s": "faults.trials",
    "journal_s": "faults.journal",
}


@dataclass(frozen=True)
class Experiment:
    """One reproducible table/figure of the evaluation."""

    exp_id: str
    title: str
    expectation: str  # the qualitative shape that must hold
    run: Callable[[bool], List[ResultTable]]

    def execute(self, quick: bool = False) -> List[ResultTable]:
        return self.run(quick)


_REGISTRY: Dict[str, Experiment] = {}


def register(
    exp_id: str, title: str, expectation: str
) -> Callable[[Callable[[bool], List[ResultTable]]], Callable[[bool], List[ResultTable]]]:
    """Decorator registering a ``run(quick) -> [ResultTable]`` function."""

    def decorator(fn: Callable[[bool], List[ResultTable]]):
        if exp_id in _REGISTRY:
            raise ValueError(f"experiment {exp_id!r} already registered")
        _REGISTRY[exp_id] = Experiment(exp_id, title, expectation, fn)
        return fn

    return decorator


def _load_all() -> None:
    """Import every experiment module (registration side effect)."""
    from repro.experiments import (  # noqa: F401
        ext1_state,
        ext2_provisioning,
        ext3_adaptive,
        ext4_layout,
        ext5_baselines,
        ext6_repair,
        ext7_rackfail,
        ext8_availability,
        fig1_diameter,
        fig2_size,
        fig3_bisection,
        fig4_capex,
        fig5_expansion,
        fig6_routing,
        fig7_throughput,
        fig8_faults,
        fig9_broadcast,
        fig10_packet,
        fig11_tradeoff,
        fig12_permutation,
        table1_properties,
        table2_capex,
    )


#: id-prefix ordering: paper tables, paper figures, then extensions.
_KIND_ORDER = {"T": 0, "F": 1, "E": 2}


def all_experiments() -> List[Experiment]:
    """Registered experiments in id order (T*, F*, then E*; numeric within)."""
    _load_all()

    def sort_key(exp: Experiment):
        kind = exp.exp_id[0]
        number = int(exp.exp_id[1:])
        return (_KIND_ORDER.get(kind, 9), number)

    return sorted(_REGISTRY.values(), key=sort_key)


def get_experiment(exp_id: str) -> Experiment:
    _load_all()
    try:
        return _REGISTRY[exp_id.upper()]
    except KeyError:
        known = ", ".join(e.exp_id for e in all_experiments())
        raise KeyError(f"unknown experiment {exp_id!r}; known: {known}") from None


class ExperimentTimeout(RuntimeError):
    """An experiment exceeded its wall-clock timeout."""


@contextmanager
def _wall_clock_limit(seconds: Optional[float], exp_id: str) -> Iterator[None]:
    """Raise :class:`ExperimentTimeout` after ``seconds`` of wall clock.

    Implemented with ``SIGALRM``/``setitimer``, so it only arms on a
    POSIX main thread; anywhere else (Windows, worker threads) it is a
    no-op rather than a crash.  The previous handler and any pending
    itimer are restored on exit.
    """
    usable = (
        seconds is not None
        and seconds > 0
        and hasattr(signal, "setitimer")
        and threading.current_thread() is threading.main_thread()
    )
    if not usable:
        yield
        return

    def _on_alarm(signum, frame):
        raise ExperimentTimeout(
            f"experiment {exp_id} exceeded its {seconds:g}s wall-clock timeout"
        )

    previous_handler = signal.signal(signal.SIGALRM, _on_alarm)
    previous_timer = signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, *previous_timer)
        signal.signal(signal.SIGALRM, previous_handler)


def journal_path(out_dir: str, exp_id: str) -> str:
    """Where ``run_experiment`` journals an experiment's fault trials."""
    return os.path.join(out_dir, f"{exp_id.lower()}.journal.jsonl")


def trace_path(out_dir: Optional[str], exp_id: str) -> str:
    """Default per-run trace file for an experiment."""
    return os.path.join(out_dir or ".", f"{exp_id.lower()}.trace.jsonl")


def _resolve_trace(
    trace: Union[bool, str, None], out_dir: Optional[str], exp_id: str
) -> Optional[str]:
    """Turn the ``--trace`` argument / ``REPRO_TRACE`` env into a path."""
    default = trace_path(out_dir, exp_id)
    if trace is None:
        return obs.trace_path_from_env(default)
    if trace is True:
        return default
    if not trace:
        return None
    return str(trace)


def run_experiment(
    exp_id: str,
    quick: bool = False,
    out_dir: Optional[str] = "results",
    verbose: bool = True,
    workers: Optional[int] = None,
    resume: bool = False,
    timeout: Optional[float] = None,
    trace: Union[bool, str, None] = None,
    profile: Optional[bool] = None,
) -> List[ResultTable]:
    """Run one experiment; print its tables and write CSVs under out_dir.

    ``workers`` sets the sweep engine's default worker count for the
    duration of the run (see :mod:`repro.metrics.engine`); every run
    upserts its wall time, per-phase breakdown and peak RSS into
    ``out_dir/runtimes.csv`` (keyed by experiment/quick/workers).

    ``resume=True`` replays the trial journal a previous interrupted run
    left in ``out_dir`` (completed fault-sweep trials are not recomputed);
    without it, a stale journal is discarded and the run starts fresh.
    ``timeout`` (seconds) bounds the experiment's wall clock and raises
    :class:`ExperimentTimeout` — the journal survives, so the run is
    resumable.

    Observability: result tables go to **stdout**; progress (start,
    heartbeat, resume notices, finish) goes to **stderr** through the
    :mod:`repro.obs` logger.  ``trace`` enables the JSONL span trace
    (``True`` = default path ``<out_dir>/<exp_id>.trace.jsonl``; a
    string = explicit path; ``None`` consults ``REPRO_TRACE``), and
    ``profile`` the cProfile hook (``None`` consults ``REPRO_PROFILE``).
    """
    from repro.faults.journal import TrialJournal, set_active_journal
    from repro.metrics import engine

    experiment = get_experiment(exp_id)
    logger = obs.get_logger("repro.harness")
    previous = engine.set_default_workers(workers) if workers is not None else None
    journal = None
    previous_journal = None
    if out_dir:
        os.makedirs(out_dir, exist_ok=True)
        path = journal_path(out_dir, experiment.exp_id)
        if not resume and os.path.exists(path):
            os.unlink(path)
        journal = TrialJournal(path)
        previous_journal = set_active_journal(journal)
        if resume and verbose and len(journal):
            logger.info(
                "%s: resuming — %d journaled trials will be replayed",
                experiment.exp_id,
                len(journal),
            )

    effective_workers = engine.resolve_workers(workers)
    tracer = obs.Tracer(
        path=_resolve_trace(trace, out_dir, experiment.exp_id),
        run_tags={
            "experiment": experiment.exp_id,
            "quick": int(quick),
            "workers": effective_workers,
        },
    )
    previous_tracer = obs.set_tracer(tracer)
    started = time.perf_counter()

    def _beat() -> None:
        counters = tracer.counters()
        trials = int(
            counters.get("faults.trials", 0)
            + counters.get("faults.trials_replayed", 0)
        )
        logger.info(
            "%s running — %.0fs elapsed, %d fault trials",
            experiment.exp_id,
            time.perf_counter() - started,
            trials,
        )

    heartbeat = obs.Heartbeat(obs.heartbeat_interval() if verbose else 0.0, _beat)
    try:
        with tracer.span(
            "experiment",
            exp=experiment.exp_id,
            quick=int(quick),
            workers=effective_workers,
        ):
            with _wall_clock_limit(timeout, experiment.exp_id):
                with obs.maybe_profile(
                    obs.profile_enabled(profile), out_dir, experiment.exp_id
                ):
                    tables = experiment.execute(quick=quick)
    except BaseException:
        # Keep the journal on disk: completed trials are not lost and
        # the run is resumable with resume=True.  The tracer is closed
        # (shards merged) so a killed run's trace is still reportable.
        if journal is not None:
            journal.close()
        tracer.close()
        raise
    finally:
        heartbeat.stop()
        obs.set_tracer(previous_tracer)
        if journal is not None:
            set_active_journal(previous_journal)
        if previous is not None:
            engine.set_default_workers(previous)
    elapsed = time.perf_counter() - started
    if verbose:
        print(f"### {experiment.exp_id} — {experiment.title}")
        print(f"expectation: {experiment.expectation}")
        for table in tables:
            table.print()
        logger.info("%s finished in %.1fs", experiment.exp_id, elapsed)
    if out_dir:
        for i, table in enumerate(tables):
            suffix = "" if len(tables) == 1 else f"_{i}"
            name = f"{experiment.exp_id.lower()}{suffix}.csv"
            table.to_csv(os.path.join(out_dir, name))
        _append_runtime(
            out_dir,
            experiment.exp_id,
            quick,
            effective_workers,
            elapsed,
            phases=tracer.phase_seconds(),
            peak_rss_mb=obs.peak_rss_mb(),
        )
    tracer.close()
    if tracer.path and verbose:
        logger.info("%s trace written to %s", experiment.exp_id, tracer.path)
    if journal is not None:
        journal.delete()
    return tables


def _append_runtime(
    out_dir: str,
    exp_id: str,
    quick: bool,
    workers: int,
    elapsed: float,
    phases: Optional[Dict[str, float]] = None,
    peak_rss_mb: Optional[float] = None,
) -> str:
    """Upsert one timing row in ``out_dir/runtimes.csv``.

    Rows are keyed by ``(experiment, quick, workers)``: re-running an
    experiment replaces its row instead of appending a duplicate, so
    the file stays a current-timings table.  Pre-existing files with
    the old 4-column header are upgraded in place (missing phase cells
    become empty).  Phase columns hold the parent-process span totals
    from the run's tracer; in parallel runs the mask/trial work happens
    in workers, so those cells attribute the parent's share only.
    """
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, RUNTIMES_FILENAME)
    phases = phases or {}
    row = {
        "experiment": exp_id,
        "quick": str(int(quick)),
        "workers": str(workers),
        "wall_time_s": f"{elapsed:.3f}",
        "peak_rss_mb": "" if peak_rss_mb is None else f"{peak_rss_mb:.1f}",
    }
    for column, span_name in _PHASE_COLUMNS.items():
        row[column] = f"{phases.get(span_name, 0.0):.3f}"

    rows: List[Dict[str, str]] = []
    if os.path.exists(path):
        with open(path, newline="") as handle:
            reader = csv.reader(handle)
            try:
                header = next(reader)
            except StopIteration:
                header = []
            for old in reader:
                if not old:
                    continue
                entry = {
                    name: (old[i] if i < len(old) else "")
                    for i, name in enumerate(header)
                }
                rows.append(
                    {name: entry.get(name, "") for name in RUNTIMES_COLUMNS}
                )

    key = (row["experiment"], row["quick"], row["workers"])
    for i, existing in enumerate(rows):
        if (existing["experiment"], existing["quick"], existing["workers"]) == key:
            rows[i] = row
            break
    else:
        rows.append(row)

    with open(path, "w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=list(RUNTIMES_COLUMNS))
        writer.writeheader()
        writer.writerows(rows)
    return path


def run_all(
    quick: bool = False,
    out_dir: Optional[str] = "results",
    verbose: bool = True,
    workers: Optional[int] = None,
    resume: bool = False,
    timeout: Optional[float] = None,
    trace: Union[bool, str, None] = None,
    profile: Optional[bool] = None,
) -> Dict[str, List[ResultTable]]:
    """Run the full evaluation suite (``timeout`` applies per experiment).

    ``trace=True`` writes one trace per experiment under ``out_dir``; a
    string is treated as a *directory* for the per-experiment traces.
    """
    results: Dict[str, List[ResultTable]] = {}
    for exp in all_experiments():
        exp_trace: Union[bool, str, None] = trace
        if isinstance(trace, str):
            exp_trace = os.path.join(trace, f"{exp.exp_id.lower()}.trace.jsonl")
        results[exp.exp_id] = run_experiment(
            exp.exp_id,
            quick=quick,
            out_dir=out_dir,
            verbose=verbose,
            workers=workers,
            resume=resume,
            timeout=timeout,
            trace=exp_trace,
            profile=profile,
        )
    return results
