"""Experiment harness: registry, runner, CSV output.

Every module in :mod:`repro.experiments` defines one paper artefact
(table or figure) as an :class:`Experiment`: an id (``T1``, ``F5``…), a
title, the qualitative *expectation* the paper's abstract/claims imply,
and a ``run(quick)`` callable returning :class:`ResultTable` objects.

``quick=True`` shrinks instance sizes/samples so the same code path runs
inside pytest-benchmark targets; full runs regenerate the numbers recorded
in EXPERIMENTS.md.

Robustness: when an output directory is set, each run opens a trial
journal at ``<out_dir>/<exp_id>.journal.jsonl`` and installs it as the
active journal for the fault sweeps (:mod:`repro.faults`) — every
completed failure trial is flushed to disk, so a killed run (crash,
SIGKILL, :class:`ExperimentTimeout`) can be re-run with ``resume=True``
and only the missing trials are recomputed.  The journal is deleted on
success; one on disk always means an interrupted run.  ``timeout``
bounds an experiment's wall clock via ``SIGALRM`` (POSIX main thread
only; a no-op elsewhere).
"""

from __future__ import annotations

import csv
import os
import signal
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Sequence

from repro.sim.results import ResultTable

#: per-run timing log written next to the experiment CSVs; one row per
#: ``run_experiment`` call so quick-vs-full runs and perf PRs compare.
RUNTIMES_FILENAME = "runtimes.csv"


@dataclass(frozen=True)
class Experiment:
    """One reproducible table/figure of the evaluation."""

    exp_id: str
    title: str
    expectation: str  # the qualitative shape that must hold
    run: Callable[[bool], List[ResultTable]]

    def execute(self, quick: bool = False) -> List[ResultTable]:
        return self.run(quick)


_REGISTRY: Dict[str, Experiment] = {}


def register(
    exp_id: str, title: str, expectation: str
) -> Callable[[Callable[[bool], List[ResultTable]]], Callable[[bool], List[ResultTable]]]:
    """Decorator registering a ``run(quick) -> [ResultTable]`` function."""

    def decorator(fn: Callable[[bool], List[ResultTable]]):
        if exp_id in _REGISTRY:
            raise ValueError(f"experiment {exp_id!r} already registered")
        _REGISTRY[exp_id] = Experiment(exp_id, title, expectation, fn)
        return fn

    return decorator


def _load_all() -> None:
    """Import every experiment module (registration side effect)."""
    from repro.experiments import (  # noqa: F401
        ext1_state,
        ext2_provisioning,
        ext3_adaptive,
        ext4_layout,
        ext5_baselines,
        ext6_repair,
        ext7_rackfail,
        ext8_availability,
        fig1_diameter,
        fig2_size,
        fig3_bisection,
        fig4_capex,
        fig5_expansion,
        fig6_routing,
        fig7_throughput,
        fig8_faults,
        fig9_broadcast,
        fig10_packet,
        fig11_tradeoff,
        fig12_permutation,
        table1_properties,
        table2_capex,
    )


#: id-prefix ordering: paper tables, paper figures, then extensions.
_KIND_ORDER = {"T": 0, "F": 1, "E": 2}


def all_experiments() -> List[Experiment]:
    """Registered experiments in id order (T*, F*, then E*; numeric within)."""
    _load_all()

    def sort_key(exp: Experiment):
        kind = exp.exp_id[0]
        number = int(exp.exp_id[1:])
        return (_KIND_ORDER.get(kind, 9), number)

    return sorted(_REGISTRY.values(), key=sort_key)


def get_experiment(exp_id: str) -> Experiment:
    _load_all()
    try:
        return _REGISTRY[exp_id.upper()]
    except KeyError:
        known = ", ".join(e.exp_id for e in all_experiments())
        raise KeyError(f"unknown experiment {exp_id!r}; known: {known}") from None


class ExperimentTimeout(RuntimeError):
    """An experiment exceeded its wall-clock timeout."""


@contextmanager
def _wall_clock_limit(seconds: Optional[float], exp_id: str) -> Iterator[None]:
    """Raise :class:`ExperimentTimeout` after ``seconds`` of wall clock.

    Implemented with ``SIGALRM``/``setitimer``, so it only arms on a
    POSIX main thread; anywhere else (Windows, worker threads) it is a
    no-op rather than a crash.  The previous handler and any pending
    itimer are restored on exit.
    """
    usable = (
        seconds is not None
        and seconds > 0
        and hasattr(signal, "setitimer")
        and threading.current_thread() is threading.main_thread()
    )
    if not usable:
        yield
        return

    def _on_alarm(signum, frame):
        raise ExperimentTimeout(
            f"experiment {exp_id} exceeded its {seconds:g}s wall-clock timeout"
        )

    previous_handler = signal.signal(signal.SIGALRM, _on_alarm)
    previous_timer = signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, *previous_timer)
        signal.signal(signal.SIGALRM, previous_handler)


def journal_path(out_dir: str, exp_id: str) -> str:
    """Where ``run_experiment`` journals an experiment's fault trials."""
    return os.path.join(out_dir, f"{exp_id.lower()}.journal.jsonl")


def run_experiment(
    exp_id: str,
    quick: bool = False,
    out_dir: Optional[str] = "results",
    verbose: bool = True,
    workers: Optional[int] = None,
    resume: bool = False,
    timeout: Optional[float] = None,
) -> List[ResultTable]:
    """Run one experiment; print its tables and write CSVs under out_dir.

    ``workers`` sets the sweep engine's default worker count for the
    duration of the run (see :mod:`repro.metrics.engine`); every run
    appends its wall time and effective worker count to
    ``out_dir/runtimes.csv``.

    ``resume=True`` replays the trial journal a previous interrupted run
    left in ``out_dir`` (completed fault-sweep trials are not recomputed);
    without it, a stale journal is discarded and the run starts fresh.
    ``timeout`` (seconds) bounds the experiment's wall clock and raises
    :class:`ExperimentTimeout` — the journal survives, so the run is
    resumable.
    """
    from repro.faults.journal import TrialJournal, set_active_journal
    from repro.metrics import engine

    experiment = get_experiment(exp_id)
    previous = engine.set_default_workers(workers) if workers is not None else None
    journal = None
    previous_journal = None
    if out_dir:
        os.makedirs(out_dir, exist_ok=True)
        path = journal_path(out_dir, experiment.exp_id)
        if not resume and os.path.exists(path):
            os.unlink(path)
        journal = TrialJournal(path)
        previous_journal = set_active_journal(journal)
        if resume and verbose and len(journal):
            print(
                f"[{experiment.exp_id}: resuming — {len(journal)} journaled "
                f"trials will be replayed]"
            )
    started = time.perf_counter()
    try:
        with _wall_clock_limit(timeout, experiment.exp_id):
            tables = experiment.execute(quick=quick)
    except BaseException:
        # Keep the journal on disk: completed trials are not lost and
        # the run is resumable with resume=True.
        if journal is not None:
            journal.close()
        raise
    finally:
        if journal is not None:
            set_active_journal(previous_journal)
        if previous is not None:
            engine.set_default_workers(previous)
    elapsed = time.perf_counter() - started
    effective_workers = engine.resolve_workers(workers)
    if verbose:
        print(f"### {experiment.exp_id} — {experiment.title}")
        print(f"expectation: {experiment.expectation}")
        for table in tables:
            table.print()
        print(f"[{experiment.exp_id} finished in {elapsed:.1f}s]\n")
    if out_dir:
        for i, table in enumerate(tables):
            suffix = "" if len(tables) == 1 else f"_{i}"
            name = f"{experiment.exp_id.lower()}{suffix}.csv"
            table.to_csv(os.path.join(out_dir, name))
        _append_runtime(out_dir, experiment.exp_id, quick, effective_workers, elapsed)
    if journal is not None:
        journal.delete()
    return tables


def _append_runtime(
    out_dir: str, exp_id: str, quick: bool, workers: int, elapsed: float
) -> str:
    """Append one timing row to ``out_dir/runtimes.csv`` (header on create)."""
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, RUNTIMES_FILENAME)
    write_header = not os.path.exists(path)
    with open(path, "a", newline="") as handle:
        writer = csv.writer(handle)
        if write_header:
            writer.writerow(["experiment", "quick", "workers", "wall_time_s"])
        writer.writerow([exp_id, int(quick), workers, f"{elapsed:.3f}"])
    return path


def run_all(
    quick: bool = False,
    out_dir: Optional[str] = "results",
    verbose: bool = True,
    workers: Optional[int] = None,
    resume: bool = False,
    timeout: Optional[float] = None,
) -> Dict[str, List[ResultTable]]:
    """Run the full evaluation suite (``timeout`` applies per experiment)."""
    return {
        exp.exp_id: run_experiment(
            exp.exp_id,
            quick=quick,
            out_dir=out_dir,
            verbose=verbose,
            workers=workers,
            resume=resume,
            timeout=timeout,
        )
        for exp in all_experiments()
    }
