"""E5 (extension) — the wider baseline field: torus, tree, Jellyfish.

T1/T2 compare against the baselines the paper names; this extension adds
the other designs every DCN survey of the era includes — the switchless
3D torus (CamCube), the conventional oversubscribed tree, and Jellyfish
(the random-graph answer to the same expandability question ABCCC
attacks) — and runs the same structural/throughput comparison so ABCCC's
position is visible in the full field.
"""

from __future__ import annotations

from typing import List

from repro.baselines import JellyfishSpec, Torus3dSpec, TreeSpec
from repro.core import AbcccSpec
from repro.experiments.harness import register

from repro.metrics.cost import capex
from repro.sim.flow import max_min_allocation, route_all
from repro.sim.results import ResultTable
from repro.sim.traffic import permutation_traffic


def _specs(quick: bool):
    if quick:
        return [AbcccSpec(3, 1, 2), Torus3dSpec(3, 3, 2), TreeSpec(8, 3, oversub=3)]
    return [
        AbcccSpec(4, 2, 2),
        AbcccSpec(4, 2, 3),
        Torus3dSpec(6, 6, 5),
        TreeSpec(16, 15, oversub=3),
        JellyfishSpec(switches=30, ports=10, servers_per_switch=6, seed=1),
    ]


@register(
    "E5",
    "Extended baseline field: torus (CamCube), oversubscribed tree, Jellyfish",
    "torus: zero switch cost but 6 NICs/server and cube-root diameter "
    "growth; tree: cheapest switching but bisection collapses with "
    "oversubscription; Jellyfish: strong throughput at low cost but no "
    "structure (measured-only properties, table routing); ABCCC sits "
    "between on every axis — throughput per server: abccc > tree, "
    "diameter: abccc < torus at comparable sizes.",
)
def run(quick: bool = False) -> List[ResultTable]:
    structural = ResultTable(
        "E5a: structural/cost comparison incl. torus and tree",
        [
            "topology",
            "servers",
            "srv_ports",
            "switches",
            "diam_link_hops",
            "bisection_links",
            "capex_per_server",
        ],
    )
    throughput = ResultTable(
        "E5b: permutation-traffic throughput incl. torus and tree",
        ["topology", "servers", "agg_per_server", "min_rate", "jain"],
    )
    for spec in _specs(quick):
        structural.add_row(
            topology=spec.label,
            servers=spec.num_servers,
            srv_ports=spec.server_ports,
            switches=spec.num_switches,
            diam_link_hops=spec.diameter_link_hops,
            bisection_links=spec.bisection_links,
            capex_per_server=capex(spec).per_server,
        )
        net = spec.build()
        flows = permutation_traffic(net.servers, seed=61)
        routes = route_all(net, flows, spec.route)
        allocation = max_min_allocation(net, flows, routes)
        throughput.add_row(
            topology=spec.label,
            servers=net.num_servers,
            agg_per_server=allocation.aggregate_throughput / net.num_servers,
            min_rate=allocation.min_rate,
            jain=allocation.jain_fairness,
        )
    structural.add_note(
        "torus diameter is sum(dims)/2 direct hops; tree bisection is "
        "capped by ToR uplinks (racks * uplinks / 2)."
    )
    return [structural, throughput]
