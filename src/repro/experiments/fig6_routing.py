"""F6 — one-to-one routing quality vs shortest paths.

Samples server pairs, routes them with the ABCCC digit-correction
algorithm under each permutation strategy, and compares against exhaustive
BFS: mean/p99 link-hop stretch and the fraction of routes that are exactly
shortest.  The paper's "efficient routing algorithm" claim translates to
stretch ~1 for the locality strategy.
"""

from __future__ import annotations

import random
import statistics
from typing import List

from repro.core import AbcccSpec, ServerAddress, abccc_route
from repro.experiments.harness import register
from repro.metrics.engine import pairwise_distances
from repro.sim.results import ResultTable
from repro.topology.compiled import compile_graph

STRATEGIES = ("identity", "random", "locality")


def _routing_table(quick: bool) -> ResultTable:
    table = ResultTable(
        "F6: digit-correction route length vs BFS shortest path",
        [
            "instance",
            "strategy",
            "pairs",
            "mean_stretch",
            "p99_stretch",
            "shortest_frac",
            "mean_links_routed",
            "mean_links_bfs",
        ],
    )
    cases = (
        [AbcccSpec(3, 1, 2)]
        if quick
        else [AbcccSpec(4, 2, 2), AbcccSpec(4, 2, 3), AbcccSpec(4, 3, 2), AbcccSpec(3, 2, 2)]
    )
    pair_count = 60 if quick else 400
    for spec in cases:
        net = spec.build()
        rng = random.Random(42)
        servers = net.servers
        pairs = [tuple(rng.sample(servers, 2)) for _ in range(pair_count)]
        # Batched block BFS on the compiled graph: one kernel call covers
        # every distinct source, shared across strategies.
        graph = compile_graph(net)
        index = graph.index
        baselines = pairwise_distances(
            graph, [(index[src], index[dst]) for src, dst in pairs]
        )
        for strategy in STRATEGIES:
            stretches = []
            routed_lengths = []
            bfs_lengths = []
            exact = 0
            for i, (src, dst) in enumerate(pairs):
                route = abccc_route(
                    spec.abccc,
                    ServerAddress.parse(src),
                    ServerAddress.parse(dst),
                    strategy=strategy,
                    seed=i,
                )
                route.validate(net)
                base = baselines[i]
                stretches.append(route.link_hops / base)
                routed_lengths.append(route.link_hops)
                bfs_lengths.append(base)
                if route.link_hops == base:
                    exact += 1
            ordered = sorted(stretches)
            table.add_row(
                instance=spec.label,
                strategy=strategy,
                pairs=len(pairs),
                mean_stretch=statistics.fmean(stretches),
                p99_stretch=ordered[min(len(ordered) - 1, int(0.99 * len(ordered)))],
                shortest_frac=exact / len(pairs),
                mean_links_routed=statistics.fmean(routed_lengths),
                mean_links_bfs=statistics.fmean(bfs_lengths),
            )
    table.add_note(
        "locality is shortest for (near) all pairs; identity/random pay "
        "extra intra-crossbar transfers when consecutive levels belong to "
        "different owner servers."
    )
    return table


@register(
    "F6",
    "Routing-algorithm path quality by permutation strategy",
    "locality stretch == 1.0; identity/random stretch grows with c "
    "(worst on s=2 instances), never exceeding the analytic bound.",
)
def run(quick: bool = False) -> List[ResultTable]:
    return [_routing_table(quick)]
