"""E3 (ablation) — adaptive source routing over the parallel paths.

BCube's source routing picks the least-congested of a flow's parallel
paths; ABCCC's rotation family supports the same policy.  This ablation
compares three placement policies on identical workloads:

* ``fixed``    — every flow takes its locality route (oblivious);
* ``hashed``   — flow-hash pick among the rotation paths (oblivious,
  ECMP-style spreading);
* ``adaptive`` — greedy online least-congested selection.

Reported: max link load, aggregate bottleneck throughput, max-min
fairness, and the fluid shuffle completion time — the end-to-end number
an application owner feels.
"""

from __future__ import annotations

from typing import List

from repro.core import AbcccSpec
from repro.core.source_routing import PLACEMENT_POLICIES
from repro.experiments.harness import register
from repro.metrics.bottleneck import aggregate_bottleneck_throughput, load_stats
from repro.sim.fct import simulate_fct
from repro.sim.flow import max_min_allocation
from repro.sim.results import ResultTable
from repro.sim.traffic import permutation_traffic, shuffle_traffic


@register(
    "E3",
    "Adaptive vs oblivious source routing on the parallel-path family",
    "adaptive placement lowers the max link load and shortens shuffle "
    "completion vs the oblivious policies; VLB pays ~2x path length "
    "under benign traffic (its worst-case insurance premium) and ranks "
    "last here; all policies produce valid routes.",
)
def run(quick: bool = False) -> List[ResultTable]:
    table = ResultTable(
        "E3: placement policy vs congestion and completion time",
        [
            "instance",
            "workload",
            "policy",
            "flows",
            "max_link_load",
            "abt_per_server",
            "min_rate",
            "shuffle_time",
        ],
    )
    cases = [AbcccSpec(3, 2, 2)] if quick else [AbcccSpec(4, 2, 2), AbcccSpec(4, 3, 2)]
    for spec in cases:
        net = spec.build()
        params = spec.abccc
        workloads = [
            ("permutation", permutation_traffic(net.servers, seed=31)),
            (
                "shuffle",
                shuffle_traffic(
                    net.servers,
                    num_mappers=min(12, net.num_servers // 4),
                    num_reducers=min(8, net.num_servers // 4),
                    seed=31,
                ),
            ),
        ]
        for workload_name, flows in workloads:
            for policy_name, place in PLACEMENT_POLICIES.items():
                routes = place(params, net, flows)
                for route in routes.values():
                    route.validate(net)
                stats = load_stats(net, routes.values())
                allocation = max_min_allocation(net, flows, routes)
                # The fluid FCT run re-solves rates at every completion —
                # bound it to the workloads where it is affordable.
                fct = simulate_fct(net, flows, routes) if len(flows) <= 512 else None
                table.add_row(
                    instance=spec.label,
                    workload=workload_name,
                    policy=policy_name,
                    flows=len(flows),
                    max_link_load=stats.max_load,
                    abt_per_server=aggregate_bottleneck_throughput(
                        net, routes.values()
                    )
                    / net.num_servers,
                    min_rate=allocation.min_rate,
                    shuffle_time=fct.makespan if fct is not None else None,
                )
    table.add_note(
        "shuffle_time = fluid makespan (all flows size 1.0, simultaneous "
        "start, rates re-solved at each completion)."
    )
    return [table]
