"""The evaluation suite: one module per table/figure (see DESIGN.md §5).

Usage::

    from repro.experiments import run_experiment, run_all, all_experiments

    run_experiment("T1")           # print + write results/t1*.csv
    run_all(quick=True)            # fast pass over everything
"""

from repro.experiments.harness import (
    Experiment,
    ExperimentTimeout,
    all_experiments,
    get_experiment,
    journal_path,
    run_all,
    run_experiment,
)

__all__ = [
    "Experiment",
    "ExperimentTimeout",
    "all_experiments",
    "get_experiment",
    "journal_path",
    "run_all",
    "run_experiment",
]
