"""F10 — packet-level validation of the flow-level conclusions.

Runs the discrete-event packet simulator under permutation traffic at a
sweep of offered loads and reports latency (mean/p99), delivery ratio and
throughput per topology.  The point is corroboration: the latency/loss
*ordering* between topologies at equal offered load should match F7's
flow-level throughput ordering, and latency should track each topology's
mean path length at low load.
"""

from __future__ import annotations

from typing import List

from repro.baselines import BcccSpec, BcubeSpec, FatTreeSpec
from repro.core import AbcccSpec
from repro.experiments.harness import register
from repro.routing.ecmp import EcmpRouter
from repro.sim.flow import route_all
from repro.sim.packet import PacketSimConfig, PacketSimulator
from repro.sim.results import ResultTable
from repro.traffic.matrix import generate_matrix


def _specs(quick: bool):
    if quick:
        return [AbcccSpec(3, 1, 2), BcubeSpec(3, 1)]
    return [AbcccSpec(4, 2, 2), AbcccSpec(4, 2, 3), BcccSpec(4, 2), BcubeSpec(4, 2), FatTreeSpec(8)]


@register(
    "F10",
    "Packet-level latency/loss vs offered load (permutation traffic)",
    "low-load latency ranks by mean path length (bcube < abccc_s3 < "
    "abccc_s2); as load rises, topologies saturate in the same order as "
    "their F7 per-server throughput; delivery ratio degrades last on "
    "bcube/fat-tree.",
)
def run(quick: bool = False) -> List[ResultTable]:
    table = ResultTable(
        "F10: packet simulation under permutation traffic",
        [
            "topology",
            "mean_interarrival",
            "offered",
            "delivered",
            "delivery_ratio",
            "mean_latency",
            "p99_latency",
            "throughput",
        ],
    )
    loads = (4.0,) if quick else (8.0, 4.0, 2.0, 1.0)
    packets = 10 if quick else 30
    config = PacketSimConfig(queue_capacity=16, propagation_delay=0.05)
    for spec in _specs(quick):
        net = spec.build()
        router = EcmpRouter(net).route if spec.kind == "fattree" else spec.route
        # Ordinal permutation matrix: equal-sized topologies get the
        # bit-identical workload F7 allocates at the flow level.
        flows = generate_matrix("permutation", net.num_servers, seed=21).flows(
            net.servers
        )
        routes = route_all(net, flows, router)
        for mean_gap in loads:
            sim = PacketSimulator(net, config)
            result = sim.run(
                flows,
                routes,
                packets_per_flow=packets,
                mean_interarrival=mean_gap,
                seed=33,
            )
            table.add_row(
                topology=spec.label,
                mean_interarrival=mean_gap,
                offered=result.offered,
                delivered=result.delivered,
                delivery_ratio=result.delivery_ratio,
                mean_latency=result.mean_latency,
                p99_latency=result.p99_latency,
                throughput=result.throughput,
            )
    table.add_note(
        "smaller mean_interarrival = higher offered load; times in units "
        "of one packet serialisation."
    )
    return [table]
