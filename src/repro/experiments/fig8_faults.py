"""F8 — graceful degradation under random component failures.

Sweeps server and switch failure fractions and reports, per topology:
the connection ratio (pairs still reachable — a property of the topology)
and, for ABCCC, the behaviour of the *local* fault-tolerant routing
algorithm: how often greedy detouring succeeds without global repair, and
the hop stretch it pays.
"""

from __future__ import annotations

import random
import statistics
from typing import List

from repro.baselines import BcubeSpec, FatTreeSpec
from repro.core import AbcccSpec, fault_tolerant_route
from repro.experiments.harness import register
from repro.metrics.connectivity import connection_ratio, draw_failures
from repro.routing.base import RoutingError
from repro.routing.shortest import bfs_distances
from repro.sim.results import ResultTable


def _connection_table(quick: bool) -> ResultTable:
    table = ResultTable(
        "F8a: connection ratio vs failure fraction",
        ["failure_kind", "fraction", "abccc_s2", "abccc_s3", "bcube", "fattree"],
    )
    if quick:
        specs = {
            "abccc_s2": AbcccSpec(3, 1, 2),
            "abccc_s3": AbcccSpec(3, 1, 3),
            "bcube": BcubeSpec(3, 1),
            "fattree": FatTreeSpec(4),
        }
        fractions = (0.0, 0.1)
        trials, pairs = 2, 60
    else:
        specs = {
            "abccc_s2": AbcccSpec(4, 2, 2),
            "abccc_s3": AbcccSpec(4, 2, 3),
            "bcube": BcubeSpec(4, 2),
            "fattree": FatTreeSpec(8),
        }
        fractions = (0.0, 0.05, 0.10, 0.15, 0.20)
        trials, pairs = 4, 200
    nets = {name: spec.build() for name, spec in specs.items()}
    for kind in ("server", "switch"):
        for fraction in fractions:
            row = {"failure_kind": kind, "fraction": fraction}
            for name, net in nets.items():
                ratios = []
                for trial in range(trials):
                    scenario = draw_failures(
                        net,
                        server_fraction=fraction if kind == "server" else 0.0,
                        switch_fraction=fraction if kind == "switch" else 0.0,
                        seed=100 * trial + 7,
                    )
                    ratios.append(
                        connection_ratio(net, scenario, sample_pairs=pairs, seed=trial)
                    )
                row[name] = statistics.fmean(ratios)
            table.add_row(**row)
    table.add_note(
        "connection ratio over alive pairs; fat-tree's single-NIC servers "
        "lose reachability fastest under switch failures (edge switch = "
        "single point of failure for its rack)."
    )
    return table


def _ft_routing_table(quick: bool) -> ResultTable:
    table = ResultTable(
        "F8b: ABCCC local fault-tolerant routing under switch+server failures",
        [
            "instance",
            "fraction",
            "attempted",
            "reachable",
            "greedy_ok",
            "fallback",
            "mean_stretch",
        ],
    )
    spec = AbcccSpec(3, 1, 2) if quick else AbcccSpec(4, 2, 2)
    net = spec.build()
    fractions = (0.05,) if quick else (0.02, 0.05, 0.10, 0.15, 0.20)
    attempts = 60 if quick else 250
    for fraction in fractions:
        scenario = draw_failures(
            net, server_fraction=fraction, switch_fraction=fraction, seed=13
        )
        alive = net.subgraph_without(
            dead_nodes=list(scenario.dead_servers) + list(scenario.dead_switches)
        )
        rng = random.Random(5)
        servers = alive.servers
        reachable = greedy_ok = fallback = 0
        stretches = []
        for _ in range(attempts):
            src, dst = rng.sample(servers, 2)
            baseline = bfs_distances(alive, src, targets={dst}).get(dst)
            if baseline is None:
                continue
            reachable += 1
            try:
                result = fault_tolerant_route(spec.abccc, alive, src, dst, seed=3)
            except RoutingError:
                continue
            result.route.validate(alive)
            if result.fallback_used:
                fallback += 1
            else:
                greedy_ok += 1
            stretches.append(result.route.link_hops / max(baseline, 1))
        table.add_row(
            instance=spec.label,
            fraction=fraction,
            attempted=attempts,
            reachable=reachable,
            greedy_ok=greedy_ok,
            fallback=fallback,
            mean_stretch=statistics.fmean(stretches) if stretches else None,
        )
    table.add_note(
        "greedy_ok = local detouring alone found a route; fallback = BFS "
        "global repair was needed; stretch is vs the alive-graph shortest."
    )
    return table


@register(
    "F8",
    "Fault tolerance: connection ratio and local reroute quality",
    "all topologies degrade gracefully in server failures; ABCCC(s=3) > "
    "ABCCC(s=2) in switch-failure resilience (more ports per server); "
    "greedy detouring resolves the vast majority of reachable pairs with "
    "small stretch.",
)
def run(quick: bool = False) -> List[ResultTable]:
    return [_connection_table(quick), _ft_routing_table(quick)]
