"""F8 — graceful degradation under random component failures.

Sweeps server and switch failure fractions and reports, per topology:
the connection ratio (pairs still reachable — a property of the topology)
and, for ABCCC, the behaviour of the *local* fault-tolerant routing
algorithm: how often greedy detouring succeeds without global repair, and
the hop stretch it pays.

F8a runs through :func:`repro.faults.degradation_sweep`: every trial is
a mask over one compiled CSR graph instead of a subgraph copy plus a
cold recompile, and trials journal to the harness's active journal so
``repro run F8 --resume`` picks up an interrupted sweep.
"""

from __future__ import annotations

import random
import statistics
from typing import List

from repro.baselines import BcubeSpec, FatTreeSpec
from repro.core import AbcccSpec, fault_tolerant_route
from repro.experiments.harness import register
from repro.faults import FaultModel, MaskedGraph, degradation_sweep, random_failures
from repro.metrics.engine import pairwise_distances
from repro.routing.base import RoutingError
from repro.sim.results import ResultTable
from repro.topology.compiled import compile_graph


def _connection_table(quick: bool) -> ResultTable:
    table = ResultTable(
        "F8a: connection ratio vs failure fraction",
        ["failure_kind", "fraction", "abccc_s2", "abccc_s3", "bcube", "fattree"],
    )
    if quick:
        specs = {
            "abccc_s2": AbcccSpec(3, 1, 2),
            "abccc_s3": AbcccSpec(3, 1, 3),
            "bcube": BcubeSpec(3, 1),
            "fattree": FatTreeSpec(4),
        }
        fractions = (0.0, 0.1)
        trials, pairs = 2, 60
    else:
        specs = {
            "abccc_s2": AbcccSpec(4, 2, 2),
            "abccc_s3": AbcccSpec(4, 2, 3),
            "bcube": BcubeSpec(4, 2),
            "fattree": FatTreeSpec(8),
        }
        fractions = (0.0, 0.05, 0.10, 0.15, 0.20)
        trials, pairs = 4, 200
    nets = {name: spec.build() for name, spec in specs.items()}
    curves = {
        (kind, name): degradation_sweep(
            net, FaultModel(kind), fractions, trials=trials, sample_pairs=pairs, seed=7
        )
        for kind in ("server", "switch")
        for name, net in nets.items()
    }
    for kind in ("server", "switch"):
        for fraction in fractions:
            row = {"failure_kind": kind, "fraction": fraction}
            for name in nets:
                row[name] = curves[kind, name].point(fraction).mean_ratio
            table.add_row(**row)
    table.add_note(
        "connection ratio over alive pairs; fat-tree's single-NIC servers "
        "lose reachability fastest under switch failures (edge switch = "
        "single point of failure for its rack)."
    )
    return table


def _ft_routing_table(quick: bool) -> ResultTable:
    table = ResultTable(
        "F8b: ABCCC local fault-tolerant routing under switch+server failures",
        [
            "instance",
            "fraction",
            "attempted",
            "reachable",
            "greedy_ok",
            "fallback",
            "mean_stretch",
        ],
    )
    spec = AbcccSpec(3, 1, 2) if quick else AbcccSpec(4, 2, 2)
    net = spec.build()
    graph = compile_graph(net)
    index = graph.index
    fractions = (0.05,) if quick else (0.02, 0.05, 0.10, 0.15, 0.20)
    attempts = 60 if quick else 250
    for fraction in fractions:
        plan = random_failures(
            net, server_fraction=fraction, switch_fraction=fraction, seed=13
        )
        alive = net.subgraph_without(
            dead_nodes=list(plan.scenario.dead_servers)
            + list(plan.scenario.dead_switches)
        )
        # Reachability baselines as a mask over the one parent compile:
        # the sweep view keeps the parent's node ids, so the parent index
        # resolves names and no per-fraction recompile is needed.
        view = MaskedGraph(graph, plan.scenario).sweep_view()
        rng = random.Random(5)
        servers = alive.servers
        attempt_pairs = [tuple(rng.sample(servers, 2)) for _ in range(attempts)]
        baselines = pairwise_distances(
            view, [(index[src], index[dst]) for src, dst in attempt_pairs]
        )
        reachable = greedy_ok = fallback = 0
        stretches = []
        for (src, dst), baseline in zip(attempt_pairs, baselines):
            if baseline < 0:
                continue
            reachable += 1
            try:
                result = fault_tolerant_route(spec.abccc, alive, src, dst, seed=3)
            except RoutingError:
                continue
            result.route.validate(alive)
            if result.fallback_used:
                fallback += 1
            else:
                greedy_ok += 1
            stretches.append(result.route.link_hops / max(baseline, 1))
        table.add_row(
            instance=spec.label,
            fraction=fraction,
            attempted=attempts,
            reachable=reachable,
            greedy_ok=greedy_ok,
            fallback=fallback,
            mean_stretch=statistics.fmean(stretches) if stretches else None,
        )
    table.add_note(
        "greedy_ok = local detouring alone found a route; fallback = BFS "
        "global repair was needed; stretch is vs the alive-graph shortest."
    )
    return table


@register(
    "F8",
    "Fault tolerance: connection ratio and local reroute quality",
    "all topologies degrade gracefully in server failures; ABCCC(s=3) > "
    "ABCCC(s=2) in switch-failure resilience (more ports per server); "
    "greedy detouring resolves the vast majority of reachable pairs with "
    "small stretch.",
)
def run(quick: bool = False) -> List[ResultTable]:
    return [_connection_table(quick), _ft_routing_table(quick)]
