"""F4 — per-server CAPEX vs network size across topologies.

Sweeps each family's growth parameter and plots (as a series) the
per-server capital cost against server count.  Pure closed-form
inventories, so the sweep reaches sizes far beyond what is buildable.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.baselines import BcubeSpec, DcellSpec, FatTreeSpec, FiconnSpec
from repro.core import AbcccSpec
from repro.experiments.harness import register
from repro.metrics.cost import PriceBook, capex
from repro.sim.results import ResultTable
from repro.topology.spec import TopologySpec


def _family_sweeps(quick: bool) -> List[Tuple[str, List[TopologySpec]]]:
    k_top = 3 if quick else 5
    sweeps: List[Tuple[str, List[TopologySpec]]] = [
        ("abccc_s2", [AbcccSpec(4, k, 2) for k in range(1, k_top + 1)]),
        ("abccc_s3", [AbcccSpec(4, k, 3) for k in range(1, k_top + 1)]),
        ("abccc_s4", [AbcccSpec(4, k, 4) for k in range(1, k_top + 1)]),
        ("bcube", [BcubeSpec(4, k) for k in range(1, k_top + 1)]),
        ("fattree", [FatTreeSpec(p) for p in (4, 8, 16, 24, 32)[: k_top]]),
        ("dcell", [DcellSpec(4, k) for k in range(1, 3)]),
        ("ficonn", [FiconnSpec(4, k) for k in range(1, min(k_top, 4) + 1)]),
    ]
    return sweeps


def _capex_series(quick: bool) -> ResultTable:
    table = ResultTable(
        "F4: per-server CAPEX vs servers (default price book)",
        ["family", "instance", "servers", "per_server", "total"],
    )
    prices = PriceBook()
    for family, specs in _family_sweeps(quick):
        for spec in specs:
            breakdown = capex(spec, prices)
            table.add_row(
                family=family,
                instance=spec.label,
                servers=breakdown.num_servers,
                per_server=breakdown.per_server,
                total=breakdown.total,
            )
    table.add_note(
        "read as series grouped by family; within the cube family "
        "per-server cost is nearly flat in size — growth does not raise "
        "unit cost, unlike fat-tree whose radix must grow."
    )
    return table


@register(
    "F4",
    "Per-server CAPEX vs network size",
    "FiConn cheapest, then ABCCC(s=2)/BCCC, rising with s toward BCube; "
    "fat-tree per-server cost grows with scale (bigger radix needed); "
    "cube-family unit costs stay flat as k grows.",
)
def run(quick: bool = False) -> List[ResultTable]:
    return [_capex_series(quick)]
