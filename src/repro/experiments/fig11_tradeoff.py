"""F11 — the trade-off frontier: the paper's "best trade-off" headline.

For fixed (n, k), sweeping the NIC-port count ``s`` from 2 to ``k + 2``
traces a frontier in (diameter, per-server bisection, per-server CAPEX,
network size) whose endpoints are BCCC and BCube.  The claim "ABCCC
achieves the best trade-off among all these critical metrics … by fine
tuning its parameters" is exactly this table: every intermediate ``s``
dominates neither endpoint but offers a mix neither endpoint can.
"""

from __future__ import annotations

from typing import List

from repro.core import AbcccSpec
from repro.core import properties
from repro.experiments.harness import register
from repro.metrics.cost import PriceBook, capex
from repro.sim.results import ResultTable


def _frontier_table(n: int, k: int) -> ResultTable:
    table = ResultTable(
        f"F11: s-sweep frontier at n={n}, k={k}",
        [
            "s",
            "crossbar_size",
            "servers",
            "diam_server_hops",
            "bisection_per_srv",
            "capex_per_srv",
            "nic_ports",
            "equals",
        ],
    )
    prices = PriceBook()
    for s in range(2, k + 3):
        spec = AbcccSpec(n, k, s)
        params = spec.abccc
        c = params.crossbar_size
        marker = ""
        if s == 2:
            marker = "BCCC"
        elif c == 1:
            marker = "BCube"
        table.add_row(
            s=s,
            crossbar_size=c,
            servers=spec.num_servers,
            diam_server_hops=spec.diameter_server_hops,
            bisection_per_srv=properties.bisection_per_server(params),
            capex_per_srv=capex(spec, prices).per_server,
            nic_ports=s,
            equals=marker,
        )
    table.add_note(
        "monotone trade: as s rises, diameter and size fall while "
        "per-server bisection and NIC cost rise — a tunable frontier "
        "between the published extremes."
    )
    return table


@register(
    "F11",
    "Parameter fine-tuning frontier (diameter / bisection / cost / size)",
    "for every s in (2, k+2): diameter strictly between BCube's and "
    "BCCC's, bisection per server = 1/(2c) strictly between 1/(2(k+1)) "
    "and 1/2, CAPEX per server increasing in s.",
)
def run(quick: bool = False) -> List[ResultTable]:
    if quick:
        return [_frontier_table(4, 2)]
    return [_frontier_table(4, 3), _frontier_table(6, 2), _frontier_table(8, 3)]
