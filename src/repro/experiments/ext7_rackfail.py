"""E7 (extension) — correlated rack failures.

Random component failures (F8) are the optimistic model; real outages
kill whole racks (PDU, cooling, ToR).  Under the common layout of E4,
this experiment fails 1…R racks — servers *and* the switches placed in
them — and measures how the surviving fabric holds up per topology.
The rack-locality that made ABCCC's cabling cheap (E4) cuts the other
way here: a dead rack takes whole crossbars with it, but the remaining
crossbars lose nothing — whereas a fat-tree rack hosting aggregation
switches degrades pairs *between surviving racks*.
"""

from __future__ import annotations

import statistics
from typing import List

from repro.baselines import BcubeSpec, FatTreeSpec
from repro.core import AbcccSpec
from repro.experiments.harness import register
from repro.metrics.connectivity import (
    apply_failures,
    connection_ratio,
    draw_rack_failures,
    largest_component_fraction,
)
from repro.sim.results import ResultTable


@register(
    "E7",
    "Correlated rack failures under a common layout",
    "every design loses the dead racks' own servers cleanly; collateral "
    "damage to *surviving* pairs comes from shared switches hosted in "
    "the dead rack — worst where level switches serve many racks "
    "(BCube and ABCCC at s=2), mitigated by larger s (more parallel "
    "level families), and negligible for the fat-tree at this scale "
    "(its per-rack switches die with their own servers; cores spread). "
    "[Measured result — it overturned the naive rack-locality guess.]",
)
def run(quick: bool = False) -> List[ResultTable]:
    table = ResultTable(
        "E7: connection ratio among surviving servers vs failed racks",
        [
            "topology",
            "servers",
            "racks",
            "failed_racks",
            "alive_servers",
            "connection_ratio",
            "largest_component",
        ],
    )
    rack_capacity = 8 if quick else 24
    specs = (
        [AbcccSpec(3, 1, 2), FatTreeSpec(4)]
        if quick
        else [AbcccSpec(4, 2, 2), AbcccSpec(4, 2, 3), BcubeSpec(4, 2), FatTreeSpec(8)]
    )
    failed_counts = (1,) if quick else (1, 2, 3)
    trials = 2 if quick else 4
    pairs = 80 if quick else 200
    for spec in specs:
        net = spec.build()
        from repro.metrics.layout import LayoutConfig, assign_racks

        total_racks = len(
            set(assign_racks(net, LayoutConfig(rack_capacity=rack_capacity)).values())
        )
        for failed in failed_counts:
            if failed >= total_racks:
                continue
            ratios = []
            components = []
            alive_counts = []
            for trial in range(trials):
                scenario = draw_rack_failures(
                    net, failed, rack_capacity=rack_capacity, seed=300 + trial
                )
                alive = apply_failures(net, scenario)
                alive_counts.append(alive.num_servers)
                if alive.num_servers < 2:
                    ratios.append(0.0)
                    components.append(0.0)
                    continue
                ratios.append(
                    connection_ratio(net, scenario, sample_pairs=pairs, seed=trial)
                )
                components.append(largest_component_fraction(net, scenario))
            table.add_row(
                topology=spec.label,
                servers=net.num_servers,
                racks=total_racks,
                failed_racks=failed,
                alive_servers=statistics.fmean(alive_counts),
                connection_ratio=statistics.fmean(ratios),
                largest_component=statistics.fmean(components),
            )
    table.add_note(
        "rack assignment: address order at the stated capacity; a failed "
        "rack removes its servers AND the switches placed in it."
    )
    return [table]
