"""E7 (extension) — correlated rack failures.

Random component failures (F8) are the optimistic model; real outages
kill whole racks (PDU, cooling, ToR).  Under the common layout of E4,
this experiment fails 1…R racks — servers *and* the switches placed in
them — and measures how the surviving fabric holds up per topology.
The rack-locality that made ABCCC's cabling cheap (E4) cuts the other
way here: a dead rack takes whole crossbars with it, but the remaining
crossbars lose nothing — whereas a fat-tree rack hosting aggregation
switches degrades pairs *between surviving racks*.

Runs through :func:`repro.faults.degradation_sweep` with the rack fault
model (masked-CSR trials, journaled for ``--resume``), which also
supplies the 95% confidence interval reported per row.
"""

from __future__ import annotations

from typing import List

from repro.baselines import BcubeSpec, FatTreeSpec
from repro.core import AbcccSpec
from repro.experiments.harness import register
from repro.faults import FaultModel, degradation_sweep, rack_assignment
from repro.sim.results import ResultTable


@register(
    "E7",
    "Correlated rack failures under a common layout",
    "every design loses the dead racks' own servers cleanly; collateral "
    "damage to *surviving* pairs comes from shared switches hosted in "
    "the dead rack — worst where level switches serve many racks "
    "(BCube and ABCCC at s=2), mitigated by larger s (more parallel "
    "level families), and negligible for the fat-tree at this scale "
    "(its per-rack switches die with their own servers; cores spread). "
    "[Measured result — it overturned the naive rack-locality guess.]",
)
def run(quick: bool = False) -> List[ResultTable]:
    table = ResultTable(
        "E7: connection ratio among surviving servers vs failed racks",
        [
            "topology",
            "servers",
            "racks",
            "failed_racks",
            "alive_servers",
            "connection_ratio",
            "ratio_ci95",
            "largest_component",
        ],
    )
    rack_capacity = 8 if quick else 24
    specs = (
        [AbcccSpec(3, 1, 2), FatTreeSpec(4)]
        if quick
        else [AbcccSpec(4, 2, 2), AbcccSpec(4, 2, 3), BcubeSpec(4, 2), FatTreeSpec(8)]
    )
    failed_counts = (1,) if quick else (1, 2, 3)
    trials = 2 if quick else 4
    pairs = 80 if quick else 200
    model = FaultModel("rack", rack_capacity=rack_capacity)
    for spec in specs:
        net = spec.build()
        total_racks = len(set(rack_assignment(net, rack_capacity).values()))
        levels = [failed for failed in failed_counts if failed < total_racks]
        if not levels:
            continue
        curve = degradation_sweep(
            net, model, levels, trials=trials, sample_pairs=pairs, seed=300
        )
        for stats in curve.points:
            table.add_row(
                topology=spec.label,
                servers=net.num_servers,
                racks=total_racks,
                failed_racks=int(stats.level),
                alive_servers=stats.mean_alive_servers,
                connection_ratio=stats.mean_ratio,
                ratio_ci95=stats.ci95_ratio,
                largest_component=stats.mean_largest,
            )
    table.add_note(
        "rack assignment: address order at the stated capacity; a failed "
        "rack removes its servers AND the switches placed in it; ci95 is "
        "the 95% half-width over trials."
    )
    return [table]
