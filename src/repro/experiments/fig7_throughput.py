"""F7 — flow-level throughput under the evaluation's traffic patterns.

Runs identical workloads (random permutation, sampled all-to-all,
hotspot) over every topology with its native routing and reports the
max-min fair allocation: per-server aggregate throughput, minimum flow
rate and Jain fairness — the "extensive simulations" core of the paper.
Per-server normalisation makes instances of different sizes comparable.
"""

from __future__ import annotations

from typing import Callable, List, Sequence, Tuple

from repro.baselines import BcccSpec, BcubeSpec, FatTreeSpec, FiconnSpec
from repro.core import AbcccSpec
from repro.experiments.harness import register
from repro.metrics.bottleneck import aggregate_bottleneck_throughput, load_stats
from repro.routing.ecmp import EcmpRouter
from repro.sim.flow import max_min_allocation, route_all
from repro.sim.results import ResultTable
from repro.sim.traffic import all_to_all_traffic, hotspot_traffic, permutation_traffic
from repro.topology.spec import TopologySpec


def _specs(quick: bool) -> List[TopologySpec]:
    if quick:
        return [AbcccSpec(3, 1, 2), BcubeSpec(3, 1), FatTreeSpec(4)]
    return [
        AbcccSpec(4, 2, 2),
        AbcccSpec(4, 2, 3),
        BcccSpec(4, 2),
        BcubeSpec(4, 2),
        FatTreeSpec(8),
        FiconnSpec(8, 1),
    ]


def _router_for(spec: TopologySpec, net) -> Callable:
    """Native router; fat-tree uses hash-ECMP (its deployed scheme)."""
    if spec.kind == "fattree":
        ecmp = EcmpRouter(net)
        return ecmp.route
    return spec.route


def _workloads(net, quick: bool) -> List[Tuple[str, Sequence]]:
    servers = net.servers
    a2a_cap = 300 if quick else 1500
    return [
        ("permutation", permutation_traffic(servers, seed=11)),
        ("all_to_all", all_to_all_traffic(servers, max_flows=a2a_cap, seed=11)),
        (
            "hotspot",
            hotspot_traffic(
                servers,
                num_flows=min(len(servers) * 2, 400),
                num_hotspots=max(len(servers) // 32, 1),
                hot_fraction=0.7,
                seed=11,
            ),
        ),
    ]


@register(
    "F7",
    "Max-min fair throughput under permutation / all-to-all / hotspot",
    "per-server throughput ordering: fat-tree ~ bcube > abccc(s=3) > "
    "abccc(s=2)=bccc > ficonn, tracking per-server bisection 1/(2c); "
    "hotspot compresses every topology toward the receivers' NIC limit.",
)
def run(quick: bool = False) -> List[ResultTable]:
    table = ResultTable(
        "F7: max-min fair allocation by topology and pattern",
        [
            "topology",
            "pattern",
            "servers",
            "flows",
            "agg_per_server",
            "min_rate",
            "mean_rate",
            "jain",
            "abt_per_server",
            "max_link_load",
        ],
    )
    for spec in _specs(quick):
        net = spec.build()
        router = _router_for(spec, net)
        for pattern, flows in _workloads(net, quick):
            routes = route_all(net, flows, router)
            allocation = max_min_allocation(net, flows, routes)
            stats = load_stats(net, routes.values())
            abt = aggregate_bottleneck_throughput(net, routes.values())
            table.add_row(
                topology=spec.label,
                pattern=pattern,
                servers=net.num_servers,
                flows=len(flows),
                agg_per_server=allocation.aggregate_throughput / net.num_servers,
                min_rate=allocation.min_rate,
                mean_rate=allocation.mean_rate,
                jain=allocation.jain_fairness,
                abt_per_server=abt / net.num_servers,
                max_link_load=stats.max_load,
            )
    table.add_note(
        "agg_per_server in link-capacity units; all topologies see the "
        "same seeded workloads over their own server lists."
    )
    return [table]
