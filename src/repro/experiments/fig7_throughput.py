"""F7 — flow-level throughput under the evaluation's traffic patterns.

Runs identical workloads (random permutation, sampled all-to-all,
hot-rack skew) over every topology with its native routing and reports
the max-min fair allocation: per-server aggregate throughput, minimum
flow rate and Jain fairness — the "extensive simulations" core of the
paper.  Per-server normalisation makes instances of different sizes
comparable.

The workloads come from the :mod:`repro.traffic` matrix generators:
because they are drawn over server *ordinals*, two topologies with the
same server count receive bit-identical flow sets — a stronger
"identical workloads" guarantee than the legacy name-based draws.  The
allocation runs through the vectorized engine
(:func:`repro.traffic.engine.max_min_rates`), which is bit-for-bit
equal to the legacy :func:`repro.sim.flow.max_min_allocation` oracle
(the test suite asserts this parity on F7's own quick topologies).
"""

from __future__ import annotations

from typing import Callable, List, Sequence, Tuple

from repro.baselines import BcccSpec, BcubeSpec, FatTreeSpec, FiconnSpec
from repro.core import AbcccSpec
from repro.experiments.harness import register
from repro.metrics.bottleneck import aggregate_bottleneck_throughput, load_stats
from repro.routing.ecmp import EcmpRouter
from repro.sim.flow import route_all
from repro.sim.results import ResultTable
from repro.topology.compiled import compile_graph
from repro.topology.spec import TopologySpec
from repro.traffic.engine import max_min_rates
from repro.traffic.matrix import TrafficMatrix, generate_matrix
from repro.traffic.routes import RouteSet


def _specs(quick: bool) -> List[TopologySpec]:
    if quick:
        return [AbcccSpec(3, 1, 2), BcubeSpec(3, 1), FatTreeSpec(4)]
    return [
        AbcccSpec(4, 2, 2),
        AbcccSpec(4, 2, 3),
        BcccSpec(4, 2),
        BcubeSpec(4, 2),
        FatTreeSpec(8),
        FiconnSpec(8, 1),
    ]


def _router_for(spec: TopologySpec, net) -> Callable:
    """Native router; fat-tree uses hash-ECMP (its deployed scheme)."""
    if spec.kind == "fattree":
        ecmp = EcmpRouter(net)
        return ecmp.route
    return spec.route


def _workloads(num_servers: int, quick: bool) -> List[Tuple[str, TrafficMatrix]]:
    a2a_cap = 300 if quick else 1500
    return [
        ("permutation", generate_matrix("permutation", num_servers, seed=11)),
        (
            "all_to_all",
            generate_matrix("all_to_all", num_servers, seed=11, max_flows=a2a_cap),
        ),
        (
            "hot_rack",
            generate_matrix(
                "hot_rack",
                num_servers,
                seed=11,
                num_flows=min(num_servers * 2, 400),
                hot_fraction=0.7,
            ),
        ),
    ]


@register(
    "F7",
    "Max-min fair throughput under permutation / all-to-all / hot-rack",
    "per-server throughput ordering: fat-tree ~ bcube > abccc(s=3) > "
    "abccc(s=2)=bccc > ficonn, tracking per-server bisection 1/(2c); "
    "hot-rack skew compresses every topology toward the receivers' NIC "
    "limit.",
)
def run(quick: bool = False) -> List[ResultTable]:
    table = ResultTable(
        "F7: max-min fair allocation by topology and pattern",
        [
            "topology",
            "pattern",
            "servers",
            "flows",
            "agg_per_server",
            "min_rate",
            "mean_rate",
            "jain",
            "abt_per_server",
            "max_link_load",
        ],
    )
    for spec in _specs(quick):
        net = spec.build()
        graph = compile_graph(net)
        router = _router_for(spec, net)
        servers = net.servers
        for pattern, matrix in _workloads(len(servers), quick):
            flows = matrix.flows(servers)
            routes = route_all(net, flows, router)
            route_set = RouteSet.from_name_routes(graph, flows, routes)
            allocation = max_min_rates(route_set)
            stats = load_stats(net, routes.values())
            abt = aggregate_bottleneck_throughput(net, routes.values())
            table.add_row(
                topology=spec.label,
                pattern=pattern,
                servers=net.num_servers,
                flows=len(flows),
                agg_per_server=allocation.aggregate_throughput / net.num_servers,
                min_rate=allocation.min_rate,
                mean_rate=allocation.mean_rate,
                jain=allocation.jain_fairness,
                abt_per_server=abt / net.num_servers,
                max_link_load=stats.max_load,
            )
    table.add_note(
        "agg_per_server in link-capacity units; topologies with equal "
        "server counts see bit-identical ordinal workloads "
        "(repro.traffic matrices), allocated by the vectorized engine."
    )
    return [table]
