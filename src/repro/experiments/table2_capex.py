"""T2 — capital expenditure at comparable scale.

Itemised CAPEX (switches / NICs / cables, absolute and per server) of the
same ~1000-server configurations as T1 under the default price book, plus
a price-sensitivity ablation sweeping the NIC:switch-port price ratio —
per-server *ratios* between topologies are the paper's comparison and the
ablation shows where they are insensitive to the price anchor.
"""

from __future__ import annotations

from typing import List

from repro.experiments.harness import register
from repro.experiments.table1_properties import SCALE_SPECS
from repro.metrics.cost import PriceBook, capex
from repro.sim.results import ResultTable


def _capex_table(prices: PriceBook, title: str) -> ResultTable:
    table = ResultTable(
        title,
        [
            "topology",
            "servers",
            "switch_cost",
            "nic_cost",
            "cable_cost",
            "total",
            "per_server",
        ],
    )
    for spec in SCALE_SPECS:
        breakdown = capex(spec, prices)
        table.add_row(
            topology=spec.label,
            servers=breakdown.num_servers,
            switch_cost=breakdown.switch_cost,
            nic_cost=breakdown.nic_cost,
            cable_cost=breakdown.cable_cost,
            total=breakdown.total,
            per_server=breakdown.per_server,
        )
    return table


def _sensitivity_table(quick: bool) -> ResultTable:
    """Per-server CAPEX as the NIC-port price sweeps (switch port fixed)."""
    table = ResultTable(
        "T2b: per-server CAPEX vs NIC-port price (sensitivity ablation)",
        ["nic_port_price"] + [spec.label for spec in SCALE_SPECS],
    )
    prices_points = [5.0, 20.0, 50.0] if quick else [5.0, 10.0, 20.0, 50.0, 100.0]
    for nic_price in prices_points:
        prices = PriceBook(nic_port=nic_price)
        row = {"nic_port_price": nic_price}
        for spec in SCALE_SPECS:
            row[spec.label] = capex(spec, prices).per_server
        table.add_row(**row)
    table.add_note(
        "server-centric designs (more NICs, fewer switches) gain as NIC "
        "ports get cheaper — the technology trend the paper banks on."
    )
    return table


@register(
    "T2",
    "CAPEX comparison at comparable scale",
    "per-server cost: FiConn < BCCC/ABCCC(s=2) < ABCCC(s=3) < BCube < "
    "fat-tree at default prices; ABCCC's s parameter moves it smoothly "
    "along that axis.",
)
def run(quick: bool = False) -> List[ResultTable]:
    return [
        _capex_table(PriceBook(), "T2a: itemised CAPEX (default price book)"),
        _sensitivity_table(quick),
    ]
