"""F3 — bisection bandwidth: analytic vs measured, and the s trade-off.

Per-server bisection bandwidth is ABCCC's clearest dial: ``1/(2c)`` with
``c = ceil((k+1)/(s-1))`` — BCCC pays ``1/(2(k+1))``, BCube enjoys
``1/2``, ABCCC sweeps between.  The measured columns certify the closed
forms: the best cut the estimator finds (spectral + digit + random
partitions, each evaluated by exact max-flow) must *equal* the formula on
the cube family.
"""

from __future__ import annotations

from typing import List

from repro.baselines import BcubeSpec, DcellSpec, FatTreeSpec, FiconnSpec
from repro.core import AbcccSpec
from repro.core import properties
from repro.experiments.harness import register
from repro.metrics.bisection import (
    bisection_upper_bound,
    digit_split_abccc,
    digit_split_bcube,
    pod_split_fattree,
)
from repro.sim.results import ResultTable


def _tradeoff_table(quick: bool) -> ResultTable:
    table = ResultTable(
        "F3a: per-server bisection vs s (n=4, analytic)",
        ["k"] + [f"s{s}" for s in (2, 3, 4, 5, 6)] + ["bcube"],
    )
    ks = (1, 2) if quick else (1, 2, 3, 4, 5)
    for k in ks:
        row = {"k": k}
        for s in (2, 3, 4, 5, 6):
            row[f"s{s}"] = properties.bisection_per_server(AbcccSpec(4, k, s).abccc)
        row["bcube"] = 0.5
        table.add_row(**row)
    table.add_note("per-server bisection = 1/(2c); reaches BCube's 0.5 at c=1.")
    return table


def _measured_table(quick: bool) -> ResultTable:
    table = ResultTable(
        "F3b: bisection width, closed form vs best measured cut",
        ["topology", "servers", "analytic", "measured_ub", "match"],
    )
    cases = []
    if quick:
        cases.append((AbcccSpec(2, 1, 2), "abccc"))
        cases.append((BcubeSpec(2, 1), "bcube"))
    else:
        cases.extend(
            [
                (AbcccSpec(2, 2, 2), "abccc"),
                (AbcccSpec(4, 1, 2), "abccc"),
                (AbcccSpec(4, 1, 3), "abccc"),
                (BcubeSpec(4, 1), "bcube"),
                (BcubeSpec(2, 2), "bcube"),
                (FatTreeSpec(4), "fattree"),
                (DcellSpec(4, 1), None),
                (FiconnSpec(4, 1), None),
            ]
        )
    for spec, family in cases:
        net = spec.build()
        candidates = []
        if family == "abccc":
            candidates = [
                digit_split_abccc(net, level) for level in range(spec.k + 1)
            ]
        elif family == "bcube":
            candidates = [digit_split_bcube(net, level) for level in range(spec.k + 1)]
        elif family == "fattree":
            candidates = [pod_split_fattree(net)]
        measured = bisection_upper_bound(
            net, candidate_partitions=candidates, random_tries=2 if quick else 4
        )
        analytic = spec.bisection_links
        table.add_row(
            topology=spec.label,
            servers=spec.num_servers,
            analytic=analytic,
            measured_ub=measured,
            match=(analytic is None or measured == analytic),
        )
    table.add_note(
        "measured_ub is the best cut found (an upper bound); match=yes "
        "certifies the closed form since the formula is also a lower-bound "
        "argument. DCell/FiConn rows are measurement-only."
    )
    return table


@register(
    "F3",
    "Bisection bandwidth trade-off and validation",
    "per-server bisection rises from 1/(2(k+1)) to 1/2 as s grows; "
    "measured best cuts equal the closed forms on ABCCC/BCube/fat-tree.",
)
def run(quick: bool = False) -> List[ResultTable]:
    return [_tradeoff_table(quick), _measured_table(quick)]
