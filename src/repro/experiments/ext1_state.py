"""E1 (ablation) — forwarding state: structured addressing vs tables.

The server-centric literature's argument for structured addresses, made
quantitative: install classic per-destination shortest-path tables on
built ABCCC/BCube instances and compare their per-node footprint against
the O(k) algorithmic state digit-correction routing needs.  The table
footprint grows linearly with N; the algorithmic footprint does not grow
at all.
"""

from __future__ import annotations

from typing import List

from repro.baselines import BcubeSpec
from repro.core import AbcccSpec
from repro.experiments.harness import register
from repro.metrics.state import algorithmic_state, state_ratio, table_state
from repro.sim.results import ResultTable


@register(
    "E1",
    "Forwarding-state ablation: tables vs structured addressing",
    "table entries per node grow ~linearly with N (every node stores a "
    "route per server); algorithmic state is constant (k+1 digits); the "
    "ratio therefore grows without bound — the deployability argument "
    "for address-based routing.",
)
def run(quick: bool = False) -> List[ResultTable]:
    table = ResultTable(
        "E1: per-node forwarding state, tables vs algorithmic",
        [
            "instance",
            "servers",
            "nodes",
            "table_mean_entries",
            "table_max_entries",
            "algo_entries",
            "ratio",
        ],
    )
    cases = (
        [AbcccSpec(2, 1, 2), BcubeSpec(2, 1)]
        if quick
        else [
            AbcccSpec(3, 1, 2),
            AbcccSpec(3, 2, 2),
            AbcccSpec(4, 2, 2),
            BcubeSpec(3, 1),
            BcubeSpec(3, 2),
            BcubeSpec(4, 2),
        ]
    )
    for spec in cases:
        net = spec.build()
        # Tables route toward every server (the realistic deployment).
        tables = table_state(net)
        digits = spec.k + 1 if hasattr(spec, "k") else 1
        algo = algorithmic_state(net, address_digits=digits)
        table.add_row(
            instance=spec.label,
            servers=net.num_servers,
            nodes=len(net),
            table_mean_entries=tables.mean_entries,
            table_max_entries=tables.max_entries,
            algo_entries=algo.mean_entries,
            ratio=state_ratio(tables, algo),
        )
    table.add_note(
        "entries are (destination -> next hop) rows; algorithmic state "
        "counts the k+1 address digits a node must hold. Ratio grows "
        "linearly in N at fixed k."
    )
    return [table]
