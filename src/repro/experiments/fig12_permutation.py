"""F12 — permutation-generation comparison (ICC'15 companion).

The routing permutation choice does not change correctness but changes
(a) path length — extra intra-crossbar transfers — and (b) load balance —
which intermediate crossbars concurrent flows traverse.  Under permutation
traffic, compares the four strategies on mean route length, max link load,
load coefficient-of-variation and the resulting aggregate bottleneck
throughput.
"""

from __future__ import annotations

import statistics
from typing import List

from repro.core import AbcccSpec, ServerAddress
from repro.core.routing import abccc_route
from repro.experiments.harness import register
from repro.metrics.bottleneck import aggregate_bottleneck_throughput, load_stats
from repro.routing.ecmp import fnv1a
from repro.sim.results import ResultTable
from repro.sim.traffic import permutation_traffic

STRATEGIES = ("identity", "random", "locality", "balanced")


def _route_for(params, flow, strategy: str):
    src = ServerAddress.parse(flow.src)
    dst = ServerAddress.parse(flow.dst)
    if strategy == "balanced":
        return abccc_route(
            params, src, dst, strategy="balanced", rotation=fnv1a(flow.flow_id)
        )
    return abccc_route(params, src, dst, strategy=strategy, seed=fnv1a(flow.flow_id))


@register(
    "F12",
    "Permutation strategies: path length vs load balance",
    "locality has the shortest paths and the best ABT (shorter routes "
    "consume less capacity); balanced/random lower the load "
    "*concentration* (CV) at the cost of longer routes; identity and "
    "random never beat locality on both axes simultaneously.",
)
def run(quick: bool = False) -> List[ResultTable]:
    table = ResultTable(
        "F12: permutation strategies under permutation traffic",
        [
            "instance",
            "strategy",
            "flows",
            "mean_links",
            "max_link_load",
            "load_cv",
            "abt_per_server",
        ],
    )
    cases = [AbcccSpec(3, 2, 2)] if quick else [AbcccSpec(4, 3, 2), AbcccSpec(4, 2, 2), AbcccSpec(4, 3, 3)]
    repeats = 1 if quick else 3
    for spec in cases:
        net = spec.build()
        params = spec.abccc
        for strategy in STRATEGIES:
            lengths: List[int] = []
            max_loads: List[float] = []
            cvs: List[float] = []
            abts: List[float] = []
            for trial in range(repeats):
                flows = permutation_traffic(net.servers, seed=50 + trial)
                routes = {f.flow_id: _route_for(params, f, strategy) for f in flows}
                for route in routes.values():
                    lengths.append(route.link_hops)
                stats = load_stats(net, routes.values())
                max_loads.append(stats.max_load)
                cvs.append(stats.coefficient_of_variation)
                abts.append(
                    aggregate_bottleneck_throughput(net, routes.values())
                    / net.num_servers
                )
            table.add_row(
                instance=spec.label,
                strategy=strategy,
                flows=len(lengths) // repeats,
                mean_links=statistics.fmean(lengths),
                max_link_load=statistics.fmean(max_loads),
                load_cv=statistics.fmean(cvs),
                abt_per_server=statistics.fmean(abts),
            )
    return [table]
