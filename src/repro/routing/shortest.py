"""Breadth-first shortest-path primitives.

Hand-rolled BFS over the :class:`~repro.topology.graph.Network` adjacency
sets — measured several times faster than converting to networkx for the
all-pairs sweeps the metrics module performs, and free of the conversion
cost in tight benchmark loops.  Weighted variants are not needed: every
topology here has unit-length links.
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.routing.base import Route, RoutingError
from repro.topology.graph import Network


def bfs_distances(
    net: Network,
    source: str,
    targets: Optional[Set[str]] = None,
    avoid: Optional[Set[str]] = None,
) -> Dict[str, int]:
    """Link-hop distances from ``source`` to every reachable node.

    Args:
        targets: if given, the search stops once all targets are settled
            (the returned dict may then contain extra settled nodes).
        avoid: nodes that may not be traversed (``source`` is exempt).
    """
    if source not in net:
        raise RoutingError(f"unknown source {source!r}")
    blocked = avoid or frozenset()
    dist = {source: 0}
    remaining = set(targets) - {source} if targets is not None else None
    queue = deque([source])
    while queue:
        u = queue.popleft()
        du = dist[u]
        for v in net.neighbors(u):
            if v in dist or v in blocked:
                continue
            dist[v] = du + 1
            if remaining is not None:
                remaining.discard(v)
                if not remaining:
                    return dist
            queue.append(v)
    return dist


def bfs_path(
    net: Network,
    source: str,
    destination: str,
    avoid: Optional[Set[str]] = None,
) -> Route:
    """A shortest route between two nodes; raises if unreachable."""
    if source not in net:
        raise RoutingError(f"unknown source {source!r}")
    if destination not in net:
        raise RoutingError(f"unknown destination {destination!r}")
    if source == destination:
        return Route.of([source])
    blocked = avoid or frozenset()
    if destination in blocked:
        raise RoutingError(f"destination {destination!r} is blocked")
    parent: Dict[str, str] = {source: source}
    queue = deque([source])
    while queue:
        u = queue.popleft()
        # Sorted expansion: neighbor sets iterate in hash order, which
        # varies per process under hash randomisation, and the parent
        # choice (unlike plain distances) is order-sensitive.  Sorting
        # pins the tie-break so equal-length routes are reproducible.
        for v in sorted(net.neighbors(u)):
            if v in parent or v in blocked:
                continue
            parent[v] = u
            if v == destination:
                return _walk_back(parent, source, destination)
            queue.append(v)
    raise RoutingError(f"{destination!r} unreachable from {source!r}")


def _walk_back(parent: Dict[str, str], source: str, destination: str) -> Route:
    nodes = [destination]
    while nodes[-1] != source:
        nodes.append(parent[nodes[-1]])
    nodes.reverse()
    return Route.of(nodes)


def shortest_distance(net: Network, source: str, destination: str) -> int:
    """Link-hop distance between two nodes; raises if unreachable."""
    dist = bfs_distances(net, source, targets={destination})
    try:
        return dist[destination]
    except KeyError:
        raise RoutingError(f"{destination!r} unreachable from {source!r}") from None


def eccentricity(net: Network, source: str, over: Optional[Sequence[str]] = None) -> int:
    """Max distance from ``source`` to the nodes in ``over`` (default: all)."""
    dist = bfs_distances(net, source)
    if over is None:
        if len(dist) != len(net):
            raise RoutingError("network is disconnected; eccentricity undefined")
        return max(dist.values())
    try:
        return max(dist[t] for t in over)
    except KeyError as exc:
        raise RoutingError(f"node {exc.args[0]!r} unreachable from {source!r}") from None


def k_shortest_paths(net: Network, source: str, destination: str, k: int) -> List[Route]:
    """Up to ``k`` shortest simple paths (Yen via networkx).

    Intended for small instances and tests; the conversion dominates for
    large networks.
    """
    import networkx as nx

    graph = net.to_networkx()
    paths: List[Route] = []
    try:
        generator = nx.shortest_simple_paths(graph, source, destination)
        for path in itertools.islice(generator, k):
            paths.append(Route.of(path))
    except nx.NetworkXNoPath:
        pass
    return paths


def all_pairs_server_distances(
    net: Network, servers: Optional[Sequence[str]] = None
) -> Iterator[Tuple[str, str, int]]:
    """Yield ``(src, dst, distance)`` over ordered server pairs.

    Runs one BFS per source server — O(S * (V + E)); fine for the built
    instance sizes used by tests and experiments (a few thousand nodes).
    """
    servers = list(servers) if servers is not None else net.servers
    target_set = set(servers)
    for src in servers:
        dist = bfs_distances(net, src, targets=target_set)
        for dst in servers:
            if dst == src:
                continue
            try:
                yield src, dst, dist[dst]
            except KeyError:
                raise RoutingError(f"{dst!r} unreachable from {src!r}") from None
