"""Generic routing substrate: routes, BFS, ECMP, forwarding tables."""

from repro.routing.base import Route, Router, RoutingError, stretch
from repro.routing.ecmp import EcmpRouter, fnv1a
from repro.routing.shortest import (
    all_pairs_server_distances,
    bfs_distances,
    bfs_path,
    eccentricity,
    k_shortest_paths,
    shortest_distance,
)
from repro.routing.table import ForwardingTable

__all__ = [
    "EcmpRouter",
    "ForwardingTable",
    "Route",
    "Router",
    "RoutingError",
    "all_pairs_server_distances",
    "bfs_distances",
    "bfs_path",
    "eccentricity",
    "fnv1a",
    "k_shortest_paths",
    "shortest_distance",
    "stretch",
]
