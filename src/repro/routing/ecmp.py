"""Equal-cost multi-path (ECMP) route selection.

Models what commodity switches do: among the shortest next hops toward a
destination, pick one by hashing the flow identity.  Used by the fat-tree
baseline (its canonical routing scheme) and as a generic load-spreading
router for any topology.

The implementation precomputes, per destination, the BFS distance field and
derives the equal-cost next-hop sets lazily; a deterministic FNV-1a hash of
``(flow_id, current_node)`` picks among them so a given flow always takes
the same path (flow affinity), while distinct flows spread.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.routing.base import Route, RoutingError
from repro.routing.shortest import bfs_distances
from repro.topology.graph import Network

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_FNV_MASK = 0xFFFFFFFFFFFFFFFF


def fnv1a(text: str) -> int:
    """64-bit FNV-1a hash — deterministic across runs (unlike ``hash``)."""
    value = _FNV_OFFSET
    for byte in text.encode("utf-8"):
        value ^= byte
        value = (value * _FNV_PRIME) & _FNV_MASK
    return value


class EcmpRouter:
    """Hash-based ECMP over shortest paths of one network.

    The router caches one distance field per destination, so routing many
    flows to the same destination costs one BFS total.  Invalidate by
    constructing a new router if the network changes.
    """

    def __init__(self, net: Network):
        self._net = net
        self._dist_to: Dict[str, Dict[str, int]] = {}

    def _distances_to(self, destination: str) -> Dict[str, int]:
        field = self._dist_to.get(destination)
        if field is None:
            # BFS from the destination gives distance-to-destination for
            # every node (links are undirected).
            field = bfs_distances(self._net, destination)
            self._dist_to[destination] = field
        return field

    def next_hops(self, node: str, destination: str) -> List[str]:
        """All neighbors of ``node`` lying on a shortest path to ``destination``."""
        dist = self._distances_to(destination)
        here = dist.get(node)
        if here is None:
            raise RoutingError(f"{destination!r} unreachable from {node!r}")
        hops = [v for v in self._net.neighbors(node) if dist.get(v) == here - 1]
        return sorted(hops)

    def route(self, net: Network, src: str, dst: str, flow_id: str = "") -> Route:
        """Route one flow; ``flow_id`` seeds the per-hop hash choice."""
        if net is not self._net:
            raise RoutingError("EcmpRouter is bound to the network it was built on")
        if src == dst:
            return Route.of([src])
        nodes = [src]
        current = src
        while current != dst:
            candidates = self.next_hops(current, dst)
            if not candidates:
                raise RoutingError(f"no next hop from {current!r} toward {dst!r}")
            index = fnv1a(f"{flow_id}|{current}") % len(candidates)
            current = candidates[index]
            nodes.append(current)
        return Route.of(nodes)

    def path_count(self, src: str, dst: str) -> int:
        """Number of distinct shortest paths src -> dst (DP over the DAG)."""
        dist = self._distances_to(dst)
        if src not in dist:
            raise RoutingError(f"{dst!r} unreachable from {src!r}")
        counts: Dict[str, int] = {dst: 1}

        def count(node: str) -> int:
            cached = counts.get(node)
            if cached is not None:
                return cached
            total = sum(
                count(v)
                for v in self._net.neighbors(node)
                if dist.get(v) == dist[node] - 1
            )
            counts[node] = total
            return total

        # Iterative order: nodes by increasing distance-to-dst ensures the
        # recursion above never exceeds depth 1 in practice, but guard
        # against deep recursion by seeding bottom-up.
        for node in sorted(
            (n for n in dist if dist[n] <= dist[src]), key=lambda n: dist[n]
        ):
            count(node)
        return counts[src]
