"""Route objects and the routing-algorithm protocol.

A :class:`Route` is an explicit node-name walk through a
:class:`~repro.topology.graph.Network`.  Lengths are reported two ways,
matching the two conventions in the data-center literature:

* ``link_hops`` — number of physical links traversed (switches count);
* ``server_hops`` — number of *logical* server-to-server hops, i.e. the
  BCube-style metric where ``server - switch - server`` is one hop.  For
  direct server-server links (DCell/FiConn) each such link is also one
  logical hop, so ``server_hops == number of servers on the walk - 1``
  for every topology in this library.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Protocol, Sequence, Tuple

from repro.topology.graph import Network
from repro.topology.node import NodeKind


class RoutingError(Exception):
    """Raised when a route cannot be produced (disconnected, bad input)."""


@dataclass(frozen=True)
class Route:
    """An explicit walk ``nodes[0] -> nodes[-1]`` through a network."""

    nodes: Tuple[str, ...]

    def __post_init__(self) -> None:
        if len(self.nodes) < 1:
            raise ValueError("a route needs at least one node")

    @classmethod
    def of(cls, nodes: Sequence[str]) -> "Route":
        return cls(tuple(nodes))

    @property
    def source(self) -> str:
        return self.nodes[0]

    @property
    def destination(self) -> str:
        return self.nodes[-1]

    @property
    def link_hops(self) -> int:
        return len(self.nodes) - 1

    def server_hops(self, net: Network) -> int:
        """Logical server-to-server hop count (see module docstring)."""
        servers = sum(1 for n in self.nodes if net.node(n).kind is NodeKind.SERVER)
        return max(servers - 1, 0)

    @property
    def is_simple(self) -> bool:
        """True iff no node repeats."""
        return len(set(self.nodes)) == len(self.nodes)

    def edges(self) -> Iterator[Tuple[str, str]]:
        """Consecutive node pairs along the walk."""
        for i in range(len(self.nodes) - 1):
            yield self.nodes[i], self.nodes[i + 1]

    def is_valid(self, net: Network) -> bool:
        """True iff every node exists and every consecutive pair is a link."""
        try:
            self.validate(net)
        except RoutingError:
            return False
        return True

    def validate(self, net: Network) -> None:
        """Raise :class:`RoutingError` with a precise message if invalid."""
        adj = net.adjacency()
        prev = None
        for n in self.nodes:
            if n not in adj:
                raise RoutingError(f"route visits unknown node {n!r}")
            if prev is not None and n not in adj[prev]:
                raise RoutingError(f"route uses non-existent link {prev!r} - {n!r}")
            prev = n

    def concat(self, other: "Route") -> "Route":
        """Join two walks; ``other`` must start where this one ends."""
        if self.destination != other.source:
            raise RoutingError(
                f"cannot concat: {self.destination!r} != {other.source!r}"
            )
        return Route(self.nodes + other.nodes[1:])

    def __len__(self) -> int:
        return len(self.nodes)

    def __iter__(self) -> Iterator[str]:
        return iter(self.nodes)


class Router(Protocol):
    """Anything that can produce a route between two servers."""

    def route(self, net: Network, src: str, dst: str) -> Route:  # pragma: no cover
        """Return a route from ``src`` to ``dst`` in ``net``."""
        ...


def stretch(route: Route, shortest_links: int) -> float:
    """Multiplicative stretch of ``route`` over the shortest link-hop count.

    A zero-length shortest path (src == dst) has stretch 1.0 by convention.
    """
    if shortest_links == 0:
        return 1.0
    return route.link_hops / shortest_links
