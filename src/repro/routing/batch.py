"""Batch route extraction on the CSR kernel.

Two batch routers feed the :mod:`repro.traffic` engine:

* :func:`abccc_batch_routes` — the paper's digit-correction algorithm
  (:func:`repro.core.routing.abccc_route`, locality order) computed for
  *every flow at once* as numpy digit arithmetic on a fast-built ABCCC
  layout.  No node names, no per-flow Python: edge ids come straight
  from the closed forms :func:`repro.topology.fastbuild._generate_edges`
  lays the edge arrays out with, so a 163k-server permutation routes in
  milliseconds.  Route-for-route identical to the per-flow oracle (the
  tests assert edge-sequence equality).
* :func:`bfs_batch_routes` — shortest paths grouped by destination: one
  frontier BFS per *distinct* destination, then the deterministic
  lowest-indexed-predecessor backtrack the serve engine uses
  (:func:`repro.serve.engine._path_nodes` semantics) per flow.  Works on
  any compiled graph or alive-only masked view; unreachable flows come
  back as ``None`` paths, never exceptions.

:func:`batch_routes` dispatches: arithmetic routing when the graph is a
fast-built ABCCC, BFS otherwise — and under a
:class:`~repro.faults.mask.MaskedGraph` it routes arithmetically first,
then repairs only the flows whose healthy route touches a dead
node/edge by BFS on the surviving subgraph (the common case after a
small fault draw is that most routes survive untouched).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.topology.compiled import HAVE_NUMPY
from repro.traffic.routes import RouteSet

if HAVE_NUMPY:
    import numpy as _np


class BatchRoutingError(ValueError):
    """Raised when a batch router cannot serve the requested graph."""


# ----------------------------------------------------------------------
# vectorized ABCCC digit correction
# ----------------------------------------------------------------------
def _is_fast_abccc(graph) -> bool:
    layout = getattr(graph, "layout", None)
    return layout is not None and getattr(layout, "family", None) == "abccc"


def _rest_weight_table(n: int, k: int):
    """``W[l, q]`` = weight of digit position ``q`` in the rest-rank of
    the level-``l`` switch (0 at ``q == l``).

    Mirrors ``_generate_edges``: rest position ``p`` maps to digit
    position ``q = p`` below ``l`` and ``q = p + 1`` above, with
    MSB-first weights ``n^(k-1-p)``.
    """
    levels = k + 1
    table = _np.zeros((levels, levels), dtype=_np.int64)
    for l in range(levels):
        for q in range(levels):
            if q < l:
                table[l, q] = n ** (k - 1 - q)
            elif q > l:
                table[l, q] = n ** (k - q)
    return table


def _abccc_edge_buffer(layout, src_ordinals, dst_ordinals):
    """Per-flow edge-id walks as a padded buffer.

    Returns ``(buf, counts)``: ``buf[f, :counts[f]]`` is flow ``f``'s
    undirected edge-id sequence in route order.  Pure digit arithmetic —
    replays :func:`repro.core.routing.route_with_order` with the
    locality order, one vectorized pass per correction slot.
    """
    np = _np
    n, k, s = layout.n, layout.k, layout.s
    levels = k + 1
    c = layout.crossbar_size
    C = layout.num_crossbars
    has_csw = layout.has_crossbar_switch
    cb_edges = C * c if has_csw else 0  # level links start after these

    src = np.asarray(src_ordinals, dtype=np.int64)
    dst = np.asarray(dst_ordinals, dtype=np.int64)
    num_flows = len(src)
    s_enum, s_idx = src // c, src % c
    d_enum, d_idx = dst // c, dst % c

    # LSB-first digit matrices: ABCCC enumerates crossbars in rank order.
    pw = n ** np.arange(levels, dtype=np.int64)
    sd = (s_enum[:, None] // pw[None, :]) % n
    dd = (d_enum[:, None] // pw[None, :]) % n
    owner_vec = np.arange(levels, dtype=np.int64) // (s - 1)

    differ = sd != dd
    ndiff = differ.sum(axis=1)

    # Locality order as one argsort: rank 0 = source server's own owner
    # group, c+2 = destination's, owner+1 in between (middle groups by
    # ascending owner, levels ascending inside each group) — exactly
    # repro.core.permutation._locality_sequence.
    owner_row = owner_vec[None, :]
    first_present = (differ & (owner_row == s_idx[:, None])).any(axis=1)
    dst_present = (differ & (owner_row == d_idx[:, None])).any(axis=1)
    last_used = dst_present & ~(first_present & (d_idx == s_idx))
    is_first = differ & first_present[:, None] & (owner_row == s_idx[:, None])
    is_last = (
        differ & last_used[:, None] & (owner_row == d_idx[:, None]) & ~is_first
    )
    rank = np.where(is_first, 0, np.where(is_last, c + 2, owner_row + 1))
    key = np.where(differ, rank * (levels + 1) + np.arange(levels)[None, :], 2**40)
    order = np.argsort(key, axis=1, kind="stable")

    max_edges = 4 * levels + 2
    buf = np.empty((num_flows, max_edges), dtype=np.int64)
    cursor = np.zeros(num_flows, dtype=np.int64)

    def append(rows, values) -> None:
        buf[rows, cursor[rows]] = values
        cursor[rows] += 1

    cur_idx = s_idx.copy()
    cur_d = sd.copy()
    cur_enum = s_enum.copy()
    weight_table = _rest_weight_table(n, k)

    for slot in range(levels):
        rows = np.flatnonzero(ndiff > slot)
        if rows.size == 0:
            break
        level = order[rows, slot]
        owner = owner_vec[level]
        # transfer to the owning server of this level, if not there
        need = cur_idx[rows] != owner
        trows, towner = rows[need], owner[need]
        if trows.size:
            base = cur_enum[trows] * c
            append(trows, base + cur_idx[trows])
            append(trows, base + towner)
            cur_idx[trows] = towner
        # correct the digit through the level switch: two level links
        # sharing the switch's (level, rest-rank) slot group
        rest_rank = (cur_d[rows] * weight_table[level]).sum(axis=1)
        base = cb_edges + level * C + rest_rank * n
        old_digit = cur_d[rows, level]
        new_digit = dd[rows, level]
        append(rows, base + old_digit)
        append(rows, base + new_digit)
        cur_enum[rows] += (new_digit - old_digit) * pw[level]
        cur_d[rows, level] = new_digit

    # final transfer to the destination server's in-crossbar slot
    rows = np.flatnonzero(cur_idx != d_idx)
    if rows.size:
        base = cur_enum[rows] * c
        append(rows, base + cur_idx[rows])
        append(rows, base + d_idx[rows])
    return buf, cursor


def _buffer_to_routeset(graph, buf, counts, src_nodes, dst_nodes) -> RouteSet:
    offsets = _np.zeros(len(counts) + 1, dtype=_np.int64)
    _np.cumsum(counts, out=offsets[1:])
    mask = _np.arange(buf.shape[1])[None, :] < counts[:, None]
    return RouteSet.from_edge_arrays(
        graph, src_nodes, dst_nodes, buf[mask], offsets
    )


def abccc_batch_routes(graph, src_ordinals, dst_ordinals) -> RouteSet:
    """Locality-order digit-correction routes for all flows at once.

    ``src_ordinals`` / ``dst_ordinals`` are server ordinals (positions in
    ``graph.server_indices``).  ``graph`` must be a fast-built ABCCC.
    """
    if not _is_fast_abccc(graph):
        raise BatchRoutingError(
            "arithmetic batch routing needs a fast-built ABCCC graph; "
            "use bfs_batch_routes for other graphs"
        )
    layout = graph.layout
    buf, counts = _abccc_edge_buffer(layout, src_ordinals, dst_ordinals)
    servers = _np.asarray(graph.server_indices, dtype=_np.int64)
    return _buffer_to_routeset(
        graph,
        buf,
        counts,
        servers[_np.asarray(src_ordinals, dtype=_np.int64)],
        servers[_np.asarray(dst_ordinals, dtype=_np.int64)],
    )


# ----------------------------------------------------------------------
# grouped-by-destination BFS fallback
# ----------------------------------------------------------------------
def _backtrack(view, dist, src: int) -> List[int]:
    """Forward walk src -> dst stepping to the lowest-indexed neighbor
    one BFS level closer — the serve engine's determinism contract."""
    offsets, neighbors = view.offsets, view.neighbors
    path = [src]
    current = src
    for level in range(int(dist[src]), 0, -1):
        step = None
        for j in range(int(offsets[current]), int(offsets[current + 1])):
            candidate = int(neighbors[j])
            if int(dist[candidate]) == level - 1 and (step is None or candidate < step):
                step = candidate
        if step is None:  # pragma: no cover - BFS invariant
            raise BatchRoutingError("BFS backtrack found no predecessor")
        path.append(step)
        current = step
    return path


def bfs_node_paths(
    view, src_nodes, dst_nodes
) -> List[Optional[List[int]]]:
    """Shortest node paths per flow; ``None`` where unreachable.

    One BFS per *distinct destination* (``view.bfs_distances``), shared
    by every flow targeting it, then a deterministic per-flow backtrack.
    """
    src_nodes = _np.asarray(src_nodes, dtype=_np.int64)
    dst_nodes = _np.asarray(dst_nodes, dtype=_np.int64)
    paths: List[Optional[List[int]]] = [None] * len(src_nodes)
    unique_dsts, inverse = _np.unique(dst_nodes, return_inverse=True)
    for which, dst in enumerate(unique_dsts):
        flows = _np.flatnonzero(inverse == which)
        dist = view.bfs_distances(int(dst))
        for f in flows:
            src = int(src_nodes[f])
            if int(dist[src]) < 0:
                continue  # unreachable: stays None
            paths[int(f)] = _backtrack(view, dist, src)
    return paths


def bfs_batch_routes(graph, src_nodes, dst_nodes, view=None) -> RouteSet:
    """Shortest-path :class:`RouteSet` via grouped-by-destination BFS.

    ``view`` (e.g. a masked graph's ``sweep_view()``) carries the
    adjacency to search; edge ids always resolve against ``graph``, so
    a degraded route still indexes the parent capacity arrays.
    """
    paths = bfs_node_paths(view if view is not None else graph, src_nodes, dst_nodes)
    return RouteSet.from_node_paths(graph, paths, src_nodes, dst_nodes)


# ----------------------------------------------------------------------
# dispatch, healthy or degraded
# ----------------------------------------------------------------------
def _edge_alive(graph, masked):
    """Per-edge-id survival under a mask: both endpoints alive and the
    edge not explicitly failed."""
    node_alive = _np.asarray(masked.node_alive, dtype=bool)
    edge_u = _np.asarray(graph.edge_u, dtype=_np.int64)
    edge_v = _np.asarray(graph.edge_v, dtype=_np.int64)
    alive = node_alive[edge_u] & node_alive[edge_v]
    dead_edges = getattr(masked, "dead_edge_ids", None)
    if dead_edges is not None and len(dead_edges):
        alive[_np.asarray(dead_edges, dtype=_np.int64)] = False
    return alive


def _scatter_segments(dst_flat, dst_offsets, rows, seg_flat, seg_offsets) -> None:
    """Copy ragged segments into their destination rows, vectorized."""
    counts = _np.diff(seg_offsets)
    total = int(counts.sum())
    if total == 0:
        return
    local = _np.arange(total, dtype=_np.int64) - _np.repeat(
        seg_offsets[:-1], counts
    )
    dst_idx = local + _np.repeat(dst_offsets[rows], counts)
    src_idx = local + _np.repeat(seg_offsets[:-1], counts)
    dst_flat[dst_idx] = seg_flat[src_idx]


def batch_routes(graph, matrix, masked=None) -> RouteSet:
    """Routes for a :class:`~repro.traffic.matrix.TrafficMatrix`.

    Healthy fast-built ABCCC: pure arithmetic.  Degraded ABCCC:
    arithmetic first, then BFS repair of only the flows whose route
    died.  Everything else: grouped-by-destination BFS (on the masked
    sweep view when degraded).
    """
    servers = _np.asarray(graph.server_indices, dtype=_np.int64)
    src_ord = _np.asarray(matrix.src, dtype=_np.int64)
    dst_ord = _np.asarray(matrix.dst, dtype=_np.int64)
    if src_ord.size and (
        int(src_ord.max()) >= len(servers) or int(dst_ord.max()) >= len(servers)
    ):
        raise BatchRoutingError(
            f"matrix is over {matrix.num_servers} servers but the graph has "
            f"{len(servers)}"
        )
    src_nodes, dst_nodes = servers[src_ord], servers[dst_ord]

    if not _is_fast_abccc(graph):
        view = masked.sweep_view() if masked is not None else graph
        routes = bfs_batch_routes(graph, src_nodes, dst_nodes, view=view)
        if masked is not None:
            routes = _mask_endpoints(routes, masked)
        return routes

    buf, counts = _abccc_edge_buffer(graph.layout, src_ord, dst_ord)
    if masked is None:
        return _buffer_to_routeset(graph, buf, counts, src_nodes, dst_nodes)

    # degraded: keep surviving arithmetic routes, BFS-repair the rest
    np = _np
    edge_alive = _edge_alive(graph, masked)
    node_alive = np.asarray(masked.node_alive, dtype=bool)
    in_range = np.arange(buf.shape[1])[None, :] < counts[:, None]
    dead_hop = in_range & ~edge_alive[np.where(in_range, buf, 0)]
    endpoint_dead = ~node_alive[src_nodes] | ~node_alive[dst_nodes]
    broken = dead_hop.any(axis=1) & ~endpoint_dead
    unreachable = endpoint_dead.copy()

    new_counts = counts.copy()
    repaired_rows = np.flatnonzero(broken)
    seg_flat = np.empty(0, dtype=np.int64)
    seg_offsets = np.zeros(1, dtype=np.int64)
    if repaired_rows.size:
        view = masked.sweep_view()
        paths = bfs_node_paths(
            view, src_nodes[repaired_rows], dst_nodes[repaired_rows]
        )
        repaired = RouteSet.from_node_paths(
            graph, paths, src_nodes[repaired_rows], dst_nodes[repaired_rows]
        )
        seg_flat = np.asarray(repaired.edge_ids, dtype=np.int64)
        seg_offsets = np.asarray(repaired.offsets, dtype=np.int64)
        new_counts[repaired_rows] = repaired.hop_counts
        unreachable[repaired_rows] = repaired.unreachable
    new_counts[endpoint_dead] = 0

    offsets = np.zeros(len(new_counts) + 1, dtype=np.int64)
    np.cumsum(new_counts, out=offsets[1:])
    edge_ids = np.empty(int(offsets[-1]), dtype=np.int64)
    keep_rows = np.flatnonzero(~broken & ~endpoint_dead)
    healthy_offsets = np.zeros(len(counts) + 1, dtype=np.int64)
    np.cumsum(counts, out=healthy_offsets[1:])
    healthy_flat = buf[in_range]
    if keep_rows.size:
        seg = _ragged_take(healthy_flat, healthy_offsets, keep_rows)
        _scatter_segments(edge_ids, offsets, keep_rows, seg[0], seg[1])
    if repaired_rows.size:
        _scatter_segments(edge_ids, offsets, repaired_rows, seg_flat, seg_offsets)
    return RouteSet.from_edge_arrays(
        graph, src_nodes, dst_nodes, edge_ids, offsets, unreachable
    )


def _ragged_take(flat, offsets, rows) -> Tuple[Sequence[int], Sequence[int]]:
    """``(segments, segment_offsets)`` of ``rows``' slices of a ragged array."""
    counts = offsets[rows + 1] - offsets[rows]
    out_offsets = _np.zeros(len(rows) + 1, dtype=_np.int64)
    _np.cumsum(counts, out=out_offsets[1:])
    total = int(out_offsets[-1])
    idx = (
        _np.arange(total, dtype=_np.int64)
        - _np.repeat(out_offsets[:-1], counts)
        + _np.repeat(offsets[rows], counts)
    )
    return flat[idx], out_offsets


def _mask_endpoints(routes: RouteSet, masked) -> RouteSet:
    """Mark flows with a dead endpoint unreachable (BFS already returns
    empty paths for them when the view dropped the node's entries, but a
    dead *isolated-yet-present* endpoint must not route to itself)."""
    node_alive = _np.asarray(masked.node_alive, dtype=bool)
    endpoint_dead = (
        ~node_alive[_np.asarray(routes.src_nodes, dtype=_np.int64)]
        | ~node_alive[_np.asarray(routes.dst_nodes, dtype=_np.int64)]
    )
    if not bool(endpoint_dead.any()):
        return routes
    counts = _np.asarray(routes.hop_counts).copy()
    counts[endpoint_dead] = 0
    offsets = _np.zeros(len(counts) + 1, dtype=_np.int64)
    _np.cumsum(counts, out=offsets[1:])
    keep = _np.repeat(~endpoint_dead, routes.hop_counts)
    return RouteSet.from_edge_arrays(
        routes.graph,
        routes.src_nodes,
        routes.dst_nodes,
        _np.asarray(routes.edge_ids)[keep],
        offsets,
        _np.asarray(routes.unreachable) | endpoint_dead,
    )
