"""Static forwarding tables and table-driven forwarding.

The simulators forward packets hop by hop; this module provides the
forwarding state a real deployment would install: per-node next-hop maps
toward each destination server.  Tables are built from BFS trees (shortest
paths) or from an arbitrary set of precomputed routes (e.g. ABCCC
digit-correction routes), so the packet simulator can exercise the exact
paths the topology-native routing algorithm produces.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Optional, Tuple

from repro.routing.base import Route, RoutingError
from repro.topology.graph import Network


class ForwardingTable:
    """``table[node][destination] -> next hop`` forwarding state."""

    def __init__(self) -> None:
        self._next: Dict[str, Dict[str, str]] = {}

    def set_entry(self, node: str, destination: str, next_hop: str) -> None:
        self._next.setdefault(node, {})[destination] = next_hop

    def next_hop(self, node: str, destination: str) -> str:
        try:
            return self._next[node][destination]
        except KeyError:
            raise RoutingError(
                f"no forwarding entry at {node!r} for destination {destination!r}"
            ) from None

    def has_entry(self, node: str, destination: str) -> bool:
        return destination in self._next.get(node, {})

    def entries(self) -> Iterable[Tuple[str, str, str]]:
        """Yield ``(node, destination, next_hop)`` triples."""
        for node, table in self._next.items():
            for destination, next_hop in table.items():
                yield node, destination, next_hop

    @property
    def size(self) -> int:
        """Total number of installed entries (a state-cost metric)."""
        return sum(len(t) for t in self._next.values())

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_shortest_paths(
        cls, net: Network, destinations: Optional[Iterable[str]] = None
    ) -> "ForwardingTable":
        """Install BFS-tree entries toward each destination server."""
        table = cls()
        targets = list(destinations) if destinations is not None else net.servers
        for destination in targets:
            # BFS outward from the destination: each settled node's parent
            # (toward the destination) is its next hop.
            parent: Dict[str, str] = {destination: destination}
            queue = deque([destination])
            while queue:
                u = queue.popleft()
                for v in net.neighbors(u):
                    if v in parent:
                        continue
                    parent[v] = u
                    table.set_entry(v, destination, u)
                    queue.append(v)
        return table

    @classmethod
    def from_routes(cls, routes: Iterable[Route]) -> "ForwardingTable":
        """Install the hops of explicit routes.

        Later routes overwrite earlier entries on conflicting
        ``(node, destination)`` pairs — callers providing deterministic
        per-destination routing (one route per source) never conflict
        inconsistently in the topologies used here.
        """
        table = cls()
        for route in routes:
            destination = route.destination
            for u, v in route.edges():
                table.set_entry(u, destination, v)
        return table

    # ------------------------------------------------------------------
    # forwarding
    # ------------------------------------------------------------------
    def forward(
        self, net: Network, source: str, destination: str, max_hops: Optional[int] = None
    ) -> Route:
        """Walk the table from ``source`` to ``destination``.

        Raises :class:`RoutingError` on a missing entry, a dead link, or a
        forwarding loop (detected by ``max_hops``, default ``2 * |V|``).
        """
        limit = max_hops if max_hops is not None else 2 * len(net)
        nodes = [source]
        current = source
        while current != destination:
            if len(nodes) - 1 >= limit:
                raise RoutingError(
                    f"forwarding loop: exceeded {limit} hops from "
                    f"{source!r} toward {destination!r}"
                )
            nxt = self.next_hop(current, destination)
            if not net.has_link(current, nxt):
                raise RoutingError(
                    f"stale entry at {current!r}: link to {nxt!r} is down"
                )
            nodes.append(nxt)
            current = nxt
        return Route.of(nodes)
