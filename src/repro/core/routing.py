"""One-to-one digit-correction routing for ABCCC.

``abccc_route`` implements the paper's routing algorithm (DESIGN.md §1.4):
correct the differing digits of the crossbar address in a chosen
permutation order; before correcting level ``i``, transfer inside the
current crossbar to the server owning level ``i`` (two link-hops through
the crossbar switch) unless already there; each correction crosses the
level-``i`` switch (two link-hops); finally transfer to the destination
server's index if needed.

The route is computed purely from addresses — no graph search — in
``O(k + c)`` time, which is the property that makes the scheme deployable:
every intermediate server can make the same computation locally.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.address import (
    AbcccParams,
    CrossbarSwitchAddress,
    LevelSwitchAddress,
    ServerAddress,
)
from repro.core.permutation import generate, transfer_count
from repro.routing.base import Route, RoutingError


def abccc_route(
    params: AbcccParams,
    src: ServerAddress,
    dst: ServerAddress,
    strategy: str = "locality",
    seed: Optional[int] = None,
    rotation: int = 0,
) -> Route:
    """Route between two servers, correcting digits in ``strategy`` order."""
    order = generate(params, src, dst, strategy=strategy, seed=seed, rotation=rotation)
    return route_with_order(params, src, dst, order)


def route_with_order(
    params: AbcccParams,
    src: ServerAddress,
    dst: ServerAddress,
    order: Sequence[int],
) -> Route:
    """Route correcting exactly the levels in ``order``, in that order.

    ``order`` must contain each differing level exactly once (levels whose
    digits already agree are permitted and skipped); raises
    :class:`RoutingError` if the order leaves digits uncorrected.
    """
    params.check_digits(src.digits)
    params.check_digits(dst.digits)
    params.check_index(src.index)
    params.check_index(dst.index)

    nodes: List[str] = [src.name]
    digits = src.digits
    here = src.index

    for level in order:
        params.check_level(level)
        if digits[level] == dst.digits[level]:
            continue
        owner = params.owner_of(level)
        if here != owner:
            _crossbar_transfer(params, nodes, digits, owner)
            here = owner
        switch = LevelSwitchAddress.serving(level, digits)
        digits = digits[:level] + (dst.digits[level],) + digits[level + 1 :]
        nodes.append(switch.name)
        nodes.append(ServerAddress(digits, owner).name)

    if digits != dst.digits:
        missing = [i for i, (a, b) in enumerate(zip(digits, dst.digits)) if a != b]
        raise RoutingError(f"order {list(order)} leaves levels {missing} uncorrected")

    if here != dst.index:
        _crossbar_transfer(params, nodes, digits, dst.index)

    return Route.of(nodes)


def _crossbar_transfer(
    params: AbcccParams, nodes: List[str], digits: tuple, to_index: int
) -> None:
    """Append the two hops through the local crossbar switch."""
    if not params.has_crossbar_switch:
        raise RoutingError(
            "intra-crossbar transfer required but crossbars are singletons; "
            "this indicates an owner-index bug"
        )
    nodes.append(CrossbarSwitchAddress(digits).name)
    nodes.append(ServerAddress(digits, to_index).name)


def route_length_bound(params: AbcccParams, src: ServerAddress, dst: ServerAddress) -> int:
    """Exact link-hop length of the locality-aware route, from addresses only.

    Useful for analytic path-length distributions without materialising
    routes: ``2 * (#differing digits + #crossbar transfers)``.
    """
    order = generate(params, src, dst, strategy="locality")
    transfers = transfer_count(params, src.index, dst.index, order)
    return 2 * (len(order) + transfers)


def logical_distance(params: AbcccParams, src: ServerAddress, dst: ServerAddress) -> int:
    """Server-hop length of the locality-aware route (half the link hops)."""
    return route_length_bound(params, src, dst) // 2
