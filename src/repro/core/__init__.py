"""The paper's contribution: ABCCC topology, addressing, routing, expansion.

Public surface::

    from repro.core import AbcccParams, AbcccSpec, build_abccc
    from repro.core import abccc_route, broadcast_tree, plan_abccc_growth
"""

from repro.core.address import (
    AbcccParams,
    AddressError,
    CrossbarSwitchAddress,
    LevelSwitchAddress,
    ServerAddress,
)
from repro.core.broadcast import BroadcastTree, broadcast_tree, multicast_tree
from repro.core.expansion import (
    ExpansionError,
    ExpansionPlan,
    plan_abccc_growth,
    plan_bccc_growth,
    plan_bcube_growth,
    plan_expansion,
    plan_fattree_growth,
)
from repro.core.fault_routing import FaultRouteResult, fault_tolerant_route
from repro.core.paths import (
    crossbar_disjoint_routes,
    edge_disjoint_path_count,
    node_disjoint_path_count,
    rotation_routes,
)
from repro.core.permutation import STRATEGIES as PERMUTATION_STRATEGIES
from repro.core.permutation import differing_levels, generate as generate_permutation
from repro.core.planner import Requirements, best as best_configuration, plan as plan_configurations
from repro.core.routing import abccc_route, logical_distance, route_with_order
from repro.core.source_routing import (
    PLACEMENT_POLICIES,
    AdaptiveSourceRouter,
    LinkLoadTracker,
    place_flows_adaptive,
    place_flows_fixed,
    place_flows_hashed,
)
from repro.core.topology import AbcccSpec, build_abccc
from repro.topology.registry import register as _register

_register(AbcccSpec)

__all__ = [
    "AbcccParams",
    "AbcccSpec",
    "AdaptiveSourceRouter",
    "AddressError",
    "LinkLoadTracker",
    "PLACEMENT_POLICIES",
    "Requirements",
    "best_configuration",
    "plan_configurations",
    "place_flows_adaptive",
    "place_flows_fixed",
    "place_flows_hashed",
    "BroadcastTree",
    "CrossbarSwitchAddress",
    "ExpansionError",
    "ExpansionPlan",
    "FaultRouteResult",
    "LevelSwitchAddress",
    "PERMUTATION_STRATEGIES",
    "ServerAddress",
    "abccc_route",
    "broadcast_tree",
    "build_abccc",
    "crossbar_disjoint_routes",
    "differing_levels",
    "edge_disjoint_path_count",
    "fault_tolerant_route",
    "generate_permutation",
    "logical_distance",
    "multicast_tree",
    "node_disjoint_path_count",
    "plan_abccc_growth",
    "plan_bccc_growth",
    "plan_bcube_growth",
    "plan_expansion",
    "plan_fattree_growth",
    "rotation_routes",
    "route_with_order",
]
