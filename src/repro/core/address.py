"""ABCCC parameters and the addressing scheme.

An ``ABCCC(n, k, s)`` network (see DESIGN.md §1.2) is parameterised by the
switch radix ``n``, the order ``k`` (BCube levels ``0 … k``) and the number
of NIC ports per server ``s``.  Each server spends one port on its local
*crossbar* switch and ``s - 1`` ports on BCube levels, so a crossbar holds
``c = ceil((k+1) / (s-1))`` servers; server ``j`` of a crossbar *owns*
levels ``j*(s-1) … min((j+1)*(s-1) - 1, k)``.

Addresses:

* a **crossbar** is addressed by its digit vector
  ``x = (x_0, …, x_k)``, each digit in ``[0, n)``.  We index digit tuples
  by *level* (``digits[i]`` is the level-``i`` digit); human-readable forms
  print most-significant (level ``k``) first, matching the literature.
* a **server** is ``(x; j)`` — crossbar digits plus in-crossbar index;
* the **crossbar switch** of ``x`` is ``⟨C; x⟩``;
* the **level-i switch** is ``⟨L; i; x without digit i⟩`` — it connects the
  ``n`` level-``i`` owner servers of the crossbars that differ from each
  other only in digit ``i``.

Every address has a dense integer encoding (``rank``) used by simulators,
and a canonical node-name string used as the graph key.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import cached_property, lru_cache
from typing import Iterator, List, Sequence, Tuple


class AddressError(ValueError):
    """Raised on malformed addresses or out-of-range digits."""


@dataclass(frozen=True)
class AbcccParams:
    """The ``(n, k, s)`` parameter triple with derived quantities.

    Attributes:
        n: switch radix (and digit base), ``n >= 2``.
        k: order; levels are ``0 … k``, so there are ``k + 1`` levels.
        s: NIC ports per server, ``s >= 2``.  ``s = 2`` gives BCCC;
           ``s >= k + 2`` degenerates to BCube (crossbars of one server).
    """

    n: int
    k: int
    s: int

    def __post_init__(self) -> None:
        if self.n < 2:
            raise AddressError(f"switch radix n must be >= 2, got {self.n}")
        if self.k < 0:
            raise AddressError(f"order k must be >= 0, got {self.k}")
        if self.s < 2:
            raise AddressError(f"server ports s must be >= 2, got {self.s}")

    # ------------------------------------------------------------------
    # derived structure
    # ------------------------------------------------------------------
    @property
    def levels(self) -> int:
        """Number of BCube levels, ``k + 1``."""
        return self.k + 1

    @property
    def crossbar_size(self) -> int:
        """Servers per crossbar, ``c = ceil((k+1) / (s-1))``."""
        return math.ceil(self.levels / (self.s - 1))

    @property
    def has_crossbar_switch(self) -> bool:
        """Crossbar switches exist only when a crossbar has >= 2 servers."""
        return self.crossbar_size > 1

    @property
    def num_crossbars(self) -> int:
        return self.n ** self.levels

    def owner_of(self, level: int) -> int:
        """In-crossbar index of the server that owns ``level``."""
        self.check_level(level)
        return level // (self.s - 1)

    def levels_of(self, index: int) -> range:
        """The contiguous levels owned by server ``index`` of any crossbar."""
        self.check_index(index)
        start = index * (self.s - 1)
        stop = min(start + self.s - 1, self.levels)
        return range(start, stop)

    def level_ports_used(self, index: int) -> int:
        """How many of server ``index``'s level ports are wired."""
        return len(self.levels_of(index))

    def spare_level_ports(self, index: int) -> int:
        """Unwired level ports on server ``index`` (room for expansion)."""
        return (self.s - 1) - self.level_ports_used(index)

    # ------------------------------------------------------------------
    # validation helpers
    # ------------------------------------------------------------------
    def check_level(self, level: int) -> None:
        """Raise :class:`AddressError` unless ``0 <= level <= k``."""
        if not 0 <= level <= self.k:
            raise AddressError(f"level {level} out of range [0, {self.k}]")

    def check_index(self, index: int) -> None:
        """Raise :class:`AddressError` unless ``0 <= index < c``."""
        if not 0 <= index < self.crossbar_size:
            raise AddressError(
                f"server index {index} out of range [0, {self.crossbar_size})"
            )


    def check_digits(self, digits: Sequence[int]) -> Tuple[int, ...]:
        """Validate a crossbar digit vector and return it as a tuple."""
        digits = tuple(digits)
        if len(digits) != self.levels:
            raise AddressError(
                f"expected {self.levels} digits for k={self.k}, got {len(digits)}"
            )
        for i, digit in enumerate(digits):
            if not 0 <= digit < self.n:
                raise AddressError(
                    f"digit {digit} at level {i} out of range [0, {self.n})"
                )
        return digits

    # ------------------------------------------------------------------
    # enumeration and ranking
    # ------------------------------------------------------------------
    def crossbar_rank(self, digits: Sequence[int]) -> int:
        """Dense integer id of a crossbar: ``sum(x_i * n^i)``."""
        digits = self.check_digits(digits)
        rank = 0
        for level in range(self.k, -1, -1):
            rank = rank * self.n + digits[level]
        return rank

    def crossbar_digits(self, rank: int) -> Tuple[int, ...]:
        """Inverse of :meth:`crossbar_rank`."""
        if not 0 <= rank < self.num_crossbars:
            raise AddressError(f"crossbar rank {rank} out of range")
        digits: List[int] = []
        for _ in range(self.levels):
            digits.append(rank % self.n)
            rank //= self.n
        return tuple(digits)

    def iter_crossbars(self) -> Iterator[Tuple[int, ...]]:
        """All crossbar digit vectors, in rank order."""
        for rank in range(self.num_crossbars):
            yield self.crossbar_digits(rank)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"ABCCC(n={self.n}, k={self.k}, s={self.s})"


@lru_cache(maxsize=65536)
def _digits_msb_first(digits: Tuple[int, ...]) -> str:
    return ".".join(str(d) for d in reversed(digits))


def _parse_digits_msb_first(text: str) -> Tuple[int, ...]:
    try:
        msb_first = [int(part) for part in text.split(".")]
    except ValueError:
        raise AddressError(f"bad digit string {text!r}") from None
    return tuple(reversed(msb_first))


@dataclass(frozen=True, order=True)
class ServerAddress:
    """A server: crossbar digits (level-indexed) plus in-crossbar index."""

    digits: Tuple[int, ...]
    index: int

    def digit(self, level: int) -> int:
        return self.digits[level]

    @cached_property
    def name(self) -> str:
        """Canonical graph-node name, e.g. ``s2.0.1/0`` (MSB first).

        Cached per instance (``cached_property`` writes to ``__dict__``,
        which frozen dataclasses still have) — the fault-routing walk
        re-reads the names of the same few addresses constantly.
        """
        return f"s{_digits_msb_first(self.digits)}/{self.index}"

    @classmethod
    def parse(cls, name: str) -> "ServerAddress":
        """Parse a canonical server name (cached — instances are frozen)."""
        return _parse_server(name)

    def rank(self, params: AbcccParams) -> int:
        """Dense id in ``[0, N)``: crossbars-major, index-minor."""
        return params.crossbar_rank(self.digits) * params.crossbar_size + self.index

    @classmethod
    def from_rank(cls, params: AbcccParams, rank: int) -> "ServerAddress":
        size = params.crossbar_size
        total = params.num_crossbars * size
        if not 0 <= rank < total:
            raise AddressError(f"server rank {rank} out of range [0, {total})")
        return cls(params.crossbar_digits(rank // size), rank % size)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


@lru_cache(maxsize=65536)
def _parse_server(name: str) -> "ServerAddress":
    if not name.startswith("s") or "/" not in name:
        raise AddressError(f"not a server name: {name!r}")
    body, _, idx = name[1:].rpartition("/")
    try:
        index = int(idx)
    except ValueError:
        raise AddressError(f"bad server index in {name!r}") from None
    return ServerAddress(_parse_digits_msb_first(body), index)


@dataclass(frozen=True, order=True)
class CrossbarSwitchAddress:
    """The local switch of one crossbar."""

    digits: Tuple[int, ...]

    @cached_property
    def name(self) -> str:
        """Canonical graph-node name, e.g. ``c2.0.1`` (MSB first)."""
        return f"c{_digits_msb_first(self.digits)}"

    @classmethod
    def parse(cls, name: str) -> "CrossbarSwitchAddress":
        if not name.startswith("c"):
            raise AddressError(f"not a crossbar-switch name: {name!r}")
        return cls(_parse_digits_msb_first(name[1:]))

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


@dataclass(frozen=True, order=True)
class LevelSwitchAddress:
    """A level-``level`` switch, identified by the other ``k`` digits.

    ``rest`` holds the digit vector with the level's own position removed,
    still level-indexed (``rest[i]`` is the digit of level ``i`` for
    ``i < level`` and of level ``i + 1`` for ``i >= level``).
    """

    level: int
    rest: Tuple[int, ...]

    @cached_property
    def name(self) -> str:
        """Canonical graph-node name, e.g. ``l1:2.*.1`` — the ``*`` marks
        the varying digit position (MSB first)."""
        full = list(self.rest[: self.level]) + ["*"] + list(self.rest[self.level :])
        text = ".".join(str(d) for d in reversed(full))
        return f"l{self.level}:{text}"

    @classmethod
    def parse(cls, name: str) -> "LevelSwitchAddress":
        if not name.startswith("l") or ":" not in name:
            raise AddressError(f"not a level-switch name: {name!r}")
        head, _, body = name.partition(":")
        try:
            level = int(head[1:])
        except ValueError:
            raise AddressError(f"bad level in {name!r}") from None
        parts = list(reversed(body.split(".")))
        if parts[level] != "*":
            raise AddressError(f"wildcard not at level {level} in {name!r}")
        try:
            rest = tuple(
                int(p) for i, p in enumerate(parts) if i != level
            )
        except ValueError:
            raise AddressError(f"bad digits in {name!r}") from None
        return cls(level, rest)

    def member_digits(self, value: int) -> Tuple[int, ...]:
        """Digits of the member crossbar whose level digit equals ``value``."""
        return self.rest[: self.level] + (value,) + self.rest[self.level :]

    @classmethod
    def serving(cls, level: int, digits: Sequence[int]) -> "LevelSwitchAddress":
        """The level switch that serves crossbar ``digits`` at ``level``."""
        digits = tuple(digits)
        return cls(level, digits[:level] + digits[level + 1 :])

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name
