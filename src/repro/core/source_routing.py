"""Adaptive multipath source routing for ABCCC (BSR-style).

BCube ships "BCube Source Routing": the source probes its parallel paths
and sends each flow down the least-congested one.  ABCCC inherits the
same opportunity — the ``k+1`` rotation routes of
:mod:`repro.core.paths` are crossbar-disjoint — so this module provides
the equivalent machinery:

* :class:`LinkLoadTracker` — the congestion state a source consults
  (in deployment: probe results; here: the exact current placement);
* :class:`AdaptiveSourceRouter` — per-flow path selection minimising the
  bottleneck (most-loaded link) of the chosen path, with deterministic
  hash tie-breaking, registering the choice so later flows see it;
* oblivious reference policies (``fixed`` locality path, ``hashed``
  rotation) for the E3 experiment to compare against.

Greedy sequential placement is the standard online model: flows arrive
one at a time and each picks the best path given what is already placed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.address import AbcccParams, ServerAddress
from repro.core.paths import rotation_routes
from repro.core.routing import abccc_route
from repro.routing.base import Route
from repro.routing.ecmp import fnv1a
from repro.sim.traffic import Flow
from repro.topology.graph import Network
from repro.topology.node import link_key


class LinkLoadTracker:
    """Current number of flows placed on each undirected link."""

    def __init__(self, net: Network):
        self._net = net
        self._loads: Dict[Tuple[str, str], float] = {}

    def load(self, u: str, v: str) -> float:
        return self._loads.get(link_key(u, v), 0.0)

    def bottleneck(self, route: Route) -> float:
        """The heaviest current load along ``route`` (0 on empty links)."""
        if route.link_hops == 0:
            return 0.0
        return max(self.load(u, v) for u, v in route.edges())

    def total(self, route: Route) -> float:
        """Sum of loads along the route — the secondary tie-breaker."""
        return sum(self.load(u, v) for u, v in route.edges())

    def place(self, route: Route, weight: float = 1.0) -> None:
        for u, v in route.edges():
            key = link_key(u, v)
            self._loads[key] = self._loads.get(key, 0.0) + weight

    def remove(self, route: Route, weight: float = 1.0) -> None:
        for u, v in route.edges():
            key = link_key(u, v)
            value = self._loads.get(key, 0.0) - weight
            if value <= 1e-12:
                self._loads.pop(key, None)
            else:
                self._loads[key] = value

    @property
    def max_load(self) -> float:
        return max(self._loads.values()) if self._loads else 0.0


@dataclass
class PathChoice:
    """The outcome of one adaptive selection (for inspection/tests)."""

    route: Route
    candidates: int
    bottleneck_before: float


class AdaptiveSourceRouter:
    """Least-congested-path selection over the rotation path set."""

    def __init__(self, params: AbcccParams, net: Network):
        self._params = params
        self._net = net
        self.tracker = LinkLoadTracker(net)

    def candidates(self, src: ServerAddress, dst: ServerAddress) -> List[Route]:
        """The rotation path family (>= 1 route, crossbar-disjoint when
        all digits differ)."""
        return rotation_routes(self._params, src, dst)

    def choose(self, flow: Flow) -> PathChoice:
        """Pick, place, and return the least-congested candidate path.

        Selection key: (bottleneck load, total load, link hops, hash) —
        strictly deterministic for a given placement history.
        """
        src = ServerAddress.parse(flow.src)
        dst = ServerAddress.parse(flow.dst)
        options = self.candidates(src, dst)
        seed = fnv1a(flow.flow_id)

        def key(indexed: Tuple[int, Route]):
            index, route = indexed
            return (
                self.tracker.bottleneck(route),
                self.tracker.total(route),
                route.link_hops,
                (index + seed) % len(options),
            )

        _, best = min(enumerate(options), key=key)
        before = self.tracker.bottleneck(best)
        self.tracker.place(best)
        return PathChoice(route=best, candidates=len(options), bottleneck_before=before)

    def route(self, net: Network, src: str, dst: str, flow_id: str = "") -> Route:
        """Router-protocol adapter (used by ``route_all``)."""
        if net is not self._net:
            raise ValueError("AdaptiveSourceRouter is bound to its network")
        choice = self.choose(Flow(flow_id or f"{src}->{dst}", src, dst))
        return choice.route


def place_flows_adaptive(
    params: AbcccParams, net: Network, flows: Sequence[Flow]
) -> Dict[str, Route]:
    """Greedy online placement of all flows with adaptive selection."""
    router = AdaptiveSourceRouter(params, net)
    return {flow.flow_id: router.choose(flow).route for flow in flows}


def place_flows_fixed(
    params: AbcccParams, net: Network, flows: Sequence[Flow]
) -> Dict[str, Route]:
    """Oblivious reference: every flow takes its locality route."""
    return {
        flow.flow_id: abccc_route(
            params,
            ServerAddress.parse(flow.src),
            ServerAddress.parse(flow.dst),
            strategy="locality",
        )
        for flow in flows
    }


def place_flows_hashed(
    params: AbcccParams, net: Network, flows: Sequence[Flow]
) -> Dict[str, Route]:
    """Oblivious reference: flow-hash pick among the rotation paths."""
    routes: Dict[str, Route] = {}
    for flow in flows:
        options = rotation_routes(
            params, ServerAddress.parse(flow.src), ServerAddress.parse(flow.dst)
        )
        routes[flow.flow_id] = options[fnv1a(flow.flow_id) % len(options)]
    return routes


def place_flows_vlb(
    params: AbcccParams, net: Network, flows: Sequence[Flow]
) -> Dict[str, Route]:
    """Valiant load balancing: bounce every flow off a hash-chosen
    random intermediate server (VL2's trick, on ABCCC).

    Two locality routes are concatenated (src -> intermediate -> dst), so
    a VLB path may legally revisit nodes — the flow solver charges each
    crossing.  Oblivious to traffic yet spreads *any* pattern, trading
    doubled path length for worst-case immunity.
    """
    total = params.num_crossbars * params.crossbar_size
    routes: Dict[str, Route] = {}
    for flow in flows:
        src = ServerAddress.parse(flow.src)
        dst = ServerAddress.parse(flow.dst)
        middle = ServerAddress.from_rank(params, fnv1a(flow.flow_id) % total)
        if middle in (src, dst):
            routes[flow.flow_id] = abccc_route(params, src, dst, strategy="locality")
            continue
        first = abccc_route(params, src, middle, strategy="locality")
        second = abccc_route(params, middle, dst, strategy="locality")
        routes[flow.flow_id] = first.concat(second)
    return routes


PLACEMENT_POLICIES = {
    "adaptive": place_flows_adaptive,
    "fixed": place_flows_fixed,
    "hashed": place_flows_hashed,
    "vlb": place_flows_vlb,
}
