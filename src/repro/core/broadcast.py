"""One-to-all and one-to-many communication for ABCCC (GBC3 extension).

The broadcast scheme is the dimensional sweep the cube family supports
natively: the source first informs its own crossbar through the crossbar
switch, then for each level ``0 … k`` every informed crossbar's owner
server forwards through its level switch to the ``n - 1`` neighbouring
crossbars, each of which informs its local servers.  The result is a
spanning tree whose physical links are used exactly once (link stress 1)
and whose depth is at most the network diameter.

One-to-many multicast prunes that tree to the union of source→destination
tree paths.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.core.address import (
    AbcccParams,
    CrossbarSwitchAddress,
    LevelSwitchAddress,
    ServerAddress,
)
from repro.routing.base import Route, RoutingError
from repro.topology.graph import Network


@dataclass
class BroadcastTree:
    """A spanning (or multicast) tree over servers.

    ``parent`` maps each covered server name to its logical parent server
    (``None`` for the source); ``via`` maps it to the switch name the
    parent-child message traverses.
    """

    source: str
    parent: Dict[str, Optional[str]]
    via: Dict[str, str]

    @property
    def servers(self) -> List[str]:
        return list(self.parent)

    def depth(self, server: str) -> int:
        """Logical server-hop depth of ``server`` in the tree."""
        depth = 0
        node = server
        while True:
            up = self.parent[node]
            if up is None:
                return depth
            depth += 1
            node = up
            if depth > len(self.parent):
                raise RoutingError("cycle in broadcast tree")

    @property
    def max_depth(self) -> int:
        return max(self.depth(s) for s in self.parent)

    def physical_edges(self) -> List[Tuple[str, str]]:
        """Every physical link the tree's messages traverse (with repeats)."""
        edges: List[Tuple[str, str]] = []
        for child, up in self.parent.items():
            if up is None:
                continue
            switch = self.via[child]
            edges.append((up, switch))
            edges.append((switch, child))
        return edges

    def link_stress(self) -> int:
        """Max number of tree messages crossing any single physical link."""
        counts: Dict[Tuple[str, str], int] = {}
        for u, v in self.physical_edges():
            key = (u, v) if u < v else (v, u)
            counts[key] = counts.get(key, 0) + 1
        return max(counts.values()) if counts else 0

    def path_to(self, server: str) -> Route:
        """The tree walk from the source to ``server``, switches included."""
        names: List[str] = []
        node: Optional[str] = server
        while node is not None:
            names.append(node)
            up = self.parent[node]
            if up is not None:
                names.append(self.via[node])
            node = up
        names.reverse()
        return Route.of(names)

    def validate(self, net: Network) -> None:
        """Assert every parent-child message uses live links of ``net``."""
        for u, v in self.physical_edges():
            if not net.has_link(u, v):
                raise RoutingError(f"broadcast tree uses non-existent link {u} - {v}")

    def children(self) -> Dict[str, List[str]]:
        """Child lists per server (stable order)."""
        result: Dict[str, List[str]] = {server: [] for server in self.parent}
        for child, up in self.parent.items():
            if up is not None:
                result[up].append(child)
        return result

    def one_port_rounds(self) -> int:
        """Optimal completion time of this tree under the one-port model.

        Each informed server transmits to one child per round; a child is
        informed one round after its parent sends.  For a *fixed* tree
        the optimal schedule serves children in decreasing order of their
        subtrees' completion times (the classic exchange argument), giving
        ``T(v) = max_i (i + T(c_i))`` over the sorted children — computed
        here bottom-up.  Tests cross-check against brute force over all
        child orderings on small trees.
        """
        children = self.children()

        # Bottom-up over the tree: process nodes in decreasing depth so
        # every child is finished before its parent (avoids recursion
        # limits on deep trees).
        depth_cache: Dict[str, int] = {self.source: 0}

        def depth(node: str) -> int:
            trail = []
            while node not in depth_cache:
                trail.append(node)
                node = self.parent[node]  # type: ignore[assignment]
            base = depth_cache[node]
            for name in reversed(trail):
                base += 1
                depth_cache[name] = base
            return depth_cache[trail[0]] if trail else base

        order = sorted(self.parent, key=depth, reverse=True)
        completion: Dict[str, int] = {}
        for node in order:
            kids = children[node]
            if not kids:
                completion[node] = 0
                continue
            subtree = sorted((completion[c] for c in kids), reverse=True)
            completion[node] = max(
                index + 1 + finish for index, finish in enumerate(subtree)
            )
        return completion[self.source]


def broadcast_tree(params: AbcccParams, source: ServerAddress) -> BroadcastTree:
    """Spanning broadcast tree rooted at ``source`` (dimensional sweep)."""
    parent: Dict[str, Optional[str]] = {source.name: None}
    via: Dict[str, str] = {}

    def inform_crossbar(digits: Tuple[int, ...], entry_index: int) -> None:
        """Attach all other servers of a crossbar below its entry server."""
        if not params.has_crossbar_switch:
            return
        entry = ServerAddress(digits, entry_index)
        switch = CrossbarSwitchAddress(digits)
        for j in range(params.crossbar_size):
            if j == entry_index:
                continue
            child = ServerAddress(digits, j)
            parent[child.name] = entry.name
            via[child.name] = switch.name

    inform_crossbar(source.digits, source.index)
    # entry[digits] = the in-crossbar index at which the message arrived.
    entry: Dict[Tuple[int, ...], int] = {source.digits: source.index}

    for level in range(params.levels):
        owner = params.owner_of(level)
        for digits in list(entry):
            sender = ServerAddress(digits, owner)
            switch = LevelSwitchAddress.serving(level, digits)
            for value in range(params.n):
                if value == digits[level]:
                    continue
                member = switch.member_digits(value)
                if member in entry:
                    continue
                child = ServerAddress(member, owner)
                parent[child.name] = sender.name
                via[child.name] = switch.name
                entry[member] = owner
                inform_crossbar(member, owner)

    return BroadcastTree(source.name, parent, via)


def multicast_tree(
    params: AbcccParams, source: ServerAddress, destinations: Iterable[ServerAddress]
) -> BroadcastTree:
    """One-to-many tree: the broadcast tree pruned to the destinations."""
    full = broadcast_tree(params, source)
    keep: Set[str] = {source.name}
    for dst in destinations:
        node: Optional[str] = dst.name
        if node not in full.parent:
            raise RoutingError(f"destination {node!r} not covered by broadcast tree")
        while node is not None and node not in keep:
            keep.add(node)
            node = full.parent[node]
    parent = {name: full.parent[name] for name in keep}
    via = {name: full.via[name] for name in keep if full.parent[name] is not None}
    return BroadcastTree(source.name, parent, via)
