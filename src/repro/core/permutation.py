"""Permutation generation for ABCCC digit-correction routing.

The one-to-one routing algorithm corrects the differing address digits in
some order ``π``; the choice of ``π`` does not affect correctness but
drives both path length (intra-crossbar transfers happen exactly where the
order switches between owner servers) and load balance (distinct orders use
distinct intermediate crossbars).  This module implements the strategies
studied in the companion paper "Permutation Generation for Routing in BCube
Connected Crossbars" (Li & Yang, ICC 2015), generalised from BCCC to ABCCC:

* ``identity`` — ascending level order (the naive baseline);
* ``random``   — uniformly random order (seeded, reproducible);
* ``locality`` — group levels by owning server to minimise intra-crossbar
  transfers, starting with the source server's own group and ending with
  the destination server's group when possible;
* ``balanced`` — ``locality``'s grouping, but the group sequence is rotated
  by a caller-supplied offset (e.g. a flow hash) so concurrent flows spread
  over the disjoint intermediate-crossbar families.
"""

from __future__ import annotations

import random
from functools import lru_cache
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.address import AbcccParams, ServerAddress


def differing_levels(src: ServerAddress, dst: ServerAddress) -> List[int]:
    """Levels whose digits differ between the two crossbar addresses."""
    if len(src.digits) != len(dst.digits):
        raise ValueError("addresses have different orders")
    return [i for i, (a, b) in enumerate(zip(src.digits, dst.digits)) if a != b]


def identity_order(
    params: AbcccParams, src: ServerAddress, dst: ServerAddress, levels: Sequence[int]
) -> List[int]:
    """Ascending level order."""
    return sorted(levels)


def random_order(
    params: AbcccParams,
    src: ServerAddress,
    dst: ServerAddress,
    levels: Sequence[int],
    seed: Optional[int] = None,
) -> List[int]:
    """Uniformly random order, reproducible via ``seed``."""
    order = sorted(levels)
    random.Random(seed).shuffle(order)
    return order


def _owner_groups(params: AbcccParams, levels: Sequence[int]) -> Dict[int, List[int]]:
    """Levels bucketed by owning server index, each bucket ascending."""
    groups: Dict[int, List[int]] = {}
    for level in sorted(levels):
        groups.setdefault(params.owner_of(level), []).append(level)
    return groups


def locality_order(
    params: AbcccParams, src: ServerAddress, dst: ServerAddress, levels: Sequence[int]
) -> List[int]:
    """Owner-grouped order minimising intra-crossbar transfers.

    The number of crossbar-switch traversals of the resulting route is
    exactly the number of *group boundaries*, so the optimum is achieved by
    any order that visits each owner group once; we additionally start with
    the source server's group (saving the initial transfer) and end with
    the destination server's group (saving the final transfer), whenever
    those groups occur among the differing levels and are distinct.
    """
    return list(_locality_sequence(params, src.index, dst.index, tuple(levels)))


@lru_cache(maxsize=65536)
def _locality_sequence(
    params: AbcccParams, src_index: int, dst_index: int, levels: Tuple[int, ...]
) -> Tuple[int, ...]:
    """Cached body of :func:`locality_order` — it depends only on the
    in-crossbar indexes, so the fault-routing walk (which asks for the
    same few orders thousands of times) hits the cache."""
    groups = _owner_groups(params, levels)
    first = src_index if src_index in groups else None
    last = dst_index if dst_index in groups and dst_index != first else None
    middle = sorted(g for g in groups if g not in (first, last))
    sequence = ([first] if first is not None else []) + middle
    if last is not None:
        sequence.append(last)
    return tuple(level for group in sequence for level in groups[group])


def balanced_order(
    params: AbcccParams,
    src: ServerAddress,
    dst: ServerAddress,
    levels: Sequence[int],
    rotation: int = 0,
) -> List[int]:
    """Locality grouping with the group sequence rotated by ``rotation``.

    Rotation trades (at most two) extra intra-crossbar transfers for
    intermediate-crossbar diversity across flows; pass a per-flow value
    (e.g. ``fnv1a(flow_id)``) to spread load.
    """
    groups = _owner_groups(params, levels)
    sequence = sorted(groups)
    if sequence:
        shift = rotation % len(sequence)
        sequence = sequence[shift:] + sequence[:shift]
    return [level for group in sequence for level in groups[group]]


#: Strategy name -> generator; extra kwargs: ``seed`` (random),
#: ``rotation`` (balanced).
STRATEGIES: Dict[str, Callable[..., List[int]]] = {
    "identity": identity_order,
    "random": random_order,
    "locality": locality_order,
    "balanced": balanced_order,
}


def generate(
    params: AbcccParams,
    src: ServerAddress,
    dst: ServerAddress,
    strategy: str = "locality",
    seed: Optional[int] = None,
    rotation: int = 0,
) -> List[int]:
    """Produce the level-correction order for one route.

    Only the levels whose digits actually differ are included.
    """
    levels = differing_levels(src, dst)
    if strategy == "random":
        return random_order(params, src, dst, levels, seed=seed)
    if strategy == "balanced":
        return balanced_order(params, src, dst, levels, rotation=rotation)
    try:
        generator = STRATEGIES[strategy]
    except KeyError:
        raise ValueError(
            f"unknown permutation strategy {strategy!r}; "
            f"available: {', '.join(sorted(STRATEGIES))}"
        ) from None
    return generator(params, src, dst, levels)


def transfer_count(params: AbcccParams, src_index: int, dst_index: int, order: Sequence[int]) -> int:
    """Crossbar-switch traversals the route will pay for ``order``.

    One per owner change along the order, plus the initial move if the
    source does not own the first level, plus the final move if the
    destination does not own the last.
    """
    if not order:
        return 0 if src_index == dst_index else 1
    owners = [params.owner_of(level) for level in order]
    transfers = 0 if owners[0] == src_index else 1
    transfers += sum(1 for a, b in zip(owners, owners[1:]) if a != b)
    if owners[-1] != dst_index:
        transfers += 1
    return transfers
