"""Design planner: pick (n, k, s) from deployment requirements.

The paper's pitch — "it suits for many different applications by fine
tuning its parameters" — presumes an operator can actually do the
tuning.  This module is that tool, as a library function instead of a
figure: state requirements, get back every feasible ABCCC configuration
ranked by your objective, with the Pareto frontier marked.

Feasibility constraints (all optional):

* ``min_servers`` / ``max_servers`` — target scale window;
* ``max_nic_ports`` — what the procured servers offer;
* ``switch_radix`` — the commodity switch on the contract;
* ``min_bisection_per_server`` — bandwidth floor;
* ``max_diameter`` — latency ceiling (server hops);
* ``expansion_headroom`` — how many future ``k`` increments must remain
  pure addition (the F5/E2 boundary: ``c_after <= n``).
"""

from __future__ import annotations


from dataclasses import dataclass
from typing import List, Optional

from repro.core import properties
from repro.core.address import AbcccParams
from repro.core.topology import AbcccSpec
from repro.metrics.cost import PriceBook, capex


@dataclass(frozen=True)
class Requirements:
    """What the deployment needs."""

    min_servers: int = 1
    max_servers: Optional[int] = None
    max_nic_ports: int = 4
    switch_radix: int = 48
    min_bisection_per_server: float = 0.0
    max_diameter: Optional[int] = None
    expansion_headroom: int = 0

    def __post_init__(self) -> None:
        if self.min_servers < 1:
            raise ValueError("min_servers must be >= 1")
        if self.max_servers is not None and self.max_servers < self.min_servers:
            raise ValueError("max_servers < min_servers")
        if self.max_nic_ports < 2:
            raise ValueError("ABCCC needs at least 2 NIC ports")
        if self.switch_radix < 2:
            raise ValueError("switch radix must be >= 2")
        if self.expansion_headroom < 0:
            raise ValueError("expansion_headroom must be >= 0")


@dataclass(frozen=True)
class Candidate:
    """One feasible configuration with its figures of merit."""

    spec: AbcccSpec
    servers: int
    diameter: int
    bisection_per_server: Optional[float]
    capex_per_server: float
    pareto: bool = False

    @property
    def label(self) -> str:
        return self.spec.label


def _feasible(params: AbcccParams, req: Requirements) -> bool:
    servers = properties.num_servers(params)
    if servers < req.min_servers:
        return False
    if req.max_servers is not None and servers > req.max_servers:
        return False
    # crossbars must stay on the contract switch through the headroom.
    future = AbcccParams(params.n, params.k + req.expansion_headroom, params.s)
    if future.has_crossbar_switch and future.crossbar_size > params.n:
        return False
    if properties.crossbar_switch_ports(params) > req.switch_radix:
        return False
    if req.max_diameter is not None:
        if properties.diameter_server_hops(params) > req.max_diameter:
            return False
    bisection = properties.bisection_per_server(params)
    if req.min_bisection_per_server > 0:
        if bisection is None or bisection < req.min_bisection_per_server:
            return False
    return True


def plan(
    req: Requirements,
    prices: Optional[PriceBook] = None,
    max_k: int = 8,
) -> List[Candidate]:
    """All feasible configurations, cheapest-per-server first.

    ``n`` ranges over the divisor-friendly commodity radixes up to the
    contract radix; ``k`` up to ``max_k``; ``s`` from 2 to the NIC budget.
    The returned candidates carry a ``pareto`` flag over
    (diameter ↓, bisection/server ↑, CAPEX/server ↓).
    """
    prices = prices or PriceBook()
    radixes = [n for n in (4, 6, 8, 12, 16, 24, 32, 48) if n <= req.switch_radix]
    candidates: List[Candidate] = []
    for n in radixes:
        for k in range(0, max_k + 1):
            for s in range(2, min(req.max_nic_ports, k + 2) + 1):
                params = AbcccParams(n, k, s)
                if not _feasible(params, req):
                    continue
                spec = AbcccSpec(n, k, s)
                candidates.append(
                    Candidate(
                        spec=spec,
                        servers=spec.num_servers,
                        diameter=properties.diameter_server_hops(params),
                        bisection_per_server=properties.bisection_per_server(params),
                        capex_per_server=capex(spec, prices).per_server,
                    )
                )
    candidates.sort(key=lambda c: (c.capex_per_server, c.diameter, -c.servers))
    return _mark_pareto(candidates)


def _mark_pareto(candidates: List[Candidate]) -> List[Candidate]:
    """Flag the frontier of (diameter ↓, bisection ↑, cost ↓)."""
    from dataclasses import replace

    marked: List[Candidate] = []
    for candidate in candidates:
        bis = candidate.bisection_per_server or 0.0
        dominated = any(
            other is not candidate
            and other.diameter <= candidate.diameter
            and (other.bisection_per_server or 0.0) >= bis
            and other.capex_per_server <= candidate.capex_per_server
            and (
                other.diameter < candidate.diameter
                or (other.bisection_per_server or 0.0) > bis
                or other.capex_per_server < candidate.capex_per_server
            )
            for other in candidates
        )
        marked.append(replace(candidate, pareto=not dominated))
    return marked


def best(
    req: Requirements,
    objective: str = "cost",
    prices: Optional[PriceBook] = None,
) -> Optional[Candidate]:
    """The single best feasible configuration by one objective.

    Objectives: ``cost`` (CAPEX/server), ``latency`` (diameter),
    ``bandwidth`` (bisection/server, descending).  Returns None when
    nothing is feasible.
    """
    candidates = plan(req, prices=prices)
    if not candidates:
        return None
    if objective == "cost":
        return min(candidates, key=lambda c: c.capex_per_server)
    if objective == "latency":
        return min(candidates, key=lambda c: (c.diameter, c.capex_per_server))
    if objective == "bandwidth":
        return max(
            candidates,
            key=lambda c: ((c.bisection_per_server or 0.0), -c.capex_per_server),
        )
    raise ValueError(f"unknown objective {objective!r}")
