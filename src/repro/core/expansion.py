"""Expansion planning and cost accounting (the headline ABCCC claim).

An :class:`ExpansionPlan` is the exact bill of work to grow one built
topology instance into a bigger one: which servers/switches are purchased,
which cables are pulled, and — critically — which *existing* components
must be altered (NIC upgrades, cable moves).  ABCCC/BCCC expansion touches
nothing that exists; BCube upgrades every server; fat-tree growth rewires
the fabric.  Experiment F5 is built directly on this module.

The pure-addition property has an exact boundary the diff exposes: it
holds while the *grown* crossbar still fits its ``n``-port crossbar switch
(``ceil((k_new + 1) / (s - 1)) <= n``); past that, every crossbar switch
must be replaced with a larger one (see the F5 boundary row and
``tests/test_core_expansion.py``).

Plans are computed by a **graph diff**: build the old and new networks,
embed the old namespace into the new one (each family defines how an old
address reads in the bigger network), and compare node and link sets.
This makes the accounting exact by construction rather than by formula —
and the formulas in the paper-facing tables are then *tested against* the
diff.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.topology.graph import Network
from repro.topology.node import NodeKind, link_key
from repro.topology.spec import TopologySpec


class ExpansionError(Exception):
    """Raised when an expansion between the given specs is not meaningful."""


@dataclass(frozen=True)
class ExpansionPlan:
    """The component-level delta between an old and a new instance.

    All name lists use the *new* network's namespace.
    """

    old_label: str
    new_label: str
    new_servers: Tuple[str, ...]
    new_switches: Tuple[str, ...]
    new_links: Tuple[Tuple[str, str], ...]
    removed_links: Tuple[Tuple[str, str], ...]
    #: existing servers needing hardware changes (extra NIC ports).
    upgraded_servers: Tuple[str, ...]
    #: existing switches that must be replaced (port count grew).
    replaced_switches: Tuple[str, ...]
    #: existing servers/switches that gain or lose a cable (no hardware
    #: change, but hands touch the machine).
    recabled_nodes: Tuple[str, ...]
    #: hardware specs of the new nodes: (name, kind, ports, role) — what
    #: to purchase; makes the plan executable via :func:`apply_plan`.
    new_node_info: Tuple[Tuple[str, str, int, str], ...] = ()
    #: port counts after upgrade/replacement for touched nodes.
    port_updates: Tuple[Tuple[str, int], ...] = ()

    @property
    def num_new_components(self) -> int:
        """Purchased equipment: servers + switches + cables."""
        return len(self.new_servers) + len(self.new_switches) + len(self.new_links)

    @property
    def num_touched_existing(self) -> int:
        """Existing components altered in any way — ABCCC's claim is that
        this is zero apart from plugging cables into spare ports."""
        return (
            len(self.upgraded_servers)
            + len(self.replaced_switches)
            + len(self.removed_links)
        )

    @property
    def is_pure_addition(self) -> bool:
        """True iff nothing existing is altered or rewired."""
        return self.num_touched_existing == 0

    def summary(self) -> Dict[str, int]:
        return {
            "new_servers": len(self.new_servers),
            "new_switches": len(self.new_switches),
            "new_cables": len(self.new_links),
            "removed_cables": len(self.removed_links),
            "upgraded_servers": len(self.upgraded_servers),
            "replaced_switches": len(self.replaced_switches),
            "recabled_existing": len(self.recabled_nodes),
        }


def plan_expansion(
    old_spec: TopologySpec,
    new_spec: TopologySpec,
    embed: Callable[[str], str],
) -> ExpansionPlan:
    """Diff two built instances under the given namespace embedding.

    Args:
        embed: maps an old node name to its name in the new network; must
            be injective over the old node set.

    Raises:
        ExpansionError: if an embedded old node is absent from the new
            network (the "expansion" would decommission equipment) or the
            embedding collides.
    """
    old_net = old_spec.build()
    new_net = new_spec.build()

    mapping: Dict[str, str] = {}
    images: Set[str] = set()
    for name in old_net.node_names():
        image = embed(name)
        if image in images:
            raise ExpansionError(f"embedding collides on {image!r}")
        images.add(image)
        mapping[name] = image
        if image not in new_net:
            raise ExpansionError(
                f"old node {name!r} (as {image!r}) has no place in {new_spec.label}"
            )

    new_servers: List[str] = []
    new_switches: List[str] = []
    upgraded: List[str] = []
    replaced: List[str] = []
    for node in new_net.nodes():
        if node.name not in images:
            if node.kind is NodeKind.SERVER:
                new_servers.append(node.name)
            else:
                new_switches.append(node.name)
    for old_name, image in mapping.items():
        old_ports = old_net.node(old_name).ports
        new_ports = new_net.node(image).ports
        if new_ports > old_ports:
            if new_net.node(image).kind is NodeKind.SERVER:
                upgraded.append(image)
            else:
                replaced.append(image)

    old_links = {
        link_key(mapping[link.u], mapping[link.v]) for link in old_net.links()
    }
    new_links_all = {link.key for link in new_net.links()}
    added = sorted(new_links_all - old_links)
    removed = sorted(old_links - new_links_all)

    recabled: Set[str] = set()
    for u, v in added + removed:
        for endpoint in (u, v):
            if endpoint in images:
                recabled.add(endpoint)

    new_node_info = tuple(
        (node.name, node.kind.value, node.ports, node.role)
        for node in new_net.nodes()
        if node.name not in images
    )
    port_updates = tuple(
        sorted(
            (name, new_net.node(name).ports)
            for name in list(upgraded) + list(replaced)
        )
    )
    return ExpansionPlan(
        old_label=old_spec.label,
        new_label=new_spec.label,
        new_servers=tuple(sorted(new_servers)),
        new_switches=tuple(sorted(new_switches)),
        new_links=tuple(added),
        removed_links=tuple(removed),
        upgraded_servers=tuple(sorted(upgraded)),
        replaced_switches=tuple(sorted(replaced)),
        recabled_nodes=tuple(sorted(recabled)),
        new_node_info=new_node_info,
        port_updates=port_updates,
    )


def apply_plan(
    old_net: Network,
    plan: ExpansionPlan,
    embed: Callable[[str], str],
) -> Network:
    """Execute an expansion plan against a built old network.

    Produces the expanded network: old nodes re-addressed through
    ``embed`` (ports bumped where the plan upgrades them), new equipment
    installed, removed cables pulled, new cables run.  The result is
    byte-identical in structure to building the new spec directly —
    asserted by the test suite — which is what makes the plan a real
    work order rather than a summary.
    """
    expanded = Network(plan.new_label)
    updates = dict(plan.port_updates)
    mapping: Dict[str, str] = {}
    for node in old_net.nodes():
        image = embed(node.name)
        mapping[node.name] = image
        ports = updates.get(image, node.ports)
        if node.kind is NodeKind.SERVER:
            expanded.add_server(image, ports, address=node.address, role=node.role)
        else:
            expanded.add_switch(image, ports, address=node.address, role=node.role)
    for name, kind, ports, role in plan.new_node_info:
        if kind == NodeKind.SERVER.value:
            expanded.add_server(name, ports, role=role)
        else:
            expanded.add_switch(name, ports, role=role)
    removed = set(plan.removed_links)
    for link in old_net.links():
        key = link_key(mapping[link.u], mapping[link.v])
        if key in removed:
            continue
        expanded.add_link(key[0], key[1], capacity=link.capacity, length=link.length)
    for u, v in plan.new_links:
        expanded.add_link(u, v)
    return expanded


# ----------------------------------------------------------------------
# family-specific embeddings and convenience planners
# ----------------------------------------------------------------------
def abccc_embed(name: str) -> str:
    """Read an ABCCC(n, k, s) node name inside ABCCC(n, k+1, s).

    The existing system is the slice whose new top digit is 0, so every
    address gains a leading (most-significant) zero digit.
    """
    from repro.core.address import (
        CrossbarSwitchAddress,
        LevelSwitchAddress,
        ServerAddress,
    )

    if name.startswith("s"):
        addr = ServerAddress.parse(name)
        return ServerAddress(addr.digits + (0,), addr.index).name
    if name.startswith("c"):
        csw = CrossbarSwitchAddress.parse(name)
        return CrossbarSwitchAddress(csw.digits + (0,)).name
    if name.startswith("l"):
        lsw = LevelSwitchAddress.parse(name)
        return LevelSwitchAddress(lsw.level, lsw.rest + (0,)).name
    raise ExpansionError(f"unrecognised ABCCC node name {name!r}")


def plan_abccc_growth(n: int, k: int, s: int) -> ExpansionPlan:
    """Plan ABCCC(n, k, s) -> ABCCC(n, k+1, s)."""
    from repro.core.topology import AbcccSpec

    return plan_expansion(AbcccSpec(n, k, s), AbcccSpec(n, k + 1, s), abccc_embed)


def plan_bcube_growth(n: int, k: int) -> ExpansionPlan:
    """Plan BCube(n, k) -> BCube(n, k+1): every old server is upgraded."""
    from repro.baselines.bcube import BcubeSpec, bcube_embed

    return plan_expansion(BcubeSpec(n, k), BcubeSpec(n, k + 1), bcube_embed)


def plan_bccc_growth(n: int, k: int) -> ExpansionPlan:
    """Plan BCCC(n, k) -> BCCC(n, k+1) via the direct BCCC construction."""
    from repro.baselines.bccc import BcccSpec, bccc_embed

    return plan_expansion(BcccSpec(n, k), BcccSpec(n, k + 1), bccc_embed)


def plan_fattree_growth(p: int) -> ExpansionPlan:
    """Plan FatTree(p) -> FatTree(p+2): fabric-wide replacement."""
    from repro.baselines.fattree import FatTreeSpec, fattree_embed

    return plan_expansion(FatTreeSpec(p), FatTreeSpec(p + 2), fattree_embed)
