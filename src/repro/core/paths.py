"""Parallel-path construction for ABCCC.

ABCCC inherits BCube's path diversity at the *crossbar* level: correcting
the address digits in the ``k + 1`` rotations of the level order yields up
to ``k + 1`` routes whose intermediate crossbars are pairwise disjoint
whenever all digits differ (each intermediate's digit pattern is a distinct
circular interval of corrected levels, which identifies its rotation
uniquely).  Servers have only ``s`` ports, so full node-disjointness at the
endpoints is capped by ``s``; the experiments therefore report both the
crossbar-disjoint family size and the true max-flow edge-disjoint count.
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

import networkx as nx

from repro.core.address import AbcccParams, ServerAddress
from repro.core.permutation import differing_levels
from repro.core.routing import route_with_order
from repro.routing.base import Route
from repro.topology.graph import Network


def rotation_routes(
    params: AbcccParams, src: ServerAddress, dst: ServerAddress
) -> List[Route]:
    """One route per rotation of the differing-level sequence.

    Returns between 1 and ``len(differing levels)`` routes (a single
    degenerate route when the crossbar addresses already agree).
    """
    levels = differing_levels(src, dst)
    if not levels:
        return [route_with_order(params, src, dst, [])]
    routes = []
    for shift in range(len(levels)):
        order = levels[shift:] + levels[:shift]
        routes.append(route_with_order(params, src, dst, order))
    return routes


def intermediate_crossbars(route: Route) -> Set[Tuple[int, ...]]:
    """Crossbar digit-vectors visited strictly between the endpoints."""
    seen: Set[Tuple[int, ...]] = set()
    for name in route.nodes[1:-1]:
        if name.startswith("s"):
            seen.add(ServerAddress.parse(name).digits)
    endpoints = {
        ServerAddress.parse(route.source).digits,
        ServerAddress.parse(route.destination).digits,
    }
    return seen - endpoints


def crossbar_disjoint_routes(
    params: AbcccParams, src: ServerAddress, dst: ServerAddress
) -> List[Route]:
    """A maximal subfamily of rotation routes with pairwise disjoint
    intermediate crossbars (greedy selection in rotation order).

    When **all** ``k + 1`` digits differ the full family is returned — the
    paper's parallel-path claim — and tests assert no greedy filtering was
    needed in that case.
    """
    chosen: List[Route] = []
    used: Set[Tuple[int, ...]] = set()
    for route in rotation_routes(params, src, dst):
        inter = intermediate_crossbars(route)
        if inter & used:
            continue
        chosen.append(route)
        used |= inter
    return chosen


def edge_disjoint_path_count(net: Network, src: str, dst: str) -> int:
    """Ground-truth number of edge-disjoint paths (max-flow, unit caps)."""
    graph = net.to_networkx()
    return nx.algorithms.connectivity.edge_connectivity(graph, src, dst)


def node_disjoint_path_count(net: Network, src: str, dst: str) -> int:
    """Ground-truth number of internally node-disjoint paths."""
    graph = net.to_networkx()
    return nx.algorithms.connectivity.node_connectivity(graph, src, dst)
