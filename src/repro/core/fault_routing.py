"""Fault-tolerant one-to-one routing for ABCCC.

Strategy (DESIGN.md §1.5): greedy digit-correction with **dynamic
reordering** and **detours**, the local-repair style a deployed
server-centric network uses (every hop is computed from addresses plus
liveness of the next two-hop segment — no global state):

1. at each step, try to correct any still-wrong level whose two-hop
   segment (intra-crossbar transfer if needed, then the level switch) is
   fully alive, preferring the locality order;
2. if no productive segment is alive, *detour*: move some level's digit to
   a random non-target value, entering a fresh crossbar (never one visited
   before), and continue;
3. if the greedy walk exhausts its step budget, optionally fall back to
   BFS on the alive subgraph (global repair), reported separately so
   experiments can distinguish local-repair success from mere
   reachability.

The walk is loop-free across crossbars by construction (visited-set) and
therefore terminates.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Set, Tuple

from repro.core.address import (
    AbcccParams,
    CrossbarSwitchAddress,
    LevelSwitchAddress,
    ServerAddress,
)
from repro.core.permutation import locality_order
from repro.routing.base import Route, RoutingError
from repro.routing.shortest import bfs_path
from repro.topology.graph import Network


@dataclass(frozen=True)
class FaultRouteResult:
    """Outcome of a fault-tolerant routing attempt."""

    route: Route
    detours: int
    fallback_used: bool

    @property
    def link_hops(self) -> int:
        return self.route.link_hops


def _segment_alive(net: Network, hops: Sequence[Tuple[str, str]]) -> bool:
    """All listed links (and implicitly their endpoints) are alive."""
    return all(u in net and v in net and net.has_link(u, v) for u, v in hops)


def _correction_segment(
    params: AbcccParams, at: ServerAddress, level: int, value: int
) -> Tuple[List[str], ServerAddress]:
    """Node sequence (beyond ``at``) that sets ``level`` to ``value``."""
    owner = params.owner_of(level)
    nodes: List[str] = []
    if at.index != owner:
        nodes.append(CrossbarSwitchAddress(at.digits).name)
        nodes.append(ServerAddress(at.digits, owner).name)
    switch = LevelSwitchAddress.serving(level, at.digits)
    new_digits = at.digits[:level] + (value,) + at.digits[level + 1 :]
    landing = ServerAddress(new_digits, owner)
    nodes.append(switch.name)
    nodes.append(landing.name)
    return nodes, landing


def _hops_of(start: str, nodes: Sequence[str]) -> List[Tuple[str, str]]:
    chain = [start, *nodes]
    return list(zip(chain, chain[1:]))


def fault_tolerant_route(
    params: AbcccParams,
    net: Network,
    src: str,
    dst: str,
    seed: Optional[int] = None,
    max_segments: Optional[int] = None,
    allow_fallback: bool = True,
) -> FaultRouteResult:
    """Route ``src -> dst`` on a (possibly failure-injected) ABCCC network.

    ``net`` is the alive subgraph — apply failures beforehand with
    :meth:`Network.subgraph_without`.  Raises :class:`RoutingError` when no
    route is found (and, with ``allow_fallback``, none exists at all).
    """
    if src not in net:
        raise RoutingError(f"source {src!r} is failed or unknown")
    if dst not in net:
        raise RoutingError(f"destination {dst!r} is failed or unknown")
    rng = random.Random(seed)
    source = ServerAddress.parse(src)
    target = ServerAddress.parse(dst)
    budget = (
        max_segments
        if max_segments is not None
        else 6 * (params.levels + params.crossbar_size + 2)
    )

    nodes: List[str] = [src]
    at = source
    visited: Set[Tuple[Tuple[int, ...], int]] = {(at.digits, at.index)}
    detours = 0

    for _ in range(budget):
        if at.digits == target.digits:
            if at.index == target.index:
                return FaultRouteResult(Route.of(nodes), detours, False)
            transfer = [CrossbarSwitchAddress(at.digits).name, dst]
            if _segment_alive(net, _hops_of(at.name, transfer)):
                nodes.extend(transfer)
                return FaultRouteResult(Route.of(nodes), detours, False)
            # The local crossbar switch (or destination link) is dead; a
            # detour through a level owned by the destination index can
            # still reach it — fall through to the detour logic below.

        wrong = [i for i in range(params.levels) if at.digits[i] != target.digits[i]]
        advanced = False
        for level in locality_order(params, at, target, wrong):
            segment, landing = _correction_segment(
                params, at, level, target.digits[level]
            )
            if (landing.digits, landing.index) in visited:
                continue
            if _segment_alive(net, _hops_of(at.name, segment)):
                nodes.extend(segment)
                at = landing
                visited.add((at.digits, at.index))
                advanced = True
                break
        if advanced:
            continue

        # Detour: push some level to a non-target value, never revisiting.
        detour_moves = [
            (level, value)
            for level in range(params.levels)
            for value in range(params.n)
            if value != at.digits[level]
        ]
        rng.shuffle(detour_moves)
        for level, value in detour_moves:
            segment, landing = _correction_segment(params, at, level, value)
            if (landing.digits, landing.index) in visited:
                continue
            if _segment_alive(net, _hops_of(at.name, segment)):
                nodes.extend(segment)
                at = landing
                visited.add((at.digits, at.index))
                detours += 1
                advanced = True
                break
        if not advanced:
            break  # stuck: every alive move revisits

    if allow_fallback:
        route = bfs_path(net, src, dst)  # raises RoutingError if disconnected
        return FaultRouteResult(route, detours, True)
    raise RoutingError(
        f"greedy fault-tolerant routing failed from {src!r} to {dst!r}"
    )
