"""Fault-tolerant one-to-one routing for ABCCC.

Strategy (DESIGN.md §1.5): greedy digit-correction with **dynamic
reordering** and **detours**, the local-repair style a deployed
server-centric network uses (every hop is computed from addresses plus
liveness of the next two-hop segment — no global state):

1. at each step, try to correct any still-wrong level whose two-hop
   segment (intra-crossbar transfer if needed, then the level switch) is
   fully alive, preferring the locality order;
2. if no productive segment is alive, *detour*: move some level's digit to
   a random non-target value, entering a fresh crossbar (never one visited
   before), and continue;
3. if the greedy walk exhausts its step budget, optionally fall back to
   BFS on the alive subgraph (global repair), reported separately so
   experiments can distinguish local-repair success from mere
   reachability.

The walk is loop-free across crossbars by construction (visited-set) and
therefore terminates.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from functools import lru_cache
from typing import List, Optional, Sequence, Set, Tuple

from repro.core.address import (
    AbcccParams,
    CrossbarSwitchAddress,
    LevelSwitchAddress,
    ServerAddress,
)
from repro.core.permutation import locality_order
from repro.routing.base import Route, RoutingError
from repro.routing.shortest import bfs_path
from repro.topology.graph import Network


@dataclass(frozen=True)
class FaultRouteResult:
    """Outcome of a fault-tolerant routing attempt."""

    route: Route
    detours: int
    fallback_used: bool

    @property
    def link_hops(self) -> int:
        return self.route.link_hops


def _segment_alive(net: Network, start: str, nodes: Sequence[str]) -> bool:
    """The chain ``start -> nodes[0] -> … -> nodes[-1]`` is fully alive."""
    adj = net.adjacency()
    neighbors = adj.get(start)
    if neighbors is None:
        return False
    for node in nodes:
        # membership in the previous hop's neighbor set answers node
        # liveness and link liveness in one lookup
        if node not in neighbors:
            return False
        neighbors = adj[node]
    return True


@lru_cache(maxsize=65536)
def _correction_segment(
    params: AbcccParams, at: ServerAddress, level: int, value: int
) -> Tuple[Tuple[str, ...], ServerAddress]:
    """Node sequence (beyond ``at``) that sets ``level`` to ``value``.

    Pure in its (hashable) arguments and called for the same few moves
    thousands of times per experiment, so the name-building work is
    cached; the returned segment tuple must not be mutated.
    """
    owner = params.owner_of(level)
    nodes: List[str] = []
    if at.index != owner:
        nodes.append(CrossbarSwitchAddress(at.digits).name)
        nodes.append(ServerAddress(at.digits, owner).name)
    switch = LevelSwitchAddress.serving(level, at.digits)
    new_digits = at.digits[:level] + (value,) + at.digits[level + 1 :]
    landing = ServerAddress(new_digits, owner)
    nodes.append(switch.name)
    nodes.append(landing.name)
    return tuple(nodes), landing


def fault_tolerant_route(
    params: AbcccParams,
    net: Network,
    src: str,
    dst: str,
    seed: Optional[int] = None,
    max_segments: Optional[int] = None,
    allow_fallback: bool = True,
) -> FaultRouteResult:
    """Route ``src -> dst`` on a (possibly failure-injected) ABCCC network.

    ``net`` is the alive subgraph — apply failures beforehand with
    :meth:`Network.subgraph_without`.  Raises :class:`RoutingError` when no
    route is found (and, with ``allow_fallback``, none exists at all).
    """
    if src not in net:
        raise RoutingError(f"source {src!r} is failed or unknown")
    if dst not in net:
        raise RoutingError(f"destination {dst!r} is failed or unknown")
    rng: Optional[random.Random] = None  # built on first detour only
    source = ServerAddress.parse(src)
    target = ServerAddress.parse(dst)
    budget = (
        max_segments
        if max_segments is not None
        else 6 * (params.levels + params.crossbar_size + 2)
    )

    nodes: List[str] = [src]
    at = source
    visited: Set[Tuple[Tuple[int, ...], int]] = {(at.digits, at.index)}
    detours = 0

    for _ in range(budget):
        if at.digits == target.digits:
            if at.index == target.index:
                return FaultRouteResult(Route.of(nodes), detours, False)
            transfer = [CrossbarSwitchAddress(at.digits).name, dst]
            if _segment_alive(net, at.name, transfer):
                nodes.extend(transfer)
                return FaultRouteResult(Route.of(nodes), detours, False)
            # The local crossbar switch (or destination link) is dead; a
            # detour through a level owned by the destination index can
            # still reach it — fall through to the detour logic below.

        wrong = [i for i in range(params.levels) if at.digits[i] != target.digits[i]]
        advanced = False
        for level in locality_order(params, at, target, wrong):
            segment, landing = _correction_segment(
                params, at, level, target.digits[level]
            )
            if (landing.digits, landing.index) in visited:
                continue
            if _segment_alive(net, at.name, segment):
                nodes.extend(segment)
                at = landing
                visited.add((at.digits, at.index))
                advanced = True
                break
        if advanced:
            continue

        # Detour: push some level to a non-target value, never revisiting.
        detour_moves = [
            (level, value)
            for level in range(params.levels)
            for value in range(params.n)
            if value != at.digits[level]
        ]
        if rng is None:
            rng = random.Random(seed)
        uniform = rng.random
        # Lazy Fisher-Yates: draw a uniform random untried move, swap it
        # to the tail, and stop at the first one that works — the tried
        # prefix has exactly the distribution of a full-shuffle prefix,
        # without paying for draws that would never be inspected.
        remaining = len(detour_moves)
        while remaining:
            pick = int(uniform() * remaining)
            remaining -= 1
            detour_moves[pick], detour_moves[remaining] = (
                detour_moves[remaining],
                detour_moves[pick],
            )
            level, value = detour_moves[remaining]
            segment, landing = _correction_segment(params, at, level, value)
            if (landing.digits, landing.index) in visited:
                continue
            if _segment_alive(net, at.name, segment):
                nodes.extend(segment)
                at = landing
                visited.add((at.digits, at.index))
                detours += 1
                advanced = True
                break
        if not advanced:
            break  # stuck: every alive move revisits

    if allow_fallback:
        route = bfs_path(net, src, dst)  # raises RoutingError if disconnected
        return FaultRouteResult(route, detours, True)
    raise RoutingError(
        f"greedy fault-tolerant routing failed from {src!r} to {dst!r}"
    )
