"""ABCCC conformance checking: is this network *really* ABCCC(n, k, s)?

The builder is trusted, but networks also arrive from outside — loaded
from JSON, hand-wired in a lab, or produced by an expansion crew working
from the F5 work orders.  ``check_abccc`` verifies every structural rule
of the construction (DESIGN.md §1.2) against a concrete network and
returns a precise list of violations:

1. node inventory: exactly the canonical servers, crossbar switches and
   level switches for (n, k, s), with the right port counts and roles;
2. crossbar wiring: every server has exactly one link, to its own
   crossbar switch (when ``c > 1``);
3. level wiring: every level-``i`` switch connects exactly the level
   owners of the ``n`` member crossbars, and nothing else;
4. no extra links.

Used in tests to validate the builder against an independent rule set,
and exposed publicly as the acceptance check an operator would run after
an expansion (see ``examples/deployment_manifest.py``).
"""

from __future__ import annotations

from typing import List

from repro.core.address import (
    AbcccParams,
    CrossbarSwitchAddress,
    LevelSwitchAddress,
    ServerAddress,
)
from repro.core.topology import iter_level_switches
from repro.topology.graph import Network


def conformance_problems(net: Network, params: AbcccParams) -> List[str]:
    """All rule violations (empty list = the network is ABCCC(n, k, s))."""
    problems: List[str] = []
    c = params.crossbar_size

    # --- rule 1: node inventory -------------------------------------
    expected_servers = {
        ServerAddress(digits, j).name
        for digits in params.iter_crossbars()
        for j in range(c)
    }
    expected_crossbars = (
        {CrossbarSwitchAddress(d).name for d in params.iter_crossbars()}
        if params.has_crossbar_switch
        else set()
    )
    expected_levels = {sw.name for sw in iter_level_switches(params)}

    actual_servers = set(net.servers)
    actual_switches = set(net.switches)
    for missing in sorted(expected_servers - actual_servers)[:5]:
        problems.append(f"missing server {missing}")
    for extra in sorted(actual_servers - expected_servers)[:5]:
        problems.append(f"unexpected server {extra}")
    expected_switches = expected_crossbars | expected_levels
    for missing in sorted(expected_switches - actual_switches)[:5]:
        problems.append(f"missing switch {missing}")
    for extra in sorted(actual_switches - expected_switches)[:5]:
        problems.append(f"unexpected switch {extra}")
    if problems:
        return problems  # wiring checks below assume the inventory is right

    for name in expected_servers:
        node = net.node(name)
        if node.ports != params.s:
            problems.append(f"{name}: expected {params.s} ports, has {node.ports}")
    for name in expected_crossbars:
        node = net.node(name)
        if node.ports < c:
            problems.append(f"{name}: {node.ports} ports cannot host {c} servers")
        if node.role != "crossbar":
            problems.append(f"{name}: role {node.role!r} != 'crossbar'")
    for name in expected_levels:
        node = net.node(name)
        if node.ports < params.n:
            problems.append(f"{name}: {node.ports} ports < radix {params.n}")
        if node.role != "level":
            problems.append(f"{name}: role {node.role!r} != 'level'")

    # --- rules 2+3: wiring -------------------------------------------
    expected_links = set()
    if params.has_crossbar_switch:
        for digits in params.iter_crossbars():
            csw = CrossbarSwitchAddress(digits).name
            for j in range(c):
                expected_links.add(_key(ServerAddress(digits, j).name, csw))
    for switch in iter_level_switches(params):
        owner = params.owner_of(switch.level)
        for value in range(params.n):
            member = ServerAddress(switch.member_digits(value), owner)
            expected_links.add(_key(switch.name, member.name))

    actual_links = {link.key for link in net.links()}
    for missing in sorted(expected_links - actual_links)[:8]:
        problems.append(f"missing link {missing[0]} - {missing[1]}")
    for extra in sorted(actual_links - expected_links)[:8]:
        problems.append(f"unexpected link {extra[0]} - {extra[1]}")
    return problems


def _key(u: str, v: str):
    return (u, v) if u < v else (v, u)


def check_abccc(net: Network, params: AbcccParams) -> None:
    """Raise ``ValueError`` with the violation list if non-conformant."""
    problems = conformance_problems(net, params)
    if problems:
        preview = "; ".join(problems[:6])
        raise ValueError(
            f"network is not ABCCC(n={params.n}, k={params.k}, s={params.s}): {preview}"
        )


def infer_params(net: Network) -> AbcccParams:
    """Recover (n, k, s) from a conformant network's structure.

    Works from the node names and port counts alone (no meta), so it can
    identify networks loaded from external serialisations; raises
    ``ValueError`` when the network cannot be ABCCC at all.
    """
    servers = net.servers
    if not servers:
        raise ValueError("no servers")
    try:
        first = ServerAddress.parse(servers[0])
    except Exception:
        raise ValueError("server names are not ABCCC addresses") from None
    k = len(first.digits) - 1
    s = net.node(servers[0]).ports
    digit_values = set()
    for name in servers:
        addr = ServerAddress.parse(name)
        digit_values.update(addr.digits)
    n = max(digit_values) + 1
    params = AbcccParams(n, k, s)
    check_abccc(net, params)
    return params
