"""Closed-form structural properties of ABCCC(n, k, s).

These formulas (DESIGN.md §1.2) are what the paper's comparison tables are
made of; the test suite verifies every one of them against brute force
(BFS, exhaustive counting) on built instances, so the experiment sweeps can
trust them at scales too large to build.

All "hop" quantities come in the two conventions of
:mod:`repro.routing.base`: logical *server hops* and physical *link hops*
(exactly double, since ABCCC paths alternate server/switch).
"""

from __future__ import annotations

from typing import Optional

from repro.core.address import AbcccParams


def num_servers(params: AbcccParams) -> int:
    """``N = c * n^(k+1)``."""
    return params.crossbar_size * params.num_crossbars


def num_crossbar_switches(params: AbcccParams) -> int:
    """One per crossbar — unless crossbars are singletons (``c == 1``)."""
    return params.num_crossbars if params.has_crossbar_switch else 0


def num_level_switches(params: AbcccParams) -> int:
    """``(k+1) * n^k`` — one per level per digit-vector-minus-one-digit."""
    return params.levels * params.n ** params.k


def num_switches(params: AbcccParams) -> int:
    return num_crossbar_switches(params) + num_level_switches(params)


def num_crossbar_links(params: AbcccParams) -> int:
    """One per server (its port to the local crossbar switch)."""
    return num_servers(params) if params.has_crossbar_switch else 0


def num_level_links(params: AbcccParams) -> int:
    """``(k+1) * n^(k+1)`` — every level switch has exactly ``n`` links."""
    return num_level_switches(params) * params.n


def num_links(params: AbcccParams) -> int:
    return num_crossbar_links(params) + num_level_links(params)


def crossbar_switch_ports(params: AbcccParams) -> int:
    """Port count the crossbar switches need.

    Commodity ``n``-port switches suffice whenever ``c <= n`` (every
    sensible configuration); if a parameter choice makes crossbars larger
    than the radix, the builder provisions a bigger crossbar switch and
    this function reports that size.
    """
    if not params.has_crossbar_switch:
        return 0
    return max(params.n, params.crossbar_size)


def diameter_server_hops(params: AbcccParams) -> int:
    """Worst-case logical distance between two servers.

    For ``c = 1`` the network is BCube: ``k + 1``.

    For ``c > 1`` the worst pair differs in **all** ``k + 1`` digits and
    the destination index differs from the last level's owner: the
    digit-correcting route pays ``k + 1`` level traversals, ``c - 1``
    intra-crossbar moves between owner groups (starting inside the source
    server's own group is always possible), and one final intra-crossbar
    move — ``(k + 1) + (c - 1) + 1 = k + c + 1``.

    With ``s = 2`` (BCCC) this is ``2k + 2``, linear in ``k`` as the BCCC
    paper claims; with ``s >= k + 2`` it collapses to BCube's ``k + 1``.
    Verified by exhaustive BFS in ``tests/test_core_properties.py``.
    """
    c = params.crossbar_size
    if c == 1:
        return params.levels
    return params.k + c + 1


def diameter_link_hops(params: AbcccParams) -> int:
    """Physical diameter: each logical hop crosses one switch (2 links)."""
    return 2 * diameter_server_hops(params)


def bisection_links(params: AbcccParams) -> Optional[float]:
    """Bisection width in links, for even ``n``: ``n^(k+1) / 2``.

    Cut the servers by the level-``k`` digit (low half vs. high half):
    only the ``n^k`` level-``k`` switches have members on both sides, and
    splitting each such star costs ``n / 2`` links, giving
    ``n^k * n/2 = n^(k+1)/2``.  All crossbar links and all other level
    switches stay on one side.  For odd ``n`` no digit split is balanced
    and the closed form does not apply; ``None`` is returned and the
    spectral estimator in :mod:`repro.metrics.bisection` takes over.
    """
    if params.n % 2 != 0:
        return None
    return params.num_crossbars / 2


def bisection_per_server(params: AbcccParams) -> Optional[float]:
    """Bisection bandwidth normalised per server: ``1 / (2c)`` (even n).

    The clean trade-off dial of the paper: larger ``s`` shrinks ``c``,
    raising per-server bisection toward BCube's ``1/2`` at higher NIC cost.
    """
    width = bisection_links(params)
    if width is None:
        return None
    return width / num_servers(params)


def expected_server_hops(params: AbcccParams) -> float:
    """Exact expected locality-route length over uniform random pairs.

    Both endpoints are drawn uniformly and independently (identical pairs
    included).  The route length decomposes into *digit corrections* plus
    *intra-crossbar transfers*:

    * corrections: each of the ``k+1`` digits differs with probability
      ``1 - 1/n``, so their expectation is ``(k+1)(1 - 1/n)``;
    * transfers: depend only on *which owner groups* contain a differing
      digit (groups are traversed contiguously by the locality order) and
      on the endpoint indexes.  Group activations are independent
      (``P(group g active) = 1 - n^-|levels(g)|``), so the expectation is
      computed exactly by enumerating the ``2^c`` activation patterns and
      averaging the transfer count over the ``c^2`` endpoint-index pairs —
      no sampling, and the test suite checks it against exhaustive
      enumeration on built instances.
    """
    n, c = params.n, params.crossbar_size
    corrections = params.levels * (1.0 - 1.0 / n)
    if c == 1:
        return corrections  # BCube: no crossbar transfers at all

    activation = [
        1.0 - (1.0 / n) ** len(params.levels_of(group)) for group in range(c)
    ]

    def transfers(active: tuple, src: int, dst: int) -> int:
        groups = [g for g in range(c) if active[g]]
        if not groups:
            return 0 if src == dst else 1
        first = src if src in groups else None
        last = dst if dst in groups and dst != first else None
        middle = [g for g in groups if g != first and g != last]
        sequence = ([first] if first is not None else []) + middle
        if last is not None:
            sequence.append(last)
        count = (1 if sequence[0] != src else 0) + (len(sequence) - 1)
        if sequence[-1] != dst:
            count += 1
        return count

    expected_transfers = 0.0
    for mask in range(1 << c):
        active = tuple(bool(mask >> g & 1) for g in range(c))
        probability = 1.0
        for group in range(c):
            probability *= activation[group] if active[group] else 1.0 - activation[group]
        if probability == 0.0:
            continue
        mean_over_indexes = sum(
            transfers(active, src, dst) for src in range(c) for dst in range(c)
        ) / (c * c)
        expected_transfers += probability * mean_over_indexes
    return corrections + expected_transfers


def expected_link_hops(params: AbcccParams) -> float:
    """Expected physical route length: two links per logical hop."""
    return 2.0 * expected_server_hops(params)


def parallel_path_count(params: AbcccParams) -> int:
    """Internally disjoint inter-crossbar path families: one per level."""
    return params.levels


def expansion_requires_new_server(params: AbcccParams) -> bool:
    """Does growing ``k -> k+1`` add a server to each crossbar?

    Level ``k + 1`` lands on the last server's spare level port when
    ``(k + 1) mod (s - 1) != 0``; otherwise a fresh server per crossbar is
    required (always true for BCCC, ``s = 2``).
    """
    return params.levels % (params.s - 1) == 0
