"""Construction of ABCCC(n, k, s) networks.

The builder realises DESIGN.md §1.2 exactly:

* one crossbar per digit vector ``x`` in ``[0, n)^(k+1)`` — ``c`` servers
  plus a crossbar switch (omitted when ``c == 1``);
* for every level ``i`` and every assignment of the other ``k`` digits,
  one ``n``-port level switch wired to the level-``i`` *owner server* of
  each of its ``n`` member crossbars.

Node names are the canonical address strings from
:mod:`repro.core.address`, and every node carries its structured address,
so routing code can translate freely between names and addresses.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Iterator, Optional, Tuple

from repro.core import properties
from repro.core.address import (
    AbcccParams,
    CrossbarSwitchAddress,
    LevelSwitchAddress,
    ServerAddress,
)
from repro.routing.base import Route
from repro.topology.graph import Network
from repro.topology.spec import TopologySpec
from repro.topology.validate import LinkPolicy


def iter_level_switches(params: AbcccParams) -> Iterator[LevelSwitchAddress]:
    """All level-switch addresses, level-major then rest-digit order."""
    for level in range(params.levels):
        for rest in itertools.product(range(params.n), repeat=params.k):
            yield LevelSwitchAddress(level, tuple(rest))


def build_abccc(params: AbcccParams) -> Network:
    """Build the full ABCCC(n, k, s) network graph."""
    net = Network(name=str(params))
    net.meta["params"] = params
    net.meta["kind"] = "abccc"
    c = params.crossbar_size
    csw_ports = properties.crossbar_switch_ports(params)

    for digits in params.iter_crossbars():
        csw_name = None
        if params.has_crossbar_switch:
            csw = CrossbarSwitchAddress(digits)
            csw_name = csw.name
            net.add_switch(csw_name, ports=csw_ports, address=csw, role="crossbar")
        for j in range(c):
            server = ServerAddress(digits, j)
            server_name = server.name
            net.add_server(server_name, ports=params.s, address=server)
            if csw_name is not None:
                net.add_link(server_name, csw_name)

    for lsw in iter_level_switches(params):
        lsw_name = lsw.name
        net.add_switch(lsw_name, ports=params.n, address=lsw, role="level")
        owner = params.owner_of(lsw.level)
        for value in range(params.n):
            member = ServerAddress(lsw.member_digits(value), owner)
            net.add_link(lsw_name, member.name)

    return net


class AbcccSpec(TopologySpec):
    """The paper's contribution as a registrable topology spec."""

    kind = "abccc"

    def __init__(self, n: int, k: int, s: int):
        self.abccc = AbcccParams(n, k, s)

    @property
    def n(self) -> int:
        return self.abccc.n

    @property
    def k(self) -> int:
        return self.abccc.k

    @property
    def s(self) -> int:
        return self.abccc.s

    def params(self) -> Dict[str, Any]:
        return {"n": self.n, "k": self.k, "s": self.s}

    # ------------------------------------------------------------------
    # analytic properties
    # ------------------------------------------------------------------
    @property
    def num_servers(self) -> int:
        return properties.num_servers(self.abccc)

    @property
    def num_switches(self) -> int:
        return properties.num_switches(self.abccc)

    @property
    def num_links(self) -> int:
        return properties.num_links(self.abccc)

    @property
    def server_ports(self) -> int:
        return self.s

    @property
    def switch_ports(self) -> int:
        return max(self.n, properties.crossbar_switch_ports(self.abccc))

    def switch_inventory(self) -> Dict[int, int]:
        inventory = {self.n: properties.num_level_switches(self.abccc)}
        crossbars = properties.num_crossbar_switches(self.abccc)
        if crossbars:
            ports = properties.crossbar_switch_ports(self.abccc)
            inventory[ports] = inventory.get(ports, 0) + crossbars
        return inventory

    @property
    def diameter_server_hops(self) -> Optional[int]:
        return properties.diameter_server_hops(self.abccc)

    @property
    def bisection_links(self) -> Optional[float]:
        return properties.bisection_links(self.abccc)

    def link_policy(self) -> LinkPolicy:
        return LinkPolicy.server_centric()

    # ------------------------------------------------------------------
    # construction & routing
    # ------------------------------------------------------------------
    def build(self) -> Network:
        return build_abccc(self.abccc)

    def route(self, net: Network, src: str, dst: str) -> Route:
        """Digit-correction routing with the locality-aware permutation."""
        from repro.core.routing import abccc_route

        return abccc_route(
            self.abccc, ServerAddress.parse(src), ServerAddress.parse(dst)
        )
