"""The common interface every topology implements.

A :class:`TopologySpec` is an immutable parameter set that knows how to

* ``build()`` the concrete :class:`~repro.topology.graph.Network`;
* predict its own analytic properties (server/switch/link counts,
  diameter, bisection width) *without* building, so size sweeps can reach
  scales that would not fit in memory;
* produce topology-native routes (``route``), defaulting to BFS when the
  topology has no bespoke algorithm.

Experiments treat all topologies uniformly through this interface.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Any, Dict, Optional

from repro.topology.graph import Network
from repro.topology.validate import LinkPolicy

if TYPE_CHECKING:  # imported lazily at runtime to avoid an import cycle
    from repro.routing.base import Route


class TopologySpec(abc.ABC):
    """Parameter object + factory for one data-center topology instance."""

    #: short machine name, e.g. ``"abccc"``; set by subclasses.
    kind: str = ""

    # ------------------------------------------------------------------
    # identity
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def params(self) -> Dict[str, Any]:
        """The defining parameters, e.g. ``{"n": 4, "k": 2, "s": 3}``."""

    @property
    def label(self) -> str:
        """Human-readable instance label, e.g. ``ABCCC(n=4, k=2, s=3)``."""
        inner = ", ".join(f"{k}={v}" for k, v in self.params().items())
        return f"{self.kind.upper()}({inner})"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return self.label

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, TopologySpec)
            and self.kind == other.kind
            and self.params() == other.params()
        )

    def __hash__(self) -> int:
        return hash((self.kind, tuple(sorted(self.params().items()))))

    # ------------------------------------------------------------------
    # analytic properties (no build required)
    # ------------------------------------------------------------------
    @property
    @abc.abstractmethod
    def num_servers(self) -> int:
        """Number of servers, from the closed-form count."""

    @property
    @abc.abstractmethod
    def num_switches(self) -> int:
        """Number of switches, from the closed-form count."""

    @property
    @abc.abstractmethod
    def num_links(self) -> int:
        """Number of links, from the closed-form count."""

    @property
    @abc.abstractmethod
    def server_ports(self) -> int:
        """NIC ports required per server."""

    @property
    @abc.abstractmethod
    def switch_ports(self) -> int:
        """Port count of the commodity switches used."""

    @property
    def diameter_server_hops(self) -> Optional[int]:
        """Worst-case logical server-hop distance, or ``None`` if unknown."""
        return None

    def switch_inventory(self) -> Dict[int, int]:
        """Switch purchase list: ``{port_count: how_many}``.

        Defaults to all switches having :attr:`switch_ports` ports;
        topologies mixing switch sizes override (e.g. ABCCC when crossbars
        outgrow the radix).
        """
        if self.num_switches == 0:
            return {}
        return {self.switch_ports: self.num_switches}

    @property
    def diameter_link_hops(self) -> Optional[int]:
        """Worst-case physical link-hop distance.

        Defaults to twice the server-hop diameter, which is exact for
        server-centric topologies whose paths alternate server/switch;
        topologies with direct server links or switch fabrics override.
        """
        server_hops = self.diameter_server_hops
        if server_hops is None:
            return None
        return 2 * server_hops

    @property
    def bisection_links(self) -> Optional[float]:
        """Analytic bisection width in links, or ``None`` if unknown."""
        return None

    def link_policy(self) -> LinkPolicy:
        """Which link pairings this topology legitimately uses."""
        return LinkPolicy.unrestricted()

    # ------------------------------------------------------------------
    # construction & routing
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def build(self) -> Network:
        """Construct the full network graph."""

    def compiled(self, memmap_dir: Optional[str] = None, prefer_fast: bool = True):
        """The compiled CSR link graph of this topology.

        Dispatches to the vectorized direct-to-CSR constructor
        (:mod:`repro.topology.fastbuild`) when this family has one and
        numpy is available — no ``Node`` objects are created — and
        otherwise to ``compile_graph(self.build())``.  The two paths
        produce identical CSR arrays; ``prefer_fast=False`` forces the
        object path (the parity oracle).  ``memmap_dir`` lets the fast
        path back its large arrays with memory-mapped files.
        """
        from repro.topology.compiled import build_compiled

        return build_compiled(self, memmap_dir=memmap_dir, prefer_fast=prefer_fast)

    def route(self, net: Network, src: str, dst: str) -> "Route":
        """Topology-native one-to-one route (default: BFS shortest path).

        ``net`` must be a network built by this spec (or a failure-injected
        copy of one).
        """
        from repro.routing.shortest import bfs_path

        return bfs_path(net, src, dst)
