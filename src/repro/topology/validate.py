"""Structural invariant checks for built networks.

Builders are trusted to be correct, but tests (and cautious users) can run
:func:`validate_network` to assert the physical-plausibility invariants
that every data-center topology must satisfy:

* every node's degree is within its port budget;
* the network is connected (unless explicitly waived);
* no switch-to-switch links for *server-centric* topologies (ABCCC, BCube,
  BCCC, DCell, FiConn keep switches as dumb crossbars that only face
  servers), controlled by a policy flag because switch-centric baselines
  (fat-tree) legitimately wire switches together;
* no server-to-server links unless the topology uses direct server wiring
  (DCell, FiConn), again policy-controlled.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.topology.graph import Network
from repro.topology.node import NodeKind


@dataclass(frozen=True)
class LinkPolicy:
    """Which endpoint pairings a topology permits."""

    server_server: bool = False
    switch_switch: bool = False

    @classmethod
    def server_centric(cls) -> "LinkPolicy":
        """Switches only face servers (ABCCC / BCube / BCCC)."""
        return cls(server_server=False, switch_switch=False)

    @classmethod
    def direct_server(cls) -> "LinkPolicy":
        """Servers may wire to each other (DCell / FiConn)."""
        return cls(server_server=True, switch_switch=False)

    @classmethod
    def switch_centric(cls) -> "LinkPolicy":
        """Switch fabric above the servers (fat-tree / Clos)."""
        return cls(server_server=False, switch_switch=True)

    @classmethod
    def unrestricted(cls) -> "LinkPolicy":
        return cls(server_server=True, switch_switch=True)


class ValidationError(Exception):
    """Raised when a network violates a structural invariant."""

    def __init__(self, problems: List[str]):
        self.problems = list(problems)
        super().__init__("; ".join(self.problems))


def find_problems(
    net: Network,
    policy: LinkPolicy = LinkPolicy.unrestricted(),
    require_connected: bool = True,
) -> List[str]:
    """Return a list of human-readable invariant violations (empty = OK)."""
    problems: List[str] = []
    for node in net.nodes():
        degree = net.degree(node.name)
        if degree > node.ports:
            problems.append(
                f"{node.name} exceeds port budget: degree {degree} > ports {node.ports}"
            )
    for link in net.links():
        ku = net.node(link.u).kind
        kv = net.node(link.v).kind
        if ku is NodeKind.SERVER and kv is NodeKind.SERVER and not policy.server_server:
            problems.append(f"server-server link {link.u} - {link.v} not permitted")
        if ku is NodeKind.SWITCH and kv is NodeKind.SWITCH and not policy.switch_switch:
            problems.append(f"switch-switch link {link.u} - {link.v} not permitted")
    if require_connected and len(net) > 0 and not is_connected(net):
        problems.append("network is not connected")
    return problems


def validate_network(
    net: Network,
    policy: LinkPolicy = LinkPolicy.unrestricted(),
    require_connected: bool = True,
) -> None:
    """Raise :class:`ValidationError` if any invariant is violated."""
    problems = find_problems(net, policy=policy, require_connected=require_connected)
    if problems:
        raise ValidationError(problems)


def csr_parity_problems(graph, net: Network, oracle=None) -> List[str]:
    """Exhaustive parity check of a compiled CSR graph against its oracle.

    ``graph`` is any :class:`~repro.topology.compiled.CompiledGraph`-shaped
    object (typically a fast-built one, see
    :mod:`repro.topology.fastbuild`); ``net`` is the object-path build of
    the same spec and ``oracle`` its compilation (compiled from ``net``
    when omitted).  Returns human-readable mismatches (empty = parity):

    * identical node-name sequences (same ids, same insertion order);
    * identical CSR rows — offsets and canonically sorted neighbor lists;
    * identical server-index tables and dense edge lists;
    * node-kind, role and structured-address tables matching the
      ``Node`` objects, when ``graph`` exposes ``is_server`` /
      ``role_of`` / ``address_of`` per id;
    * name -> id index round-trip.

    Meant for small instances: every node and edge is visited.
    """
    from repro.topology.compiled import compile_graph

    if oracle is None:
        oracle = compile_graph(net)
    problems: List[str] = []
    if graph.num_nodes != oracle.num_nodes:
        problems.append(
            f"node count mismatch: {graph.num_nodes} != {oracle.num_nodes}"
        )
        return problems

    names = list(graph.names)
    oracle_names = list(oracle.names)
    if names != oracle_names:
        diverge = next(
            (i for i, (a, b) in enumerate(zip(names, oracle_names)) if a != b), None
        )
        problems.append(
            f"name sequence mismatch (first divergence at id {diverge}: "
            f"{names[diverge]!r} != {oracle_names[diverge]!r})"
            if diverge is not None
            else "name sequence mismatch"
        )
        return problems

    if [int(x) for x in graph.offsets] != [int(x) for x in oracle.offsets]:
        problems.append("CSR offsets differ")
    if [int(x) for x in graph.neighbors] != [int(x) for x in oracle.neighbors]:
        problems.append("CSR neighbor lists differ")
    if [int(x) for x in graph.server_indices] != [
        int(x) for x in oracle.server_indices
    ]:
        problems.append("server index tables differ")
    fast_edges = sorted(
        (min(int(u), int(v)), max(int(u), int(v)))
        for u, v in zip(graph.edge_u, graph.edge_v)
    )
    oracle_edges = sorted(
        (min(int(u), int(v)), max(int(u), int(v)))
        for u, v in zip(oracle.edge_u, oracle.edge_v)
    )
    if fast_edges != oracle_edges:
        problems.append("canonical edge sets differ")

    for i, name in enumerate(names):
        node = net.node(name)
        if graph.index[name] != i:
            problems.append(f"index round-trip failed for {name!r}")
        if hasattr(graph, "is_server") and graph.is_server(i) != node.is_server:
            problems.append(f"node kind mismatch for {name!r}")
        if hasattr(graph, "role_of") and graph.role_of(i) != node.role:
            problems.append(
                f"role mismatch for {name!r}: "
                f"{graph.role_of(i)!r} != {node.role!r}"
            )
        if (
            hasattr(graph, "address_of")
            and node.address is not None
            and graph.address_of(i) != node.address
        ):
            problems.append(
                f"address mismatch for {name!r}: "
                f"{graph.address_of(i)!r} != {node.address!r}"
            )
        if len(problems) > 25:
            problems.append("… (truncated)")
            break
    return problems


def assert_csr_parity(graph, net: Network, oracle=None) -> None:
    """Raise :class:`ValidationError` unless ``graph`` matches the oracle."""
    problems = csr_parity_problems(graph, net, oracle=oracle)
    if problems:
        raise ValidationError(problems)


def is_connected(net: Network) -> bool:
    """True iff the network has a single connected component."""
    if len(net) == 0:
        return True
    start = next(net.node_names())
    seen = {start}
    frontier = [start]
    while frontier:
        nxt: List[str] = []
        for u in frontier:
            for v in net.neighbors(u):
                if v not in seen:
                    seen.add(v)
                    nxt.append(v)
        frontier = nxt
    return len(seen) == len(net)


def connected_component(net: Network, start: str) -> set:
    """The set of node names reachable from ``start``."""
    seen = {start}
    frontier = [start]
    while frontier:
        nxt: List[str] = []
        for u in frontier:
            for v in net.neighbors(u):
                if v not in seen:
                    seen.add(v)
                    nxt.append(v)
        frontier = nxt
    return seen
