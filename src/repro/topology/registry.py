"""Name-based topology registry.

Maps the short kind string (``"abccc"``, ``"bcube"``, …) to its
:class:`~repro.topology.spec.TopologySpec` subclass so the CLI and the
experiment harness can instantiate topologies from plain dictionaries.

Built-in topologies register themselves on import of
:mod:`repro.baselines` / :mod:`repro.core`; users may register their own
specs with :func:`register`.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Type

from repro.topology.spec import TopologySpec

_REGISTRY: Dict[str, Type[TopologySpec]] = {}


class UnknownTopologyError(KeyError):
    """Raised when a kind string is not registered."""


def register(spec_class: Type[TopologySpec]) -> Type[TopologySpec]:
    """Register a spec class under its ``kind``; usable as a decorator.

    Re-registering the *same* class is a no-op; registering a different
    class under an existing kind raises ``ValueError`` to catch typos.
    """
    kind = spec_class.kind
    if not kind:
        raise ValueError(f"{spec_class.__name__} has an empty kind")
    existing = _REGISTRY.get(kind)
    if existing is not None and existing is not spec_class:
        raise ValueError(
            f"kind {kind!r} already registered to {existing.__name__}"
        )
    _REGISTRY[kind] = spec_class
    return spec_class


def available() -> List[str]:
    """Sorted list of registered kind names (built-ins auto-imported)."""
    _ensure_builtins()
    return sorted(_REGISTRY)


def spec_class(kind: str) -> Type[TopologySpec]:
    """The spec class registered under ``kind``."""
    _ensure_builtins()
    try:
        return _REGISTRY[kind]
    except KeyError:
        raise UnknownTopologyError(
            f"unknown topology {kind!r}; available: {', '.join(sorted(_REGISTRY))}"
        ) from None


def create(kind: str, **params: Any) -> TopologySpec:
    """Instantiate a registered topology spec from keyword parameters."""
    return spec_class(kind)(**params)


def _ensure_builtins() -> None:
    """Import the packages whose import side-effect registers built-ins."""
    import repro.baselines  # noqa: F401  (registers bcube, bccc, fattree, …)
    import repro.core  # noqa: F401  (registers abccc)
