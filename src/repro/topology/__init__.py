"""Network-graph substrate: typed nodes, port-budgeted links, validation.

Public surface::

    from repro.topology import Network, Node, Link, NodeKind
    from repro.topology import TopologySpec, LinkPolicy, validate_network
    from repro.topology import registry
"""

from repro.topology.compiled import (
    CompiledGraph,
    build_compiled,
    compile_graph,
    compile_server_projection,
)
from repro.topology.fastbuild import (
    FastBuildError,
    FastCompiledGraph,
    FastLayout,
    fast_compiled,
)
from repro.topology.graph import Network, NetworkError
from repro.topology.node import Link, Node, NodeKind, link_key
from repro.topology.spec import TopologySpec
from repro.topology.validate import (
    LinkPolicy,
    ValidationError,
    find_problems,
    is_connected,
    validate_network,
)

__all__ = [
    "CompiledGraph",
    "FastBuildError",
    "FastCompiledGraph",
    "FastLayout",
    "Link",
    "LinkPolicy",
    "build_compiled",
    "compile_graph",
    "compile_server_projection",
    "fast_compiled",
    "Network",
    "NetworkError",
    "Node",
    "NodeKind",
    "TopologySpec",
    "ValidationError",
    "find_problems",
    "is_connected",
    "link_key",
    "validate_network",
]
