"""Network serialization: JSON round-trip, GraphML and DOT export.

A library users adopt needs its networks to leave the process: the JSON
codec round-trips a :class:`~repro.topology.graph.Network` exactly
(nodes with kinds/ports/roles, links with capacities, the public meta),
GraphML goes to any graph tool via networkx, and DOT feeds Graphviz for
figures.

Structured addresses are preserved through JSON for the topologies whose
addresses are plain tuples/ints (BCube, hypercube, torus, fat-tree);
ABCCC's dataclass addresses are re-derived from node names on load (the
names *are* the canonical encoding), so a loaded ABCCC network routes
identically.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from repro.topology.graph import Network
from repro.topology.node import NodeKind

FORMAT_VERSION = 1


def _address_to_json(address: Any) -> Any:
    """Addresses that survive JSON natively; others are dropped (see
    module docstring — names re-derive them)."""
    if isinstance(address, (int, str)) or address is None:
        return address
    if isinstance(address, (tuple, list)) and all(
        isinstance(x, (int, str)) for x in address
    ):
        return list(address)
    return None


def _address_from_json(value: Any) -> Any:
    if isinstance(value, list):
        return tuple(value)
    return value


def to_json_dict(net: Network) -> Dict[str, Any]:
    """The JSON-ready dictionary form of a network."""
    return {
        "format": FORMAT_VERSION,
        "name": net.name,
        "meta": {
            k: v
            for k, v in net.meta.items()
            if not k.startswith("_") and isinstance(v, (int, float, str, bool, list))
        },
        "nodes": [
            {
                "name": node.name,
                "kind": node.kind.value,
                "ports": node.ports,
                "role": node.role,
                "address": _address_to_json(node.address),
            }
            for node in net.nodes()
        ],
        "links": [
            {"u": link.u, "v": link.v, "capacity": link.capacity, "length": link.length}
            for link in net.links()
        ],
    }


def from_json_dict(data: Dict[str, Any]) -> Network:
    """Rebuild a network from :func:`to_json_dict` output."""
    version = data.get("format")
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported network format {version!r}")
    net = Network(data.get("name", "network"))
    net.meta.update(data.get("meta", {}))
    for node in data["nodes"]:
        kind = NodeKind(node["kind"])
        address = _address_from_json(node.get("address"))
        if kind is NodeKind.SERVER:
            net.add_server(node["name"], node["ports"], address=address, role=node.get("role", ""))
        else:
            net.add_switch(node["name"], node["ports"], address=address, role=node.get("role", ""))
    for link in data["links"]:
        net.add_link(
            link["u"],
            link["v"],
            capacity=link.get("capacity", 1.0),
            length=link.get("length", 1.0),
        )
    return net


def save_json(net: Network, path: str) -> str:
    """Write the network as JSON; returns the path."""
    with open(path, "w") as handle:
        json.dump(to_json_dict(net), handle, indent=1)
    return path


def load_json(path: str) -> Network:
    """Load a network saved by :func:`save_json`."""
    with open(path) as handle:
        return from_json_dict(json.load(handle))


def save_graphml(net: Network, path: str) -> str:
    """Export via networkx GraphML (node kind/ports/role as attributes)."""
    import networkx as nx

    nx.write_graphml(net.to_networkx(), path)
    return path


def to_dot(net: Network, max_nodes: Optional[int] = None) -> str:
    """Graphviz DOT text: servers as boxes, switches as ellipses.

    ``max_nodes`` guards against accidentally dotting a 10k-node build.
    """
    if max_nodes is not None and len(net) > max_nodes:
        raise ValueError(f"network has {len(net)} nodes > max_nodes={max_nodes}")
    lines: List[str] = [f'graph "{net.name}" {{']
    lines.append("  node [fontsize=10];")
    for node in net.nodes():
        shape = "box" if node.kind is NodeKind.SERVER else "ellipse"
        lines.append(f'  "{node.name}" [shape={shape}];')
    for link in net.links():
        lines.append(f'  "{link.u}" -- "{link.v}";')
    lines.append("}")
    return "\n".join(lines)
