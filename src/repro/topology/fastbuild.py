"""Direct-to-CSR vectorized topology constructors for cube-based families.

ABCCC, BCCC and BCube are *algebraically* defined: every node and every
cable is a closed-form function of an address-space position (Li & Yang,
ICDCS 2015).  The object-graph builders in :mod:`repro.core.topology`
and :mod:`repro.baselines` realise that algebra one ``Node`` at a time —
perfect as a readable oracle, but at datacenter scale the per-node
Python objects, name strings and dict adjacency dominate the build by
orders of magnitude and cap practical instance sizes far below the
10^5–10^6 servers the paper argues about.

This module generates the compiled CSR arrays **directly** from
vectorized numpy digit arithmetic over the address space:

* node ids are arithmetic — a :class:`FastLayout` maps ``(crossbar,
  slot)`` / ``(level, rest)`` positions to dense indices in exactly the
  order the object builder would have inserted them, so the resulting
  CSR is *identical* (same ``indptr``/``indices`` bytes after the
  canonical per-row sort both paths apply) to compiling the built
  ``Network``;
* the adjacency is produced as bulk edge arrays (compact ``uint32``)
  and packed into CSR with one ``lexsort`` — no ``Node`` objects, no
  dict graph, no name strings;
* node-kind / role / address / name tables are *lazy*: names are
  re-derived arithmetically per lookup instead of being materialised,
  so a million-server graph costs tens of megabytes, not gigabytes;
* ``memmap_dir=`` optionally backs the large arrays with
  memory-mapped files for instances that should not live in RAM.

The object path stays the **parity oracle**: ``build_compiled(spec,
prefer_fast=False)`` compiles via ``spec.build()``, and
:func:`repro.topology.validate.assert_csr_parity` checks the two agree
exactly (the test suite does this for small instances of every family).

The result is a :class:`FastCompiledGraph`, a drop-in
:class:`~repro.topology.compiled.CompiledGraph`: the sweep engine,
``MaskedGraph`` fault trials and the CLI consume it unchanged.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.core.address import (
    AddressError,
    CrossbarSwitchAddress,
    LevelSwitchAddress,
    ServerAddress,
)
from repro.obs import trace as _obs
from repro.topology.compiled import HAVE_NUMPY, CompiledGraph

if HAVE_NUMPY:
    import numpy as _np

#: node-kind codes in the fast tables (uint8).
KIND_SERVER = 0
KIND_CROSSBAR_SWITCH = 1
KIND_LEVEL_SWITCH = 2

#: families with a vectorized constructor.
FAST_FAMILIES = ("abccc", "bccc", "bcube")


class FastBuildError(ValueError):
    """Raised when a spec cannot be fast-built (unsupported or too big)."""


# ----------------------------------------------------------------------
# the address-space layout: node ids as arithmetic
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FastLayout:
    """Dense node-id layout of one cube-family instance.

    The id space replays the object builder's insertion order exactly:

    * first the crossbar blocks — per crossbar, the crossbar switch (if
      any) followed by its ``crossbar_size`` servers;
    * then the level switches, level-major, rest-digits in
      ``itertools.product`` order.

    ``msb_crossbar_order`` captures the one divergence between the
    builders: :func:`repro.core.topology.build_abccc` enumerates
    crossbars in *rank* order (digit 0 fastest), while the independent
    BCCC / BCube builders iterate ``itertools.product`` (digit 0
    slowest).  Both orders are pure positional arithmetic.

    Attributes:
        family: ``"abccc"`` / ``"bccc"`` / ``"bcube"``.
        n: switch radix (digit base).
        k: order; digit vectors have ``k + 1`` positions.
        s: NIC ports per server (2 for BCCC, ``k + 1`` for BCube).
        crossbar_size: servers per crossbar block (1 when degenerate).
        has_crossbar_switch: whether blocks start with a crossbar switch.
        msb_crossbar_order: crossbar enumeration order (see above).
    """

    family: str
    n: int
    k: int
    s: int
    crossbar_size: int
    has_crossbar_switch: bool
    msb_crossbar_order: bool

    # -- derived sizes -------------------------------------------------
    @property
    def levels(self) -> int:
        return self.k + 1

    @property
    def num_crossbars(self) -> int:
        return self.n**self.levels

    @property
    def block_stride(self) -> int:
        return self.crossbar_size + (1 if self.has_crossbar_switch else 0)

    @property
    def level_switch_base(self) -> int:
        """First node id of the level-switch block."""
        return self.num_crossbars * self.block_stride

    @property
    def num_rest(self) -> int:
        """Level switches per level, ``n^k``."""
        return self.n**self.k

    @property
    def num_level_switches(self) -> int:
        return self.levels * self.num_rest

    @property
    def num_nodes(self) -> int:
        return self.level_switch_base + self.num_level_switches

    @property
    def num_servers(self) -> int:
        return self.num_crossbars * self.crossbar_size

    @property
    def num_switches(self) -> int:
        crossbars = self.num_crossbars if self.has_crossbar_switch else 0
        return crossbars + self.num_level_switches

    @property
    def num_edges(self) -> int:
        crossbar_links = self.num_servers if self.has_crossbar_switch else 0
        return crossbar_links + self.levels * self.num_crossbars

    def owner_of(self, level: int) -> int:
        """In-crossbar slot of the server wired to ``level``'s switch."""
        if self.family == "bcube":
            return 0
        return level // (self.s - 1)

    # -- digit <-> enumeration-index arithmetic ------------------------
    def crossbar_digits(self, enum: int) -> Tuple[int, ...]:
        """Level-indexed digit vector of crossbar enumeration index."""
        n, levels = self.n, self.levels
        if self.msb_crossbar_order:
            return tuple((enum // n ** (levels - 1 - p)) % n for p in range(levels))
        return tuple((enum // n**p) % n for p in range(levels))

    def crossbar_enum(self, digits: Sequence[int]) -> int:
        """Inverse of :meth:`crossbar_digits` (digits not validated)."""
        n, levels = self.n, self.levels
        if self.msb_crossbar_order:
            return sum(d * n ** (levels - 1 - p) for p, d in enumerate(digits))
        return sum(d * n**p for p, d in enumerate(digits))

    def _check_digits(self, digits: Sequence[int]) -> Tuple[int, ...]:
        digits = tuple(digits)
        if len(digits) != self.levels:
            raise AddressError(
                f"expected {self.levels} digits, got {len(digits)}"
            )
        for d in digits:
            if not 0 <= d < self.n:
                raise AddressError(f"digit {d} out of range [0, {self.n})")
        return digits

    # -- node id -> identity -------------------------------------------
    def describe(self, node: int) -> Tuple[int, Tuple[int, ...], int]:
        """``(kind_code, digits-or-rest, slot-or-level)`` of a node id."""
        node = int(node)
        if not 0 <= node < self.num_nodes:
            raise IndexError(f"node id {node} out of range [0, {self.num_nodes})")
        base = self.level_switch_base
        if node < base:
            stride = self.block_stride
            enum, slot = divmod(node, stride)
            digits = self.crossbar_digits(enum)
            if self.has_crossbar_switch:
                if slot == 0:
                    return KIND_CROSSBAR_SWITCH, digits, 0
                return KIND_SERVER, digits, slot - 1
            return KIND_SERVER, digits, slot
        level, rest_rank = divmod(node - base, self.num_rest)
        n, k = self.n, self.k
        rest = tuple((rest_rank // n ** (k - 1 - p)) % n for p in range(k))
        return KIND_LEVEL_SWITCH, rest, level

    def name_of(self, node: int) -> str:
        """Canonical node name — identical to the object builder's."""
        kind, digits, extra = self.describe(node)
        if kind == KIND_SERVER:
            if self.family == "bcube":
                return "s" + ".".join(str(d) for d in reversed(digits))
            return ServerAddress(digits, extra).name
        if kind == KIND_CROSSBAR_SWITCH:
            return CrossbarSwitchAddress(digits).name
        return LevelSwitchAddress(extra, digits).name

    def address_of(self, node: int) -> Any:
        """The structured address the object builder would attach."""
        kind, digits, extra = self.describe(node)
        if kind == KIND_SERVER:
            return digits if self.family == "bcube" else ServerAddress(digits, extra)
        if kind == KIND_CROSSBAR_SWITCH:
            return CrossbarSwitchAddress(digits)
        return LevelSwitchAddress(extra, digits)

    def role_of(self, node: int) -> str:
        kind = self.describe(node)[0]
        if kind == KIND_CROSSBAR_SWITCH:
            return "crossbar"
        if kind == KIND_LEVEL_SWITCH:
            return "level"
        return ""

    # -- name -> node id -----------------------------------------------
    def node_id(self, name: str) -> int:
        """Dense id of a canonical node name; raises ``KeyError``."""
        try:
            return self._node_id(name)
        except (AddressError, ValueError, IndexError):
            raise KeyError(name) from None

    def _node_id(self, name: str) -> int:
        if name.startswith("l"):
            addr = LevelSwitchAddress.parse(name)
            if not 0 <= addr.level < self.levels or len(addr.rest) != self.k:
                raise KeyError(name)
            n, k = self.n, self.k
            rest_rank = 0
            for p, d in enumerate(addr.rest):
                if not 0 <= d < n:
                    raise KeyError(name)
                rest_rank += d * n ** (k - 1 - p)
            return self.level_switch_base + addr.level * self.num_rest + rest_rank
        if name.startswith("c"):
            if not self.has_crossbar_switch:
                raise KeyError(name)
            digits = self._check_digits(CrossbarSwitchAddress.parse(name).digits)
            return self.crossbar_enum(digits) * self.block_stride
        if name.startswith("s"):
            if self.family == "bcube":
                if "/" in name:
                    raise KeyError(name)
                digits = self._check_digits(
                    tuple(reversed([int(p) for p in name[1:].split(".")]))
                )
                return self.crossbar_enum(digits)
            addr = ServerAddress.parse(name)
            digits = self._check_digits(addr.digits)
            if not 0 <= addr.index < self.crossbar_size:
                raise KeyError(name)
            offset = 1 if self.has_crossbar_switch else 0
            return self.crossbar_enum(digits) * self.block_stride + offset + addr.index
        raise KeyError(name)

    def label(self) -> str:
        """Filesystem-safe instance label, e.g. ``abccc-n8-k4-s2``."""
        if self.family == "bcube":
            return f"bcube-n{self.n}-k{self.k}"
        return f"{self.family}-n{self.n}-k{self.k}-s{self.s}"


# ----------------------------------------------------------------------
# lazy name / index tables
# ----------------------------------------------------------------------
class LazyNames(Sequence):
    """Tuple-like view of all node names, derived arithmetically.

    Nothing is materialised: ``names[i]`` re-derives one name from the
    layout, iteration yields them in id order, and ``len`` is a closed
    form — a million-node graph carries no name storage at all.
    """

    __slots__ = ("_layout",)

    def __init__(self, layout: FastLayout) -> None:
        self._layout = layout

    def __len__(self) -> int:
        return self._layout.num_nodes

    def __getitem__(self, item):
        if isinstance(item, slice):
            return [self._layout.name_of(i) for i in range(*item.indices(len(self)))]
        i = int(item)
        if i < 0:
            i += len(self)
        return self._layout.name_of(i)

    def __iter__(self) -> Iterator[str]:
        name_of = self._layout.name_of
        for i in range(self._layout.num_nodes):
            yield name_of(i)

    def __contains__(self, name: object) -> bool:
        try:
            self._layout.node_id(name)  # type: ignore[arg-type]
            return True
        except (KeyError, AttributeError, TypeError):
            return False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<LazyNames of {self._layout.label()}: {len(self)} nodes>"


class LazyIndex:
    """Dict-like name -> id lookup backed by address parsing.

    Supports the mapping surface the metric/fault layers use
    (``[]``, ``.get``, ``in``, ``len``, iteration) without ever holding
    a dict of a million strings: each lookup parses the name and
    computes the id arithmetically.
    """

    __slots__ = ("_layout",)

    def __init__(self, layout: FastLayout) -> None:
        self._layout = layout

    def __getitem__(self, name: str) -> int:
        return self._layout.node_id(name)

    def get(self, name: str, default: Optional[int] = None) -> Optional[int]:
        try:
            return self._layout.node_id(name)
        except KeyError:
            return default

    def __contains__(self, name: object) -> bool:
        try:
            self._layout.node_id(name)  # type: ignore[arg-type]
            return True
        except (KeyError, AttributeError, TypeError):
            return False

    def __len__(self) -> int:
        return self._layout.num_nodes

    def __iter__(self) -> Iterator[str]:
        return iter(LazyNames(self._layout))

    def items(self) -> Iterator[Tuple[str, int]]:
        for i, name in enumerate(LazyNames(self._layout)):
            yield name, i

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<LazyIndex of {self._layout.label()}: {len(self)} nodes>"


# ----------------------------------------------------------------------
# the fast compiled graph
# ----------------------------------------------------------------------
class FastCompiledGraph(CompiledGraph):
    """A :class:`CompiledGraph` generated without an object graph.

    Same CSR arrays, same kernels, same pickle-to-workers behavior —
    but ``names`` / ``index`` are lazy arithmetic views (tuple-like and
    dict-like respectively), ``edge_capacity`` is a lazy unit array,
    and the instance carries its :class:`FastLayout` so node kinds,
    roles and structured addresses stay queryable per id.
    """

    __slots__ = ("layout", "_names_view", "_index_view", "_capacity")

    def __init__(
        self, layout: FastLayout, offsets, neighbors, server_indices, edge_u, edge_v
    ) -> None:
        self.layout = layout
        self.offsets = offsets
        self.neighbors = neighbors
        self.server_indices = server_indices
        self.edge_u = edge_u
        self.edge_v = edge_v
        self._names_view: Optional[LazyNames] = None
        self._index_view: Optional[LazyIndex] = None
        self._capacity = None
        self._edge_lookup = None
        self._sparse = None
        self._rows = None
        self._masked_template = None

    # -- lazy views shadowing the parent's slots -----------------------
    @property
    def names(self) -> LazyNames:  # type: ignore[override]
        if self._names_view is None:
            self._names_view = LazyNames(self.layout)
        return self._names_view

    @property
    def index(self) -> LazyIndex:  # type: ignore[override]
        if self._index_view is None:
            self._index_view = LazyIndex(self.layout)
        return self._index_view

    @property
    def edge_capacity(self):  # type: ignore[override]
        """Unit capacities (all fast families use unit links), lazy."""
        if self._capacity is None:
            self._capacity = _np.ones(len(self.edge_u), dtype=_np.float64)
        return self._capacity

    @property
    def num_nodes(self) -> int:
        return self.layout.num_nodes

    @property
    def num_servers(self) -> int:
        return self.layout.num_servers

    # -- identity queries the object path answers via Node -------------
    def kind_code(self, node: int) -> int:
        """``KIND_SERVER`` / ``KIND_CROSSBAR_SWITCH`` / ``KIND_LEVEL_SWITCH``."""
        return self.layout.describe(node)[0]

    def is_server(self, node: int) -> bool:
        return self.kind_code(node) == KIND_SERVER

    def role_of(self, node: int) -> str:
        return self.layout.role_of(node)

    def address_of(self, node: int) -> Any:
        return self.layout.address_of(node)

    def node_kind_table(self):
        """uint8 kind code per node id (vectorised)."""
        kinds = _np.zeros(self.num_nodes, dtype=_np.uint8)
        kinds[self.layout.level_switch_base :] = KIND_LEVEL_SWITCH
        if self.layout.has_crossbar_switch:
            stops = self.layout.level_switch_base
            kinds[0 : stops : self.layout.block_stride] = KIND_CROSSBAR_SWITCH
        return kinds

    # -- pickling (workers receive the arrays, rebuild the views) ------
    def __getstate__(self):
        def unmap(arr):
            # Ship plain arrays: a memmap must not leak into workers
            # that may not see the backing file.
            return _np.array(arr) if isinstance(arr, _np.memmap) else arr

        return (
            self.layout,
            unmap(self.offsets),
            unmap(self.neighbors),
            unmap(self.server_indices),
            unmap(self.edge_u),
            unmap(self.edge_v),
        )

    def __setstate__(self, state):
        self.__init__(*state)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<FastCompiledGraph {self.layout.label()}: "
            f"{self.num_servers} servers, {self.num_nodes} nodes, "
            f"{self.num_edges} edges>"
        )


# ----------------------------------------------------------------------
# layout resolution & support predicate
# ----------------------------------------------------------------------
def layout_for(spec) -> FastLayout:
    """The :class:`FastLayout` of a supported spec; raises otherwise."""
    kind = getattr(spec, "kind", None)
    if kind == "abccc":
        params = spec.abccc
        return FastLayout(
            "abccc",
            params.n,
            params.k,
            params.s,
            params.crossbar_size,
            params.has_crossbar_switch,
            msb_crossbar_order=False,
        )
    if kind == "bccc":
        if spec.k == 0:
            # build_bccc's degenerate single-level case: bare n-port star.
            return FastLayout("bccc", spec.n, 0, 2, 1, False, msb_crossbar_order=True)
        return FastLayout(
            "bccc", spec.n, spec.k, 2, spec.k + 1, True, msb_crossbar_order=True
        )
    if kind == "bcube":
        return FastLayout(
            "bcube", spec.n, spec.k, spec.k + 1, 1, False, msb_crossbar_order=True
        )
    raise FastBuildError(f"no vectorized constructor for topology kind {kind!r}")


def supports(spec) -> bool:
    """Can ``spec`` be fast-built?  (Supported family + numpy present.)"""
    return HAVE_NUMPY and getattr(spec, "kind", None) in FAST_FAMILIES


# ----------------------------------------------------------------------
# the vectorized constructor
# ----------------------------------------------------------------------
def _generate_edges(layout: FastLayout):
    """Bulk ``(edge_u, edge_v)`` uint32 arrays, in builder insertion order.

    Pair orientation matches the object path: links are stored with the
    lexicographically smaller *name* first, and switch names (``c…``,
    ``l…``) always sort before server names (``s…``), so every pair is
    ``(switch_id, server_id)``.
    """
    np = _np
    n, k = layout.n, layout.k
    levels, C = layout.levels, layout.num_crossbars
    c, stride = layout.crossbar_size, layout.block_stride
    has_csw = layout.has_crossbar_switch
    base, nk = layout.level_switch_base, layout.num_rest

    edge_u = np.empty(layout.num_edges, dtype=np.uint32)
    edge_v = np.empty(layout.num_edges, dtype=np.uint32)
    pos = 0

    if has_csw:
        # crossbar-local links, crossbar-major then slot-minor
        blocks = np.repeat(np.arange(C, dtype=np.int64), c)
        slots = np.tile(np.arange(c, dtype=np.int64), C)
        edge_u[: C * c] = blocks * stride
        edge_v[: C * c] = blocks * stride + 1 + slots
        pos = C * c

    # level-switch links: level-major, rest-rank-major, member-value-minor
    t = np.repeat(np.arange(nk, dtype=np.int64), n)  # rest rank per entry
    w = np.tile(np.arange(n, dtype=np.int64), nk)  # member digit value
    rest_digit = [(t // n ** (k - 1 - p)) % n for p in range(k)]
    server_offset = 1 if has_csw else 0
    for level in range(levels):
        # enumeration index of the member crossbar whose digit vector is
        # ``rest`` with ``w`` inserted at position ``level``
        if layout.msb_crossbar_order:
            enum = w * n ** (k - level)
            for p in range(k):
                q = p if p < level else p + 1
                enum = enum + rest_digit[p] * n ** (levels - 1 - q)
        else:
            enum = w * n**level
            for p in range(k):
                q = p if p < level else p + 1
                enum = enum + rest_digit[p] * n**q
        owner = layout.owner_of(level)
        edge_u[pos : pos + C] = base + level * nk + t
        edge_v[pos : pos + C] = enum * stride + server_offset + owner
        pos += C
    return edge_u, edge_v


def _csr_from_edges(num_nodes: int, edge_u, edge_v):
    """Pack undirected edge arrays into canonical sorted-row CSR."""
    np = _np
    rows = np.concatenate([edge_u, edge_v])
    cols = np.concatenate([edge_v, edge_u])
    order = np.lexsort((cols, rows))
    neighbors = cols[order]
    counts = np.bincount(rows, minlength=num_nodes)
    offsets = np.zeros(num_nodes + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    return offsets.astype(np.uint32), neighbors


def _server_indices(layout: FastLayout):
    np = _np
    C, c = layout.num_crossbars, layout.crossbar_size
    stride = layout.block_stride
    offset = 1 if layout.has_crossbar_switch else 0
    ids = (
        np.repeat(np.arange(C, dtype=np.int64), c) * stride
        + offset
        + np.tile(np.arange(c, dtype=np.int64), C)
    )
    return ids.astype(np.uint32)


def _memmap_array(arr, directory: str, filename: str):
    path = os.path.join(directory, filename)
    mapped = _np.memmap(path, dtype=arr.dtype, mode="w+", shape=arr.shape)
    mapped[:] = arr
    mapped.flush()
    return mapped


def fast_compiled(spec, memmap_dir: Optional[str] = None) -> FastCompiledGraph:
    """Vectorized build + compile of ``spec``'s link graph, no object graph.

    Equivalent to ``compile_graph(spec.build())`` — same node ids, same
    CSR bytes, same edge list — at a fraction of the time and memory.
    With ``memmap_dir`` the four large arrays (``indptr``, ``indices``,
    ``edge_u``, ``edge_v``) are written to ``<label>.<part>.u32`` files
    there and the graph holds memory-mapped views.
    """
    if not HAVE_NUMPY:
        raise FastBuildError("fastbuild requires numpy")
    layout = layout_for(spec)
    if layout.num_nodes >= 2**32 - 1 or 2 * layout.num_edges >= 2**32 - 1:
        raise FastBuildError(
            f"{layout.label()} exceeds the uint32 CSR id space "
            f"({layout.num_nodes} nodes, {layout.num_edges} edges)"
        )
    with _obs.span(
        "topology.fastbuild",
        kind=layout.family,
        servers=layout.num_servers,
        nodes=layout.num_nodes,
        memmap=bool(memmap_dir),
    ):
        _obs.counter("fastbuild.graphs")
        edge_u, edge_v = _generate_edges(layout)
        offsets, neighbors = _csr_from_edges(layout.num_nodes, edge_u, edge_v)
        servers = _server_indices(layout)
        if memmap_dir is not None:
            os.makedirs(memmap_dir, exist_ok=True)
            label = layout.label()
            offsets = _memmap_array(offsets, memmap_dir, f"{label}.indptr.u32")
            neighbors = _memmap_array(neighbors, memmap_dir, f"{label}.indices.u32")
            edge_u = _memmap_array(edge_u, memmap_dir, f"{label}.edge_u.u32")
            edge_v = _memmap_array(edge_v, memmap_dir, f"{label}.edge_v.u32")
        return FastCompiledGraph(layout, offsets, neighbors, servers, edge_u, edge_v)


def csr_nbytes(graph: CompiledGraph) -> int:
    """Total bytes of the CSR + edge + server-index arrays (numpy only)."""
    total = 0
    for arr in (
        graph.offsets,
        graph.neighbors,
        graph.server_indices,
        graph.edge_u,
        graph.edge_v,
    ):
        total += getattr(arr, "nbytes", 0) or (
            len(arr) * getattr(arr, "itemsize", 8)
        )
    return total
