"""The :class:`Network` container: a typed, port-budgeted undirected graph.

This is the substrate every topology builder targets and every metric,
router and simulator consumes.  It is a thin, fast adjacency-dict graph
with three extras over a plain graph:

* nodes are typed (:class:`~repro.topology.node.NodeKind`) and carry a
  port budget that :meth:`Network.add_link` enforces;
* links are first-class (:class:`~repro.topology.node.Link`) so capacities
  feed straight into the flow and packet simulators;
* conversion to :mod:`networkx` for algorithms we do not hand-roll.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Optional, Set, Tuple

import networkx as nx

from repro.topology.node import Link, Node, NodeKind, link_key


class NetworkError(Exception):
    """Raised on structural misuse of a :class:`Network`."""


class Network:
    """An undirected data-center network of servers and switches.

    Node names are the graph keys.  The class is deliberately mutable and
    append-only (nodes and links can be added, and links/nodes can be
    removed to model failures); builders construct it incrementally.
    """

    def __init__(self, name: str = "network") -> None:
        self.name = name
        self._nodes: Dict[str, Node] = {}
        self._adj: Dict[str, Set[str]] = {}
        self._links: Dict[Tuple[str, str], Link] = {}
        #: free-form metadata set by builders (parameters, analytic props).
        self.meta: Dict[str, Any] = {}
        #: monotone mutation counter; caches key on it (see ``version``).
        self._version = 0

    @property
    def version(self) -> int:
        """Bumped by every structural mutation (add/remove node/link).

        Derived caches — notably the compiled CSR views in
        :mod:`repro.topology.compiled` — key on this counter, so they are
        invalidated exactly when the graph actually changes and reused
        across repeated sweeps otherwise.
        """
        return self._version

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_node(self, node: Node) -> Node:
        """Insert ``node``; the name must be unused."""
        if node.name in self._nodes:
            raise NetworkError(f"duplicate node name {node.name!r}")
        self._nodes[node.name] = node
        self._adj[node.name] = set()
        self._version += 1
        return node

    def add_server(self, name: str, ports: int, address: Any = None, role: str = "") -> Node:
        """Convenience wrapper to insert a server node."""
        return self.add_node(Node(name, NodeKind.SERVER, ports, role=role, address=address))

    def add_switch(self, name: str, ports: int, address: Any = None, role: str = "") -> Node:
        """Convenience wrapper to insert a switch node."""
        return self.add_node(Node(name, NodeKind.SWITCH, ports, role=role, address=address))

    def add_link(self, u: str, v: str, capacity: float = 1.0, length: float = 1.0) -> Link:
        """Connect ``u`` and ``v``, consuming one port on each.

        Raises :class:`NetworkError` if either endpoint is unknown, the link
        already exists, or an endpoint has no free port.
        """
        for endpoint in (u, v):
            if endpoint not in self._nodes:
                raise NetworkError(f"unknown node {endpoint!r}")
        key = link_key(u, v)
        if key in self._links:
            raise NetworkError(f"duplicate link {u!r} - {v!r}")
        for endpoint in (u, v):
            node = self._nodes[endpoint]
            if len(self._adj[endpoint]) >= node.ports:
                raise NetworkError(
                    f"{endpoint!r} has no free port "
                    f"(ports={node.ports}, degree={len(self._adj[endpoint])})"
                )
        link = Link.between(u, v, capacity=capacity, length=length)
        self._links[key] = link
        self._adj[u].add(v)
        self._adj[v].add(u)
        self._version += 1
        return link

    # ------------------------------------------------------------------
    # removal (failure modelling)
    # ------------------------------------------------------------------
    def remove_link(self, u: str, v: str) -> Link:
        """Remove the link ``{u, v}``; returns the removed :class:`Link`."""
        key = link_key(u, v)
        try:
            link = self._links.pop(key)
        except KeyError:
            raise NetworkError(f"no link {u!r} - {v!r}") from None
        self._adj[u].discard(v)
        self._adj[v].discard(u)
        self._version += 1
        return link

    def remove_node(self, name: str) -> Node:
        """Remove ``name`` and all its incident links."""
        try:
            node = self._nodes.pop(name)
        except KeyError:
            raise NetworkError(f"no node {name!r}") from None
        for neighbor in list(self._adj[name]):
            self.remove_link(name, neighbor)
        del self._adj[name]
        self._version += 1
        return node

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __contains__(self, name: str) -> bool:
        return name in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def node(self, name: str) -> Node:
        try:
            return self._nodes[name]
        except KeyError:
            raise NetworkError(f"no node {name!r}") from None

    def has_link(self, u: str, v: str) -> bool:
        return link_key(u, v) in self._links

    def link(self, u: str, v: str) -> Link:
        try:
            return self._links[link_key(u, v)]
        except KeyError:
            raise NetworkError(f"no link {u!r} - {v!r}") from None

    def neighbors(self, name: str) -> Set[str]:
        """The (live) neighbor set of ``name`` — do not mutate."""
        try:
            return self._adj[name]
        except KeyError:
            raise NetworkError(f"no node {name!r}") from None

    def adjacency(self) -> Dict[str, Set[str]]:
        """The full name -> neighbor-set map — read-only, do not mutate.

        One dict lookup answers both "is ``v`` alive" and "is ``u - v``
        a live link" (``v in adjacency()[u]``), which is what the
        fault-routing inner loop needs thousands of times per route.
        """
        return self._adj

    def degree(self, name: str) -> int:
        return len(self.neighbors(name))

    def nodes(self) -> Iterator[Node]:
        return iter(self._nodes.values())

    def node_names(self) -> Iterator[str]:
        return iter(self._nodes)

    def links(self) -> Iterator[Link]:
        return iter(self._links.values())

    @property
    def servers(self) -> List[str]:
        """Names of all server nodes, in insertion order."""
        return [n.name for n in self._nodes.values() if n.is_server]

    @property
    def switches(self) -> List[str]:
        """Names of all switch nodes, in insertion order."""
        return [n.name for n in self._nodes.values() if n.is_switch]

    @property
    def num_servers(self) -> int:
        return sum(1 for n in self._nodes.values() if n.is_server)

    @property
    def num_switches(self) -> int:
        return sum(1 for n in self._nodes.values() if n.is_switch)

    @property
    def num_links(self) -> int:
        return len(self._links)

    def switches_by_role(self, role: str) -> List[str]:
        """Switch names whose ``role`` matches exactly."""
        return [
            n.name for n in self._nodes.values() if n.is_switch and n.role == role
        ]

    def find_by_address(self, address: Any) -> Optional[str]:
        """Name of the node with ``address``, or ``None``.

        Builds a lazy reverse index on first use; builders set addresses
        before routing queries begin, so the cache stays valid.  The cache
        is invalidated by node removal.
        """
        index = self.meta.get("_address_index")
        if index is None or len(index) != len(self._nodes):
            index = {
                node.address: node.name
                for node in self._nodes.values()
                if node.address is not None
            }
            self.meta["_address_index"] = index
        return index.get(address)

    # ------------------------------------------------------------------
    # views and exports
    # ------------------------------------------------------------------
    def copy(self) -> "Network":
        """Deep-enough copy: shares immutable Node/Link values, new containers."""
        clone = Network(self.name)
        clone._nodes = dict(self._nodes)
        clone._adj = {name: set(neigh) for name, neigh in self._adj.items()}
        clone._links = dict(self._links)
        clone.meta = {k: v for k, v in self.meta.items() if not k.startswith("_")}
        return clone

    def subgraph_without(
        self,
        dead_nodes: Iterable[str] = (),
        dead_links: Iterable[Tuple[str, str]] = (),
    ) -> "Network":
        """A copy with the given nodes/links removed (failure scenarios)."""
        clone = self.copy()
        for u, v in dead_links:
            if clone.has_link(u, v):
                clone.remove_link(u, v)
        for name in dead_nodes:
            if name in clone:
                clone.remove_node(name)
        return clone

    def to_networkx(self) -> nx.Graph:
        """Export as an :class:`networkx.Graph` with node/link attributes."""
        graph = nx.Graph(name=self.name)
        for node in self._nodes.values():
            graph.add_node(
                node.name,
                kind=node.kind.value,
                ports=node.ports,
                role=node.role,
            )
        for link in self._links.values():
            graph.add_edge(link.u, link.v, capacity=link.capacity, length=link.length)
        return graph

    def __repr__(self) -> str:
        return (
            f"<Network {self.name!r}: {self.num_servers} servers, "
            f"{self.num_switches} switches, {self.num_links} links>"
        )
