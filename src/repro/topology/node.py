"""Typed node and link primitives for data-center network graphs.

Every topology in this library is a graph whose vertices are either
*servers* (hosts with a small, fixed number of NIC ports) or *switches*
(commodity devices with ``ports`` ports).  Links are undirected, have unit
capacity by default, and consume one port on each endpoint.

Nodes are identified by their unique ``name`` string; the dataclasses here
carry the static attributes a node is created with.  The mutable containers
live in :mod:`repro.topology.graph`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Optional, Tuple


class NodeKind(enum.Enum):
    """Whether a node is a host or a switching element."""

    SERVER = "server"
    SWITCH = "switch"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class Node:
    """A vertex of a data-center network.

    Attributes:
        name: globally unique identifier (also the graph key).
        kind: :class:`NodeKind.SERVER` or :class:`NodeKind.SWITCH`.
        ports: how many physical ports the device has.  The network
            enforces ``degree(node) <= ports``.
        role: free-form sub-type, e.g. ``"crossbar"`` / ``"level"`` for
            ABCCC switches or ``"edge"`` / ``"aggregation"`` / ``"core"``
            for a fat-tree.  Empty string when the topology has a single
            switch class.
        address: the topology-specific structured address (any hashable),
            e.g. an :class:`repro.core.address.ServerAddress`.  ``None``
            for nodes without a structured address.
    """

    name: str
    kind: NodeKind
    ports: int
    role: str = ""
    address: Any = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("node name must be a non-empty string")
        if self.ports < 1:
            raise ValueError(f"node {self.name!r} must have >= 1 port, got {self.ports}")

    @property
    def is_server(self) -> bool:
        return self.kind is NodeKind.SERVER

    @property
    def is_switch(self) -> bool:
        return self.kind is NodeKind.SWITCH


def link_key(u: str, v: str) -> Tuple[str, str]:
    """Canonical (sorted) key for the undirected link ``{u, v}``."""
    if u == v:
        raise ValueError(f"self-loop on {u!r} is not a valid link")
    return (u, v) if u < v else (v, u)


@dataclass(frozen=True)
class Link:
    """An undirected physical link between two nodes.

    Attributes:
        u, v: endpoint names, stored in canonical (sorted) order.
        capacity: bandwidth in abstract units (1.0 = one line-rate port).
        length: cable-length weight used only by the cost model.
    """

    u: str
    v: str
    capacity: float = 1.0
    length: float = 1.0

    def __post_init__(self) -> None:
        if self.u >= self.v:
            raise ValueError("Link endpoints must be in canonical order; use Link.between()")
        if self.capacity <= 0:
            raise ValueError(f"link {self.u}-{self.v} capacity must be positive")
        if self.length <= 0:
            raise ValueError(f"link {self.u}-{self.v} length must be positive")

    @classmethod
    def between(cls, u: str, v: str, capacity: float = 1.0, length: float = 1.0) -> "Link":
        """Build a link with endpoints put in canonical order."""
        a, b = link_key(u, v)
        return cls(a, b, capacity=capacity, length=length)

    @property
    def key(self) -> Tuple[str, str]:
        return (self.u, self.v)

    def other(self, node: str) -> str:
        """The endpoint opposite ``node``."""
        if node == self.u:
            return self.v
        if node == self.v:
            return self.u
        raise KeyError(f"{node!r} is not an endpoint of link {self.u}-{self.v}")
