"""Compiled CSR view of a :class:`~repro.topology.graph.Network`.

The dict-of-set adjacency in :class:`Network` is convenient for builders
and failure injection but slow for the all-pairs sweeps that dominate
every distance/resilience experiment: each BFS step pays a hash lookup
per neighbor and allocates a dict entry per settled node.  This module
flattens a network once into int-indexed CSR arrays (``offsets`` +
``neighbors``) plus name/server lookup tables, and runs the BFS frontier
loop over those flat arrays — vectorised with numpy when available,
otherwise over :mod:`array`-backed flat lists.

Two compiled views exist per network:

* the **link graph** — every node, physical links; distances are *link
  hops*;
* the **server projection** — servers only, two servers adjacent when
  they share a switch or a direct cable; distances are logical *server
  hops* (see :func:`repro.metrics.distance.logical_server_adjacency`).

Both are cached on the network (``net.meta["_compiled"]``) and keyed by
:attr:`Network.version`, which every mutation bumps — so fault-injection
loops recompile only after an actual ``remove_node``/``remove_link``,
and :meth:`Network.copy`/``subgraph_without`` clones start with a cold
cache (underscore meta keys are not copied).

A :class:`CompiledGraph` is a plain picklable value object: the parallel
sweep engine (:mod:`repro.metrics.engine`) ships it to worker processes
once per pool, not once per BFS.
"""

from __future__ import annotations

from array import array
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.obs import trace as _obs
from repro.topology.graph import Network

try:  # numpy accelerates the frontier loop ~an order of magnitude
    import numpy as _np
except ImportError:  # pragma: no cover - the test image bakes numpy in
    _np = None

try:  # scipy unlocks the batched multi-source BFS (C-speed sparse matmul)
    from scipy.sparse import csr_matrix as _scipy_csr
    from scipy.sparse.csgraph import connected_components as _scipy_components
except ImportError:  # pragma: no cover
    _scipy_csr = None
    _scipy_components = None

HAVE_NUMPY = _np is not None
HAVE_SCIPY = _np is not None and _scipy_csr is not None


def _int_array(values: Iterable[int]):
    """A flat int sequence: numpy int64 when available, else array('q')."""
    if HAVE_NUMPY:
        return _np.fromiter(values, dtype=_np.int64)
    return array("q", values)


def _index_array(values: Iterable[int]):
    """A flat *node/entry index* sequence: numpy uint32 or array('q').

    Indices are non-negative and bounded by the node/entry count, so
    uint32 is always wide enough (compilation refuses larger graphs)
    and halves the footprint of every CSR the engine ships to workers
    and every masked-fault trial keeps resident.  Signed int64 stays
    reserved for value arrays that need a ``-1`` sentinel (distances,
    component labels).
    """
    if HAVE_NUMPY:
        return _np.fromiter(values, dtype=_np.uint32)
    return array("q", values)


class CompiledGraph:
    """Immutable CSR snapshot of a network (or of its server projection).

    Attributes:
        names: node name per index (compilation order).
        index: name -> index (inverse of ``names``).
        offsets: CSR row offsets, length ``num_nodes + 1``.
        neighbors: concatenated adjacency lists, length ``2 * num_edges``.
        server_indices: indices of server nodes, insertion order.
        edge_u/edge_v: one entry per undirected edge (``u < v`` by index
            is *not* guaranteed; pairs are stored as compiled).
        edge_capacity: capacity per edge, aligned with ``edge_u/edge_v``.
    """

    __slots__ = (
        "names",
        "index",
        "offsets",
        "neighbors",
        "server_indices",
        "edge_u",
        "edge_v",
        "edge_capacity",
        "_edge_lookup",
        "_sparse",
        "_rows",
        "_masked_template",
    )

    def __init__(
        self,
        names: Tuple[str, ...],
        offsets,
        neighbors,
        server_indices,
        edge_u,
        edge_v,
        edge_capacity: Tuple[float, ...],
    ) -> None:
        self.names = names
        self.index: Dict[str, int] = {name: i for i, name in enumerate(names)}
        self.offsets = offsets
        self.neighbors = neighbors
        self.server_indices = server_indices
        self.edge_u = edge_u
        self.edge_v = edge_v
        self.edge_capacity = edge_capacity
        self._edge_lookup: Optional[Dict[Tuple[int, int], int]] = None
        self._sparse = None
        self._rows = None
        self._masked_template = None

    # ------------------------------------------------------------------
    # pickling (slots classes need explicit state; workers receive these)
    # ------------------------------------------------------------------
    def __getstate__(self):
        return (
            self.names,
            self.offsets,
            self.neighbors,
            self.server_indices,
            self.edge_u,
            self.edge_v,
            self.edge_capacity,
        )

    def __setstate__(self, state):
        self.__init__(*state)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_network(cls, net: Network) -> "CompiledGraph":
        """Compile the full link graph (all nodes, physical links)."""
        names = tuple(net.node_names())
        index = {name: i for i, name in enumerate(names)}
        adjacency = [sorted(index[v] for v in net.neighbors(u)) for u in names]
        servers = _index_array(
            i for i, name in enumerate(names) if net.node(name).is_server
        )
        edge_u: List[int] = []
        edge_v: List[int] = []
        capacities: List[float] = []
        for link in net.links():
            edge_u.append(index[link.u])
            edge_v.append(index[link.v])
            capacities.append(link.capacity)
        return cls(
            names,
            *_csr_from_lists(adjacency),
            server_indices=servers,
            edge_u=_index_array(edge_u),
            edge_v=_index_array(edge_v),
            edge_capacity=tuple(capacities),
        )

    @classmethod
    def from_server_projection(cls, net: Network) -> "CompiledGraph":
        """Compile the logical server projection (server-hop distances)."""
        names = tuple(net.servers)
        index = {name: i for i, name in enumerate(names)}
        pairs: Set[Tuple[int, int]] = set()
        for node in net.nodes():
            if not node.is_switch:
                continue
            members = [
                index[v] for v in net.neighbors(node.name) if net.node(v).is_server
            ]
            for a, u in enumerate(members):
                for v in members[a + 1 :]:
                    pairs.add((u, v) if u < v else (v, u))
        for link in net.links():
            if link.u in index and link.v in index:
                u, v = index[link.u], index[link.v]
                pairs.add((u, v) if u < v else (v, u))
        adjacency: List[List[int]] = [[] for _ in names]
        edge_u: List[int] = []
        edge_v: List[int] = []
        for u, v in sorted(pairs):
            adjacency[u].append(v)
            adjacency[v].append(u)
            edge_u.append(u)
            edge_v.append(v)
        for row in adjacency:
            row.sort()
        return cls(
            names,
            *_csr_from_lists(adjacency),
            server_indices=_index_array(range(len(names))),
            edge_u=_index_array(edge_u),
            edge_v=_index_array(edge_v),
            edge_capacity=tuple(1.0 for _ in edge_u),
        )

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return len(self.names)

    @property
    def num_edges(self) -> int:
        return len(self.edge_u)

    @property
    def num_servers(self) -> int:
        return len(self.server_indices)

    def degree(self, node: int) -> int:
        return int(self.offsets[node + 1] - self.offsets[node])

    def edge_id(self, u: int, v: int) -> int:
        """Dense edge index of the edge ``{u, v}``; raises ``KeyError``."""
        if self._edge_lookup is None:
            self._edge_lookup = {
                (min(a, b), max(a, b)): e
                for e, (a, b) in enumerate(zip(self.edge_u, self.edge_v))
            }
        return self._edge_lookup[(u, v) if u < v else (v, u)]

    def sparse_adjacency(self):
        """The scipy CSR adjacency matrix (0/1 entries), built lazily.

        Returns ``None`` when scipy is unavailable; callers fall back to
        the per-source frontier kernels.  Cached per compiled graph (and
        therefore per worker process — the matrix itself is rebuilt from
        the pickled offset/neighbor arrays, not shipped).
        """
        if not HAVE_SCIPY:
            return None
        if self._sparse is None:
            indptr = _np.asarray(self.offsets, dtype=_np.int32)
            indices = _np.asarray(self.neighbors, dtype=_np.int32)
            data = _np.ones(len(indices), dtype=_np.int32)
            self._sparse = _scipy_csr(
                (data, indices, indptr), shape=(self.num_nodes, self.num_nodes)
            )
        return self._sparse

    # ------------------------------------------------------------------
    # kernels
    # ------------------------------------------------------------------
    def bfs_distances(self, src: int):
        """Hop distances from ``src`` to every node (-1 = unreachable).

        Returns a flat int sequence indexed by node id — a numpy int64
        array when numpy is available, else an ``array('q')``.
        """
        if HAVE_NUMPY:
            return self._bfs_numpy(src)
        return self._bfs_flat(src)

    def _bfs_numpy(self, src: int):
        offsets, neighbors = self.offsets, self.neighbors
        dist = _np.full(self.num_nodes, -1, dtype=_np.int64)
        dist[src] = 0
        frontier = _np.array([src], dtype=_np.int64)
        level = 0
        while frontier.size:
            level += 1
            # int64 copies keep the gather arithmetic signed — the CSR
            # arrays themselves are uint32 (see ``_index_array``).
            starts = offsets[frontier].astype(_np.int64)
            counts = offsets[frontier + 1].astype(_np.int64) - starts
            total = int(counts.sum())
            if total == 0:
                break
            # Gather the concatenated neighbor slices of the frontier.
            ends = _np.cumsum(counts)
            gather = _np.arange(total) + _np.repeat(starts - (ends - counts), counts)
            fresh = neighbors[gather]
            fresh = fresh[dist[fresh] < 0]
            if fresh.size == 0:
                break
            dist[fresh] = level
            frontier = _np.unique(fresh)
        return dist

    def _bfs_flat(self, src: int):
        offsets, neighbors = self.offsets, self.neighbors
        dist = [-1] * self.num_nodes
        dist[src] = 0
        frontier = [src]
        level = 0
        while frontier:
            level += 1
            nxt: List[int] = []
            for u in frontier:
                for j in range(offsets[u], offsets[u + 1]):
                    v = neighbors[j]
                    if dist[v] < 0:
                        dist[v] = level
                        nxt.append(v)
            frontier = nxt
        return array("q", dist)

    def bfs_distances_by_name(self, source: str) -> Dict[str, int]:
        """Compat helper: BFS distances as a name-keyed dict (reachable only)."""
        dist = self.bfs_distances(self.index[source])
        names = self.names
        return {names[i]: int(d) for i, d in enumerate(dist) if d >= 0}

    def component_labels(self):
        """Connected-component label per node (labels are 0..k-1).

        Returns a flat int sequence aligned with node indices.
        """
        labels = [-1] * self.num_nodes
        offsets, neighbors = self.offsets, self.neighbors
        current = 0
        for start in range(self.num_nodes):
            if labels[start] >= 0:
                continue
            labels[start] = current
            frontier = [start]
            while frontier:
                nxt: List[int] = []
                for u in frontier:
                    for j in range(offsets[u], offsets[u + 1]):
                        v = neighbors[j]
                        if labels[v] < 0:
                            labels[v] = current
                            nxt.append(v)
                frontier = nxt
            current += 1
        return _int_array(labels)

    def entry_index(self, u: int, v: int) -> int:
        """Position of neighbor ``v`` inside ``u``'s CSR row.

        Rows are sorted at compile time, so this is a binary search;
        raises ``KeyError`` when ``{u, v}`` is not an edge.  Entry
        indices are how the fault-injection layer masks individual
        links without recompiling (see :mod:`repro.faults.mask`).
        """
        from bisect import bisect_left

        lo, hi = int(self.offsets[u]), int(self.offsets[u + 1])
        j = bisect_left(self.neighbors, v, lo, hi)
        if j >= hi or self.neighbors[j] != v:
            raise KeyError(f"no edge between node {u} and node {v}")
        return j

    def component_labels_masked(self, node_alive, dead_entries=None):
        """Component labels with failures applied as masks over the CSR.

        ``node_alive`` is a boolean sequence aligned with node indices;
        ``dead_entries`` an optional set of CSR entry positions to skip
        (both directions of a dead link — see :meth:`entry_index`).
        Dead nodes are labeled ``-1``.  Alive nodes get the same
        partition that compiling the failure-injected subgraph would
        produce, at the cost of one flat BFS — no ``subgraph_without``
        copy, no recompile.  Label *values* identify the partition only
        (equal label == same component); callers must not depend on the
        numbering, which differs between the Python BFS and the scipy
        fast path used for larger graphs.
        """
        if HAVE_SCIPY and self.num_nodes >= _SCIPY_MASK_THRESHOLD:
            return self._component_labels_masked_scipy(node_alive, dead_entries)
        labels = [-1] * self.num_nodes
        offsets, neighbors = self.offsets, self.neighbors
        current = 0
        for start in range(self.num_nodes):
            if labels[start] >= 0 or not node_alive[start]:
                continue
            labels[start] = current
            frontier = [start]
            while frontier:
                nxt: List[int] = []
                for u in frontier:
                    for j in range(offsets[u], offsets[u + 1]):
                        if dead_entries is not None and j in dead_entries:
                            continue
                        v = neighbors[j]
                        if labels[v] < 0 and node_alive[v]:
                            labels[v] = current
                            nxt.append(v)
                frontier = nxt
            current += 1
        return _int_array(labels)

    def _component_labels_masked_scipy(self, node_alive, dead_entries):
        """Masked labels via ``scipy.sparse.csgraph.connected_components``.

        The CSR entry order matches ``neighbors``, so the mask is one
        boolean filter over the flat entry arrays: keep an entry when
        both endpoints are alive and it is not a dead link, rebuild the
        (indptr, indices) pair with ``bincount``/``cumsum``, and label
        the whole matrix in C.  Dead nodes survive as isolated rows with
        throwaway unique labels, overwritten with ``-1`` afterwards —
        the alive partition is unaffected.
        """
        mat = self.sparse_adjacency()  # ensures the entry-row cache below
        num_nodes = self.num_nodes
        alive = _np.asarray(node_alive, dtype=bool)
        indices = mat.indices
        rows = self._entry_rows()
        keep = alive[rows] & alive[indices]
        if dead_entries:
            keep[list(dead_entries)] = False
        kept_indices = indices[keep]
        counts = _np.bincount(rows[keep], minlength=num_nodes)
        indptr = _np.zeros(num_nodes + 1, dtype=_np.int32)
        _np.cumsum(counts, out=indptr[1:])
        # float64 data: csgraph would otherwise astype-copy int weights.
        # The csr_matrix object itself is built once and reused — its
        # constructor re-validates index dtypes on every call, which is
        # measurable at one matrix per trial; swapping the arrays on a
        # template skips that while staying a perfectly formed CSR.
        data = _np.ones(len(kept_indices), dtype=_np.float64)
        masked = self._masked_template
        if masked is None:
            masked = _scipy_csr(
                (data, kept_indices, indptr), shape=(num_nodes, num_nodes)
            )
            self._masked_template = masked
        else:
            masked.data = data
            masked.indices = kept_indices
            masked.indptr = indptr
        _, labels = _scipy_components(masked, directed=False)
        labels = labels.astype(_np.int64)
        labels[~alive] = -1
        return labels

    def _entry_rows(self):
        """Row (source-node) index of every CSR entry, cached (numpy)."""
        if self._rows is None:
            self._rows = _np.repeat(
                _np.arange(self.num_nodes, dtype=_np.int32),
                _np.diff(_np.asarray(self.offsets)),
            )
        return self._rows


class CSRGraphView(CompiledGraph):
    """Kernel-only CSR view: the traversal arrays, nothing else.

    The sweep engine's kernels touch exactly three arrays — ``offsets``,
    ``neighbors`` and ``server_indices`` — yet a full
    :class:`CompiledGraph` drags its name table, edge list and lookup
    dict along whenever it is handed to a worker pool.  A view carries
    only the arrays (node count kept explicitly, since there is no name
    tuple to measure), so the shared-memory hand-off in
    :mod:`repro.topology.shm` ships megabytes, not graph objects, and a
    masked sweep (:meth:`repro.faults.mask.MaskedGraph.sweep_view`) can
    splice in filtered arrays without inventing fake names.

    Name/index lookups raise ``TypeError`` — a view is for kernels; use
    the graph it was taken from for identity queries.
    """

    __slots__ = ("_num_nodes",)

    def __init__(self, num_nodes: int, offsets, neighbors, server_indices) -> None:
        self._num_nodes = int(num_nodes)
        self.offsets = offsets
        self.neighbors = neighbors
        self.server_indices = server_indices
        self.edge_u = ()
        self.edge_v = ()
        self.edge_capacity = ()
        self._edge_lookup = None
        self._sparse = None
        self._rows = None
        self._masked_template = None

    @classmethod
    def of(cls, graph: "CompiledGraph") -> "CSRGraphView":
        """The kernel view of ``graph`` (identity when already a view)."""
        if isinstance(graph, CSRGraphView):
            return graph
        return cls(
            graph.num_nodes, graph.offsets, graph.neighbors, graph.server_indices
        )

    @property
    def num_nodes(self) -> int:  # type: ignore[override]
        return self._num_nodes

    @property
    def names(self):  # type: ignore[override]
        raise TypeError(
            "CSRGraphView is a kernel-only view and carries no node names; "
            "query the graph it was taken from"
        )

    @property
    def index(self):  # type: ignore[override]
        raise TypeError(
            "CSRGraphView is a kernel-only view and carries no name index; "
            "query the graph it was taken from"
        )

    def __getstate__(self):
        return (self._num_nodes, self.offsets, self.neighbors, self.server_indices)

    def __setstate__(self, state):
        self.__init__(*state)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<CSRGraphView: {self.num_servers} servers, "
            f"{self.num_nodes} nodes, {len(self.neighbors)} entries>"
        )


#: below this node count the pure-Python masked BFS beats the scipy
#: slice-and-label round trip (measured on the quick-mode instances).
_SCIPY_MASK_THRESHOLD = 192


def _csr_from_lists(adjacency: Sequence[Sequence[int]]):
    """Pack per-node adjacency lists into ``(offsets, neighbors)``."""
    offsets = [0]
    flat: List[int] = []
    for row in adjacency:
        flat.extend(row)
        offsets.append(len(flat))
    return _index_array(offsets), _index_array(flat)


# ----------------------------------------------------------------------
# per-network compile cache
# ----------------------------------------------------------------------
_CACHE_KEY = "_compiled"


def _cache_slot(net: Network) -> Dict[str, object]:
    cache = net.meta.get(_CACHE_KEY)
    if not isinstance(cache, dict) or cache.get("version") != net.version:
        cache = {"version": net.version}
        net.meta[_CACHE_KEY] = cache
    return cache


def compile_graph(net: Network) -> CompiledGraph:
    """The cached compiled link graph of ``net`` (recompiled on mutation)."""
    cache = _cache_slot(net)
    compiled = cache.get("link")
    if compiled is None:
        _obs.counter("compiled.link.cache_miss")
        with _obs.span("topology.compile", view="link", net=net.name):
            compiled = CompiledGraph.from_network(net)
        cache["link"] = compiled
    else:
        _obs.counter("compiled.link.cache_hit")
    return compiled


def build_compiled(spec, memmap_dir: Optional[str] = None, prefer_fast: bool = True):
    """Compiled CSR link graph of a :class:`~repro.topology.spec.TopologySpec`.

    The compile seam for code that needs the arrays, not the object
    graph: when the spec's family has a vectorized direct-to-CSR
    constructor (ABCCC / BCCC / BCube, numpy present — see
    :mod:`repro.topology.fastbuild`), the returned graph is generated
    straight from digit arithmetic without ever materialising ``Node``
    objects, which is orders of magnitude faster and smaller at
    datacenter scale.  Otherwise (or with ``prefer_fast=False``, the
    parity-oracle path) it falls back to ``compile_graph(spec.build())``.

    ``memmap_dir`` asks the fast path to back the large CSR arrays with
    memory-mapped files in that directory; the object path ignores it.
    """
    if prefer_fast:
        from repro.topology import fastbuild

        if fastbuild.supports(spec):
            return fastbuild.fast_compiled(spec, memmap_dir=memmap_dir)
    return compile_graph(spec.build())


def compile_server_projection(net: Network) -> CompiledGraph:
    """The cached compiled server projection of ``net``."""
    cache = _cache_slot(net)
    compiled = cache.get("server")
    if compiled is None:
        _obs.counter("compiled.server.cache_miss")
        with _obs.span("topology.compile", view="server", net=net.name):
            compiled = CompiledGraph.from_server_projection(net)
        cache["server"] = compiled
    else:
        _obs.counter("compiled.server.cache_hit")
    return compiled
