"""Zero-copy hand-off of compiled CSR graphs to worker processes.

The parallel sweep engine used to ship its graph to every worker through
the pool initializer's pickle: 8 workers on a 46 MB CSR meant 8
serialized copies marshalled through pipes — O(workers x graph) spin-up.
This module replaces the payload with a :class:`GraphHandle`, a small
descriptor whose large arrays live once in POSIX shared memory (or in
the memmap files a fast-built graph already has on disk):

* :func:`export_graph` packs a graph's numpy arrays into **one**
  ``multiprocessing.shared_memory`` segment (memmap-backed arrays are
  referenced by filename instead — they are already sharable) and
  returns the handle;
* pickling the handle costs a few hundred bytes — segment name, dtypes,
  shapes, offsets — regardless of graph size;
* ``handle.materialize()`` in the worker attaches the segment and
  rebuilds the graph with zero-copy, read-only array views;
* ``handle.release()`` in the parent closes and unlinks the segment
  (idempotent; always call it from a ``finally``).

Three graph shapes round-trip: :class:`CSRGraphView` (the sweep
engine's kernel payload), :class:`FastCompiledGraph` (layout + arrays;
names stay lazy) and plain :class:`CompiledGraph` (name tuple rides
along pickled — it has no array form).  Without numpy every array is
inlined into the handle, which degrades to the legacy pickle behavior
instead of failing.
"""

from __future__ import annotations

import atexit
import os
import signal
import threading
from typing import Dict, List, Optional, Tuple

from repro.obs import trace as _obs
from repro.topology.compiled import HAVE_NUMPY, CompiledGraph, CSRGraphView
from repro.topology.fastbuild import FastCompiledGraph

if HAVE_NUMPY:
    import numpy as _np

try:
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover - platforms without _posixshmem
    _shared_memory = None

#: shm segments owned (created) by this process: name -> SharedMemory.
_OWNED: Dict[str, object] = {}

#: segments this process has attached to (worker side), kept alive for
#: the process lifetime — the numpy views borrow their buffers.
_ATTACHED: Dict[str, object] = {}

_ALIGN = 16

#: set once the atexit / SIGTERM cleanup hooks are installed.
_CLEANUP_INSTALLED = False


def release_owned() -> int:
    """Close and unlink every segment this process owns; returns the count.

    Idempotent and safe to call at any time — the owned registry is
    drained as segments are released, so a normal ``handle.release()``
    afterwards finds nothing to do.
    """
    released = 0
    while _OWNED:
        _, segment = _OWNED.popitem()
        try:
            segment.close()
            segment.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked
            pass
        released += 1
    return released


def _install_cleanup() -> None:
    """Register abnormal-exit cleanup for owned segments, once per process.

    A POSIX shm segment outlives its creator: a crash between
    :func:`export_graph` and ``release()`` used to leak the segment
    until reboot.  Two hooks close that window:

    * ``atexit`` covers ``sys.exit``, unhandled exceptions, and normal
      interpreter shutdown;
    * a ``SIGTERM`` handler covers the kill path (atexit does not run
      when the default handler terminates the process).  It is only
      installed from the main thread and only when the current
      disposition is the default one — an application that handles
      SIGTERM itself (e.g. the serve daemon's graceful drain) keeps its
      handler and is expected to release segments in its own shutdown
      path, with atexit as the backstop.  After cleaning up, the
      handler re-raises the signal with the default disposition so the
      exit status still reports death-by-SIGTERM.

    SIGKILL remains uncoverable by design; ``repro.serve`` supervisors
    own their handles in the parent precisely so a killed *worker*
    never owns a segment.
    """
    global _CLEANUP_INSTALLED
    if _CLEANUP_INSTALLED:
        return
    _CLEANUP_INSTALLED = True
    atexit.register(release_owned)
    if threading.current_thread() is not threading.main_thread():
        return
    try:
        current = signal.getsignal(signal.SIGTERM)
    except (ValueError, AttributeError):  # pragma: no cover - exotic platform
        return
    if current is not signal.SIG_DFL:
        return

    def _on_sigterm(signum, frame):
        release_owned()
        signal.signal(signum, signal.SIG_DFL)
        os.kill(os.getpid(), signum)

    signal.signal(signal.SIGTERM, _on_sigterm)


def _pack_arrays(arrays) -> Tuple[Optional[str], int, List[tuple]]:
    """Pack arrays into refs + (at most) one owned shared-memory segment.

    Returns ``(segment_name, segment_bytes, refs)`` where each ref is one
    of ``("shm", offset, dtype, shape)``, ``("memmap", path, dtype,
    shape, offset)`` or ``("inline", object)``.
    """
    refs: List[tuple] = []
    packed = []  # (offset, array) destined for the segment
    cursor = 0
    for arr in arrays:
        if HAVE_NUMPY and isinstance(arr, _np.memmap) and getattr(arr, "filename", None):
            refs.append(
                ("memmap", str(arr.filename), arr.dtype.str, arr.shape, int(arr.offset))
            )
        elif HAVE_NUMPY and isinstance(arr, _np.ndarray) and _shared_memory is not None:
            offset = (cursor + _ALIGN - 1) // _ALIGN * _ALIGN
            refs.append(("shm", offset, arr.dtype.str, arr.shape))
            packed.append((offset, arr))
            cursor = offset + arr.nbytes
        else:
            refs.append(("inline", arr))
    if not packed:
        return None, 0, refs
    segment = _shared_memory.SharedMemory(create=True, size=max(cursor, 1))
    _OWNED[segment.name] = segment
    _install_cleanup()
    for offset, arr in packed:
        dst = _np.ndarray(arr.shape, dtype=arr.dtype, buffer=segment.buf, offset=offset)
        dst[:] = arr
    return segment.name, cursor, refs


def _attach(name: str):
    """The SharedMemory segment ``name``, attached once per process."""
    segment = _OWNED.get(name) or _ATTACHED.get(name)
    if segment is None:
        try:
            # track=False (3.13+) keeps the resource tracker from
            # registering a segment this process merely *attaches* —
            # attachers must never unlink.
            segment = _shared_memory.SharedMemory(name=name, create=False, track=False)
        except TypeError:
            segment = _shared_memory.SharedMemory(name=name, create=False)
        _ATTACHED[name] = segment
    return segment


def _load_ref(ref: tuple, segment_name: Optional[str]):
    kind = ref[0]
    if kind == "inline":
        return ref[1]
    if kind == "memmap":
        _, path, dtype, shape, offset = ref
        return _np.memmap(path, dtype=_np.dtype(dtype), mode="r", shape=shape, offset=offset)
    _, offset, dtype, shape = ref
    arr = _np.ndarray(
        shape, dtype=_np.dtype(dtype), buffer=_attach(segment_name).buf, offset=offset
    )
    arr.setflags(write=False)
    return arr


class GraphHandle:
    """Picklable descriptor of an exported graph (see module docstring).

    The owning process holds no direct reference to the SharedMemory
    object — it lives in a module registry keyed by segment name — so
    the handle pickles with default semantics and stays a few hundred
    bytes.
    """

    __slots__ = ("kind", "meta", "refs", "segment", "nbytes")

    def __init__(
        self,
        kind: str,
        meta: tuple,
        refs: List[tuple],
        segment: Optional[str],
        nbytes: int,
    ) -> None:
        self.kind = kind
        self.meta = meta
        self.refs = refs
        self.segment = segment
        self.nbytes = nbytes

    def __getstate__(self):
        return (self.kind, self.meta, self.refs, self.segment, self.nbytes)

    def __setstate__(self, state):
        self.kind, self.meta, self.refs, self.segment, self.nbytes = state

    def materialize(self) -> CompiledGraph:
        """Rebuild the graph from the descriptor (zero-copy where possible)."""
        arrays = [_load_ref(ref, self.segment) for ref in self.refs]
        if self.kind == "view":
            return CSRGraphView(self.meta[0], *arrays)
        if self.kind == "fast":
            return FastCompiledGraph(self.meta[0], *arrays)
        names, edge_capacity = self.meta
        offsets, neighbors, server_indices, edge_u, edge_v = arrays
        return CompiledGraph(
            names,
            offsets,
            neighbors,
            server_indices=server_indices,
            edge_u=edge_u,
            edge_v=edge_v,
            edge_capacity=edge_capacity,
        )

    def release(self) -> None:
        """Close and unlink the owned segment (parent side; idempotent)."""
        if self.segment is None:
            return
        segment = _OWNED.pop(self.segment, None)
        if segment is None:
            return
        segment.close()
        try:
            segment.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked
            pass

    @property
    def released(self) -> bool:
        return self.segment is None or self.segment not in _OWNED

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        where = self.segment or "inline/memmap"
        return f"<GraphHandle {self.kind}: {self.nbytes} bytes via {where}>"


def export_graph(graph: CompiledGraph) -> GraphHandle:
    """A :class:`GraphHandle` for ``graph``, ready to initargs to a pool.

    The caller owns the handle's segment and must ``release()`` it once
    the pool is done (workers keep their attached mapping alive for
    their own lifetime — unlinking only removes the name).
    """
    if isinstance(graph, CSRGraphView):
        kind = "view"
        meta: tuple = (graph.num_nodes,)
        arrays = (graph.offsets, graph.neighbors, graph.server_indices)
    elif isinstance(graph, FastCompiledGraph):
        kind = "fast"
        meta = (graph.layout,)
        arrays = (
            graph.offsets,
            graph.neighbors,
            graph.server_indices,
            graph.edge_u,
            graph.edge_v,
        )
    elif isinstance(graph, CompiledGraph):
        kind = "compiled"
        meta = (graph.names, graph.edge_capacity)
        arrays = (
            graph.offsets,
            graph.neighbors,
            graph.server_indices,
            graph.edge_u,
            graph.edge_v,
        )
    else:
        raise TypeError(f"cannot export {type(graph).__name__} to shared memory")
    segment, nbytes, refs = _pack_arrays(arrays)
    _obs.counter("shm.exports")
    if nbytes:
        _obs.counter("shm.bytes", nbytes)
    return GraphHandle(kind, meta, refs, segment, nbytes)


def owned_segments() -> Tuple[str, ...]:
    """Names of shm segments this process currently owns (for tests)."""
    return tuple(_OWNED)
