"""One-stop topology reports: everything an evaluator wants on one page.

``topology_report(spec)`` combines the closed-form properties, a build
with invariant validation, measured distance statistics, CAPEX, and (for
ABCCC) the expected-route-length closed form and conformance check into
a single text report — the ``python -m repro report`` command.

Measurement cost is bounded: distance statistics sample sources when the
instance is large, and measurements are skipped entirely above
``max_measure_nodes``.
"""

from __future__ import annotations

import io
from typing import Optional

from repro.metrics.cost import PriceBook, capex
from repro.metrics.distance import link_hop_stats
from repro.topology.spec import TopologySpec
from repro.topology.validate import find_problems


def topology_report(
    spec: TopologySpec,
    max_measure_nodes: int = 2000,
    sample_sources: int = 32,
    prices: Optional[PriceBook] = None,
) -> str:
    """Build, measure and describe one topology instance."""
    out = io.StringIO()
    out.write(f"{'=' * 60}\n{spec.label}\n{'=' * 60}\n")

    out.write("closed-form properties:\n")
    out.write(f"  servers        : {spec.num_servers}\n")
    out.write(f"  server ports   : {spec.server_ports}\n")
    out.write(f"  switches       : {spec.num_switches}")
    inventory = spec.switch_inventory()
    if inventory:
        detail = ", ".join(f"{count}x{ports}p" for ports, count in sorted(inventory.items()))
        out.write(f" ({detail})")
    out.write("\n")
    out.write(f"  links          : {spec.num_links}\n")
    out.write(
        f"  diameter       : {spec.diameter_server_hops} server hops / "
        f"{spec.diameter_link_hops} link hops\n"
    )
    if spec.bisection_links is not None:
        out.write(
            f"  bisection      : {spec.bisection_links:g} links "
            f"({spec.bisection_links / spec.num_servers:.3f} per server)\n"
        )

    if spec.kind == "abccc":
        from repro.core import properties

        params = spec.abccc  # type: ignore[attr-defined]
        out.write(
            f"  crossbar size  : {params.crossbar_size} "
            f"(s = {params.s} NIC ports)\n"
        )
        out.write(
            f"  expected route : {properties.expected_server_hops(params):.3f} "
            f"server hops (uniform pairs, exact)\n"
        )

    breakdown = capex(spec, prices)
    out.write(
        f"  CAPEX          : {breakdown.total:,.0f} total, "
        f"{breakdown.per_server:,.2f} per server\n"
    )

    total_nodes = spec.num_servers + spec.num_switches
    if total_nodes > max_measure_nodes:
        out.write(f"measurements skipped ({total_nodes} nodes > {max_measure_nodes})\n")
        return out.getvalue()

    net = spec.build()
    problems = find_problems(net, spec.link_policy())
    out.write("built instance:\n")
    out.write(f"  invariants     : {'OK' if not problems else '; '.join(problems)}\n")

    if spec.kind == "abccc":
        from repro.core.conformance import conformance_problems

        issues = conformance_problems(net, spec.abccc)  # type: ignore[attr-defined]
        out.write(f"  conformance    : {'OK' if not issues else issues[0]}\n")

    stats = link_hop_stats(
        net,
        sample_sources=sample_sources if net.num_servers > sample_sources else None,
    )
    exactness = "exact" if stats.exact else f"{sample_sources}-source sample"
    out.write(f"  distances ({exactness}):\n")
    out.write(f"    diameter     : {stats.diameter} link hops\n")
    out.write(f"    mean         : {stats.mean:.3f} link hops\n")
    out.write(f"    p99          : {stats.p99} link hops\n")
    return out.getvalue()
