"""repro — a reproduction of ABCCC (Li & Yang, ICDCS 2015).

A server-centric data-center network library: the ABCCC topology with its
addressing, routing, broadcast, conformance checking and expansion
planning; the baseline topologies the paper compares against (BCube,
BCCC, fat-tree, DCell, FiConn, hypercube) plus the wider field (3D
torus, oversubscribed tree, Jellyfish); metrics (diameter, bisection,
throughput, bounds, cost, layout, state); flow-, packet- and churn-level
simulators; deployment artefacts; and the experiment harness that
regenerates every table and figure of the evaluation plus eight
ablations (see DESIGN.md and EXPERIMENTS.md).

Quickstart::

    from repro import AbcccSpec

    spec = AbcccSpec(n=4, k=2, s=3)
    net = spec.build()
    route = spec.route(net, net.servers[0], net.servers[-1])
"""

from repro.baselines import (
    BcccSpec,
    BcubeSpec,
    DcellSpec,
    FatTreeSpec,
    FiconnSpec,
    HypercubeSpec,
    Torus3dSpec,
    TreeSpec,
)
from repro.core import (
    AbcccParams,
    AbcccSpec,
    ServerAddress,
    abccc_route,
    broadcast_tree,
    build_abccc,
    fault_tolerant_route,
    multicast_tree,
    plan_abccc_growth,
    plan_bccc_growth,
    plan_bcube_growth,
    plan_fattree_growth,
)
from repro.routing import Route, RoutingError, bfs_path
from repro.topology import Network, TopologySpec, validate_network
from repro.topology.registry import available as available_topologies
from repro.topology.registry import create as create_topology

__version__ = "1.0.0"

__all__ = [
    "AbcccParams",
    "AbcccSpec",
    "BcccSpec",
    "BcubeSpec",
    "DcellSpec",
    "FatTreeSpec",
    "FiconnSpec",
    "HypercubeSpec",
    "Network",
    "Torus3dSpec",
    "TreeSpec",
    "Route",
    "RoutingError",
    "ServerAddress",
    "TopologySpec",
    "abccc_route",
    "available_topologies",
    "bfs_path",
    "broadcast_tree",
    "build_abccc",
    "create_topology",
    "fault_tolerant_route",
    "multicast_tree",
    "plan_abccc_growth",
    "plan_bccc_growth",
    "plan_bcube_growth",
    "plan_fattree_growth",
    "validate_network",
    "__version__",
]
