"""The always-on topology query service: core, HTTP front end, daemon.

Three layers, separable for testing:

* :class:`TopologyService` — transport-agnostic core.  Owns the
  compiled graph, the bounded job queue + worker supervisor (or the
  inline executor when ``workers=0``), the idempotency replay cache,
  and the lifecycle bits (ready / draining / stopped).  ``submit()`` is
  the one entry point: it enforces the queue bound (shedding with
  ``overload`` + a ``Retry-After`` hint), per-request deadlines, and
  drain semantics, and emits the ``repro.obs`` spans and counters every
  request carries.
* :class:`HTTPFrontEnd` — a threaded stdlib HTTP server (TCP or unix
  socket) translating paths/JSON to ``submit()`` calls and
  :class:`~repro.serve.protocol.ServeError` to status codes.  Health
  endpoints never enter the queue, so probes stay responsive under
  overload.
* :class:`Daemon` — signal wiring for ``repro serve``: SIGTERM/SIGINT
  trigger graceful drain (stop accepting -> finish in-flight -> stop
  workers -> release shared memory), never an abrupt exit.

Load-shedding contract (the chaos suite pins this): a full queue is
*always* answered — 429 with ``Retry-After`` — and a draining or
not-yet-ready service answers 503 with ``Retry-After``; neither path
can hang a client or leak a 500 traceback.
"""

from __future__ import annotations

import os
import queue
import socket
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Mapping, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.obs import metrics as _metrics
from repro.obs import trace as _obs
from repro.obs.memory import peak_rss_mb
from repro.serve import engine, protocol
from repro.serve.protocol import (
    IDEMPOTENCY_HEADER,
    TRACE_HEADER,
    ServeError,
    bad_request,
    normalize_trace_id,
)
from repro.serve.scenario import ScenarioCache
from repro.serve.supervisor import Job, Supervisor
from repro.topology import shm

#: ServeError code -> request-outcome label on metrics series.
_OUTCOME_BY_CODE = {
    "timeout": "timeout",
    "overload": "shed",
    "unavailable": "shed",
    "bad-request": "error",
    "internal": "error",
}


@dataclass
class ServeConfig:
    """Tunables of one service instance (CLI flags map 1:1)."""

    workers: int = 2  #: worker processes; 0 = execute inline in handler threads
    queue_bound: int = 64  #: pending-request ceiling before shedding
    default_deadline_s: float = 10.0
    max_deadline_s: float = 60.0
    hang_timeout_s: float = 30.0  #: no reply for this long -> kill + respawn
    drain_timeout_s: float = 15.0
    spawn_timeout_s: float = 120.0  #: worker must answer its readiness ping
    backoff_base_s: float = 0.05
    backoff_max_s: float = 2.0
    scenario_cache: int = 64  #: MaskedGraph LRU entries (per worker)
    idempotency_cache: int = 256  #: completed responses replayable by key
    retry_after_s: float = 0.2  #: base Retry-After hint for shed responses
    mp_context: str = "spawn"  #: fork is faster but unsafe to respawn from threads


class _Counters:
    """Tiny thread-safe named counters for ``/stats``."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._values: Dict[str, int] = {}

    def bump(self, name: str, inc: int = 1) -> None:
        with self._lock:
            self._values[name] = self._values.get(name, 0) + inc

    def snapshot(self) -> Dict[str, int]:
        with self._lock:
            return dict(self._values)


class TopologyService:
    """Loaded-once graph + query execution with robustness guarantees."""

    def __init__(
        self,
        graph,
        config: Optional[ServeConfig] = None,
        label: str = "graph",
        registry: Optional[_metrics.MetricsRegistry] = None,
    ) -> None:
        self.graph = graph
        self.config = config or ServeConfig()
        self.label = label
        self.counters = _Counters()
        #: live metrics registry; defaults to the process-global one so
        #: engine/cache instrumentation lands in the same place.
        self.registry = registry if registry is not None else _metrics.get_registry()
        self.supervisor: Optional[Supervisor] = None
        self.handle = None
        self._scenarios: Optional[ScenarioCache] = None
        self._idem: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
        self._idem_lock = threading.Lock()
        self._inline_inflight = 0
        self._inline_lock = threading.Lock()
        self._inline_idle = threading.Condition(self._inline_lock)
        self._started = False
        self._draining = False
        self._stopped = False
        self._started_at: Optional[float] = None

    # -- lifecycle ------------------------------------------------------
    def start(self) -> None:
        if self._started:
            return
        if self.config.workers > 0:
            self.handle = shm.export_graph(self.graph)
            self.supervisor = Supervisor(self.handle, self.config, self.registry)
            self.supervisor.start()
        else:
            self._scenarios = ScenarioCache(
                self.graph, capacity=self.config.scenario_cache
            )
        self._started = True
        self._started_at = time.monotonic()
        _obs.event(
            "serve-start",
            f"serving {self.label}",
            workers=self.config.workers,
            servers=self.graph.num_servers,
        )

    def wait_ready(self, timeout: float) -> bool:
        if not self._started or self._stopped:
            return False
        if self.supervisor is None:
            return True
        return self.supervisor.wait_ready(timeout)

    @property
    def ready(self) -> bool:
        return self._started and not self._draining and not self._stopped and (
            self.supervisor is None or self.supervisor.wait_ready(0)
        )

    @property
    def draining(self) -> bool:
        return self._draining

    def begin_drain(self) -> None:
        """Stop accepting work; in-flight requests keep running."""
        if not self._draining:
            self._draining = True
            _obs.event("serve-drain", "drain started")

    def wait_drained(self, timeout: Optional[float] = None) -> bool:
        """Block until every accepted request settled (or timeout)."""
        budget = self.config.drain_timeout_s if timeout is None else timeout
        if self.supervisor is not None:
            return self.supervisor.wait_idle(budget)
        deadline = time.monotonic() + budget
        with self._inline_lock:
            while self._inline_inflight > 0:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._inline_idle.wait(remaining)
        return True

    def stop(self) -> None:
        """Stop workers and release shared memory; idempotent."""
        if self._stopped:
            return
        self._stopped = True
        self._draining = True
        if self.supervisor is not None:
            self.supervisor.stop()
        if self.handle is not None:
            self.handle.release()
        _obs.event("serve-stop", "service stopped")

    def drain_and_stop(self, timeout: Optional[float] = None) -> bool:
        self.begin_drain()
        drained = self.wait_drained(timeout)
        self.stop()
        return drained

    # -- idempotency replay --------------------------------------------
    def _replay(self, key: Optional[str]) -> Optional[Dict[str, Any]]:
        if not key:
            return None
        with self._idem_lock:
            cached = self._idem.get(key)
            if cached is not None:
                self._idem.move_to_end(key)
                self.counters.bump("idempotent_replays")
                _obs.counter("serve.idempotent_replays")
                return dict(cached)
        return None

    def _remember(self, key: Optional[str], payload: Dict[str, Any]) -> None:
        if not key:
            return
        with self._idem_lock:
            self._idem[key] = dict(payload)
            self._idem.move_to_end(key)
            while len(self._idem) > self.config.idempotency_cache:
                self._idem.popitem(last=False)

    # -- the entry point ------------------------------------------------
    def submit(
        self,
        op: str,
        params: Mapping[str, Any],
        deadline_s: Optional[float] = None,
        idempotency_key: Optional[str] = None,
        trace_id: Optional[str] = None,
    ) -> Dict[str, Any]:
        """Run one query; returns the response payload or raises ServeError.

        Every submission — including shed and failed ones — lands in
        the live metrics: a ``serve.requests`` counter bump and a
        ``serve.request.latency_seconds`` observation, both labeled
        ``endpoint=<op>, outcome=<ok|degraded|timeout|shed|error>``.
        ``trace_id`` (client-minted, via the ``X-Trace-Id`` header)
        binds the trace context for the request's spans and rides the
        request dict into the worker.
        """
        outcome = "error"
        t0 = time.perf_counter()
        try:
            with _obs.trace_context(trace_id):
                payload = self._submit(op, params, deadline_s, idempotency_key, trace_id)
            outcome = "degraded" if payload.get("status") == "degraded" else "ok"
            return payload
        except ServeError as error:
            outcome = _OUTCOME_BY_CODE.get(error.code, "error")
            raise
        finally:
            registry = self.registry
            registry.counter("serve.requests", endpoint=op, outcome=outcome).inc()
            registry.histogram(
                "serve.request.latency_seconds", endpoint=op, outcome=outcome
            ).observe(time.perf_counter() - t0)

    def _submit(
        self,
        op: str,
        params: Mapping[str, Any],
        deadline_s: Optional[float],
        idempotency_key: Optional[str],
        trace_id: Optional[str],
    ) -> Dict[str, Any]:
        config = self.config
        if self._stopped:
            raise ServeError(
                "unavailable", "service stopped", retry_after_s=config.retry_after_s
            )
        if self._draining:
            self.counters.bump("shed_draining")
            _obs.counter("serve.shed.draining")
            raise ServeError(
                "unavailable",
                "draining: not accepting new requests",
                retry_after_s=config.retry_after_s,
            )
        if not self._started:
            raise ServeError(
                "unavailable", "service not started", retry_after_s=config.retry_after_s
            )
        replay = self._replay(idempotency_key)
        if replay is not None:
            return replay
        request = protocol.parse_query(op, params)
        if trace_id is not None:
            # the trace id travels inside the canonical request so the
            # worker process can rebind the context around execution.
            request["trace"] = trace_id
        if deadline_s is None:
            deadline_s = config.default_deadline_s
        deadline_s = min(deadline_s, config.max_deadline_s)
        self.counters.bump("requests")
        self.counters.bump(f"requests.{op}")
        _obs.counter("serve.requests")
        with _obs.span("serve.request", op=op):
            if self.supervisor is None:
                payload = self._submit_inline(request, deadline_s)
            else:
                payload = self._submit_pooled(request, deadline_s)
        self._remember(idempotency_key, payload)
        return payload

    def _submit_inline(self, request: Dict[str, Any], deadline_s: float) -> Dict[str, Any]:
        with self._inline_lock:
            self._inline_inflight += 1
        try:
            started = time.monotonic()
            started_pc = time.perf_counter()
            payload = engine.execute(self.graph, request, self._scenarios)
            self.registry.histogram(
                "serve.execute.latency_seconds",
                endpoint=request.get("op", "?"),
                outcome="degraded" if payload.get("status") == "degraded" else "ok",
            ).observe(time.perf_counter() - started_pc)
            if time.monotonic() - started > deadline_s:
                # Inline execution cannot be preempted; a blown budget
                # still reports as a timeout so clients behave the same
                # against both execution modes.
                self.counters.bump("timeouts")
                _obs.counter("serve.timeouts")
                raise ServeError(
                    "timeout", f"computation exceeded the {deadline_s:.3f}s deadline"
                )
            return payload
        finally:
            with self._inline_lock:
                self._inline_inflight -= 1
                if self._inline_inflight <= 0:
                    self._inline_idle.notify_all()

    def _shed_retry_after(self) -> float:
        depth = self.supervisor.jobs.qsize() if self.supervisor else 0
        workers = max(self.config.workers, 1)
        return round(self.config.retry_after_s * (1 + depth / (4.0 * workers)), 3)

    def _submit_pooled(self, request: Dict[str, Any], deadline_s: float) -> Dict[str, Any]:
        supervisor = self.supervisor
        if not supervisor.wait_ready(0):
            self.counters.bump("shed_not_ready")
            _obs.counter("serve.shed.not_ready")
            raise ServeError(
                "unavailable",
                "no ready worker yet",
                retry_after_s=self.config.retry_after_s,
            )
        job = Job(request, time.monotonic() + deadline_s)
        supervisor.note_submitted()
        try:
            supervisor.jobs.put_nowait(job)
        except queue.Full:
            supervisor.note_done()
            self.counters.bump("shed_overload")
            _obs.counter("serve.shed.overload")
            _obs.event(
                "gauge",
                "queue full: shedding",
                queue_depth=supervisor.jobs.qsize(),
            )
            raise ServeError(
                "overload",
                f"request queue full ({self.config.queue_bound} pending)",
                retry_after_s=self._shed_retry_after(),
            )
        _obs.counter("serve.queued")
        if not job.wait(deadline_s + 0.1):
            job.fail(ServeError("timeout", f"no answer within {deadline_s:.3f}s"))
        if job.error is not None:
            if job.error.code == "timeout":
                self.counters.bump("timeouts")
                _obs.counter("serve.timeouts")
            elif job.error.code == "unavailable":
                self.counters.bump("worker_lost")
            raise job.error
        return job.result

    # -- introspection --------------------------------------------------
    def state(self) -> Dict[str, Any]:
        if self._stopped:
            status = "stopped"
        elif self._draining:
            status = "draining"
        elif not self._started or not self.ready:
            status = "starting"
        else:
            status = "serving"
        info: Dict[str, Any] = {
            "status": status,
            "label": self.label,
            "protocol": protocol.PROTOCOL_VERSION,
            "pid": os.getpid(),
            "graph": {
                "servers": self.graph.num_servers,
                "nodes": self.graph.num_nodes,
                "edges": self.graph.num_edges,
            },
        }
        if self._started_at is not None:
            info["uptime_s"] = round(time.monotonic() - self._started_at, 3)
        if self.supervisor is not None:
            info["workers"] = self.supervisor.stats()
        else:
            info["workers"] = {"mode": "inline", "inflight": self._inline_inflight}
            if self._scenarios is not None:
                info["scenario_cache"] = self._scenarios.stats()
        return info

    def metrics_snapshot(self) -> Dict[str, Any]:
        """The service-wide metrics snapshot: parent ⊕ every worker.

        Refreshes scrape-time gauges first (queue depth, worker age /
        liveness / RSS), then merges the parent registry with the
        per-slot worker snapshots that piggybacked on reply pipes —
        including snapshots retired by worker restarts, so counts are
        lifetime totals, not since-last-respawn.
        """
        worker_snaps = []
        if self.supervisor is not None:
            self.supervisor.refresh_gauges()
            worker_snaps = self.supervisor.worker_metric_snapshots()
        else:
            self.registry.gauge("serve.inflight").set(self._inline_inflight)
        return _metrics.merge_snapshots(self.registry.snapshot(), *worker_snaps)

    def memory_stats(self) -> Dict[str, Any]:
        """Peak RSS of the parent and each worker, plus the pool total."""
        main_mb = peak_rss_mb()
        memory: Dict[str, Any] = {"main_peak_rss_mb": main_mb}
        total = main_mb or 0.0
        if self.supervisor is not None:
            per_worker = {
                str(agent.slot): agent.last_rss_mb
                for agent in self.supervisor.agents
                if agent.last_rss_mb is not None
            }
            memory["workers_peak_rss_mb"] = per_worker
            total += sum(per_worker.values())
        memory["pool_total_mb"] = round(total, 2)
        return memory

    def stats(self) -> Dict[str, Any]:
        payload = self.state()
        payload["counters"] = self.counters.snapshot()
        payload["metrics"] = self.metrics_snapshot()
        payload["memory"] = self.memory_stats()
        return payload


# ----------------------------------------------------------------------
# HTTP front end
# ----------------------------------------------------------------------
class _TCPServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True
    service: TopologyService  # attached by HTTPFrontEnd


class _UnixServer(_TCPServer):
    address_family = socket.AF_UNIX

    def server_bind(self) -> None:
        path = self.server_address
        if isinstance(path, (str, os.PathLike)) and os.path.exists(path):
            os.unlink(path)
        # skip HTTPServer.server_bind: it unpacks (host, port) which a
        # unix path does not have.
        self.socket.bind(self.server_address)
        self.server_name = "unix"
        self.server_port = 0

    def get_request(self):
        request, _ = self.socket.accept()
        return request, ("unix-client", 0)


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-serve/1"
    protocol_version = "HTTP/1.1"

    #: GET paths that bypass the queue entirely.
    _CONTROL = ("/healthz", "/readyz", "/stats", "/metrics")

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        return  # request logs go through repro.obs, not stderr

    # -- plumbing -------------------------------------------------------
    @property
    def service(self) -> TopologyService:
        return self.server.service

    def _send(
        self,
        status: int,
        payload: Mapping[str, Any],
        retry_after_s: Optional[float] = None,
    ) -> None:
        body = protocol.encode(payload)
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if retry_after_s is not None:
            self.send_header("Retry-After", f"{max(retry_after_s, 0.001):.3f}")
        self.end_headers()
        try:
            self.wfile.write(body)
        except (BrokenPipeError, ConnectionResetError):  # client went away
            pass

    def _send_text(self, status: int, text: str, content_type: str) -> None:
        body = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        try:
            self.wfile.write(body)
        except (BrokenPipeError, ConnectionResetError):  # client went away
            pass

    def _params_from_query(self) -> Dict[str, Any]:
        query = parse_qs(urlsplit(self.path).query)
        params: Dict[str, Any] = {k: v[0] for k, v in query.items() if v}
        if "avoid" in params:
            params["avoid"] = [n for n in params["avoid"].split(",") if n]
        return params

    def _read_body(self) -> Dict[str, Any]:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            return {}
        return protocol.decode(self.rfile.read(length))

    def _run(self, op: str, params: Dict[str, Any]) -> None:
        service = self.service
        try:
            deadline_s = protocol.parse_deadline_ms(
                params.pop("deadline_ms", None),
                service.config.default_deadline_s,
                service.config.max_deadline_s,
            )
            payload = service.submit(
                op,
                params,
                deadline_s=deadline_s,
                idempotency_key=self.headers.get(IDEMPOTENCY_HEADER),
                trace_id=normalize_trace_id(self.headers.get(TRACE_HEADER)),
            )
            self._send(200, payload)
        except ServeError as error:
            self._send(error.http_status, error.to_payload(), error.retry_after_s)
        except Exception as error:  # noqa: BLE001 - no tracebacks on the wire
            _obs.event(
                "serve-internal-error", f"{type(error).__name__}: {error}", op=op
            )
            self._send(
                500,
                ServeError("internal", f"{type(error).__name__}: {error}").to_payload(),
            )

    # -- verbs ----------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        path = urlsplit(self.path).path
        service = self.service
        if path == "/healthz":
            self._send(200, service.state())
            return
        if path == "/readyz":
            if service.ready:
                self._send(200, {"ready": True})
            else:
                state = service.state()
                self._send(
                    503,
                    {"ready": False, "status": state["status"]},
                    retry_after_s=service.config.retry_after_s,
                )
            return
        if path == "/stats":
            self._send(200, service.stats())
            return
        if path == "/metrics":
            self._send_text(
                200,
                _metrics.render_prometheus(service.metrics_snapshot()),
                "text/plain; version=0.0.4; charset=utf-8",
            )
            return
        if path in ("/route", "/distance"):
            self._run(path.lstrip("/"), self._params_from_query())
            return
        self._send(404, bad_request(f"no such endpoint {path!r}").to_payload())

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        path = urlsplit(self.path).path
        if path not in ("/route", "/distance", "/whatif"):
            self._send(404, bad_request(f"no such endpoint {path!r}").to_payload())
            return
        try:
            params = self._read_body()
        except ServeError as error:
            self._send(error.http_status, error.to_payload())
            return
        self._run(path.lstrip("/"), params)


class HTTPFrontEnd:
    """The bound HTTP server (TCP or unix socket) around a service."""

    def __init__(
        self,
        service: TopologyService,
        host: str = "127.0.0.1",
        port: int = 0,
        unix: Optional[str] = None,
    ) -> None:
        self.service = service
        self.unix_path = unix
        if unix is not None:
            self.httpd: _TCPServer = _UnixServer(unix, _Handler, bind_and_activate=True)
        else:
            self.httpd = _TCPServer((host, port), _Handler, bind_and_activate=True)
        self.httpd.service = service

    @property
    def endpoint(self) -> str:
        if self.unix_path is not None:
            return f"unix:{self.unix_path}"
        host, port = self.httpd.server_address[:2]
        return f"http://{host}:{port}"

    @property
    def port(self) -> Optional[int]:
        if self.unix_path is not None:
            return None
        return int(self.httpd.server_address[1])

    def serve_forever(self) -> None:
        self.httpd.serve_forever(poll_interval=0.2)

    def shutdown(self) -> None:
        self.httpd.shutdown()

    def close(self) -> None:
        self.httpd.server_close()
        if self.unix_path is not None and os.path.exists(self.unix_path):
            try:
                os.unlink(self.unix_path)
            except OSError:  # pragma: no cover - already gone
                pass


class Daemon:
    """``repro serve``: front end + service + signal-driven drain."""

    def __init__(
        self,
        service: TopologyService,
        host: str = "127.0.0.1",
        port: int = 0,
        unix: Optional[str] = None,
        ready_file: Optional[str] = None,
    ) -> None:
        self.service = service
        self.front = HTTPFrontEnd(service, host=host, port=port, unix=unix)
        self.ready_file = ready_file
        self._signal_seen: Optional[int] = None

    def _write_ready_file(self) -> None:
        if not self.ready_file:
            return
        payload = {
            "endpoint": self.front.endpoint,
            "pid": os.getpid(),
            "port": self.front.port,
            "unix": self.front.unix_path,
        }
        tmp = f"{self.ready_file}.tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(protocol.encode(payload).decode("utf-8"))
        os.replace(tmp, self.ready_file)

    def _graceful(self) -> None:
        service = self.service
        service.begin_drain()
        service.wait_drained()
        self.front.shutdown()

    def _install_signals(self) -> None:
        import signal

        def _on_signal(signum, frame) -> None:
            if self._signal_seen is not None:  # second signal: exit hard
                raise SystemExit(1)
            self._signal_seen = signum
            threading.Thread(
                target=self._graceful, name="serve-drain", daemon=True
            ).start()

        signal.signal(signal.SIGTERM, _on_signal)
        signal.signal(signal.SIGINT, _on_signal)

    def run(self, install_signals: bool = True) -> int:
        """Start, announce, serve until drained; returns the exit code."""
        service = self.service
        service.start()
        if not service.wait_ready(service.config.spawn_timeout_s):
            service.stop()
            self.front.close()
            raise ServeError("unavailable", "workers failed to become ready")
        if install_signals:
            self._install_signals()
        self._write_ready_file()
        try:
            self.front.serve_forever()
        finally:
            service.drain_and_stop()
            self.front.close()
        return 0
