"""Worker-process entry point of the topology query service.

Each worker is one OS process connected to the parent by a private
duplex :class:`multiprocessing.Pipe`.  Privacy is the crash-isolation
property: ``multiprocessing.Queue`` shares reader/writer locks between
consumers, so a worker SIGKILLed mid-``get`` can leave the lock held
and deadlock every sibling — with one pipe per worker, a killed worker
costs exactly its own in-flight request (the parent sees EOF on *that*
pipe and fails *that* request as retryable), and the supervisor
replaces the process without touching the others.

The graph arrives as a :class:`~repro.topology.shm.GraphHandle`: the
CSR arrays live once in shared memory (or in memmap files), so spawning
or respawning a worker attaches megabytes instead of copying them —
restart cost stays flat in graph size.

Protocol on the pipe (all plain picklable dicts):

* parent -> worker: ``{"seq": n, "request": <canonical request>}`` —
  the request may carry a ``"trace"`` key (the client's trace id),
  which the worker binds around execution so its spans stitch into the
  request's end-to-end trace;
* worker -> parent: ``{"seq": n, "result": payload}`` or
  ``{"seq": n, "error": <ServeError payload>}``.  Result replies carry
  a ``"worker"`` meta dict (popped by the parent agent, never sent to
  clients) with the worker's pid, scenario-cache stats, a live metrics
  snapshot and its peak RSS — the piggyback channel that merges
  worker-side telemetry into the parent without extra IPC.

The ``seq`` echo lets the parent discard stale replies after it has
already timed out a request — the pipe stays usable without a restart.
A worker exits on EOF (parent closed the pipe = drain) and never
touches the segment's lifetime: the parent owns it.
"""

from __future__ import annotations

import os
import time
from typing import Any, Dict

from repro.serve import engine
from repro.serve.protocol import ServeError
from repro.serve.scenario import ScenarioCache


def worker_main(conn, handle, scenario_capacity: int = 64) -> None:
    """Blocking request loop; returns (exiting the process) on EOF."""
    from repro.obs import trace as obs_trace
    from repro.obs.memory import peak_rss_mb
    from repro.obs.metrics import get_registry

    obs_trace.maybe_init_worker()
    graph = handle.materialize()
    scenarios = ScenarioCache(graph, capacity=scenario_capacity)
    registry = get_registry()
    try:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break
            if message is None:  # explicit stop sentinel
                break
            reply: Dict[str, Any] = {"seq": message.get("seq")}
            request = message.get("request") or {}
            op = request.get("op", "?")
            trace_id = request.get("trace")
            outcome = "error"
            t0 = time.perf_counter()
            try:
                with obs_trace.trace_context(trace_id):
                    with obs_trace.span("serve.execute", op=op):
                        result = engine.execute(graph, request, scenarios)
                outcome = (
                    "degraded" if result.get("status") == "degraded" else "ok"
                )
                result["worker"] = {
                    "pid": os.getpid(),
                    "cache": scenarios.stats(),
                }
                reply["result"] = result
            except ServeError as error:
                outcome = "timeout" if error.code == "timeout" else "error"
                reply["error"] = error.to_payload()
            except Exception as error:  # noqa: BLE001 - must not kill the loop
                reply["error"] = ServeError(
                    "internal", f"{type(error).__name__}: {error}"
                ).to_payload()
            if op != "ping":
                registry.histogram(
                    "serve.execute.latency_seconds", endpoint=op, outcome=outcome
                ).observe(time.perf_counter() - t0)
            if "result" in reply:
                # telemetry piggybacks on every result reply: the
                # parent pops it, so the wire payload stays unchanged.
                reply["result"]["worker"]["metrics"] = registry.snapshot()
                reply["result"]["worker"]["rss_mb"] = peak_rss_mb()
            try:
                conn.send(reply)
            except (BrokenPipeError, OSError):
                break
    finally:
        conn.close()
