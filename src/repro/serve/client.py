"""Bundled client for the topology query service.

Implements the retry discipline the service's error taxonomy is
designed for, so every consumer (CLI, smoke tests, chaos suite) gets
correct behavior instead of re-inventing it:

* **only retryable errors retry** — 429/503/504 (and transport-level
  connect/reset failures); a 400 ``bad-request`` raises immediately,
  a 500 ``internal`` raises after one retry is attempted at most zero
  times (it is flagged non-retryable by the server);
* **server hints win** — a ``Retry-After`` header (the shed path
  always sends one) overrides the client's own backoff schedule;
* **exponential backoff with jitter** — ``backoff_base_s * 2^attempt``
  capped at ``backoff_max_s``, plus a uniform jitter fraction so a
  shed burst of clients does not re-arrive in lockstep (the thundering
  herd the bounded queue exists to absorb);
* **idempotency keys** — each logical request carries one opaque
  ``X-Request-Key`` that *stays fixed across its retries*: when a
  timed-out request actually completed server-side, the retry replays
  the stored answer instead of recomputing it;
* **trace propagation** — each logical request also mints one trace id
  (``X-Trace-Id``, fixed across retries like the idempotency key) and
  wraps its retry loop in a ``serve.client.request`` span, so when the
  client process traces, ``repro obs report --trace-id`` stitches the
  client attempt(s), the server-side queue wait and the worker
  execution into one tree — including across a worker crash + retry,
  which is exactly when you want the whole story in one place.  The
  id of the last request is kept on ``last_trace_id``.

Transport is stdlib ``http.client`` over TCP or a unix socket; no
external dependencies.
"""

from __future__ import annotations

import http.client
import os
import random
import socket
import time
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.obs import trace as _obs
from repro.serve.protocol import (
    IDEMPOTENCY_HEADER,
    TRACE_HEADER,
    ServeError,
    decode,
    encode,
)

#: transport failures worth retrying (server gone mid-connection).
_RETRYABLE_IO = (
    ConnectionRefusedError,
    ConnectionResetError,
    BrokenPipeError,
    http.client.RemoteDisconnected,
    http.client.CannotSendRequest,
    socket.timeout,
)


class _UnixHTTPConnection(http.client.HTTPConnection):
    """``http.client`` over an ``AF_UNIX`` socket path."""

    def __init__(self, path: str, timeout: Optional[float] = None) -> None:
        super().__init__("localhost", timeout=timeout)
        self._path = path

    def connect(self) -> None:
        self.sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        if self.timeout is not None:
            self.sock.settimeout(self.timeout)
        self.sock.connect(self._path)


class ServeClient:
    """Retrying JSON client; one instance per target endpoint.

    Not thread-safe (one underlying connection); create one client per
    thread.  ``seed`` makes the jitter deterministic for tests.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: Optional[int] = None,
        unix: Optional[str] = None,
        retries: int = 5,
        backoff_base_s: float = 0.1,
        backoff_max_s: float = 2.0,
        jitter: float = 0.25,
        timeout_s: float = 30.0,
        seed: Optional[int] = None,
    ) -> None:
        if (port is None) == (unix is None):
            raise ValueError("pass exactly one of port= or unix=")
        self.host = host
        self.port = port
        self.unix = unix
        self.retries = retries
        self.backoff_base_s = backoff_base_s
        self.backoff_max_s = backoff_max_s
        self.jitter = jitter
        self.timeout_s = timeout_s
        self._rng = random.Random(seed)
        self._conn: Optional[http.client.HTTPConnection] = None
        #: (attempts made, sleeps taken) of the last request — chaos
        #: tests assert on these.
        self.last_attempts = 0
        self.last_sleeps: List[float] = []
        #: trace id minted for the last logical request.
        self.last_trace_id: Optional[str] = None

    # -- transport ------------------------------------------------------
    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            if self.unix is not None:
                self._conn = _UnixHTTPConnection(self.unix, timeout=self.timeout_s)
            else:
                self._conn = http.client.HTTPConnection(
                    self.host, self.port, timeout=self.timeout_s
                )
        return self._conn

    def _drop_connection(self) -> None:
        if self._conn is not None:
            try:
                self._conn.close()
            except OSError:  # pragma: no cover - already closed
                pass
            self._conn = None

    def close(self) -> None:
        self._drop_connection()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _once(
        self,
        method: str,
        path: str,
        body: Optional[Mapping[str, Any]],
        key: Optional[str],
        trace_id: Optional[str] = None,
    ) -> Tuple[int, Dict[str, Any], Optional[float]]:
        conn = self._connection()
        headers = {"Content-Type": "application/json"}
        if key is not None:
            headers[IDEMPOTENCY_HEADER] = key
        if trace_id is not None:
            headers[TRACE_HEADER] = trace_id
        conn.request(
            method, path, body=encode(body) if body is not None else None, headers=headers
        )
        response = conn.getresponse()
        raw = response.read()
        retry_after: Optional[float] = None
        header = response.getheader("Retry-After")
        if header:
            try:
                retry_after = float(header)
            except ValueError:
                retry_after = None
        try:
            payload = decode(raw) if raw else {}
        except ServeError:
            payload = {"error": {"code": "internal", "message": "unparseable body"}}
        return response.status, payload, retry_after

    def _sleep_for(self, attempt: int, hint: Optional[float]) -> float:
        backoff = min(self.backoff_base_s * (2 ** attempt), self.backoff_max_s)
        delay = max(hint, backoff) if hint is not None else backoff
        delay *= 1.0 + self.jitter * self._rng.random()
        return delay

    def request(
        self,
        method: str,
        path: str,
        body: Optional[Mapping[str, Any]] = None,
        idempotent: bool = True,
    ) -> Dict[str, Any]:
        """One logical request with retries; returns the response payload.

        Raises the last :class:`ServeError` when retries are exhausted
        (code preserved, so callers can still branch on the taxonomy).
        """
        key = os.urandom(8).hex() if idempotent else None
        trace_id = _obs.mint_trace_id()
        self.last_trace_id = trace_id
        self.last_attempts = 0
        self.last_sleeps = []
        last_error: Optional[ServeError] = None
        # One span per *logical* request (covering every retry), tagged
        # with the same trace id every attempt sends — so a retried
        # request stitches into a single trace server-side.
        with _obs.trace_context(trace_id):
            with _obs.span(
                "serve.client.request", method=method, path=path
            ) as request_span:
                for attempt in range(self.retries + 1):
                    self.last_attempts = attempt + 1
                    hint: Optional[float] = None
                    try:
                        status, payload, hint = self._once(
                            method, path, body, key, trace_id
                        )
                        if status < 400:
                            request_span.tag(attempts=attempt + 1, status=status)
                            return payload
                        error = ServeError.from_payload(payload)
                        if error.retry_after_s is None and hint is not None:
                            error.retry_after_s = hint
                        last_error = error
                        if not error.retryable or (
                            error.code == "timeout" and not idempotent
                        ):
                            raise error
                    except ServeError:
                        request_span.tag(
                            attempts=attempt + 1, error=last_error.code
                            if last_error
                            else "?",
                        )
                        raise
                    except _RETRYABLE_IO as io_error:
                        self._drop_connection()
                        last_error = ServeError(
                            "unavailable", f"transport failure: {io_error!r}"
                        )
                    if attempt < self.retries:
                        delay = self._sleep_for(attempt, last_error.retry_after_s)
                        self.last_sleeps.append(delay)
                        time.sleep(delay)
                request_span.tag(
                    attempts=self.last_attempts,
                    error=last_error.code if last_error else "?",
                )
                raise last_error

    # -- the API --------------------------------------------------------
    def health(self) -> Dict[str, Any]:
        return self.request("GET", "/healthz")

    def ready(self) -> bool:
        try:
            return bool(self.request("GET", "/readyz", idempotent=True).get("ready"))
        except ServeError:
            return False

    def stats(self) -> Dict[str, Any]:
        return self.request("GET", "/stats")

    def route(
        self,
        src: str,
        dst: str,
        avoid: Optional[Sequence[str]] = None,
        scenario: Optional[Mapping[str, Any]] = None,
        deadline_ms: Optional[int] = None,
    ) -> Dict[str, Any]:
        body: Dict[str, Any] = {"src": src, "dst": dst}
        if avoid:
            body["avoid"] = list(avoid)
        if scenario:
            body["scenario"] = dict(scenario)
        if deadline_ms is not None:
            body["deadline_ms"] = deadline_ms
        return self.request("POST", "/route", body)

    def distance(
        self,
        src: str,
        dst: str,
        scenario: Optional[Mapping[str, Any]] = None,
        deadline_ms: Optional[int] = None,
    ) -> Dict[str, Any]:
        body: Dict[str, Any] = {"src": src, "dst": dst}
        if scenario:
            body["scenario"] = dict(scenario)
        if deadline_ms is not None:
            body["deadline_ms"] = deadline_ms
        return self.request("POST", "/distance", body)

    def whatif(
        self,
        dead_servers: Optional[Sequence[str]] = None,
        dead_switches: Optional[Sequence[str]] = None,
        dead_links: Optional[Sequence[Sequence[str]]] = None,
        sample_pairs: int = 200,
        seed: int = 0,
        deadline_ms: Optional[int] = None,
    ) -> Dict[str, Any]:
        body: Dict[str, Any] = {
            "dead_servers": list(dead_servers or ()),
            "dead_switches": list(dead_switches or ()),
            "dead_links": [list(pair) for pair in (dead_links or ())],
            "sample_pairs": sample_pairs,
            "seed": seed,
        }
        if deadline_ms is not None:
            body["deadline_ms"] = deadline_ms
        return self.request("POST", "/whatif", body)
