"""Worker supervision: spawn, watch, restart — with exponential backoff.

One :class:`WorkerAgent` thread per worker slot owns one worker process
end to end: it spawns it (attaching the shared-memory graph), pings it
ready, feeds it jobs from the shared bounded queue, and is the only
thing that ever reads its pipe — so every failure mode has exactly one
observer and a deterministic consequence:

* **crash** (process died / pipe EOF, e.g. SIGKILL mid-request): the
  in-flight job fails ``unavailable`` (retryable, with a
  ``Retry-After`` hint equal to the respawn backoff) and the slot
  respawns;
* **hang** (no reply within ``hang_timeout_s`` of the send): the
  process is killed, the job fails, the slot respawns and the restart
  is counted separately (``serve.worker.hung``);
* **deadline** (client budget elapsed first): the job fails
  ``timeout`` immediately, but the worker is *not* killed — the agent
  keeps waiting (up to the hang budget) and discards the stale reply
  by sequence number, so one slow query costs one worker-busy window,
  not a restart storm.

Respawn delay is exponential per consecutive failure
(``backoff_base_s * 2^(failures-1)``, capped at ``backoff_max_s``) and
resets on the first successful reply, so a crash loop cannot spin the
CPU while a one-off kill recovers in tens of milliseconds.

Agents never share pipes or locks with each other; the only shared
structures are the thread-safe job queue and counters.
"""

from __future__ import annotations

import multiprocessing
import queue
import threading
import time
from typing import Any, Dict, List, Optional

from repro.obs import metrics as _metrics
from repro.obs import trace as _obs
from repro.serve.protocol import ServeError
from repro.serve.worker import worker_main


class Job:
    """One queued request plus the rendezvous its waiter blocks on."""

    __slots__ = (
        "request",
        "deadline_at",
        "enqueued_at",
        "enqueued_pc",
        "picked_pc",
        "_event",
        "result",
        "error",
    )

    def __init__(self, request: Dict[str, Any], deadline_at: float) -> None:
        self.request = request
        self.deadline_at = deadline_at
        self.enqueued_at = time.monotonic()
        # perf_counter twin of enqueued_at: queue-wait spans must share
        # the clock every other trace event uses (t is perf_counter).
        self.enqueued_pc = time.perf_counter()
        self.picked_pc: Optional[float] = None
        self._event = threading.Event()
        self.result: Optional[Dict[str, Any]] = None
        self.error: Optional[ServeError] = None

    @property
    def settled(self) -> bool:
        return self._event.is_set()

    def resolve(self, result: Dict[str, Any]) -> None:
        if not self._event.is_set():
            self.result = result
            self._event.set()

    def fail(self, error: ServeError) -> None:
        if not self._event.is_set():
            self.error = error
            self._event.set()

    def wait(self, timeout: Optional[float]) -> bool:
        return self._event.wait(timeout)


class WorkerAgent(threading.Thread):
    """Owns one worker slot: process, pipe, backoff and restart state."""

    def __init__(self, slot: int, supervisor: "Supervisor") -> None:
        super().__init__(name=f"serve-worker-agent-{slot}", daemon=True)
        self.slot = slot
        self.sup = supervisor
        self.process: Optional[multiprocessing.process.BaseProcess] = None
        self.conn = None
        self.ready = False
        self.consecutive_failures = 0
        self._spawned_once = False
        self.restarts = 0
        self.hung_kills = 0
        self.last_cache_stats: Optional[Dict[str, Any]] = None
        #: latest metrics snapshot / peak RSS the live worker piggybacked
        #: on a reply, and the merged snapshots of its dead predecessors
        #: (so counts survive restarts).
        self.last_metrics: Optional[Dict[str, Any]] = None
        self.last_rss_mb: Optional[float] = None
        self.retired_metrics: Optional[Dict[str, Any]] = None
        self.spawned_at: Optional[float] = None
        self._seq = 0
        self._stopping = threading.Event()

    # -- lifecycle ------------------------------------------------------
    def backoff_delay(self) -> float:
        if self.consecutive_failures == 0:
            return 0.0
        config = self.sup.config
        return min(
            config.backoff_base_s * (2 ** (self.consecutive_failures - 1)),
            config.backoff_max_s,
        )

    def _teardown_process(self, kill: bool = True) -> None:
        if self.last_metrics is not None:
            # fold the dying worker's counts into the retired pile so a
            # restart doesn't erase its observations from /metrics.
            self.retired_metrics = _metrics.merge_snapshots(
                self.retired_metrics, self.last_metrics
            )
            self.last_metrics = None
        self.spawned_at = None
        if self.conn is not None:
            try:
                self.conn.close()
            except OSError:  # pragma: no cover - already closed
                pass
            self.conn = None
        if self.process is not None:
            if kill and self.process.is_alive():
                self.process.kill()
            self.process.join(timeout=5.0)
            self.process = None
        self.ready = False

    def _spawn(self) -> bool:
        """Start a worker and ping it ready; ``False`` on failure."""
        delay = self.backoff_delay()
        if delay and self._stopping.wait(delay):
            return False
        ctx = multiprocessing.get_context(self.sup.config.mp_context)
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        process = ctx.Process(
            target=worker_main,
            args=(child_conn, self.sup.handle, self.sup.config.scenario_cache),
            name=f"serve-worker-{self.slot}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        self.process, self.conn = process, parent_conn
        registry = self.sup.registry
        if self._spawned_once:
            self.restarts += 1
            _obs.counter("serve.worker.restarts")
            registry.counter("serve.worker.restarts", slot=self.slot).inc()
        self._spawned_once = True
        _obs.counter("serve.worker.spawns")
        registry.counter("serve.worker.spawns", slot=self.slot).inc()
        self.spawned_at = time.monotonic()
        self._seq += 1
        try:
            parent_conn.send({"seq": self._seq, "request": {"op": "ping"}})
            budget = time.monotonic() + self.sup.config.spawn_timeout_s
            while time.monotonic() < budget and not self._stopping.is_set():
                if parent_conn.poll(0.05):
                    reply = parent_conn.recv()
                    if reply.get("seq") == self._seq and "result" in reply:
                        self.ready = True
                        self.sup.note_ready()
                        return True
        except (EOFError, OSError):
            pass
        self._teardown_process()
        self.consecutive_failures += 1
        _obs.counter("serve.worker.spawn_failures")
        return False

    # -- one job --------------------------------------------------------
    def _fail_lost(self, job: Job, why: str) -> None:
        job.fail(
            ServeError(
                "unavailable",
                f"worker lost mid-request ({why}); safe to retry",
                retry_after_s=max(self.backoff_delay(), 0.05),
            )
        )

    def _serve_one(self, job: Job) -> None:
        now = time.monotonic()
        if job.deadline_at <= now:
            job.fail(ServeError("timeout", "deadline elapsed while queued"))
            _obs.counter("serve.timeouts.queued")
            return
        # Queue wait = enqueue (service thread) -> here (about to hit
        # the pipe).  Observed as a histogram and, when tracing, as a
        # retroactive span so the wait shows up on the request's trace.
        job.picked_pc = time.perf_counter()
        waited = job.picked_pc - job.enqueued_pc
        op = job.request.get("op", "?")
        self.sup.registry.histogram(
            "serve.queue.wait_seconds", endpoint=op
        ).observe(waited)
        trace_tags = {"op": op, "slot": self.slot}
        trace_id = job.request.get("trace")
        if trace_id is not None:
            trace_tags["trace"] = trace_id
        _obs.record_span("serve.queue", job.enqueued_pc, waited, **trace_tags)
        self._seq += 1
        seq = self._seq
        try:
            self.conn.send({"seq": seq, "request": job.request})
        except (BrokenPipeError, OSError):
            self.consecutive_failures += 1
            self._fail_lost(job, "send failed")
            self._teardown_process()
            return
        sent_at = time.monotonic()
        hang_at = sent_at + self.sup.config.hang_timeout_s
        while not self._stopping.is_set():
            now = time.monotonic()
            if now >= hang_at:
                self.hung_kills += 1
                self.consecutive_failures += 1
                _obs.counter("serve.worker.hung")
                self.sup.registry.counter("serve.worker.hung", slot=self.slot).inc()
                if not job.settled:
                    self._fail_lost(job, "hung worker killed")
                self._teardown_process()
                return
            wait_until = hang_at if job.settled else min(job.deadline_at, hang_at)
            try:
                has_reply = self.conn.poll(max(wait_until - now, 0.0))
            except OSError:
                has_reply = False
            if has_reply:
                try:
                    reply = self.conn.recv()
                except (EOFError, OSError):
                    self.consecutive_failures += 1
                    self._fail_lost(job, "pipe closed")
                    self._teardown_process()
                    return
                if reply.get("seq") != seq:
                    _obs.counter("serve.worker.stale_replies")
                    continue
                self.consecutive_failures = 0
                if "result" in reply:
                    meta = reply["result"].pop("worker", None)
                    if meta:
                        if "cache" in meta:
                            self.last_cache_stats = meta["cache"]
                        if "metrics" in meta:
                            self.last_metrics = meta["metrics"]
                        if meta.get("rss_mb") is not None:
                            self.last_rss_mb = meta["rss_mb"]
                if not job.settled:
                    if "result" in reply:
                        job.resolve(reply["result"])
                    else:
                        job.fail(ServeError.from_payload(reply.get("error") or {}))
                else:
                    _obs.counter("serve.worker.stale_replies")
                return
            if self.process is not None and not self.process.is_alive():
                self.consecutive_failures += 1
                self._fail_lost(job, "process died")
                self._teardown_process()
                return
            if not job.settled and time.monotonic() >= job.deadline_at:
                job.fail(
                    ServeError("timeout", "deadline elapsed mid-computation")
                )
                _obs.counter("serve.timeouts.inflight")
                # keep waiting for the (now stale) reply up to hang_at —
                # the worker stays usable once it answers.

    # -- thread body ----------------------------------------------------
    def run(self) -> None:
        while not self._stopping.is_set():
            if self.conn is None:
                if not self._spawn():
                    continue
            try:
                job = self.sup.jobs.get(timeout=0.1)
            except queue.Empty:
                continue
            if job is None:  # drain sentinel: put back for siblings, exit
                try:
                    self.sup.jobs.put_nowait(None)
                except queue.Full:  # pragma: no cover - siblings poll anyway
                    pass
                break
            try:
                if self.process is None or not self.process.is_alive():
                    # the worker died while idle (e.g. SIGKILL between
                    # requests) — replace it before this job ever touches
                    # the dead pipe.
                    self._teardown_process()
                    self.consecutive_failures += 1
                    self._spawn()
                if self.conn is not None and not job.settled:
                    self._serve_one(job)
                elif not job.settled:
                    self._fail_lost(job, "no live worker")
            finally:
                self.sup.note_done()
        self._shutdown_worker()

    def _shutdown_worker(self) -> None:
        if self.conn is not None:
            try:
                self.conn.send(None)  # polite stop; worker exits its loop
            except (BrokenPipeError, OSError):
                pass
        self._teardown_process(kill=True)

    def stop(self) -> None:
        self._stopping.set()


class Supervisor:
    """The pool of worker agents plus the shared bounded job queue."""

    def __init__(self, handle, config, registry=None) -> None:
        self.handle = handle
        self.config = config
        self.registry = (
            registry if registry is not None else _metrics.get_registry()
        )
        self.jobs: "queue.Queue[Optional[Job]]" = queue.Queue(
            maxsize=config.queue_bound
        )
        self.agents: List[WorkerAgent] = [
            WorkerAgent(slot, self) for slot in range(config.workers)
        ]
        self._ready = threading.Event()
        self._inflight = 0
        self._inflight_lock = threading.Lock()
        self._idle = threading.Condition(self._inflight_lock)

    # -- job accounting (the service's drain barrier) -------------------
    def note_submitted(self) -> None:
        with self._inflight_lock:
            self._inflight += 1

    def note_done(self) -> None:
        with self._inflight_lock:
            self._inflight -= 1
            if self._inflight <= 0:
                self._idle.notify_all()

    @property
    def inflight(self) -> int:
        with self._inflight_lock:
            return self._inflight

    def wait_idle(self, timeout: float) -> bool:
        deadline = time.monotonic() + timeout
        with self._inflight_lock:
            while self._inflight > 0:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._idle.wait(remaining)
        return True

    # -- lifecycle ------------------------------------------------------
    def note_ready(self) -> None:
        self._ready.set()

    def start(self) -> None:
        for agent in self.agents:
            agent.start()

    def wait_ready(self, timeout: float) -> bool:
        """True once at least one worker answered its readiness ping."""
        return self._ready.wait(timeout)

    def stop(self, join_timeout: float = 10.0) -> None:
        for agent in self.agents:
            agent.stop()
        try:
            self.jobs.put_nowait(None)
        except queue.Full:  # agents notice the stop flag on their own
            pass
        for agent in self.agents:
            agent.join(timeout=join_timeout)

    # -- introspection --------------------------------------------------
    @property
    def alive_workers(self) -> int:
        return sum(
            1
            for agent in self.agents
            if agent.process is not None and agent.process.is_alive()
        )

    @property
    def restart_count(self) -> int:
        return sum(agent.restarts for agent in self.agents)

    def worker_metric_snapshots(self) -> List[Dict[str, Any]]:
        """Per-slot merged metrics: retired predecessors ⊕ live worker.

        The live worker's snapshot arrives piggybacked on every reply;
        the retired pile accumulates snapshots of workers this slot
        already lost (crash/hang/drain), so the merged view counts all
        work the slot ever did.
        """
        merged = []
        for agent in self.agents:
            if agent.retired_metrics is not None or agent.last_metrics is not None:
                merged.append(
                    _metrics.merge_snapshots(
                        agent.retired_metrics, agent.last_metrics
                    )
                )
        return merged

    def refresh_gauges(self) -> None:
        """Push liveness/age/RSS gauges into the registry (scrape-time)."""
        registry = self.registry
        now = time.monotonic()
        total_rss = 0.0
        for agent in self.agents:
            alive = agent.process is not None and agent.process.is_alive()
            registry.gauge("serve.worker.alive", slot=agent.slot).set(
                1.0 if alive else 0.0
            )
            age = (
                now - agent.spawned_at
                if alive and agent.spawned_at is not None
                else 0.0
            )
            registry.gauge("serve.worker.age_seconds", slot=agent.slot).set(
                round(age, 3)
            )
            if agent.last_rss_mb is not None:
                registry.gauge("serve.worker.peak_rss_mb", slot=agent.slot).set(
                    agent.last_rss_mb
                )
                total_rss += agent.last_rss_mb
        registry.gauge("serve.worker.pool_rss_mb").set(round(total_rss, 2))
        registry.gauge("serve.queue.depth").set(self.jobs.qsize())
        registry.gauge("serve.inflight").set(self.inflight)

    def stats(self) -> Dict[str, Any]:
        spawns = sum(1 for a in self.agents if a.process is not None)
        caches = [a.last_cache_stats for a in self.agents if a.last_cache_stats]
        cache_totals = {
            "hits": sum(c["hits"] for c in caches),
            "misses": sum(c["misses"] for c in caches),
            "size": sum(c["size"] for c in caches),
        }
        rss_by_slot = {
            str(a.slot): a.last_rss_mb
            for a in self.agents
            if a.last_rss_mb is not None
        }
        return {
            "workers": self.config.workers,
            "alive_workers": self.alive_workers,
            "spawned": spawns,
            "restarts": sum(a.restarts for a in self.agents),
            "hung_kills": sum(a.hung_kills for a in self.agents),
            "consecutive_failures": [a.consecutive_failures for a in self.agents],
            "queue_depth": self.jobs.qsize(),
            "inflight": self.inflight,
            "scenario_cache": cache_totals if caches else None,
            "peak_rss_mb": {
                "per_worker": rss_by_slot,
                "pool_total": round(sum(rss_by_slot.values()), 2),
            }
            if rss_by_slot
            else None,
        }
