"""Wire protocol of the topology query service: errors, requests, scenarios.

The service speaks JSON over HTTP (TCP or unix socket).  Everything a
client and a worker must agree on lives here, importable without
touching the server machinery:

* the **error taxonomy** — every failure a request can hit maps to one
  :class:`ServeError` code with a fixed HTTP status and a ``retryable``
  bit, so clients never have to pattern-match message strings:

  ============= ====== ========= =============================================
  code          status retryable meaning
  ============= ====== ========= =============================================
  bad-request   400    no        malformed query (unknown op/name, bad value)
  timeout       504    yes*      the per-request deadline elapsed
  overload      429    yes       bounded queue full — shed, come back later
  unavailable   503    yes       not ready / draining / worker lost mid-request
  internal      500    no        unexpected server-side failure (no traceback
                                 ever crosses the wire — message only)
  ============= ====== ========= =============================================

  (*timeouts are retryable because every query here is a read — retried
  work is wasted, never wrong; pair retries with an idempotency key so
  the server can replay a completed answer instead of recomputing.)

  **Degraded is not an error.**  A route between servers that a failure
  scenario disconnected, or a what-if that kills every server, is a
  *correct answer about a degraded topology*: it returns HTTP 200 with
  ``status: "degraded"`` and a ``degraded_reason``, *never* a 5xx.
  Treating degraded-mode answers as results (Couto et al.'s reliability
  framing) is what makes the service useful during the failures it
  exists to model.

* **request validation** — :func:`parse_query` normalises a decoded
  JSON body / query-string dict into the canonical request dict the
  workers execute, raising ``bad-request`` errors with one-line
  messages on anything malformed;

* **scenario canonicalisation** — :func:`scenario_key` reduces a
  what-if's dead sets to a hashable, order-insensitive key so the
  MaskedGraph LRU (:mod:`repro.serve.scenario`) caches ``{a,b}`` and
  ``{b,a}`` as one entry.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, Mapping, Optional, Sequence, Tuple

from repro.faults.plan import FailureScenario

#: bump on incompatible changes to the request/response JSON shapes.
PROTOCOL_VERSION = 1

#: operations the service understands (``ping`` is internal: readiness).
OPS = ("route", "distance", "whatif", "ping")

#: header carrying the client's idempotency key (any opaque string).
IDEMPOTENCY_HEADER = "X-Request-Key"

#: header carrying the client-minted trace id (see repro.obs.trace).
TRACE_HEADER = "X-Trace-Id"

#: ceiling on accepted trace-id length (ids are opaque; the cap only
#: stops a hostile header from bloating every span the request tags).
MAX_TRACE_ID_LEN = 64


def normalize_trace_id(value: Any) -> Optional[str]:
    """A safe trace id from an inbound header value, or ``None``.

    Accepts modest-length identifiers made of word characters, dots and
    dashes; anything else (missing, empty, oversized, control bytes) is
    dropped rather than rejected — tracing is best-effort metadata and
    must never fail a request.
    """
    if not isinstance(value, str):
        return None
    value = value.strip()
    if not value or len(value) > MAX_TRACE_ID_LEN:
        return None
    # ASCII-only on purpose: str.isalnum() admits any Unicode letter,
    # and these ids end up verbatim in log lines and metric labels.
    if not all(("a" <= c <= "z") or ("A" <= c <= "Z") or ("0" <= c <= "9")
               or c in "._-" for c in value):
        return None
    return value

#: hard ceiling on whatif pair sampling, so one request cannot pin a
#: worker arbitrarily long.
MAX_SAMPLE_PAIRS = 100_000

#: ceiling on the number of dead components one what-if may name.
MAX_SCENARIO_ITEMS = 100_000


class ServeError(Exception):
    """A structured service failure (see the module-level taxonomy)."""

    #: code -> (http status, retryable)
    TAXONOMY: Mapping[str, Tuple[int, bool]] = {
        "bad-request": (400, False),
        "timeout": (504, True),
        "overload": (429, True),
        "unavailable": (503, True),
        "internal": (500, False),
    }

    def __init__(
        self, code: str, message: str, retry_after_s: Optional[float] = None
    ) -> None:
        if code not in self.TAXONOMY:
            raise ValueError(f"unknown error code {code!r}")
        super().__init__(message)
        self.code = code
        self.message = message
        self.retry_after_s = retry_after_s

    @property
    def http_status(self) -> int:
        return self.TAXONOMY[self.code][0]

    @property
    def retryable(self) -> bool:
        return self.TAXONOMY[self.code][1]

    def to_payload(self) -> Dict[str, Any]:
        """The JSON body an erroring response carries."""
        error: Dict[str, Any] = {
            "code": self.code,
            "message": self.message,
            "retryable": self.retryable,
        }
        if self.retry_after_s is not None:
            error["retry_after_s"] = round(float(self.retry_after_s), 3)
        return {"error": error}

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "ServeError":
        error = payload.get("error") or {}
        code = error.get("code", "internal")
        if code not in cls.TAXONOMY:
            code = "internal"
        return cls(code, error.get("message", "unknown error"), error.get("retry_after_s"))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<ServeError {self.code}: {self.message}>"


def bad_request(message: str) -> ServeError:
    return ServeError("bad-request", message)


# ----------------------------------------------------------------------
# scenario canonicalisation
# ----------------------------------------------------------------------
ScenarioKey = Tuple[Tuple[str, ...], Tuple[str, ...], Tuple[Tuple[str, str], ...]]

EMPTY_SCENARIO_KEY: ScenarioKey = ((), (), ())


def _names(value: Any, field: str) -> Tuple[str, ...]:
    if value is None:
        return ()
    if isinstance(value, str) or not isinstance(value, (list, tuple)):
        raise bad_request(f"{field} must be a list of node names")
    out = []
    for item in value:
        if not isinstance(item, str) or not item:
            raise bad_request(f"{field} entries must be non-empty strings")
        out.append(item)
    return tuple(out)


def scenario_key(
    dead_servers: Any = None, dead_switches: Any = None, dead_links: Any = None
) -> ScenarioKey:
    """Canonical hashable key of a failure scenario.

    Deduplicates, sorts, and normalises each link pair to lexicographic
    order, so logically identical scenarios share one cache entry.
    """
    servers = tuple(sorted(set(_names(dead_servers, "dead_servers"))))
    switches = tuple(sorted(set(_names(dead_switches, "dead_switches"))))
    links = []
    if dead_links is not None:
        if isinstance(dead_links, str) or not isinstance(dead_links, (list, tuple)):
            raise bad_request("dead_links must be a list of [u, v] pairs")
        for pair in dead_links:
            if not isinstance(pair, (list, tuple)) or len(pair) != 2:
                raise bad_request("dead_links entries must be [u, v] pairs")
            u, v = pair
            if not isinstance(u, str) or not isinstance(v, str):
                raise bad_request("dead_links endpoints must be node names")
            links.append((u, v) if u <= v else (v, u))
    key = (servers, switches, tuple(sorted(set(links))))
    total = len(key[0]) + len(key[1]) + len(key[2])
    if total > MAX_SCENARIO_ITEMS:
        raise bad_request(
            f"scenario names {total} dead components "
            f"(limit {MAX_SCENARIO_ITEMS})"
        )
    return key


def scenario_from_key(key: ScenarioKey) -> FailureScenario:
    """The :class:`FailureScenario` a canonical key describes."""
    servers, switches, links = key
    return FailureScenario(
        dead_servers=servers, dead_switches=switches, dead_links=links
    )


# ----------------------------------------------------------------------
# request parsing / validation
# ----------------------------------------------------------------------
def _require_str(params: Mapping[str, Any], field: str) -> str:
    value = params.get(field)
    if not isinstance(value, str) or not value:
        raise bad_request(f"missing required parameter {field!r}")
    return value


def parse_query(op: str, params: Mapping[str, Any]) -> Dict[str, Any]:
    """Validate and normalise one query into the canonical request dict.

    The result is what travels to a worker: plain JSON-serialisable
    values only, every field already checked, so workers never raise
    validation errors (name resolution, which needs the graph, happens
    worker-side and reports unknown names as ``bad-request`` from
    there).
    """
    if op not in OPS:
        raise bad_request(f"unknown operation {op!r} (expected one of {', '.join(OPS)})")
    request: Dict[str, Any] = {"v": PROTOCOL_VERSION, "op": op}
    if op == "ping":
        return request
    if op in ("route", "distance"):
        request["src"] = _require_str(params, "src")
        request["dst"] = _require_str(params, "dst")
        avoid = params.get("avoid")
        if avoid is not None:
            request["avoid"] = list(_names(avoid, "avoid"))
    if op == "whatif" or params.get("scenario") is not None:
        raw = params.get("scenario") if op != "whatif" else params
        raw = raw if raw is not None else {}
        if not isinstance(raw, Mapping):
            raise bad_request("scenario must be an object")
        key = scenario_key(
            raw.get("dead_servers"), raw.get("dead_switches"), raw.get("dead_links")
        )
        request["scenario"] = [list(key[0]), list(key[1]), [list(p) for p in key[2]]]
    if op == "whatif":
        pairs = params.get("sample_pairs", 200)
        if not isinstance(pairs, int) or isinstance(pairs, bool):
            raise bad_request("sample_pairs must be an integer")
        if not 0 < pairs <= MAX_SAMPLE_PAIRS:
            raise bad_request(
                f"sample_pairs must be in 1..{MAX_SAMPLE_PAIRS}, got {pairs}"
            )
        request["sample_pairs"] = pairs
        seed = params.get("seed", 0)
        if not isinstance(seed, int) or isinstance(seed, bool):
            raise bad_request("seed must be an integer")
        request["seed"] = seed
    return request


def request_scenario_key(request: Mapping[str, Any]) -> ScenarioKey:
    """The canonical scenario key a parsed request carries (or empty)."""
    raw = request.get("scenario")
    if raw is None:
        return EMPTY_SCENARIO_KEY
    servers, switches, links = raw
    return (
        tuple(servers),
        tuple(switches),
        tuple((u, v) for u, v in links),
    )


def parse_deadline_ms(
    value: Any, default_s: float, max_s: float
) -> float:
    """A request's deadline budget in seconds, validated and clamped."""
    if value is None:
        return default_s
    try:
        ms = int(value)
    except (TypeError, ValueError):
        raise bad_request(f"deadline_ms must be an integer, got {value!r}")
    if ms <= 0:
        raise bad_request("deadline_ms must be positive")
    return min(ms / 1000.0, max_s)


# ----------------------------------------------------------------------
# JSON helpers (shared by server and client)
# ----------------------------------------------------------------------
def encode(payload: Mapping[str, Any]) -> bytes:
    return json.dumps(payload, separators=(",", ":"), sort_keys=True).encode("utf-8")


def decode(raw: bytes) -> Dict[str, Any]:
    try:
        payload = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise bad_request(f"body is not valid JSON: {error}")
    if not isinstance(payload, dict):
        raise bad_request("body must be a JSON object")
    return payload


def degraded(payload: Dict[str, Any], reason: str) -> Dict[str, Any]:
    """Mark a successful answer as degraded-mode (HTTP 200, flagged)."""
    payload["status"] = "degraded"
    payload["degraded_reason"] = reason
    return payload


def ok(payload: Dict[str, Any]) -> Dict[str, Any]:
    payload.setdefault("status", "ok")
    return payload
