"""``repro.serve``: the fault-tolerant always-on topology query service.

A long-running daemon (``repro serve KIND …``) loads a compiled graph
once and answers route / distance / what-if queries over HTTP (TCP or
unix socket), treating robustness as the product: structured error
taxonomy with per-request deadlines, a bounded queue with load-shedding
backpressure, a supervisor that restarts crashed or hung workers with
exponential backoff, graceful SIGTERM drain, and a retrying client.

See ``docs/OPERATIONS.md`` for running it and the layer map in
:mod:`repro.serve.server`.
"""

from repro.serve.client import ServeClient
from repro.serve.protocol import (
    IDEMPOTENCY_HEADER,
    TRACE_HEADER,
    ServeError,
    normalize_trace_id,
    scenario_key,
)
from repro.serve.scenario import ScenarioCache
from repro.serve.server import Daemon, HTTPFrontEnd, ServeConfig, TopologyService

__all__ = [
    "Daemon",
    "HTTPFrontEnd",
    "IDEMPOTENCY_HEADER",
    "ScenarioCache",
    "ServeClient",
    "ServeConfig",
    "ServeError",
    "TRACE_HEADER",
    "TopologyService",
    "normalize_trace_id",
    "scenario_key",
]
