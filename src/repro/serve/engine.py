"""Query execution: one parsed request against one compiled graph.

Pure functions shared by every execution context — inline handler
threads, worker processes, tests — so the transport layers stay free of
graph logic.  All three query families resolve through the same
machinery:

* ``route`` / ``distance`` — one frontier BFS over the CSR arrays
  (numpy-vectorised via :meth:`CompiledGraph.bfs_distances`) plus, for
  routes, a deterministic backtrack that always steps to the
  lowest-indexed predecessor — answers are stable across workers and
  restarts, which is what makes retried requests idempotent in the
  strong sense (same answer, not just same shape).
* ``whatif`` — a :class:`~repro.faults.mask.MaskedGraph` fetched from
  the scenario LRU; degraded topologies (dead racks, empty survivor
  sets) are *answers*, never errors.
* a ``scenario`` (or ``avoid`` list) attached to a route/distance query
  runs the BFS on the scenario's alive-only sweep view — same node-id
  space, so no index translation.

Results are plain JSON-serialisable dicts with ``status: ok|degraded``
(see :mod:`repro.serve.protocol`).
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional

from repro.obs import metrics as _metrics
from repro.obs import trace as _obs
from repro.serve import protocol
from repro.serve.protocol import bad_request, degraded, ok
from repro.serve.scenario import ScenarioCache


def resolve_server(graph, token: str) -> int:
    """Node id of a server named ``token`` (name or server ordinal)."""
    node = graph.index.get(token)
    if node is None:
        try:
            ordinal = int(token)
        except ValueError:
            raise bad_request(f"{token!r} is neither a node name nor a server index")
        servers = graph.server_indices
        if not 0 <= ordinal < len(servers):
            raise bad_request(
                f"server index {ordinal} out of range 0..{len(servers) - 1}"
            )
        return int(servers[ordinal])
    return int(node)


def _masked_for(request: Dict[str, Any], scenarios: ScenarioCache):
    """The MaskedGraph a request's scenario+avoid imply, or ``None``."""
    key = protocol.request_scenario_key(request)
    avoid = request.get("avoid")
    if avoid:
        merged = protocol.scenario_key(
            list(key[0]) + list(avoid), list(key[1]) + list(avoid), list(key[2])
        )
        # avoid-names may be servers or switches; listing each name in
        # both dead sets is harmless (MaskedGraph resolves by name) but
        # validation must not reject a server name as an unknown switch,
        # so merge *before* the cache validates.
        key = merged
    if key == protocol.EMPTY_SCENARIO_KEY:
        return None
    return scenarios.get(key)


def _path_nodes(view, dist, src: int, dst: int) -> List[int]:
    """Backtrack one shortest path from the BFS distance array.

    From ``dst`` step to the lowest-indexed neighbor one level closer;
    O(path_length x degree), deterministic.
    """
    offsets, neighbors = view.offsets, view.neighbors
    path = [dst]
    current = dst
    for level in range(int(dist[dst]), 0, -1):
        step = None
        for j in range(int(offsets[current]), int(offsets[current + 1])):
            candidate = int(neighbors[j])
            if int(dist[candidate]) == level - 1 and (step is None or candidate < step):
                step = candidate
        if step is None:  # pragma: no cover - BFS invariant
            raise ServeInvariantError("BFS backtrack found no predecessor")
        path.append(step)
        current = step
    path.reverse()
    return path


class ServeInvariantError(RuntimeError):
    """An internal inconsistency (converted to an ``internal`` error)."""


def _alive_guard(masked, node: int, token: str) -> Optional[str]:
    if masked is not None and not bool(masked.node_alive[node]):
        return f"{token} is dead under this scenario"
    return None


def _route_or_distance(
    graph, request: Dict[str, Any], scenarios: ScenarioCache, want_path: bool
) -> Dict[str, Any]:
    src = resolve_server(graph, request["src"])
    dst = resolve_server(graph, request["dst"])
    masked = _masked_for(request, scenarios)
    view = masked.sweep_view() if masked is not None else graph
    for node, token in ((src, request["src"]), (dst, request["dst"])):
        reason = _alive_guard(masked, node, token)
        if reason is not None:
            return degraded(
                {"src": request["src"], "dst": request["dst"], "reachable": False},
                reason,
            )
    t0 = time.perf_counter()
    with _obs.span("serve.bfs", op="route" if want_path else "distance"):
        dist = view.bfs_distances(src)
    _metrics.get_registry().histogram(
        "serve.bfs.seconds", op="route" if want_path else "distance"
    ).observe(time.perf_counter() - t0)
    hops = int(dist[dst])
    payload: Dict[str, Any] = {
        "src": request["src"],
        "dst": request["dst"],
        "reachable": hops >= 0,
    }
    if hops < 0:
        return degraded(payload, "no surviving path between src and dst")
    payload["link_hops"] = hops
    if want_path:
        names = graph.names
        payload["path"] = [names[i] for i in _path_nodes(view, dist, src, dst)]
    return ok(payload)


def _whatif(graph, request: Dict[str, Any], scenarios: ScenarioCache) -> Dict[str, Any]:
    key = protocol.request_scenario_key(request)
    masked = scenarios.get(key)
    t0 = time.perf_counter()
    with _obs.span("serve.whatif", components=sum(len(part) for part in key)):
        alive = masked.num_alive_servers()
        total = graph.num_servers
        payload: Dict[str, Any] = {
            "num_servers": total,
            "alive_servers": alive,
            "dead_servers": len(key[0]),
            "dead_switches": len(key[1]),
            "dead_links": len(key[2]),
        }
        if alive == 0:
            payload.update(
                largest_component_fraction=0.0,
                connection_ratio=0.0,
                cut_off_servers=0,
                cut_off_examples=[],
            )
            return degraded(payload, "no surviving servers")
        payload["largest_component_fraction"] = masked.largest_component_fraction()
        payload["connection_ratio"] = masked.connection_ratio_indexed(
            sample_pairs=request.get("sample_pairs", 200),
            seed=request.get("seed", 0),
        )
        count, examples = masked.cut_off_servers()
        payload["cut_off_servers"] = count
        payload["cut_off_examples"] = examples
    _metrics.get_registry().histogram("serve.whatif.seconds").observe(
        time.perf_counter() - t0
    )
    if payload["largest_component_fraction"] < 1.0:
        return degraded(payload, "surviving servers are partitioned")
    return ok(payload)


def execute(graph, request: Dict[str, Any], scenarios: ScenarioCache) -> Dict[str, Any]:
    """Run one canonical request dict; returns the response payload.

    Raises :class:`~repro.serve.protocol.ServeError` for request-level
    problems; anything else is a server bug the caller must convert to
    an ``internal`` error (without leaking a traceback on the wire).
    """
    op = request.get("op")
    if op == "ping":
        return ok({"pong": True, "num_servers": graph.num_servers})
    if op in ("route", "distance"):
        return _route_or_distance(graph, request, scenarios, want_path=op == "route")
    if op == "whatif":
        return _whatif(graph, request, scenarios)
    raise bad_request(f"unknown operation {op!r}")
