"""LRU cache of :class:`~repro.faults.mask.MaskedGraph` scenarios.

Building a MaskedGraph is cheap (a bitmap over the compiled CSR), but
its *derived* state — component labels, the alive-only sweep view — is
where a what-if's cost lives, and both are cached on the instance.
Keeping recently queried scenarios alive therefore turns repeat
what-ifs ("what breaks if rack 3 dies" asked by every dashboard
refresh) into dictionary lookups.

Keys are the canonical tuples of :func:`repro.serve.protocol
.scenario_key`, so logically identical scenarios share an entry
regardless of the order the client listed the dead components in.

Thread-safe: the inline (``workers=0``) service executes queries from
HTTP handler threads concurrently.  Hits and misses feed both the
instance counters (surfaced by ``/stats``) and the process tracer
(``serve.scenario.cache_hit`` / ``.cache_miss`` — ``repro obs report``
derives the hit rate automatically).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Dict, Optional, Tuple

from repro.faults.mask import MaskedGraph
from repro.obs import metrics as _metrics
from repro.obs import trace as _obs
from repro.serve.protocol import ScenarioKey, bad_request, scenario_from_key

#: default number of scenarios kept alive.
DEFAULT_CAPACITY = 64


class ScenarioCache:
    """Bounded, thread-safe LRU of scenario-masked graphs."""

    def __init__(self, graph, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.graph = graph
        self.capacity = capacity
        self._entries: "OrderedDict[ScenarioKey, MaskedGraph]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: ScenarioKey) -> MaskedGraph:
        """The masked graph for ``key``, built on miss, LRU-refreshed on hit.

        Unknown node names in the scenario raise ``bad-request`` — a
        typo'd rack name must surface to the client, not silently mask
        nothing (the legacy sweep path is lenient; a query service must
        not be).
        """
        with self._lock:
            masked = self._entries.get(key)
            if masked is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                _obs.counter("serve.scenario.cache_hit")
                _metrics.get_registry().counter("serve.scenario.cache_hit").inc()
                return masked
        # Build outside the lock: construction touches the whole node
        # bitmap and may be slow on big graphs; concurrent misses on the
        # same key then race benignly (last insert wins, same content).
        self._validate_names(key)
        masked = MaskedGraph(self.graph, scenario_from_key(key))
        registry = _metrics.get_registry()
        with self._lock:
            self.misses += 1
            _obs.counter("serve.scenario.cache_miss")
            registry.counter("serve.scenario.cache_miss").inc()
            self._entries[key] = masked
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
                _obs.counter("serve.scenario.cache_evict")
                registry.counter("serve.scenario.cache_evict").inc()
        return masked

    def _validate_names(self, key: ScenarioKey) -> None:
        index = self.graph.index
        unknown = [
            name
            for group in (key[0], key[1])
            for name in group
            if index.get(name) is None
        ]
        for u, v in key[2]:
            unknown.extend(n for n in (u, v) if index.get(n) is None)
        if unknown:
            shown = ", ".join(sorted(set(unknown))[:5])
            raise bad_request(f"unknown node name(s) in scenario: {shown}")

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "size": len(self._entries),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
