"""Shared-memory graph hand-off: round-trips, pickling, release.

A :class:`~repro.topology.shm.GraphHandle` must (a) reconstruct an
equivalent graph after a pickle round-trip — that is the worker path —
(b) reference memmap-backed arrays by filename instead of copying them
into the segment, and (c) release its segment exactly once, after which
materialization fails instead of silently reading freed memory.
"""

from __future__ import annotations

import os
import pickle
import signal
import subprocess
import sys
import time

import pytest

from repro.core import AbcccSpec
from repro.metrics.engine import sweep_graph_distance_stats
from repro.topology import shm
from repro.topology.compiled import HAVE_NUMPY, CSRGraphView, compile_graph
from repro.topology.fastbuild import FastCompiledGraph


def _graph():
    return compile_graph(AbcccSpec(3, 1, 2).build())


def _assert_same_csr(got, want):
    assert got.num_nodes == want.num_nodes
    assert list(got.offsets) == list(want.offsets)
    assert list(got.neighbors) == list(want.neighbors)
    assert list(got.server_indices) == list(want.server_indices)


class TestRoundTrips:
    def test_view_roundtrip(self):
        graph = _graph()
        view = CSRGraphView.of(graph)
        handle = shm.export_graph(view)
        try:
            got = handle.materialize()
            assert isinstance(got, CSRGraphView)
            _assert_same_csr(got, view)
        finally:
            handle.release()

    def test_compiled_roundtrip_keeps_names(self):
        graph = _graph()
        handle = shm.export_graph(graph)
        try:
            got = handle.materialize()
            assert type(got) is type(graph)
            _assert_same_csr(got, graph)
            assert tuple(got.names) == tuple(graph.names)
            assert got.index == graph.index
        finally:
            handle.release()

    @pytest.mark.skipif(not HAVE_NUMPY, reason="fastbuild requires numpy")
    def test_fast_roundtrip(self):
        graph = AbcccSpec(4, 2, 2).compiled()
        assert isinstance(graph, FastCompiledGraph)
        handle = shm.export_graph(graph)
        try:
            got = handle.materialize()
            assert isinstance(got, FastCompiledGraph)
            _assert_same_csr(got, graph)
        finally:
            handle.release()

    def test_pickled_handle_materializes(self):
        # The worker path: the handle crosses a process boundary as a
        # tiny pickle; the arrays do not ride along.
        graph = _graph()
        view = CSRGraphView.of(graph)
        handle = shm.export_graph(view)
        try:
            blob = pickle.dumps(handle)
            if HAVE_NUMPY and handle.segment is not None:
                assert len(blob) < 2_000
                assert len(blob) < view.neighbors.nbytes
            clone = pickle.loads(blob)
            got = clone.materialize()
            _assert_same_csr(got, view)
            stats = sweep_graph_distance_stats(got)
            assert stats.pairs > 0
        finally:
            handle.release()

    @pytest.mark.skipif(not HAVE_NUMPY, reason="memmap requires numpy")
    def test_memmap_arrays_referenced_by_file(self, tmp_path):
        import numpy as np

        graph = AbcccSpec(4, 2, 2).compiled(memmap_dir=str(tmp_path))
        assert any(isinstance(a, np.memmap) for a in (graph.offsets, graph.neighbors))
        handle = shm.export_graph(graph)
        try:
            assert any(ref[0] == "memmap" for ref in handle.refs)
            got = pickle.loads(pickle.dumps(handle)).materialize()
            _assert_same_csr(got, graph)
        finally:
            handle.release()


class TestRelease:
    def test_release_is_idempotent_and_tracked(self):
        handle = shm.export_graph(CSRGraphView.of(_graph()))
        if handle.segment is not None:
            assert handle.segment in [name for name in shm.owned_segments()]
        handle.release()
        assert shm.owned_segments() == ()
        assert handle.released
        handle.release()  # second call is a no-op

    @pytest.mark.skipif(not HAVE_NUMPY, reason="segment only used with numpy")
    def test_materialize_after_release_fails(self):
        handle = shm.export_graph(CSRGraphView.of(_graph()))
        if handle.segment is None:
            pytest.skip("no shared memory on this platform")
        handle.release()
        clone = pickle.loads(pickle.dumps(handle))
        with pytest.raises((FileNotFoundError, ValueError, OSError)):
            clone.materialize()

    def test_release_owned_drains_registry(self):
        handle = shm.export_graph(CSRGraphView.of(_graph()))
        if handle.segment is None:
            pytest.skip("no shared memory on this platform")
        released = shm.release_owned()
        assert released == 1
        assert shm.owned_segments() == ()
        assert shm.release_owned() == 0  # idempotent
        handle.release()  # finding nothing left is fine

    @pytest.mark.skipif(not HAVE_NUMPY, reason="read-only views need numpy")
    def test_materialized_arrays_are_read_only(self):
        import numpy as np

        handle = shm.export_graph(CSRGraphView.of(_graph()))
        if handle.segment is None:
            pytest.skip("no shared memory on this platform")
        try:
            got = pickle.loads(pickle.dumps(handle)).materialize()
            arr = np.asarray(got.neighbors)
            with pytest.raises((ValueError, RuntimeError)):
                arr[0] = 0
        finally:
            handle.release()


_EXPORT_SCRIPT = """\
import os, sys, time
from repro.core import AbcccSpec
from repro.topology import shm
from repro.topology.compiled import CSRGraphView, compile_graph

handle = shm.export_graph(CSRGraphView.of(compile_graph(AbcccSpec(3, 1, 2).build())))
if handle.segment is None:
    print("NOSEG", flush=True)
    sys.exit(0)
print(handle.segment, flush=True)
MODE = sys.argv[1]
if MODE == "exit":
    sys.exit(3)  # abnormal exit without release(): atexit must clean up
elif MODE == "wait":  # parent delivers SIGTERM; the handler must clean up
    time.sleep(120)
"""


@pytest.mark.skipif(not HAVE_NUMPY, reason="segments only created with numpy")
class TestAbnormalExitCleanup:
    """A crashed or killed owner must not leak its shm segment."""

    def _segment_exists(self, name: str) -> bool:
        return os.path.exists(f"/dev/shm/{name.lstrip('/')}")

    def test_sys_exit_without_release_leaves_no_segment(self, tmp_path):
        script = tmp_path / "owner.py"
        script.write_text(_EXPORT_SCRIPT)
        proc = subprocess.run(
            [sys.executable, str(script), "exit"],
            capture_output=True,
            text=True,
            timeout=120,
            env={**os.environ, "PYTHONPATH": os.path.abspath("src")},
        )
        name = proc.stdout.strip()
        if name == "NOSEG":
            pytest.skip("no shared memory on this platform")
        assert proc.returncode == 3, proc.stderr
        assert name.startswith("psm_")
        assert not self._segment_exists(name), f"leaked {name}"

    def test_sigterm_without_release_leaves_no_segment(self, tmp_path):
        script = tmp_path / "owner.py"
        script.write_text(_EXPORT_SCRIPT)
        proc = subprocess.Popen(
            [sys.executable, str(script), "wait"],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env={**os.environ, "PYTHONPATH": os.path.abspath("src")},
        )
        try:
            name = proc.stdout.readline().strip()
            if name == "NOSEG":
                proc.kill()
                pytest.skip("no shared memory on this platform")
            assert self._segment_exists(name), "owner never created the segment"
            proc.send_signal(signal.SIGTERM)
            proc.wait(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
            proc.communicate(timeout=30)
        # exit status still reports death-by-SIGTERM (handler re-raises)
        assert proc.returncode == -signal.SIGTERM
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline and self._segment_exists(name):
            time.sleep(0.05)
        assert not self._segment_exists(name), f"leaked {name}"
