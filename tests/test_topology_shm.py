"""Shared-memory graph hand-off: round-trips, pickling, release.

A :class:`~repro.topology.shm.GraphHandle` must (a) reconstruct an
equivalent graph after a pickle round-trip — that is the worker path —
(b) reference memmap-backed arrays by filename instead of copying them
into the segment, and (c) release its segment exactly once, after which
materialization fails instead of silently reading freed memory.
"""

from __future__ import annotations

import pickle

import pytest

from repro.core import AbcccSpec
from repro.metrics.engine import sweep_graph_distance_stats
from repro.topology import shm
from repro.topology.compiled import HAVE_NUMPY, CSRGraphView, compile_graph
from repro.topology.fastbuild import FastCompiledGraph


def _graph():
    return compile_graph(AbcccSpec(3, 1, 2).build())


def _assert_same_csr(got, want):
    assert got.num_nodes == want.num_nodes
    assert list(got.offsets) == list(want.offsets)
    assert list(got.neighbors) == list(want.neighbors)
    assert list(got.server_indices) == list(want.server_indices)


class TestRoundTrips:
    def test_view_roundtrip(self):
        graph = _graph()
        view = CSRGraphView.of(graph)
        handle = shm.export_graph(view)
        try:
            got = handle.materialize()
            assert isinstance(got, CSRGraphView)
            _assert_same_csr(got, view)
        finally:
            handle.release()

    def test_compiled_roundtrip_keeps_names(self):
        graph = _graph()
        handle = shm.export_graph(graph)
        try:
            got = handle.materialize()
            assert type(got) is type(graph)
            _assert_same_csr(got, graph)
            assert tuple(got.names) == tuple(graph.names)
            assert got.index == graph.index
        finally:
            handle.release()

    @pytest.mark.skipif(not HAVE_NUMPY, reason="fastbuild requires numpy")
    def test_fast_roundtrip(self):
        graph = AbcccSpec(4, 2, 2).compiled()
        assert isinstance(graph, FastCompiledGraph)
        handle = shm.export_graph(graph)
        try:
            got = handle.materialize()
            assert isinstance(got, FastCompiledGraph)
            _assert_same_csr(got, graph)
        finally:
            handle.release()

    def test_pickled_handle_materializes(self):
        # The worker path: the handle crosses a process boundary as a
        # tiny pickle; the arrays do not ride along.
        graph = _graph()
        view = CSRGraphView.of(graph)
        handle = shm.export_graph(view)
        try:
            blob = pickle.dumps(handle)
            if HAVE_NUMPY and handle.segment is not None:
                assert len(blob) < 2_000
                assert len(blob) < view.neighbors.nbytes
            clone = pickle.loads(blob)
            got = clone.materialize()
            _assert_same_csr(got, view)
            stats = sweep_graph_distance_stats(got)
            assert stats.pairs > 0
        finally:
            handle.release()

    @pytest.mark.skipif(not HAVE_NUMPY, reason="memmap requires numpy")
    def test_memmap_arrays_referenced_by_file(self, tmp_path):
        import numpy as np

        graph = AbcccSpec(4, 2, 2).compiled(memmap_dir=str(tmp_path))
        assert any(isinstance(a, np.memmap) for a in (graph.offsets, graph.neighbors))
        handle = shm.export_graph(graph)
        try:
            assert any(ref[0] == "memmap" for ref in handle.refs)
            got = pickle.loads(pickle.dumps(handle)).materialize()
            _assert_same_csr(got, graph)
        finally:
            handle.release()


class TestRelease:
    def test_release_is_idempotent_and_tracked(self):
        handle = shm.export_graph(CSRGraphView.of(_graph()))
        if handle.segment is not None:
            assert handle.segment in [name for name in shm.owned_segments()]
        handle.release()
        assert shm.owned_segments() == ()
        assert handle.released
        handle.release()  # second call is a no-op

    @pytest.mark.skipif(not HAVE_NUMPY, reason="segment only used with numpy")
    def test_materialize_after_release_fails(self):
        handle = shm.export_graph(CSRGraphView.of(_graph()))
        if handle.segment is None:
            pytest.skip("no shared memory on this platform")
        handle.release()
        clone = pickle.loads(pickle.dumps(handle))
        with pytest.raises((FileNotFoundError, ValueError, OSError)):
            clone.materialize()

    @pytest.mark.skipif(not HAVE_NUMPY, reason="read-only views need numpy")
    def test_materialized_arrays_are_read_only(self):
        import numpy as np

        handle = shm.export_graph(CSRGraphView.of(_graph()))
        if handle.segment is None:
            pytest.skip("no shared memory on this platform")
        try:
            got = pickle.loads(pickle.dumps(handle)).materialize()
            arr = np.asarray(got.neighbors)
            with pytest.raises((ValueError, RuntimeError)):
                arr[0] = 0
        finally:
            handle.release()
