"""Cross-module integration tests: full user workflows end to end."""

import random

import pytest

import repro
from repro import AbcccSpec, available_topologies, create_topology
from repro.metrics.bottleneck import aggregate_bottleneck_throughput
from repro.metrics.connectivity import apply_failures, draw_failures
from repro.routing.table import ForwardingTable
from repro.sim.flow import max_min_allocation, route_all
from repro.sim.packet import PacketSimulator
from repro.sim.traffic import permutation_traffic, shuffle_traffic
from repro.topology.validate import validate_network


class TestQuickstartWorkflow:
    """The README quickstart, as a test."""

    def test_build_route_simulate(self):
        spec = AbcccSpec(n=3, k=1, s=2)
        net = spec.build()
        validate_network(net, spec.link_policy())

        route = spec.route(net, net.servers[0], net.servers[-1])
        route.validate(net)

        flows = permutation_traffic(net.servers, seed=1)
        routes = route_all(net, flows, spec.route)
        allocation = max_min_allocation(net, flows, routes)
        assert allocation.min_rate > 0
        assert allocation.num_flows == net.num_servers


class TestEveryRegisteredTopologyEndToEnd:
    """Each registered kind: create -> build -> validate -> route -> flows."""

    CONFIGS = {
        "abccc": {"n": 3, "k": 1, "s": 2},
        "bccc": {"n": 3, "k": 1},
        "bcube": {"n": 3, "k": 1},
        "dcell": {"n": 3, "k": 1},
        "fattree": {"p": 4},
        "ficonn": {"n": 4, "k": 1},
        "hypercube": {"m": 4},
        "jellyfish": {"switches": 8, "ports": 6, "servers_per_switch": 2, "seed": 1},
        "torus3d": {"a": 3, "b": 3, "c": 3},
        "tree": {"n": 8, "racks": 4, "oversub": 3},
    }

    def test_configs_cover_registry(self):
        assert set(self.CONFIGS) == set(available_topologies())

    @pytest.mark.parametrize("kind", sorted(CONFIGS))
    def test_full_pipeline(self, kind):
        spec = create_topology(kind, **self.CONFIGS[kind])
        net = spec.build()
        validate_network(net, spec.link_policy())

        rng = random.Random(0)
        for _ in range(5):
            src, dst = rng.sample(net.servers, 2)
            route = spec.route(net, src, dst)
            route.validate(net)
            assert (route.source, route.destination) == (src, dst)

        flows = permutation_traffic(net.servers, seed=2)
        routes = route_all(net, flows, spec.route)
        allocation = max_min_allocation(net, flows, routes)
        assert allocation.min_rate > 0
        assert aggregate_bottleneck_throughput(net, routes.values()) > 0


class TestFailureWorkflow:
    def test_fault_injection_and_reroute(self):
        spec = AbcccSpec(3, 2, 2)
        net = spec.build()
        scenario = draw_failures(net, switch_fraction=0.1, seed=5)
        alive = apply_failures(net, scenario)

        from repro.core import fault_tolerant_route
        from repro.routing.base import RoutingError

        rng = random.Random(6)
        successes = 0
        for _ in range(30):
            src, dst = rng.sample(alive.servers, 2)
            try:
                result = fault_tolerant_route(spec.abccc, alive, src, dst, seed=1)
            except RoutingError:
                continue
            result.route.validate(alive)
            successes += 1
        assert successes > 20  # 10% switch failures: most pairs reroute


class TestForwardingPlusPacketSim:
    """Install digit-correction routes in forwarding tables, then push
    packets along table-forwarded paths — the deployment-shaped pipeline."""

    def test_table_driven_packets(self):
        spec = AbcccSpec(3, 1, 2)
        net = spec.build()
        flows = shuffle_traffic(net.servers, num_mappers=3, num_reducers=3, seed=3)
        native = route_all(net, flows, spec.route)
        table = ForwardingTable.from_routes(native.values())
        forwarded = {
            f.flow_id: table.forward(net, f.src, f.dst) for f in flows
        }
        sim = PacketSimulator(net)
        result = sim.run(flows, forwarded, packets_per_flow=10, seed=4)
        assert result.delivery_ratio > 0.9


class TestPackageSurface:
    def test_version(self):
        assert repro.__version__

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None
