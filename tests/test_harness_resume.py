"""Crash-safety of the experiment harness: timeouts, SIGKILL, resume.

Two layers are covered:

* in-process — a wall-clock timeout interrupts a throttled F8 run, the
  trial journal survives with the completed trials, and ``resume=True``
  finishes the run without recomputing them;
* subprocess smoke — ``repro run F8 --quick`` is SIGKILLed mid-sweep,
  then ``repro run F8 --quick --resume`` completes from the journal
  (asserted by counting which trial keys the resumed run recomputes).

Both use the ``REPRO_FAULTS_TRIAL_SLEEP`` throttle so quick-mode runs
are slow enough to interrupt deterministically.
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.experiments.harness import (
    ExperimentTimeout,
    journal_path,
    run_experiment,
)

REPO_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")


def _journal_keys(path):
    keys = []
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                try:
                    keys.append(json.loads(line)["key"])
                except (ValueError, KeyError):
                    continue
    return keys


class TestTimeoutAndResume:
    def test_timeout_leaves_resumable_journal(self, tmp_path, monkeypatch):
        out = str(tmp_path)
        monkeypatch.setenv("REPRO_FAULTS_TRIAL_SLEEP", "0.05")
        with pytest.raises(ExperimentTimeout):
            run_experiment(
                "F8", quick=True, out_dir=out, verbose=False, timeout=0.4
            )
        path = journal_path(out, "F8")
        assert os.path.exists(path), "journal must survive a timeout"
        completed = _journal_keys(path)
        assert completed, "the throttled run must have journaled some trials"

        # Resume without the throttle: completes, recomputes nothing done.
        monkeypatch.delenv("REPRO_FAULTS_TRIAL_SLEEP")
        tables = run_experiment(
            "F8", quick=True, out_dir=out, verbose=False, resume=True
        )
        assert tables
        assert not os.path.exists(path), "journal is deleted on success"

    def test_resumed_run_matches_uninterrupted(self, tmp_path, monkeypatch):
        out_a = str(tmp_path / "interrupted")
        out_b = str(tmp_path / "straight")
        monkeypatch.setenv("REPRO_FAULTS_TRIAL_SLEEP", "0.2")
        with pytest.raises(ExperimentTimeout):
            run_experiment(
                "E7", quick=True, out_dir=out_a, verbose=False, timeout=0.3
            )
        monkeypatch.delenv("REPRO_FAULTS_TRIAL_SLEEP")
        resumed = run_experiment(
            "E7", quick=True, out_dir=out_a, verbose=False, resume=True
        )
        straight = run_experiment("E7", quick=True, out_dir=out_b, verbose=False)
        assert [t.rows for t in resumed] == [t.rows for t in straight]

    def test_without_resume_stale_journal_discarded(self, tmp_path):
        out = str(tmp_path)
        path = journal_path(out, "F8")
        os.makedirs(out, exist_ok=True)
        with open(path, "w") as handle:
            handle.write('{"key": "stale", "value": {}}\n')
        run_experiment("F8", quick=True, out_dir=out, verbose=False)
        assert not os.path.exists(path)


@pytest.mark.skipif(not hasattr(signal, "SIGKILL"), reason="POSIX only")
class TestSigkillSmoke:
    def test_sigkill_then_resume_completes_from_journal(self, tmp_path):
        out = str(tmp_path)
        env = dict(
            os.environ,
            PYTHONPATH=REPO_SRC,
            REPRO_FAULTS_TRIAL_SLEEP="0.05",
        )
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "run", "F8", "--quick", "--out", out],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        path = journal_path(out, "F8")
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            if os.path.exists(path) and len(_journal_keys(path)) >= 3:
                break
            if proc.poll() is not None:
                pytest.fail("throttled run finished before it could be killed")
            time.sleep(0.02)
        else:
            proc.kill()
            pytest.fail("journal never appeared — throttle hook broken?")
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=30)

        completed = _journal_keys(path)
        assert completed, "completed trials must survive SIGKILL"

        env.pop("REPRO_FAULTS_TRIAL_SLEEP")
        env["REPRO_FAULTS_TRIAL_TRACE"] = str(tmp_path / "trace.log")
        result = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "run",
                "F8",
                "--quick",
                "--resume",
                "--out",
                out,
            ],
            env=env,
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert result.returncode == 0, result.stderr
        assert "resuming" in result.stderr  # progress goes to the obs logger
        assert not os.path.exists(path), "journal is deleted after success"
        # No lost work: the resumed process replayed every journaled trial
        # rather than recomputing it.
        trace = (tmp_path / "trace.log").read_text().splitlines()
        recomputed = set(trace)
        assert not (set(completed) & recomputed), (
            "resume recomputed trials that were already journaled"
        )
