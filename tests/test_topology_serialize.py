"""Serialization round-trips and exports."""

import json

import pytest

from repro.baselines import BcubeSpec, FatTreeSpec
from repro.core import AbcccSpec
from repro.topology.serialize import (
    from_json_dict,
    load_json,
    save_graphml,
    save_json,
    to_dot,
    to_json_dict,
)


class TestJsonRoundTrip:
    @pytest.mark.parametrize(
        "spec",
        [AbcccSpec(3, 1, 2), BcubeSpec(3, 1), FatTreeSpec(4)],
        ids=lambda s: s.kind,
    )
    def test_structure_preserved(self, spec):
        net = spec.build()
        loaded = from_json_dict(to_json_dict(net))
        assert loaded.name == net.name
        assert set(loaded.node_names()) == set(net.node_names())
        assert {l.key for l in loaded.links()} == {l.key for l in net.links()}
        for name in net.node_names():
            assert loaded.node(name).kind == net.node(name).kind
            assert loaded.node(name).ports == net.node(name).ports
            assert loaded.node(name).role == net.node(name).role

    def test_capacities_preserved(self, tiny_net):
        tiny_net.remove_link("a", "sw")
        tiny_net.add_link("a", "sw", capacity=7.5, length=3.0)
        loaded = from_json_dict(to_json_dict(tiny_net))
        link = loaded.link("a", "sw")
        assert link.capacity == 7.5
        assert link.length == 3.0

    def test_tuple_addresses_roundtrip(self):
        net = BcubeSpec(2, 1).build()
        loaded = from_json_dict(to_json_dict(net))
        name = net.servers[0]
        assert loaded.node(name).address == net.node(name).address

    def test_file_roundtrip(self, tmp_path):
        net = AbcccSpec(2, 1, 2).build()
        path = save_json(net, str(tmp_path / "net.json"))
        loaded = load_json(path)
        assert loaded.num_links == net.num_links

    def test_meta_scalars_survive(self):
        net = BcubeSpec(2, 1).build()
        data = to_json_dict(net)
        assert data["meta"]["n"] == 2
        loaded = from_json_dict(data)
        assert loaded.meta["k"] == 1

    def test_version_check(self):
        with pytest.raises(ValueError, match="format"):
            from_json_dict({"format": 99, "nodes": [], "links": []})

    def test_json_serialisable(self):
        net = AbcccSpec(2, 1, 2).build()
        json.dumps(to_json_dict(net))  # must not raise

    def test_loaded_abccc_routes_identically(self):
        """A loaded network supports the address-based router unchanged."""
        spec = AbcccSpec(3, 1, 2)
        net = spec.build()
        loaded = from_json_dict(to_json_dict(net))
        route = spec.route(loaded, loaded.servers[0], loaded.servers[-1])
        route.validate(loaded)


class TestExports:
    def test_graphml(self, tmp_path):
        import networkx as nx

        net = AbcccSpec(2, 1, 2).build()
        path = save_graphml(net, str(tmp_path / "net.graphml"))
        graph = nx.read_graphml(path)
        assert graph.number_of_nodes() == len(net)
        assert graph.number_of_edges() == net.num_links

    def test_dot_contains_nodes_and_edges(self, tiny_net):
        dot = to_dot(tiny_net)
        assert '"a" [shape=box];' in dot
        assert '"sw" [shape=ellipse];' in dot
        assert '"a" -- "sw";' in dot or '"sw" -- "a";' in dot

    def test_dot_size_guard(self):
        net = AbcccSpec(3, 1, 2).build()
        with pytest.raises(ValueError, match="max_nodes"):
            to_dot(net, max_nodes=5)
