"""TopologyService + HTTP front end tests (inline execution, no workers).

Worker-pool behavior (crash recovery, shedding under load, SIGTERM
drain) lives in ``test_serve_chaos.py``; these tests pin down the
request/response contract itself, which both execution modes share.
"""

import threading

import pytest

from repro.core import AbcccSpec
from repro.serve import (
    HTTPFrontEnd,
    ServeClient,
    ServeConfig,
    ServeError,
    TopologyService,
)


@pytest.fixture(scope="module")
def graph():
    return AbcccSpec(3, 1, 2).compiled()


@pytest.fixture()
def service(graph):
    svc = TopologyService(graph, ServeConfig(workers=0), label="abccc-test")
    svc.start()
    yield svc
    svc.stop()


@pytest.fixture()
def client(service):
    front = HTTPFrontEnd(service, port=0)
    thread = threading.Thread(target=front.serve_forever, daemon=True)
    thread.start()
    with ServeClient(port=front.port, retries=1, backoff_base_s=0.01, seed=7) as c:
        yield c
    front.shutdown()
    front.close()
    thread.join(timeout=5)


class TestLifecycle:
    def test_submit_before_start_is_unavailable(self, graph):
        svc = TopologyService(graph, ServeConfig(workers=0))
        with pytest.raises(ServeError) as exc:
            svc.submit("ping", {})
        assert exc.value.code == "unavailable"
        assert exc.value.retryable

    def test_draining_sheds_new_requests(self, service):
        service.begin_drain()
        with pytest.raises(ServeError) as exc:
            service.submit("ping", {})
        assert exc.value.code == "unavailable"
        assert exc.value.retry_after_s is not None
        assert service.state()["status"] == "draining"

    def test_drain_and_stop_is_idempotent(self, service):
        assert service.drain_and_stop() is True
        service.stop()
        assert service.state()["status"] == "stopped"

    def test_inline_mode_is_immediately_ready(self, service):
        assert service.ready
        assert service.wait_ready(0)
        assert service.state()["workers"]["mode"] == "inline"


class TestSubmit:
    def test_route(self, service):
        result = service.submit("route", {"src": "0", "dst": "5"})
        assert result["status"] == "ok"
        assert result["link_hops"] >= 1

    def test_bad_request_not_counted_as_success(self, service):
        with pytest.raises(ServeError) as exc:
            service.submit("route", {"src": "0"})
        assert exc.value.code == "bad-request"
        assert not exc.value.retryable

    def test_idempotency_replay(self, service):
        first = service.submit("route", {"src": "0", "dst": "5"}, idempotency_key="k1")
        again = service.submit("route", {"src": "0", "dst": "5"}, idempotency_key="k1")
        assert again == first
        assert service.stats()["counters"]["idempotent_replays"] == 1

    def test_idempotency_cache_bounded(self, graph):
        svc = TopologyService(graph, ServeConfig(workers=0, idempotency_cache=2))
        svc.start()
        try:
            for i in range(4):
                svc.submit("ping", {}, idempotency_key=f"k{i}")
            assert len(svc._idem) == 2
        finally:
            svc.stop()

    def test_blown_inline_deadline_reports_timeout(self, service):
        with pytest.raises(ServeError) as exc:
            service.submit("whatif", {"sample_pairs": 10}, deadline_s=0.0)
        assert exc.value.code == "timeout"
        assert exc.value.retryable


class TestHTTP:
    def test_healthz_always_answers(self, client):
        state = client.health()
        assert state["status"] == "serving"
        assert state["graph"]["servers"] == 18

    def test_readyz(self, client):
        assert client.ready() is True

    def test_route_post(self, client):
        result = client.route("0", "17")
        assert result["status"] == "ok"
        assert result["path"]

    def test_route_get_with_query_params(self, client, service):
        path = client.route("0", "17")["path"]
        raw = client.request(
            "GET", f"/route?src=0&dst=17&avoid={path[1]}"
        )
        assert path[1] not in raw["path"]

    def test_whatif_degraded_mass_failure(self, client, graph):
        everyone = [graph.names[i] for i in graph.server_indices]
        result = client.whatif(dead_servers=everyone, sample_pairs=10)
        assert result["status"] == "degraded"
        assert result["alive_servers"] == 0

    def test_bad_request_is_400_not_traceback(self, client):
        with pytest.raises(ServeError) as exc:
            client.route("0", "no-such-server")
        assert exc.value.code == "bad-request"
        assert client.last_attempts == 1  # non-retryable: no retry burned

    def test_unknown_endpoint_404(self, client):
        with pytest.raises(ServeError) as exc:
            client.request("GET", "/nope")
        assert exc.value.code == "bad-request"

    def test_malformed_body_is_400(self, client):
        conn = client._connection()
        conn.request(
            "POST",
            "/route",
            body=b"{not json",
            headers={"Content-Type": "application/json"},
        )
        response = conn.getresponse()
        body = response.read()
        assert response.status == 400
        assert b"Traceback" not in body

    def test_stats_exposes_counters(self, client):
        client.route("0", "5")
        stats = client.stats()
        assert stats["counters"]["requests"] >= 1
        assert "requests.route" in stats["counters"]


class TestUnixSocket:
    def test_round_trip_over_unix_socket(self, service, tmp_path):
        sock = str(tmp_path / "serve.sock")
        front = HTTPFrontEnd(service, unix=sock)
        thread = threading.Thread(target=front.serve_forever, daemon=True)
        thread.start()
        try:
            assert front.endpoint == f"unix:{sock}"
            with ServeClient(unix=sock, retries=1, seed=3) as c:
                assert c.health()["status"] == "serving"
                assert c.distance("0", "9")["reachable"] is True
        finally:
            front.shutdown()
            front.close()
            thread.join(timeout=5)
        assert not (tmp_path / "serve.sock").exists()


class TestClientRetry:
    def test_retry_after_hint_wins_over_backoff(self):
        c = ServeClient(port=1, retries=0, backoff_base_s=0.01, jitter=0.0, seed=0)
        assert c._sleep_for(0, hint=0.5) == 0.5
        assert c._sleep_for(0, hint=None) == 0.01

    def test_backoff_is_exponential_and_capped(self):
        c = ServeClient(
            port=1, retries=0, backoff_base_s=0.1, backoff_max_s=0.3, jitter=0.0
        )
        delays = [c._sleep_for(attempt, None) for attempt in range(4)]
        assert delays == [0.1, 0.2, 0.3, 0.3]

    def test_connection_refused_retries_then_unavailable(self):
        # Nothing listens on this port: transport failures are retried
        # and surface as `unavailable` when exhausted.
        c = ServeClient(
            port=1, retries=2, backoff_base_s=0.001, backoff_max_s=0.002, seed=5
        )
        with pytest.raises(ServeError) as exc:
            c.request("GET", "/healthz")
        assert exc.value.code == "unavailable"
        assert c.last_attempts == 3
        assert len(c.last_sleeps) == 2
